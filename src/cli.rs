//! Command-line interface for the `prc-cli` binary.
//!
//! Subcommands:
//!
//! * `generate` — synthesize a CityPulse-shape dataset and write it as CSV;
//! * `summary` — per-index summary statistics of a dataset;
//! * `query` — answer one differentially private range count end to end
//!   (network, broker, optimizer, price);
//! * `histogram` — release a private histogram of one index.
//!
//! Datasets come from `--data <csv>` or, when omitted, from the seeded
//! synthetic generator (`--records`, `--seed`). Parsing is dependency-free:
//! `--flag value` pairs after the subcommand.

use std::io::Write;

// prc-lint: allow(B003, reason = "seeds the demo rng passed into prc-core; all noise draws happen inside prc-dp")
use rand::SeedableRng;

use prc_core::broker::DataBroker;
use prc_core::estimator::RankCounting;
use prc_core::histogram::private_histogram;
use prc_core::query::{Accuracy, QueryRequest, RangeQuery};
use prc_data::generator::CityPulseGenerator;
use prc_data::partition::PartitionStrategy;
use prc_data::record::{AirQualityIndex, Dataset};
use prc_data::stats;
use prc_dp::budget::Epsilon;
use prc_dp::mechanism::Sensitivity;
use prc_net::network::FlatNetwork;
use prc_pricing::functions::{InverseVariancePricing, PricingFunction};
use prc_pricing::variance::ChebyshevVariance;

/// Errors produced while parsing or executing a CLI invocation.
#[derive(Debug)]
pub enum CliError {
    /// No subcommand, or an unknown one.
    UnknownCommand(String),
    /// A flag without a value, or an unknown flag for the subcommand.
    BadFlag(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// A required flag was missing.
    Missing(&'static str),
    /// Any downstream failure (I/O, pipeline, pricing).
    Run(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(
                    f,
                    "unknown command `{c}` (try: generate, summary, query, histogram)"
                )
            }
            CliError::BadFlag(flag) => write!(f, "unknown or incomplete flag `{flag}`"),
            CliError::BadValue { flag, value } => {
                write!(f, "could not parse value `{value}` for flag `{flag}`")
            }
            CliError::Missing(flag) => write!(f, "missing required flag `{flag}`"),
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// A parsed `--flag value` list.
#[derive(Debug, Default)]
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError::BadFlag(flag.clone()));
            };
            let Some(value) = it.next() else {
                return Err(CliError::BadFlag(flag.clone()));
            };
            pairs.push((name.to_owned(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn parse_value<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|_| CliError::BadValue {
                flag: name.to_owned(),
                value: raw.to_owned(),
            }),
        }
    }

    fn value_or<T: std::str::FromStr + Copy>(&self, name: &str, default: T) -> Result<T, CliError> {
        Ok(self.parse_value(name)?.unwrap_or(default))
    }
}

/// A fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Synthesize a dataset and write CSV to `out`.
    Generate {
        /// Number of records.
        records: usize,
        /// Generator seed.
        seed: u64,
        /// Output path.
        out: String,
    },
    /// Print per-index summary statistics.
    Summary {
        /// Input CSV path, or `None` for the synthetic default.
        data: Option<String>,
        /// Records for the synthetic default.
        records: usize,
        /// Seed for the synthetic default.
        seed: u64,
    },
    /// Answer one private range count.
    Query {
        /// Input CSV path, or `None` for the synthetic default.
        data: Option<String>,
        /// Records for the synthetic default.
        records: usize,
        /// Seed for the synthetic default and the pipeline RNG.
        seed: u64,
        /// Which air-quality index to query.
        index: AirQualityIndex,
        /// Lower range bound.
        lower: f64,
        /// Upper range bound.
        upper: f64,
        /// Accuracy α.
        alpha: f64,
        /// Confidence δ.
        delta: f64,
        /// Node count.
        nodes: usize,
        /// Pricing coefficient for π = c/V.
        coefficient: f64,
    },
    /// Release private quantiles.
    Quantile {
        /// Input CSV path, or `None` for the synthetic default.
        data: Option<String>,
        /// Records for the synthetic default.
        records: usize,
        /// Seed for the synthetic default and the pipeline RNG.
        seed: u64,
        /// Which air-quality index to summarize.
        index: AirQualityIndex,
        /// Quantile levels to release, each in (0, 1).
        levels: Vec<f64>,
        /// Total privacy budget ε (split across the levels).
        epsilon: f64,
        /// Sampling probability p.
        probability: f64,
    },
    /// Release a private histogram.
    Histogram {
        /// Input CSV path, or `None` for the synthetic default.
        data: Option<String>,
        /// Records for the synthetic default.
        records: usize,
        /// Seed for the synthetic default and the pipeline RNG.
        seed: u64,
        /// Which air-quality index to summarize.
        index: AirQualityIndex,
        /// Number of equal-width buckets over [0, 200].
        buckets: usize,
        /// Privacy budget ε.
        epsilon: f64,
        /// Sampling probability p.
        probability: f64,
    },
}

/// Parses an index name via [`AirQualityIndex`]'s `FromStr` (column names
/// or chemical abbreviations).
fn parse_index(raw: &str) -> Result<AirQualityIndex, CliError> {
    raw.parse().map_err(|_| CliError::BadValue {
        flag: "index".to_owned(),
        value: raw.to_owned(),
    })
}

/// Parses the argument list (excluding the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first malformed argument.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::UnknownCommand(String::new()));
    };
    let flags = Flags::parse(rest)?;
    let records = flags.value_or("records", 17_568usize)?;
    let seed = flags.value_or("seed", 2014u64)?;
    let data = flags.get("data").map(str::to_owned);
    match command.as_str() {
        "generate" => Ok(Command::Generate {
            records,
            seed,
            out: flags
                .get("out")
                .ok_or(CliError::Missing("--out"))?
                .to_owned(),
        }),
        "summary" => Ok(Command::Summary {
            data,
            records,
            seed,
        }),
        "query" => Ok(Command::Query {
            data,
            records,
            seed,
            index: parse_index(flags.get("index").unwrap_or("ozone"))?,
            lower: flags
                .parse_value("lower")?
                .ok_or(CliError::Missing("--lower"))?,
            upper: flags
                .parse_value("upper")?
                .ok_or(CliError::Missing("--upper"))?,
            alpha: flags.value_or("alpha", 0.05f64)?,
            delta: flags.value_or("delta", 0.8f64)?,
            nodes: flags.value_or("nodes", 50usize)?,
            coefficient: flags.value_or("price-coefficient", 1e9f64)?,
        }),
        "histogram" => Ok(Command::Histogram {
            data,
            records,
            seed,
            index: parse_index(flags.get("index").unwrap_or("ozone"))?,
            buckets: flags.value_or("buckets", 10usize)?,
            epsilon: flags.value_or("epsilon", 1.0f64)?,
            probability: flags.value_or("probability", 0.35f64)?,
        }),
        "quantile" => {
            let raw_levels = flags.get("levels").unwrap_or("0.25,0.5,0.75");
            let levels = raw_levels
                .split(',')
                .map(|part| {
                    part.trim().parse::<f64>().map_err(|_| CliError::BadValue {
                        flag: "levels".to_owned(),
                        value: raw_levels.to_owned(),
                    })
                })
                .collect::<Result<Vec<f64>, CliError>>()?;
            Ok(Command::Quantile {
                data,
                records,
                seed,
                index: parse_index(flags.get("index").unwrap_or("ozone"))?,
                levels,
                epsilon: flags.value_or("epsilon", 3.0f64)?,
                probability: flags.value_or("probability", 0.35f64)?,
            })
        }
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

/// Usage text for `--help` / errors.
pub fn usage() -> &'static str {
    "prc-cli — trading private range counting over IoT data

USAGE:
  prc-cli generate  --out FILE [--records N] [--seed S]
  prc-cli summary   [--data FILE | --records N --seed S]
  prc-cli query     --lower L --upper U [--index ozone|pm|co|so2|no2]
                    [--alpha A] [--delta D] [--nodes K]
                    [--price-coefficient C] [--data FILE]
  prc-cli histogram [--index I] [--buckets B] [--epsilon E]
                    [--probability P] [--data FILE]
  prc-cli quantile  [--index I] [--levels 0.25,0.5,0.75] [--epsilon E]
                    [--probability P] [--data FILE]
"
}

fn load_dataset(data: &Option<String>, records: usize, seed: u64) -> Result<Dataset, CliError> {
    match data {
        Some(path) => prc_data::csv::read_csv_file(path)
            .map_err(|e| CliError::Run(format!("failed to read `{path}`: {e}"))),
        None => Ok(CityPulseGenerator::new(seed)
            .record_count(records)
            .generate()),
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError::Run`] for any downstream failure.
pub fn run<W: Write>(command: &Command, out: &mut W) -> Result<(), CliError> {
    let io_err = |e: std::io::Error| CliError::Run(format!("write failed: {e}"));
    match command {
        Command::Generate {
            records,
            seed,
            out: path,
        } => {
            let dataset = CityPulseGenerator::new(*seed)
                .record_count(*records)
                .generate();
            prc_data::csv::write_csv_file(path, &dataset)
                .map_err(|e| CliError::Run(format!("failed to write `{path}`: {e}")))?;
            writeln!(out, "wrote {} records to {path}", dataset.len()).map_err(io_err)?;
        }
        Command::Summary {
            data,
            records,
            seed,
        } => {
            let dataset = load_dataset(data, *records, *seed)?;
            writeln!(out, "{} records", dataset.len()).map_err(io_err)?;
            if let Some((first, last)) = dataset.time_bounds() {
                writeln!(out, "time range: {first} .. {last}").map_err(io_err)?;
            }
            writeln!(
                out,
                "{:<20} {:>8} {:>8} {:>8} {:>8}",
                "index", "min", "mean", "p95", "max"
            )
            .map_err(io_err)?;
            for index in AirQualityIndex::ALL {
                let values = dataset.values(index);
                writeln!(
                    out,
                    "{:<20} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                    index.column_name(),
                    stats::min(&values).unwrap_or(f64::NAN),
                    stats::mean(&values).unwrap_or(f64::NAN),
                    stats::quantile(&values, 0.95).unwrap_or(f64::NAN),
                    stats::max(&values).unwrap_or(f64::NAN),
                )
                .map_err(io_err)?;
            }
        }
        Command::Query {
            data,
            records,
            seed,
            index,
            lower,
            upper,
            alpha,
            delta,
            nodes,
            coefficient,
        } => {
            let dataset = load_dataset(data, *records, *seed)?;
            let network = FlatNetwork::from_dataset(
                &dataset,
                *index,
                *nodes,
                PartitionStrategy::RoundRobin,
                *seed,
            );
            let mut broker = DataBroker::new(network, *seed);
            let request = QueryRequest::new(
                RangeQuery::new(*lower, *upper).map_err(|e| CliError::Run(e.to_string()))?,
                Accuracy::new(*alpha, *delta).map_err(|e| CliError::Run(e.to_string()))?,
            );
            let answer = broker
                .answer(&request)
                .map_err(|e| CliError::Run(e.to_string()))?;
            let pricing =
                InverseVariancePricing::new(*coefficient, ChebyshevVariance::new(dataset.len()));
            writeln!(out, "query:        {request}").map_err(io_err)?;
            writeln!(out, "answer:       {:.1}", answer.value).map_err(io_err)?;
            writeln!(
                out,
                "perturbation: α'={:.4} δ'={:.4} ε={:.4} effective ε'={:.5}",
                answer.plan.alpha_prime,
                answer.plan.delta_prime,
                answer.plan.epsilon.value(),
                answer.plan.effective_epsilon.value()
            )
            .map_err(io_err)?;
            writeln!(out, "price:        {:.2}", pricing.price(*alpha, *delta)).map_err(io_err)?;
            let cost = broker.network().meter().snapshot();
            writeln!(
                out,
                "network cost: {} samples, {} messages, {} bytes",
                cost.samples, cost.messages, cost.bytes
            )
            .map_err(io_err)?;
        }
        Command::Quantile {
            data,
            records,
            seed,
            index,
            levels,
            epsilon,
            probability,
        } => {
            if levels.is_empty() || levels.iter().any(|&q| !(0.0..1.0).contains(&q) || q == 0.0) {
                return Err(CliError::Run(
                    "quantile levels must be a non-empty list inside (0, 1)".to_owned(),
                ));
            }
            let dataset = load_dataset(data, *records, *seed)?;
            let mut network = FlatNetwork::from_dataset(
                &dataset,
                *index,
                50.min(dataset.len().max(1)),
                PartitionStrategy::RoundRobin,
                *seed,
            );
            network.collect_samples(*probability);
            // prc-lint: allow(B003, reason = "seeds the demo rng passed into prc-core; all noise draws happen inside prc-dp")
            let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
            let config = prc_core::quantile::QuantileConfig {
                domain: (0.0, 200.0),
                steps: 20,
                epsilon: Epsilon::new(*epsilon).map_err(|e| CliError::Run(e.to_string()))?,
                sensitivity: Sensitivity::new(1.0 / probability)
                    .map_err(|e| CliError::Run(e.to_string()))?,
            };
            let results = prc_core::quantile::private_quantiles(
                &RankCounting,
                network.station(),
                levels,
                &config,
                &mut rng,
            )
            .map_err(|e| CliError::Run(e.to_string()))?;
            writeln!(
                out,
                "private {} quantiles (ε = {epsilon} total, p = {probability})",
                index.column_name()
            )
            .map_err(io_err)?;
            for r in results {
                writeln!(
                    out,
                    "  q{:<5} ≈ {:>8.2}  ({} probes at ε = {:.3})",
                    (r.q * 1_000.0).round() / 10.0,
                    r.value,
                    r.steps,
                    r.epsilon.value()
                )
                .map_err(io_err)?;
            }
        }
        Command::Histogram {
            data,
            records,
            seed,
            index,
            buckets,
            epsilon,
            probability,
        } => {
            if *buckets == 0 {
                return Err(CliError::Run("need at least one bucket".to_owned()));
            }
            let dataset = load_dataset(data, *records, *seed)?;
            let mut network = FlatNetwork::from_dataset(
                &dataset,
                *index,
                50,
                PartitionStrategy::RoundRobin,
                *seed,
            );
            network.collect_samples(*probability);
            let edges: Vec<f64> = (0..=*buckets)
                .map(|i| 200.0 * i as f64 / *buckets as f64)
                .collect();
            // prc-lint: allow(B003, reason = "seeds the demo rng passed into prc-core; all noise draws happen inside prc-dp")
            let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
            let sensitivity =
                Sensitivity::new(1.0 / probability).map_err(|e| CliError::Run(e.to_string()))?;
            let histogram = private_histogram(
                &RankCounting,
                network.station(),
                &edges,
                Epsilon::new(*epsilon).map_err(|e| CliError::Run(e.to_string()))?,
                sensitivity,
                &mut rng,
            )
            .map_err(|e| CliError::Run(e.to_string()))?;
            writeln!(
                out,
                "private {} histogram (ε = {epsilon}, p = {probability})",
                index.column_name()
            )
            .map_err(io_err)?;
            for i in 0..histogram.len() {
                let (lo, hi) = histogram.bucket_bounds(i);
                let count = histogram.counts()[i].max(0.0);
                writeln!(out, "  ({lo:>6.1}, {hi:>6.1}] {count:>10.0}").map_err(io_err)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&args(&[
            "generate",
            "--out",
            "/tmp/x.csv",
            "--records",
            "100",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                records: 100,
                seed: 2014,
                out: "/tmp/x.csv".into()
            }
        );
    }

    #[test]
    fn parses_query_with_defaults_and_short_index() {
        let cmd = parse(&args(&[
            "query", "--lower", "80", "--upper", "120", "--index", "pm",
        ]))
        .unwrap();
        match cmd {
            Command::Query {
                index,
                lower,
                upper,
                alpha,
                delta,
                nodes,
                ..
            } => {
                assert_eq!(index, AirQualityIndex::ParticulateMatter);
                assert_eq!((lower, upper), (80.0, 120.0));
                assert_eq!((alpha, delta), (0.05, 0.8));
                assert_eq!(nodes, 50);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn later_flags_override_earlier() {
        let cmd = parse(&args(&["summary", "--records", "10", "--records", "20"])).unwrap();
        assert!(matches!(cmd, Command::Summary { records: 20, .. }));
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(matches!(
            parse(&args(&[])),
            Err(CliError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse(&args(&["frobnicate"])),
            Err(CliError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse(&args(&["query", "--lower"])),
            Err(CliError::BadFlag(_))
        ));
        assert!(matches!(
            parse(&args(&["query", "bare"])),
            Err(CliError::BadFlag(_))
        ));
        assert!(matches!(
            parse(&args(&["query", "--lower", "abc", "--upper", "1"])),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&args(&["query", "--upper", "1"])),
            Err(CliError::Missing("--lower"))
        ));
        assert!(matches!(
            parse(&args(&[
                "query", "--lower", "0", "--upper", "1", "--index", "xyz"
            ])),
            Err(CliError::BadValue { .. })
        ));
        // Errors render.
        let e = parse(&args(&["nope"])).unwrap_err();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn summary_runs_on_synthetic_data() {
        let cmd = parse(&args(&["summary", "--records", "200", "--seed", "1"])).unwrap();
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("200 records"));
        assert!(text.contains("ozone"));
        assert!(text.contains("nitrogen_dioxide"));
    }

    #[test]
    fn query_runs_end_to_end() {
        let cmd = parse(&args(&[
            "query",
            "--lower",
            "60",
            "--upper",
            "120",
            "--records",
            "2000",
            "--nodes",
            "10",
            "--alpha",
            "0.1",
            "--delta",
            "0.6",
        ]))
        .unwrap();
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("answer:"));
        assert!(text.contains("price:"));
        assert!(text.contains("effective ε'"));
    }

    #[test]
    fn quantile_parses_and_runs() {
        let cmd = parse(&args(&[
            "quantile",
            "--records",
            "2000",
            "--levels",
            "0.5,0.9",
            "--index",
            "pm",
        ]))
        .unwrap();
        match &cmd {
            Command::Quantile { levels, index, .. } => {
                assert_eq!(levels, &vec![0.5, 0.9]);
                assert_eq!(*index, AirQualityIndex::ParticulateMatter);
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("q50"));
        assert!(text.contains("q90"));
    }

    #[test]
    fn quantile_rejects_bad_levels() {
        assert!(matches!(
            parse(&args(&["quantile", "--levels", "0.5,abc"])),
            Err(CliError::BadValue { .. })
        ));
        let cmd = parse(&args(&["quantile", "--records", "100", "--levels", "1.5"])).unwrap();
        let mut buf = Vec::new();
        assert!(run(&cmd, &mut buf).is_err());
    }

    #[test]
    fn histogram_runs_end_to_end() {
        let cmd = parse(&args(&[
            "histogram",
            "--records",
            "2000",
            "--buckets",
            "5",
            "--epsilon",
            "2.0",
        ]))
        .unwrap();
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 6); // header + 5 buckets
    }

    #[test]
    fn generate_then_reload_via_query() {
        let dir = std::env::temp_dir().join("prc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.csv");
        let path_str = path.to_str().unwrap().to_owned();

        let cmd = parse(&args(&["generate", "--out", &path_str, "--records", "300"])).unwrap();
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();

        let cmd = parse(&args(&["summary", "--data", &path_str])).unwrap();
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("300 records"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_run_error() {
        let cmd = parse(&args(&["summary", "--data", "/no/such/file.csv"])).unwrap();
        let mut buf = Vec::new();
        let err = run(&cmd, &mut buf).unwrap_err();
        assert!(matches!(err, CliError::Run(_)));
        assert!(err.to_string().contains("/no/such/file.csv"));
    }

    #[test]
    fn zero_buckets_rejected_at_run() {
        let cmd = parse(&args(&["histogram", "--buckets", "0", "--records", "100"])).unwrap();
        let mut buf = Vec::new();
        assert!(run(&cmd, &mut buf).is_err());
    }

    #[test]
    fn usage_mentions_every_command() {
        for c in ["generate", "summary", "query", "histogram"] {
            assert!(usage().contains(c));
        }
    }
}
