//! # prc — trading private range counting over big IoT data
//!
//! A from-scratch Rust reproduction of *"Trading Private Range Counting
//! over Big IoT Data"* (Zhipeng Cai and Zaobo He, ICDCS 2019): a data
//! marketplace that sells approximate, differentially private range
//! counts over distributed IoT data, priced to rule out arbitrage.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`data`] | `prc-data` | CityPulse-like pollution datasets, CSV I/O, partitioning |
//! | [`net`] | `prc-net` | sensor nodes, base station, flat/tree/threaded drivers, cost metering, failure injection |
//! | [`dp`] | `prc-dp` | Laplace/geometric mechanisms, budgets, amplification by sampling |
//! | [`core`] | `prc-core` | RankCounting estimator, (α, δ) calculus, perturbation optimizer, broker/consumer |
//! | [`pricing`] | `prc-pricing` | variance models, arbitrage-avoiding pricing, Theorem 4.2 checker, attack simulator |
//!
//! ## End-to-end example
//!
//! ```
//! use prc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Synthesize the CityPulse-like dataset and distribute it over 50 nodes.
//! let dataset = CityPulseGenerator::new(42).record_count(2_000).generate();
//! let network = FlatNetwork::from_dataset(
//!     &dataset,
//!     AirQualityIndex::Ozone,
//!     50,
//!     PartitionStrategy::RoundRobin,
//!     42,
//! );
//!
//! // 2. A broker answers (α, δ)-range-counting requests privately.
//! let mut broker = DataBroker::new(network, 42);
//! let request = QueryRequest::new(
//!     RangeQuery::new(80.0, 120.0)?,
//!     Accuracy::new(0.08, 0.7)?,
//! );
//! let answer = broker.answer(&request)?;
//!
//! // 3. Price the trade with the canonical arbitrage-avoiding function.
//! let pricing = InverseVariancePricing::new(1e7, ChebyshevVariance::new(dataset.len()));
//! let price = pricing.price(0.08, 0.7);
//! assert!(answer.value.is_finite() && price > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use prc_core as core;
pub use prc_data as data;
pub use prc_dp as dp;
pub use prc_net as net;
pub use prc_pricing as pricing;
pub use prc_sketch as sketch;

pub mod cli;
pub mod marketplace;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use prc_core::audit::{audit_answer, verify_answer};
    pub use prc_core::broker::{
        BatchReport, BatchStats, DataBroker, PrivateAnswer, SamplingPolicy, StageCounters,
    };
    pub use prc_core::consumer::AnswerBundle;
    pub use prc_core::estimator::{
        BasicCounting, QueryIndex, RangeCountEstimator, RankCounting, RankIndex, SegmentedRankIndex,
    };
    pub use prc_core::histogram::{private_argmax_bucket, private_histogram, PrivateHistogram};
    pub use prc_core::optimizer::{
        optimize, NetworkShape, OptimizerConfig, PerturbationPlan, PlanSummary, SensitivityPolicy,
    };
    pub use prc_core::pipeline::{PricedAnswer, QuerySession};
    pub use prc_core::quantile::{private_quantile, private_quantiles, QuantileConfig};
    pub use prc_core::query::{Accuracy, QueryRequest, RangeQuery};
    pub use prc_core::CoreError;
    pub use prc_data::generator::CityPulseGenerator;
    pub use prc_data::partition::PartitionStrategy;
    pub use prc_data::record::{AirQualityIndex, Dataset, PollutionRecord};
    pub use prc_dp::amplification::amplify;
    pub use prc_dp::budget::{BudgetAccountant, Epsilon};
    pub use prc_dp::composition::AdvancedAccountant;
    pub use prc_dp::gaussian::{ApproxDp, GaussianMechanism};
    pub use prc_dp::laplace::Laplace;
    pub use prc_dp::mechanism::{LaplaceMechanism, Mechanism, Sensitivity};
    pub use prc_dp::renyi::RdpAccountant;
    pub use prc_net::energy::{EnergyModel, EnergyReport};
    pub use prc_net::failure::{FailurePlan, LossMode};
    pub use prc_net::network::{CostMeter, FlatNetwork, Network, ThreadedNetwork};
    pub use prc_net::tree::TreeNetwork;
    pub use prc_pricing::arbitrage::{certify, find_arbitrage, AttackConfig};
    pub use prc_pricing::engine::{PostedPriceEngine, PricingEngine, Quote, Settlement};
    pub use prc_pricing::functions::{
        InverseVariancePricing, LinearDeltaPricing, LogPrecisionPricing, PricingFunction,
        SqrtPrecisionPricing,
    };
    pub use prc_pricing::history::{HistoryAwarePricing, PrecisionPricing};
    pub use prc_pricing::ledger::TradeLedger;
    pub use prc_pricing::reuse::{Demand, PostedPriceReuse, ReuseGuard};
    pub use prc_pricing::variance::{ChebyshevVariance, VarianceModel};
    pub use prc_sketch::distributed::{Quantizer, SketchStation};
    pub use prc_sketch::{CountBounds, GkSummary, QDigest};
}
