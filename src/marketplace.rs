//! The assembled marketplace: broker + pricing + ledger + history in one
//! front door.
//!
//! The paper's three entities — IoT network, data broker, data consumers
//! — meet here. A [`Marketplace`] owns the private-answer pipeline
//! (`prc-core`), a posted pricing function (`prc-pricing`), the trade
//! ledger, and per-buyer purchase history, exposing the two calls a
//! consumer-facing service needs:
//!
//! * [`Marketplace::quote`] — what would this `(α, δ)` answer cost me?
//! * [`Marketplace::buy`] — charge me and release the answer.
//!
//! Prices are *history-aware* (marginal information, see
//! `prc_pricing::history`): a buyer accumulating precision on the same
//! query pays exactly the posted price of what they end up holding, so
//! splitting purchases neither saves nor wastes money.

use prc_core::broker::{DataBroker, PrivateAnswer};
use prc_core::query::QueryRequest;
use prc_core::CoreError;
use prc_pricing::functions::PricingFunction;
use prc_pricing::history::{HistoryAwarePricing, PrecisionPricing};
use prc_pricing::ledger::TradeLedger;
use prc_pricing::variance::{ChebyshevVariance, VarianceModel};

/// A completed purchase: the released answer plus its billing record.
#[derive(Debug, Clone)]
pub struct Receipt {
    /// The released private answer.
    pub answer: PrivateAnswer,
    /// The price charged (marginal, given the buyer's history).
    pub price: f64,
    /// Ledger sequence number of the sale.
    pub sequence: u64,
}

/// A data marketplace selling differentially private range counts.
#[derive(Debug)]
pub struct Marketplace<F> {
    broker: DataBroker,
    pricing: HistoryAwarePricing<F, ChebyshevVariance>,
    ledger: TradeLedger,
}

impl<F> Marketplace<F>
where
    F: PricingFunction + PrecisionPricing,
{
    /// Assembles a marketplace from a broker pipeline and a posted
    /// pricing function over the broker's population.
    pub fn new(broker: DataBroker, posted_pricing: F) -> Self {
        let population = broker.network().total_data_size().max(1);
        let model = ChebyshevVariance::new(population);
        Marketplace {
            broker,
            pricing: HistoryAwarePricing::new(posted_pricing, model),
            ledger: TradeLedger::new(),
        }
    }

    /// The marginal price `buyer` would pay for this request, without
    /// buying.
    pub fn quote(&self, buyer: &str, request: &QueryRequest) -> f64 {
        self.pricing.quote(
            buyer,
            &Self::query_key(request),
            request.accuracy.alpha(),
            request.accuracy.delta(),
        )
    }

    /// Sells one answer: runs the private pipeline, charges the marginal
    /// price, and records the trade.
    ///
    /// # Errors
    ///
    /// Propagates every pipeline error ([`CoreError`]); failed pipelines
    /// charge nothing and record nothing.
    pub fn buy(&mut self, buyer: &str, request: &QueryRequest) -> Result<Receipt, CoreError> {
        // Run the pipeline first: a failed answer must not charge.
        let answer = self.broker.answer(request)?;
        let key = Self::query_key(request);
        let price = self.pricing.purchase(
            buyer,
            &key,
            request.accuracy.alpha(),
            request.accuracy.delta(),
        );
        let sequence = self.ledger.record(
            buyer,
            request.accuracy.alpha(),
            request.accuracy.delta(),
            price,
        );
        Ok(Receipt {
            answer,
            price,
            sequence,
        })
    }

    /// The broker's total revenue so far.
    pub fn revenue(&self) -> f64 {
        self.ledger.total_revenue()
    }

    /// The trade ledger.
    pub fn ledger(&self) -> &TradeLedger {
        &self.ledger
    }

    /// The underlying broker (network metrics, privacy accountant).
    pub fn broker(&self) -> &DataBroker {
        &self.broker
    }

    /// Mutable access to the broker (budget installation, failure
    /// injection through the network).
    pub fn broker_mut(&mut self) -> &mut DataBroker {
        &mut self.broker
    }

    /// The variance the posted price would assign to a request — exposed
    /// so consumers can verify quotes against the model.
    pub fn posted_variance(&self, request: &QueryRequest) -> f64 {
        ChebyshevVariance::new(self.broker.network().total_data_size().max(1))
            .variance(request.accuracy.alpha(), request.accuracy.delta())
    }

    /// Canonical history key for a request: the exact range queried.
    fn query_key(request: &QueryRequest) -> String {
        format!("[{};{}]", request.query.lower(), request.query.upper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prc_core::query::{Accuracy, RangeQuery};
    use prc_net::network::FlatNetwork;
    use prc_pricing::functions::SqrtPrecisionPricing;

    fn marketplace(seed: u64) -> Marketplace<SqrtPrecisionPricing<ChebyshevVariance>> {
        let partitions: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..500).map(|j| (i * 500 + j) as f64).collect())
            .collect();
        let broker = DataBroker::new(FlatNetwork::from_partitions(partitions, seed), seed);
        let posted = SqrtPrecisionPricing::new(1e4, ChebyshevVariance::new(5_000));
        Marketplace::new(broker, posted)
    }

    fn request(alpha: f64, delta: f64) -> QueryRequest {
        QueryRequest::new(
            RangeQuery::new(1_000.0, 4_000.0).unwrap(),
            Accuracy::new(alpha, delta).unwrap(),
        )
    }

    #[test]
    fn quote_matches_first_purchase_price() {
        let mut market = marketplace(1);
        let req = request(0.1, 0.6);
        let quoted = market.quote("alice", &req);
        let receipt = market.buy("alice", &req).unwrap();
        assert_eq!(receipt.price, quoted);
        assert_eq!(receipt.sequence, 0);
        assert!(receipt.answer.value.is_finite());
        assert_eq!(market.revenue(), quoted);
    }

    #[test]
    fn repeat_buyers_get_marginal_prices() {
        let mut market = marketplace(2);
        let req = request(0.1, 0.6);
        let first = market.buy("alice", &req).unwrap().price;
        let second = market.buy("alice", &req).unwrap().price;
        assert!(second < first, "concave posted price must discount repeats");
        // A different buyer still pays the fresh price.
        let bob = market.buy("bob", &req).unwrap().price;
        assert_eq!(bob, first);
        // A different *range* resets the history too.
        let other = QueryRequest::new(
            RangeQuery::new(0.0, 500.0).unwrap(),
            Accuracy::new(0.1, 0.6).unwrap(),
        );
        assert_eq!(market.quote("alice", &other), first);
    }

    #[test]
    fn failed_pipeline_charges_nothing() {
        let mut market = marketplace(3);
        // Exhaust the privacy budget, then try to buy.
        market
            .broker_mut()
            .set_privacy_budget(prc_dp::budget::Epsilon::new(1e-9).unwrap());
        let err = market.buy("carol", &request(0.1, 0.6)).unwrap_err();
        assert!(matches!(err, CoreError::Dp(_)));
        assert_eq!(market.revenue(), 0.0);
        assert!(market.ledger().is_empty());
        // The quote is unaffected by the failed attempt.
        assert!(market.quote("carol", &request(0.1, 0.6)) > 0.0);
    }

    #[test]
    fn ledger_accumulates_across_buyers() {
        let mut market = marketplace(4);
        market.buy("a", &request(0.1, 0.6)).unwrap();
        market.buy("b", &request(0.05, 0.8)).unwrap();
        market.buy("a", &request(0.1, 0.6)).unwrap();
        assert_eq!(market.ledger().len(), 3);
        let by_buyer = market.ledger().revenue_by_buyer();
        assert!(by_buyer["a"] > 0.0 && by_buyer["b"] > 0.0);
        assert!((market.revenue() - (by_buyer["a"] + by_buyer["b"])).abs() < 1e-9);
    }

    #[test]
    fn posted_variance_is_the_chebyshev_model() {
        let market = marketplace(5);
        let req = request(0.1, 0.6);
        let v = market.posted_variance(&req);
        assert_eq!(v, ChebyshevVariance::new(5_000).variance(0.1, 0.6));
    }
}
