//! `prc-cli` — command-line front end for the private range-counting
//! marketplace. See `prc::cli::usage` for the subcommands.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        print!("{}", prc::cli::usage());
        return ExitCode::SUCCESS;
    }
    let command = match prc::cli::parse(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", prc::cli::usage());
            return ExitCode::FAILURE;
        }
    };
    let stdout = std::io::stdout();
    match prc::cli::run(&command, &mut stdout.lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
