//! The adversary of §II-B / Example 4.1: instead of paying for one
//! accurate answer, buy several cheap noisy answers to the same range and
//! average them. This example runs the attack against three pricing
//! functions — the attack fails against the compliant families and
//! succeeds against a broken one — and then demonstrates a *live* attack
//! through the broker pipeline.
//!
//! ```text
//! cargo run --release --example arbitrage_attack
//! ```

// Demo binaries may die loudly; library code is held to prc-lint's P rules instead.
#![allow(clippy::unwrap_used)]

use prc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 17_568;
    let model = ChebyshevVariance::new(n);
    let target = (0.03, 0.9); // the accuracy the adversary wants
    let targets = [target];
    let config = AttackConfig::default();

    println!(
        "adversary wants Λ(α={}, δ={}) — variance {:.0}\n",
        target.0,
        target.1,
        model.variance(target.0, target.1)
    );

    // 1. Static certification of three pricing functions.
    let inverse = InverseVariancePricing::new(1e9, model);
    let sqrt = SqrtPrecisionPricing::new(1e5, model);
    let broken = LinearDeltaPricing::new(10.0);

    report(
        "InverseVariance (π = c/V)",
        find_arbitrage(&inverse, &model, &targets, &config),
        inverse.price(target.0, target.1),
    );
    report(
        "SqrtPrecision (π = c/√V)",
        find_arbitrage(&sqrt, &model, &targets, &config),
        sqrt.price(target.0, target.1),
    );
    report(
        "LinearDelta (broken)",
        find_arbitrage(&broken, &model, &targets, &config),
        broken.price(target.0, target.1),
    );

    // 2. A live attack through the broker: buy 9 answers at a loose
    //    accuracy and average them, then compare against one strict answer.
    let dataset = CityPulseGenerator::new(7).generate();
    let query = RangeQuery::new(80.0, 120.0)?;
    let strict = Accuracy::new(target.0, target.1)?;
    // A bundle accuracy whose variance is ~9x the target: averaging 9
    // copies reaches the target's variance.
    let loose_alpha = target.0 * 3.0;
    let loose = Accuracy::new(loose_alpha, target.1)?;

    let network = FlatNetwork::from_dataset(
        &dataset,
        AirQualityIndex::Ozone,
        50,
        PartitionStrategy::RoundRobin,
        7,
    );
    let truth = network.exact_range_count(80.0, 120.0) as f64;
    let mut broker = DataBroker::new(network, 7);

    let mut bundle = AnswerBundle::new();
    for _ in 0..9 {
        bundle.push(broker.answer(&QueryRequest::new(query, loose))?);
    }
    let single = broker.answer(&QueryRequest::new(query, strict))?;

    let single_price = inverse.price(strict.alpha(), strict.delta());
    let bundle_price = 9.0 * inverse.price(loose.alpha(), loose.delta());
    println!("\nlive replay (truth = {truth}):");
    println!(
        "  single strict answer:  value {:>9.1}   price {:>12.2}",
        single.value, single_price
    );
    println!(
        "  9-answer loose bundle: value {:>9.1}   price {:>12.2}  (avg of 9 cheap buys)",
        bundle.combined_value().unwrap(),
        bundle_price
    );
    println!(
        "  bundle variance bound {:.0} vs single {:.0}",
        bundle.combined_variance_bound().unwrap(),
        single.variance_bound
    );
    if bundle_price >= single_price * (1.0 - 1e-9) {
        println!("  => no saving: under π = c/V the bundle costs {:.1}% of the single answer — arbitrage neutralized",
            bundle_price / single_price * 100.0);
    } else {
        println!("  => ARBITRAGE: the bundle is cheaper!");
    }
    Ok(())
}

fn report(name: &str, attacks: Vec<prc::pricing::arbitrage::ArbitrageAttack>, posted: f64) {
    if attacks.is_empty() {
        println!("{name:<28} SAFE      (posted price {posted:.2}; no bundle beats it)");
    } else {
        let best = attacks
            .iter()
            .max_by(|a, b| a.saving().partial_cmp(&b.saving()).unwrap())
            .unwrap();
        println!(
            "{name:<28} EXPLOITED (posted {posted:.2}; bundle of {} costs {:.2} — adversary saves {:.1}%)",
            best.bundle.len(),
            best.bundle_cost,
            best.saving() / best.target_price * 100.0
        );
    }
}
