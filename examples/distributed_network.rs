//! Network-level behaviour: tree topology, threaded driver, and failure
//! injection. Shows (a) the tree model's hop-multiplied communication
//! cost, (b) the TAG-style exact-aggregation baseline the paper's
//! one-sample/many-queries design avoids, and (c) estimator degradation
//! under node dropout and message loss.
//!
//! ```text
//! cargo run --release --example distributed_network
//! ```

// Demo binaries may die loudly; library code is held to prc-lint's P rules instead.
#![allow(clippy::unwrap_used)]

use prc::core::estimator::{RangeCountEstimator, RankCounting};
use prc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = CityPulseGenerator::new(11).generate();
    let values = dataset.values(AirQualityIndex::CarbonMonoxide);
    let partitions =
        prc::data::partition::partition_values(&values, 50, PartitionStrategy::RoundRobin);
    let query = RangeQuery::new(40.0, 80.0)?;
    let truth: usize = partitions
        .iter()
        .map(|p| p.iter().filter(|&&v| (40.0..=80.0).contains(&v)).count())
        .sum();
    println!(
        "true count of CO in [40, 80]: {truth} of {} records\n",
        values.len()
    );

    // --- Flat vs tree: same samples, different communication cost -----
    let p = 0.2;
    let mut flat = FlatNetwork::from_partitions(partitions.clone(), 3);
    flat.collect_samples(p);
    let mut tree = TreeNetwork::from_partitions(partitions.clone(), 3, 3);
    tree.collect_samples(p);

    let flat_cost = flat.meter().snapshot();
    let tree_cost = tree.meter().snapshot();
    println!("one sampling round at p = {p}:");
    println!(
        "  flat  model: {:>6} messages {:>9} bytes",
        flat_cost.messages, flat_cost.bytes
    );
    println!(
        "  tree  model: {:>6} messages {:>9} bytes (depth {} — hop-multiplied)",
        tree_cost.messages,
        tree_cost.bytes,
        tree.max_depth()
    );
    let est_flat = RankCounting.estimate(flat.station(), query);
    let est_tree = RankCounting.estimate(tree.station(), query);
    println!("  identical sample state => identical estimates: {est_flat:.1} vs {est_tree:.1}");

    // --- One-sample/many-queries vs per-query exact aggregation -------
    let queries = 200;
    let (_, msg_per_query, bytes_per_query) = tree.aggregate_exact_count(40.0, 80.0);
    println!("\nanswering {queries} queries:");
    println!(
        "  exact TAG aggregation: {} messages, {} bytes ({} per query, every query)",
        msg_per_query * queries,
        bytes_per_query * queries,
        msg_per_query
    );
    println!(
        "  sampled (one-time):    {} messages, {} bytes — then every query is free",
        tree_cost.messages, tree_cost.bytes
    );

    // --- Threaded driver matches the deterministic one ----------------
    let mut threaded = ThreadedNetwork::from_partitions(partitions.clone(), 3);
    threaded.collect_samples(p);
    let est_threaded = RankCounting.estimate(threaded.station(), query);
    println!("\nthreaded driver (shared prc-runtime pool, 50 nodes): estimate {est_threaded:.1}");
    assert_eq!(
        est_flat, est_threaded,
        "drivers must agree for the same seed"
    );

    // --- Failure injection ---------------------------------------------
    println!("\nfailure injection at p = {p}:");
    for (label, dropout, loss, mode) in [
        ("healthy", 0.0, 0.0, LossMode::Retransmit),
        ("10% nodes dead", 0.10, 0.0, LossMode::Retransmit),
        ("30% msg loss + retransmit", 0.0, 0.30, LossMode::Retransmit),
        ("30% msg loss, no retries", 0.0, 0.30, LossMode::Drop),
    ] {
        let mut net = FlatNetwork::from_partitions(partitions.clone(), 5);
        net.set_failure_plan(FailurePlan::new(dropout, loss, mode, 17));
        net.collect_samples(p);
        let est = RankCounting.estimate(net.station(), query);
        let cost = net.meter().snapshot();
        println!(
            "  {label:<28} estimate {est:>8.1} (err {:>5.1}%)  {:>5} msgs  {:>4} lost  {:>2} nodes heard",
            (est - truth as f64).abs() / truth as f64 * 100.0,
            cost.messages,
            cost.lost_messages,
            net.station().node_count()
        );
    }
    println!(
        "\nnote: dead nodes remove their whole population from the estimate (bias ∝ dropout);"
    );
    println!("retransmission preserves accuracy at extra message cost; unacknowledged loss breaks");
    println!("the estimator's sampling assumption — the station believes probability p but holds");
    println!("fewer (or no) samples for the affected nodes, so their estimates degrade toward the");
    println!("whole-population fallback and the count drifts.");
    Ok(())
}
