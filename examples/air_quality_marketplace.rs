//! The paper's motivating scenario (§I): a smart-city data broker sells
//! pollution-level range counts to analysts with different accuracy and
//! budget needs, under a global privacy budget.
//!
//! ```text
//! cargo run --release --example air_quality_marketplace
//! ```

// Demo binaries may die loudly; library code is held to prc-lint's P rules instead.
#![allow(clippy::unwrap_used)]

use prc::prelude::*;

struct Customer {
    name: &'static str,
    index: AirQualityIndex,
    range: (f64, f64),
    accuracy: (f64, f64),
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = CityPulseGenerator::new(2014).generate();
    let n = dataset.len();
    let pricing = InverseVariancePricing::new(5e8, ChebyshevVariance::new(n));
    let mut ledger = TradeLedger::new();

    // One broker per air-quality index, sharing nothing (parallel
    // composition would apply across disjoint series; we keep separate
    // budgets for clarity).
    let customers = [
        Customer {
            name: "city-dashboard",
            index: AirQualityIndex::Ozone,
            range: (120.0, 200.0), // high-ozone episodes
            accuracy: (0.10, 0.60),
        },
        Customer {
            name: "health-agency",
            index: AirQualityIndex::ParticulateMatter,
            range: (90.0, 200.0), // PM above the alert threshold
            accuracy: (0.04, 0.90),
        },
        Customer {
            name: "logistics-co",
            index: AirQualityIndex::NitrogenDioxide,
            range: (60.0, 100.0), // typical traffic-driven band
            accuracy: (0.15, 0.50),
        },
        Customer {
            name: "research-lab",
            index: AirQualityIndex::SulfurDioxide,
            range: (20.0, 60.0),
            accuracy: (0.06, 0.80),
        },
    ];

    println!("{:=<100}", "");
    println!(
        "{:<16} {:<20} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "customer", "series", "truth", "answer", "rel err", "ε' spent", "price"
    );
    println!("{:-<100}", "");

    for customer in &customers {
        let network = FlatNetwork::from_dataset(
            &dataset,
            customer.index,
            50,
            PartitionStrategy::RoundRobin,
            99,
        );
        let truth = network.exact_range_count(customer.range.0, customer.range.1);
        let mut broker = DataBroker::new(network, 99);
        broker.set_privacy_budget(Epsilon::new(1.0)?);

        let request = QueryRequest::new(
            RangeQuery::new(customer.range.0, customer.range.1)?,
            Accuracy::new(customer.accuracy.0, customer.accuracy.1)?,
        );
        let answer = broker.answer(&request)?;
        let price = pricing.price(customer.accuracy.0, customer.accuracy.1);
        ledger.record(
            customer.name,
            customer.accuracy.0,
            customer.accuracy.1,
            price,
        );

        let rel_err = if truth > 0 {
            (answer.value - truth as f64).abs() / truth as f64 * 100.0
        } else {
            f64::NAN
        };
        println!(
            "{:<16} {:<20} {:>12} {:>12.1} {:>9.2}% {:>12.4} {:>10.2}",
            customer.name,
            customer.index.display_name(),
            truth,
            answer.value,
            rel_err,
            answer.plan.effective_epsilon.value(),
            price
        );
    }

    println!("{:-<100}", "");
    println!(
        "broker revenue: {:.2} credits over {} trades",
        ledger.total_revenue(),
        ledger.len()
    );
    for (buyer, revenue) in ledger.revenue_by_buyer() {
        println!("  {buyer:<16} {revenue:>10.2}");
    }
    println!("\nnote: stricter accuracy (health-agency) pays the most — price is c/V(α, δ),");
    println!("and the broker's optimizer spends the least privacy each demand allows.");
    Ok(())
}
