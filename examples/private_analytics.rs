//! Beyond single counts: the extension toolkit built on private range
//! counting — a differentially private histogram, private quantiles, a
//! private arg-max ("which pollution band is most common?"), and a
//! sliding-window deployment over the live stream.
//!
//! ```text
//! cargo run --release --example private_analytics
//! ```

// Demo binaries may die loudly; library code is held to prc-lint's P rules instead.
#![allow(clippy::unwrap_used)]

use prc::core::estimator::RankCounting;
use prc::core::histogram::{private_argmax_bucket, private_histogram};
use prc::core::quantile::{private_quantiles, QuantileConfig};
use prc::data::stream::{SlidingWindow, StreamReplayer};
use prc::dp::mechanism::Sensitivity;
use prc::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = CityPulseGenerator::new(99).generate();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    // Collect one sample of the PM series over 50 nodes at p = 0.35.
    let mut network = FlatNetwork::from_dataset(
        &dataset,
        AirQualityIndex::ParticulateMatter,
        50,
        PartitionStrategy::RoundRobin,
        99,
    );
    network.collect_samples(0.35);
    let station = network.station();
    let sensitivity = Sensitivity::new(1.0 / 0.35)?; // the paper's expected Δγ̂ = 1/p

    // --- 1. Private histogram (one ε for the whole vector) -------------
    let edges: Vec<f64> = (0..=10).map(|i| i as f64 * 20.0).collect();
    let histogram = private_histogram(
        &RankCounting,
        station,
        &edges,
        Epsilon::new(0.5)?,
        sensitivity,
        &mut rng,
    )?;
    println!("private PM histogram (ε = 0.5):");
    for i in 0..histogram.len() {
        let (lo, hi) = histogram.bucket_bounds(i);
        let count = histogram.counts()[i].max(0.0);
        let bar = "#".repeat((count / 120.0) as usize);
        println!("  ({lo:>5.0}, {hi:>5.0}] {count:>8.0}  {bar}");
    }

    // --- 2. Private quantiles (noisy binary search) ---------------------
    let config = QuantileConfig {
        domain: (0.0, 200.0),
        steps: 20,
        epsilon: Epsilon::new(1.5)?,
        sensitivity,
    };
    let quantiles =
        private_quantiles(&RankCounting, station, &[0.25, 0.5, 0.9], &config, &mut rng)?;
    println!("\nprivate quantiles (ε = 1.5 total, split across three):");
    let values = dataset.values(AirQualityIndex::ParticulateMatter);
    for q in &quantiles {
        let truth = prc::data::stats::quantile(&values, q.q).unwrap();
        println!(
            "  q{:<4} ≈ {:>6.1}   (true {:>6.1}, {} probes at ε = {:.3})",
            (q.q * 100.0) as u32,
            q.value,
            truth,
            q.steps,
            q.epsilon.value()
        );
    }

    // --- 3. Private arg-max via the exponential mechanism ---------------
    let idx = private_argmax_bucket(
        &RankCounting,
        station,
        &edges,
        Epsilon::new(0.3)?,
        sensitivity,
        &mut rng,
    )?;
    let (lo, hi) = (edges[idx], edges[idx + 1]);
    println!("\nmost common PM band (exponential mechanism, ε = 0.3): ({lo:.0}, {hi:.0}]");

    // --- 4. Sliding-window deployment over the live stream --------------
    // Replay a day of records through a 6-hour window; every 2 hours,
    // rebuild the network from the window and answer a fresh count.
    println!("\nsliding-window monitoring (6 h window, 2 h cadence, PM > 100):");
    let mut replay = StreamReplayer::new(&dataset);
    let mut window = SlidingWindow::new(6 * 3_600);
    let mut clock = replay.next_timestamp().unwrap();
    for step in 0..8 {
        clock = clock.plus_seconds(2 * 3_600);
        window.ingest_all(replay.advance_until(clock));
        let snapshot = window.snapshot();
        if snapshot.is_empty() {
            continue;
        }
        let mut net = FlatNetwork::from_dataset(
            &snapshot,
            AirQualityIndex::ParticulateMatter,
            8,
            PartitionStrategy::RoundRobin,
            99 + step,
        );
        let mut broker = DataBroker::new(net_take(&mut net), 99 + step);
        let answer =
            broker.answer_with_epsilon(RangeQuery::new(100.0, 200.0)?, Epsilon::new(1.0)?, 0.5)?;
        let truth = broker.network().exact_range_count(100.0, 200.0);
        println!(
            "  {}  window {:>4} records  alerts ≈ {:>6.1}  (true {:>4})",
            clock,
            snapshot.len(),
            answer.value.max(0.0),
            truth
        );
    }
    Ok(())
}

/// Moves a network out of a mutable binding (tiny helper keeping the loop readable).
fn net_take(net: &mut FlatNetwork) -> FlatNetwork {
    std::mem::replace(net, FlatNetwork::from_partitions(vec![vec![0.0]], 0))
}
