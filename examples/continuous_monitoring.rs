//! Long-term operation: a city runs a standing private query over the
//! live pollution stream, a customer audits every answer it buys, and the
//! assembled marketplace handles quoting/charging — the glue APIs working
//! together.
//!
//! ```text
//! cargo run --release --example continuous_monitoring
//! ```

// Demo binaries may die loudly; library code is held to prc-lint's P rules instead.
#![allow(clippy::unwrap_used)]

use prc::core::monitor::{ContinuousMonitor, MonitorConfig};
use prc::core::optimizer::NetworkShape;
use prc::data::stream::StreamReplayer;
use prc::marketplace::Marketplace;
use prc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A standing query over the live stream ----------------------
    // "How many high-PM readings in the last 12 hours?" answered every
    // 3 hours under one session privacy budget.
    let dataset = CityPulseGenerator::new(2026)
        .record_count(4_000)
        .outages(0.005, 12.0) // real sensors go dark sometimes
        .generate();
    println!(
        "stream: {} records (sensor outages punched {} gaps worth of slots)",
        dataset.len(),
        4_000 - dataset.len()
    );

    let mut replay = StreamReplayer::new(&dataset);
    let mut monitor = ContinuousMonitor::new(MonitorConfig {
        query: RangeQuery::new(100.0, 200.0)?,
        accuracy: Accuracy::new(0.15, 0.6)?,
        index: AirQualityIndex::ParticulateMatter,
        window_seconds: 12 * 3_600,
        nodes: 8,
        session_budget: Epsilon::new(0.5)?,
        seed: 2026,
    });

    println!("\nstanding query: PM in [100, 200], 12 h window, ε-session budget 0.5");
    println!(
        "{:<8} {:>8} {:>10} {:>14} {:>16}",
        "epoch", "window", "answer", "ε' spent", "budget left"
    );
    let mut clock = replay.next_timestamp().unwrap();
    loop {
        clock = clock.plus_seconds(3 * 3_600);
        monitor.ingest(replay.advance_until(clock));
        if monitor.window_size() == 0 && replay.is_exhausted() {
            break;
        }
        match monitor.answer_epoch() {
            Ok(result) => println!(
                "{:<8} {:>8} {:>10.1} {:>14.5} {:>16.5}",
                result.epoch,
                result.window_size,
                result.answer.value.max(0.0),
                result.answer.plan.effective_epsilon.value(),
                result.budget_remaining
            ),
            Err(CoreError::Dp(_)) => {
                println!(
                    "-- session budget exhausted after {} epochs --",
                    monitor.epochs()
                );
                break;
            }
            Err(e) => return Err(e.into()),
        }
        if replay.is_exhausted() {
            break;
        }
    }

    // --- 2. The assembled marketplace with auditing consumers ----------
    let network = FlatNetwork::from_dataset(
        &dataset,
        AirQualityIndex::ParticulateMatter,
        40,
        PartitionStrategy::RoundRobin,
        7,
    );
    let broker = DataBroker::new(network, 7);
    let posted = SqrtPrecisionPricing::new(2e4, ChebyshevVariance::new(dataset.len()));
    let mut market = Marketplace::new(broker, posted);

    println!("\nmarketplace session (history-aware pricing, audited answers):");
    let request = QueryRequest::new(RangeQuery::new(100.0, 200.0)?, Accuracy::new(0.08, 0.8)?);
    for round in 1..=3 {
        let quote = market.quote("analyst", &request);
        let receipt = market.buy("analyst", &request)?;
        let shape = NetworkShape::from_station(market.broker().network().station())?;
        let audit = if verify_answer(&receipt.answer, shape).is_ok() {
            "audit PASS"
        } else {
            "audit FAIL"
        };
        println!(
            "  purchase {round}: quoted {quote:>9.2}, charged {:>9.2}, answer {:>8.1}  [{audit}]",
            receipt.price, receipt.answer.value
        );
    }
    println!(
        "  total revenue {:.2} — equal to the posted price of the precision the analyst now holds",
        market.revenue()
    );
    println!("  (marginal pricing: each repeat purchase of the same query costs less)");
    Ok(())
}
