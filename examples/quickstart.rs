//! Quickstart: buy one private range count end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Demo binaries may die loudly; library code is held to prc-lint's P rules instead.
#![allow(clippy::unwrap_used)]

use prc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data. The paper's evaluation dataset is the 2014 CityPulse
    //    pollution stream: 17,568 records with five air-quality indexes.
    //    We synthesize an equivalent (see DESIGN.md §2).
    let dataset = CityPulseGenerator::new(42).generate();
    println!("dataset: {} records", dataset.len());

    // 2. Network. Distribute the ozone series over 50 IoT nodes that
    //    report samples to a base station.
    let network = FlatNetwork::from_dataset(
        &dataset,
        AirQualityIndex::Ozone,
        50,
        PartitionStrategy::RoundRobin,
        42,
    );
    let truth = network.exact_range_count(80.0, 120.0);

    // 3. Broker. Ask for the number of readings in [80, 120] with at most
    //    5% relative error, 80% of the time.
    let mut broker = DataBroker::new(network, 42);
    let request = QueryRequest::new(RangeQuery::new(80.0, 120.0)?, Accuracy::new(0.05, 0.8)?);
    let answer = broker.answer(&request)?;

    println!("query:            {}", request);
    println!("true count:       {truth}");
    println!("private answer:   {:.1}", answer.value);
    println!(
        "perturbation:     α'={:.4}, δ'={:.4}, ε={:.4}, effective ε'={:.4}",
        answer.plan.alpha_prime,
        answer.plan.delta_prime,
        answer.plan.epsilon.value(),
        answer.plan.effective_epsilon.value()
    );

    // 4. Price. The canonical arbitrage-avoiding price is c/V(α, δ).
    let pricing = InverseVariancePricing::new(1e9, ChebyshevVariance::new(dataset.len()));
    let price = pricing.price(request.accuracy.alpha(), request.accuracy.delta());
    println!("price charged:    {price:.2} credits");

    // 5. Cost. How much communication did serving this cost the network?
    let cost = broker.network().meter().snapshot();
    println!(
        "network cost:     {} samples, {} messages, {} bytes (vs {} raw records)",
        cost.samples,
        cost.messages,
        cost.bytes,
        dataset.len()
    );
    Ok(())
}
