//! Consumer-side auditing of purchased answers.
//!
//! A marketplace needs *accountability*: the broker claims every
//! [`crate::broker::PrivateAnswer`] satisfies the paid-for `(α, δ)`
//! demand with a minimal effective privacy budget. This module lets a
//! consumer (or a regulator) re-derive every claim from the plan's
//! numbers alone — no access to the sample or the raw data required:
//!
//! 1. `α′ < α` and `δ′ > δ` (the two-phase split is real);
//! 2. `δ′` is exactly what Theorem 3.3 yields at the plan's `p`;
//! 3. the Laplace tail constraint holds: `Pr[|Lap(b)| ≤ (α−α′)n] ≥ δ/δ′`;
//! 4. the composed guarantee covers the demand: `δ′·τ ≥ δ`;
//! 5. `ε = Δγ̂/b` and `ε′ = ln(1 + p(e^ε − 1))` (no budget misreporting);
//! 6. the certified variance bound is consistent with the plan.

use prc_dp::amplification::amplify;
use prc_dp::laplace::central_probability;

use crate::accuracy::achieved_delta;
use crate::broker::PrivateAnswer;
use crate::optimizer::NetworkShape;

/// A single failed audit check.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AuditFinding {
    /// Which check failed.
    pub check: AuditCheck,
    /// Human-readable explanation with the offending numbers.
    pub detail: String,
}

/// The individual checks an audit performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AuditCheck {
    /// `0 < α′ < α`.
    AlphaSplit,
    /// `δ < δ′ ≤ 1`.
    DeltaSplit,
    /// `δ′` matches Theorem 3.3's inverse at the plan's `p`.
    DeltaConsistency,
    /// The Laplace tail constraint `Pr[|noise| ≤ (α−α′)n] ≥ δ/δ′`.
    TailConstraint,
    /// The composed guarantee `δ′·τ ≥ δ`.
    Composition,
    /// `ε` equals `sensitivity / noise_scale`.
    EpsilonScale,
    /// `ε′` equals the amplification of `ε` at `p`.
    Amplification,
    /// The certified variance bound is at least the plan's noise variance.
    VarianceBound,
}

/// Numerical tolerance for the audit comparisons.
const TOLERANCE: f64 = 1e-6;

/// Audits one purchased answer against a network shape.
///
/// Returns every failed check (empty = the answer's claims are
/// internally consistent and cover the paid-for accuracy).
///
/// # Examples
///
/// ```
/// use prc_core::audit::audit_answer;
/// use prc_core::broker::DataBroker;
/// use prc_core::optimizer::NetworkShape;
/// use prc_core::query::{Accuracy, QueryRequest, RangeQuery};
/// use prc_net::network::FlatNetwork;
///
/// # fn main() -> Result<(), prc_core::CoreError> {
/// let network = FlatNetwork::from_partitions(
///     vec![(0..2000).map(f64::from).collect(); 5], 7);
/// let mut broker = DataBroker::new(network, 7);
/// let answer = broker.answer(&QueryRequest::new(
///     RangeQuery::new(100.0, 900.0)?,
///     Accuracy::new(0.1, 0.6)?,
/// ))?;
/// let shape = NetworkShape::from_station(broker.network().station())?;
/// assert!(audit_answer(&answer, shape).is_empty(), "an honest broker passes");
/// # Ok(())
/// # }
/// ```
///
/// Answers produced by the fixed-ε experiment hook
/// (`DataBroker::answer_with_epsilon`) carry no `(α, δ)` demand
/// (`accuracy` is `None`), so the demand checks 1–4 are skipped for
/// them; the budget and variance bookkeeping (checks 5–6) is still
/// audited in full.
pub fn audit_answer(answer: &PrivateAnswer, shape: NetworkShape) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    let plan = &answer.plan;
    let n = shape.n as f64;

    let mut fail = |check: AuditCheck, detail: String| {
        findings.push(AuditFinding { check, detail });
    };

    if let Some(accuracy) = answer.accuracy {
        let alpha = accuracy.alpha();
        let delta = accuracy.delta();
        // 1. α split.
        if !(plan.alpha_prime > 0.0 && plan.alpha_prime < alpha) {
            fail(
                AuditCheck::AlphaSplit,
                format!("alpha_prime {} not in (0, {alpha})", plan.alpha_prime),
            );
        }
        // 2. δ split.
        if !(plan.delta_prime > delta && plan.delta_prime <= 1.0) {
            fail(
                AuditCheck::DeltaSplit,
                format!("delta_prime {} not in ({delta}, 1]", plan.delta_prime),
            );
        }
        // 3. δ′ consistency with Theorem 3.3.
        match achieved_delta(plan.probability, plan.alpha_prime, shape.k, shape.n) {
            Ok(expected) => {
                if (expected - plan.delta_prime).abs() > TOLERANCE {
                    fail(
                        AuditCheck::DeltaConsistency,
                        format!(
                            "claimed delta_prime {} but Theorem 3.3 yields {expected}",
                            plan.delta_prime
                        ),
                    );
                }
            }
            Err(e) => fail(AuditCheck::DeltaConsistency, e.to_string()),
        }
        // 4. Tail constraint and composition.
        let tolerance = (alpha - plan.alpha_prime) * n;
        match central_probability(plan.noise_scale, tolerance) {
            Ok(mass) => {
                let required = delta / plan.delta_prime;
                if mass + TOLERANCE < required {
                    fail(
                        AuditCheck::TailConstraint,
                        format!("noise mass {mass} below required τ = {required}"),
                    );
                }
                if plan.delta_prime * mass + TOLERANCE < delta {
                    fail(
                        AuditCheck::Composition,
                        format!(
                            "composed confidence {} below demanded δ = {delta}",
                            plan.delta_prime * mass
                        ),
                    );
                }
            }
            Err(e) => fail(AuditCheck::TailConstraint, e.to_string()),
        }
    }
    // 5. ε and ε′ bookkeeping.
    let implied_epsilon = plan.sensitivity / plan.noise_scale;
    if (implied_epsilon - plan.epsilon.value()).abs() > TOLERANCE * plan.epsilon.value().max(1.0) {
        fail(
            AuditCheck::EpsilonScale,
            format!(
                "noise scale implies ε = {implied_epsilon} but plan claims {}",
                plan.epsilon.value()
            ),
        );
    }
    match amplify(plan.epsilon, plan.probability) {
        Ok(expected) => {
            if (expected.value() - plan.effective_epsilon.value()).abs() > TOLERANCE {
                fail(
                    AuditCheck::Amplification,
                    format!(
                        "amplified budget should be {} but plan claims {}",
                        expected.value(),
                        plan.effective_epsilon.value()
                    ),
                );
            }
        }
        Err(e) => fail(AuditCheck::Amplification, e.to_string()),
    }
    // 6. Variance bound sanity.
    if answer.variance_bound + TOLERANCE < plan.noise_variance() {
        fail(
            AuditCheck::VarianceBound,
            format!(
                "certified variance {} below the plan's own noise variance {}",
                answer.variance_bound,
                plan.noise_variance()
            ),
        );
    }
    findings
}

/// Convenience: `Ok(())` when the audit finds nothing.
///
/// # Errors
///
/// Returns the findings otherwise.
pub fn verify_answer(answer: &PrivateAnswer, shape: NetworkShape) -> Result<(), Vec<AuditFinding>> {
    let findings = audit_answer(answer, shape);
    if findings.is_empty() {
        Ok(())
    } else {
        Err(findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::DataBroker;
    use crate::query::{Accuracy, QueryRequest, RangeQuery};
    use prc_net::network::FlatNetwork;

    fn broker(seed: u64) -> DataBroker {
        let partitions: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..800).map(|j| (i * 800 + j) as f64).collect())
            .collect();
        DataBroker::new(FlatNetwork::from_partitions(partitions, seed), seed)
    }

    fn request() -> QueryRequest {
        QueryRequest::new(
            RangeQuery::new(1_000.0, 6_000.0).unwrap(),
            Accuracy::new(0.08, 0.7).unwrap(),
        )
    }

    #[test]
    fn honest_answers_pass_the_audit() {
        for seed in 0..10 {
            let mut b = broker(seed);
            let answer = b.answer(&request()).unwrap();
            let shape = NetworkShape::from_station(b.network().station()).unwrap();
            let findings = audit_answer(&answer, shape);
            assert!(findings.is_empty(), "seed {seed}: {findings:?}");
            assert!(verify_answer(&answer, shape).is_ok());
        }
    }

    #[test]
    fn tampered_delta_prime_is_caught() {
        let mut b = broker(1);
        let mut answer = b.answer(&request()).unwrap();
        let shape = NetworkShape::from_station(b.network().station()).unwrap();
        answer.plan.delta_prime = (answer.plan.delta_prime + 0.02).min(0.9999);
        let findings = audit_answer(&answer, shape);
        assert!(findings
            .iter()
            .any(|f| f.check == AuditCheck::DeltaConsistency));
    }

    #[test]
    fn underreported_epsilon_is_caught() {
        // A broker claiming a smaller ε than its noise scale implies is
        // overstating the privacy it delivered.
        let mut b = broker(2);
        let mut answer = b.answer(&request()).unwrap();
        let shape = NetworkShape::from_station(b.network().station()).unwrap();
        answer.plan.epsilon =
            prc_dp::budget::Epsilon::new(answer.plan.epsilon.value() / 2.0).unwrap();
        let findings = audit_answer(&answer, shape);
        assert!(findings.iter().any(|f| f.check == AuditCheck::EpsilonScale));
        // The amplification claim is now also inconsistent.
        assert!(findings
            .iter()
            .any(|f| f.check == AuditCheck::Amplification));
    }

    #[test]
    fn under_noised_answer_fails_the_tail_checks() {
        // A broker that quietly adds less noise than the plan requires
        // (larger ε ⇒ smaller scale) violates the tail constraint only if
        // it *also* claims a wider noise scale than it used; here we
        // simulate the inverse: scale inflated so ε bookkeeping breaks
        // and the tail constraint is checked against the real demand.
        let mut b = broker(3);
        let mut answer = b.answer(&request()).unwrap();
        let shape = NetworkShape::from_station(b.network().station()).unwrap();
        answer.plan.noise_scale *= 25.0; // far too much noise for (α, δ)
        let findings = audit_answer(&answer, shape);
        assert!(findings
            .iter()
            .any(|f| f.check == AuditCheck::TailConstraint));
        assert!(findings.iter().any(|f| f.check == AuditCheck::Composition));
    }

    #[test]
    fn tampered_variance_bound_is_caught() {
        let mut b = broker(4);
        let mut answer = b.answer(&request()).unwrap();
        let shape = NetworkShape::from_station(b.network().station()).unwrap();
        answer.variance_bound = answer.plan.noise_variance() / 2.0;
        let findings = audit_answer(&answer, shape);
        assert!(findings
            .iter()
            .any(|f| f.check == AuditCheck::VarianceBound));
    }

    #[test]
    fn fixed_epsilon_answers_skip_demand_checks_but_audit_clean() {
        // No (α, δ) was demanded, so checks 1–4 don't apply; the budget
        // and variance bookkeeping (checks 5–6) must still be honest.
        let mut b = broker(5);
        let answer = b
            .answer_with_epsilon(
                RangeQuery::new(0.0, 4_000.0).unwrap(),
                prc_dp::budget::Epsilon::new(1.0).unwrap(),
                0.3,
            )
            .unwrap();
        assert!(answer.accuracy.is_none());
        let shape = NetworkShape::from_station(b.network().station()).unwrap();
        let findings = audit_answer(&answer, shape);
        assert!(findings.is_empty(), "{findings:?}");
        // Tampering with the budget bookkeeping is still caught.
        let mut tampered = answer;
        tampered.plan.noise_scale *= 3.0;
        assert!(audit_answer(&tampered, shape)
            .iter()
            .any(|f| f.check == AuditCheck::EpsilonScale));
    }

    #[test]
    fn findings_render_their_numbers() {
        let mut b = broker(6);
        let mut answer = b.answer(&request()).unwrap();
        let shape = NetworkShape::from_station(b.network().station()).unwrap();
        answer.plan.delta_prime = 0.999_9;
        let findings = verify_answer(&answer, shape).unwrap_err();
        assert!(findings.iter().all(|f| !f.detail.is_empty()));
    }
}
