//! Queries and accuracy demands.

use crate::error::CoreError;

/// A closed range `[l, u]` of data values (Definition 2.1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RangeQuery {
    l: f64,
    u: f64,
}

impl RangeQuery {
    /// Creates a range query.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRange`] when a bound is NaN or `l > u`.
    pub fn new(l: f64, u: f64) -> Result<Self, CoreError> {
        if l.is_nan() || u.is_nan() || l > u {
            return Err(CoreError::InvalidRange { l, u });
        }
        Ok(RangeQuery { l, u })
    }

    /// The lower bound `l`.
    pub fn lower(&self) -> f64 {
        self.l
    }

    /// The upper bound `u`.
    pub fn upper(&self) -> f64 {
        self.u
    }

    /// The width `u − l`.
    pub fn width(&self) -> f64 {
        self.u - self.l
    }

    /// True when `value ∈ [l, u]`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.l && value <= self.u
    }
}

impl std::fmt::Display for RangeQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.l, self.u)
    }
}

/// An (α, δ) accuracy demand (Definition 2.2): the returned count must be
/// within `α·|D|` of the truth with probability at least `δ`.
///
/// Both parameters must lie strictly inside `(0, 1)`: the boundary values
/// make the paper's closed forms degenerate (`α = 0` demands exactness,
/// `δ = 1` demands certainty — neither is achievable by sampling plus
/// unbounded noise).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Accuracy {
    alpha: f64,
    delta: f64,
}

impl Accuracy {
    /// Creates an accuracy demand.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidAccuracy`] unless both `alpha` and
    /// `delta` lie in `(0, 1)`.
    pub fn new(alpha: f64, delta: f64) -> Result<Self, CoreError> {
        let ok = |v: f64| v.is_finite() && v > 0.0 && v < 1.0;
        if !ok(alpha) || !ok(delta) {
            return Err(CoreError::InvalidAccuracy { alpha, delta });
        }
        Ok(Accuracy { alpha, delta })
    }

    /// The relative error bound `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The confidence level `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The absolute error bound `α·n` for a population of size `n`.
    pub fn absolute_error(&self, n: usize) -> f64 {
        self.alpha * n as f64
    }

    /// True when `self` is at least as strict as `other` in both
    /// parameters (smaller `α`, larger `δ`).
    pub fn at_least_as_strict_as(&self, other: &Accuracy) -> bool {
        self.alpha <= other.alpha && self.delta >= other.delta
    }
}

impl std::fmt::Display for Accuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(α={}, δ={})", self.alpha, self.delta)
    }
}

/// A customer request `Λ(α, δ)` for one range-counting aggregation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueryRequest {
    /// The value range to count.
    pub query: RangeQuery,
    /// The accuracy the customer pays for.
    pub accuracy: Accuracy,
}

impl QueryRequest {
    /// Bundles a range and an accuracy demand.
    pub fn new(query: RangeQuery, accuracy: Accuracy) -> Self {
        QueryRequest { query, accuracy }
    }
}

impl std::fmt::Display for QueryRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Λ{} over {}", self.accuracy, self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_query_validation() {
        assert!(RangeQuery::new(1.0, 2.0).is_ok());
        assert!(RangeQuery::new(2.0, 2.0).is_ok()); // point query
        assert!(RangeQuery::new(3.0, 1.0).is_err());
        assert!(RangeQuery::new(f64::NAN, 1.0).is_err());
        assert!(RangeQuery::new(1.0, f64::NAN).is_err());
        // Infinite bounds are allowed (count everything below/above).
        assert!(RangeQuery::new(f64::NEG_INFINITY, f64::INFINITY).is_ok());
    }

    #[test]
    fn range_query_accessors() {
        let q = RangeQuery::new(1.0, 4.0).unwrap();
        assert_eq!(q.lower(), 1.0);
        assert_eq!(q.upper(), 4.0);
        assert_eq!(q.width(), 3.0);
        assert!(q.contains(1.0));
        assert!(q.contains(4.0));
        assert!(!q.contains(4.5));
        assert_eq!(q.to_string(), "[1, 4]");
    }

    #[test]
    fn accuracy_validation() {
        assert!(Accuracy::new(0.05, 0.9).is_ok());
        for (a, d) in [
            (0.0, 0.5),
            (1.0, 0.5),
            (0.5, 0.0),
            (0.5, 1.0),
            (-0.1, 0.5),
            (0.5, 1.5),
            (f64::NAN, 0.5),
        ] {
            assert!(Accuracy::new(a, d).is_err(), "({a}, {d}) should fail");
        }
    }

    #[test]
    fn accuracy_helpers() {
        let a = Accuracy::new(0.05, 0.9).unwrap();
        assert_eq!(a.absolute_error(1000), 50.0);
        let stricter = Accuracy::new(0.03, 0.95).unwrap();
        assert!(stricter.at_least_as_strict_as(&a));
        assert!(!a.at_least_as_strict_as(&stricter));
        assert!(a.at_least_as_strict_as(&a));
        assert_eq!(a.to_string(), "(α=0.05, δ=0.9)");
    }

    #[test]
    fn request_display() {
        let r = QueryRequest::new(
            RangeQuery::new(0.0, 10.0).unwrap(),
            Accuracy::new(0.1, 0.8).unwrap(),
        );
        assert_eq!(r.to_string(), "Λ(α=0.1, δ=0.8) over [0, 10]");
    }
}
