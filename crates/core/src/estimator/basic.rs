//! The BasicCounting baseline estimator.

use prc_net::base_station::NodeSample;

use crate::estimator::engine::entry_boundary_ranks;
use crate::estimator::RangeCountEstimator;
use crate::query::RangeQuery;

/// The straightforward Horvitz–Thompson baseline (§III-A):
/// `γ_B(l, u, S) = |{x ∈ S : l ≤ x ≤ u}| / p`.
///
/// Unbiased, but its variance `γ(l, u, D)·(1 − p)/p` grows with the true
/// count of the queried range — up to `|D|(1 − p)/p` for wide ranges —
/// which is exactly the weakness RankCounting removes.
///
/// # Examples
///
/// ```
/// use prc_core::estimator::{BasicCounting, RangeCountEstimator, RankCounting};
///
/// // The baseline's variance bound grows with the population; the
/// // paper's estimator's does not.
/// let (k, n, p) = (50, 17_568, 0.05);
/// assert!(BasicCounting.variance_bound(k, n, p) > RankCounting.variance_bound(k, n, p));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BasicCounting;

impl BasicCounting {
    /// Creates the estimator.
    pub fn new() -> Self {
        BasicCounting
    }
}

impl RangeCountEstimator for BasicCounting {
    fn name(&self) -> &'static str {
        "BasicCounting"
    }

    fn estimate_node(&self, sample: &NodeSample, query: RangeQuery) -> f64 {
        if sample.population_size == 0 || sample.probability <= 0.0 {
            return 0.0;
        }
        // Entries are sorted by rank, and rank order is value order, so
        // the in-range count is the gap between the two shared boundary
        // ranks — O(log s) instead of the former linear scan.
        let (below, through) = entry_boundary_ranks(sample.entries(), query);
        (through - below) as f64 / sample.probability
    }

    fn variance_bound(&self, _k: usize, n: usize, p: f64) -> f64 {
        if p <= 0.0 {
            return f64::INFINITY;
        }
        n as f64 * (1.0 - p) / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prc_net::base_station::BaseStation;
    use prc_net::message::{NodeId, SampleEntry, SampleMessage};
    use prc_net::network::FlatNetwork;

    fn q(l: f64, u: f64) -> RangeQuery {
        RangeQuery::new(l, u).unwrap()
    }

    fn sample(values_ranks: &[(f64, u32)], n: usize, p: f64) -> NodeSample {
        let mut station = BaseStation::new();
        station.ingest(SampleMessage {
            node_id: NodeId(0),
            population_size: n,
            probability: p,
            entries: values_ranks
                .iter()
                .map(|&(value, rank)| SampleEntry { value, rank })
                .collect(),
        });
        station.node_sample(NodeId(0)).unwrap().clone()
    }

    #[test]
    fn scales_in_range_count_by_inverse_probability() {
        let s = sample(&[(1.0, 1), (2.0, 2), (5.0, 5)], 10, 0.5);
        assert_eq!(BasicCounting.estimate_node(&s, q(0.0, 2.5)), 4.0);
        assert_eq!(BasicCounting.estimate_node(&s, q(0.0, 10.0)), 6.0);
        assert_eq!(BasicCounting.estimate_node(&s, q(7.0, 9.0)), 0.0);
    }

    #[test]
    fn empty_population_estimates_zero() {
        let s = sample(&[], 0, 0.5);
        assert_eq!(BasicCounting.estimate_node(&s, q(0.0, 1.0)), 0.0);
    }

    #[test]
    fn p_one_is_exact() {
        let values: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let mut net = FlatNetwork::from_partitions(vec![values], 3);
        net.collect_samples(1.0);
        let estimate = BasicCounting.estimate(net.station(), q(100.0, 250.0));
        assert_eq!(estimate, 151.0);
    }

    #[test]
    fn unbiased_over_many_trials() {
        let truth = 301.0; // values 100..=400 in 0..1000
        let trials = 1_500;
        let p = 0.3;
        let mut sum = 0.0;
        for seed in 0..trials {
            let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
            let mut net = FlatNetwork::from_partitions(vec![values], seed);
            net.collect_samples(p);
            sum += BasicCounting.estimate(net.station(), q(100.0, 400.0));
        }
        let mean = sum / trials as f64;
        // Std error ≈ sqrt(truth(1-p)/p / trials) ≈ 0.68.
        assert!((mean - truth).abs() < 3.0, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn variance_grows_with_range_width() {
        // Empirical check of the baseline's weakness: wide ranges are noisier.
        let p = 0.2;
        let trials = 800;
        let spread = |l: f64, u: f64| {
            let truth = (u - l + 1.0).min(2_000.0);
            let mut sq = 0.0;
            for seed in 0..trials {
                let values: Vec<f64> = (0..2_000).map(|i| i as f64).collect();
                let mut net = FlatNetwork::from_partitions(vec![values], seed + 9_000);
                net.collect_samples(p);
                let e = BasicCounting.estimate(net.station(), q(l, u));
                sq += (e - truth).powi(2);
            }
            sq / trials as f64
        };
        let narrow = spread(900.0, 1_000.0);
        let wide = spread(0.0, 1_999.0);
        assert!(
            wide > narrow * 4.0,
            "wide-range variance {wide} should dwarf narrow-range {narrow}"
        );
    }

    #[test]
    fn variance_bound_formula() {
        assert_eq!(BasicCounting.variance_bound(5, 1_000, 0.5), 1_000.0);
        assert_eq!(BasicCounting.variance_bound(5, 1_000, 1.0), 0.0);
        assert_eq!(BasicCounting.variance_bound(5, 1_000, 0.0), f64::INFINITY);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(BasicCounting.name(), "BasicCounting");
        assert_eq!(BasicCounting::new(), BasicCounting);
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        // Duplicate-heavy values and every boundary alignment.
        let s = sample(
            &[(1.0, 1), (3.0, 3), (3.0, 4), (3.0, 5), (7.0, 8), (9.0, 9)],
            20,
            0.4,
        );
        for l in [-1.0, 1.0, 2.0, 3.0, 6.9, 9.0, 10.0] {
            for u in [1.0, 3.0, 5.0, 7.0, 9.0, 42.0] {
                if u < l {
                    continue;
                }
                let query = q(l, u);
                let scan = s
                    .entries()
                    .iter()
                    .filter(|e| query.contains(e.value))
                    .count();
                let expected = scan as f64 / 0.4;
                let actual = BasicCounting.estimate_node(&s, query);
                assert_eq!(actual.to_bits(), expected.to_bits(), "({l}, {u})");
            }
        }
    }
}
