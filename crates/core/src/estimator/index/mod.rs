//! The merged prefix-rank query index family: `O(log S)` RankCounting,
//! monolithic and incrementally-maintained.
//!
//! The per-node RankCounting path answers a query `[l, u]` with **two
//! binary searches per node** — `O(k·log s)` over `k` nodes. That is fine
//! for one query, but the broker's whole value proposition is amortizing
//! one collection epoch across many priced queries, and at `k` in the tens
//! of thousands the per-node scan dominates every batch. [`RankIndex`]
//! removes the `k` factor: after a collection epoch it merges all `S`
//! sample entries into one value-sorted structure-of-arrays whose prefix
//! sums encode *every* node's boundary state at every threshold, so one
//! query costs **two binary searches total** — `O(log S)`.
//!
//! ## The per-case decomposition
//!
//! Theorem 3.1 gives four per-node cases, depending on whether the
//! boundary predecessor `𝔭(l, i)` (largest-rank sample with value `< l`)
//! and successor `𝔰(u, i)` (smallest-rank sample with value `> u`) exist:
//!
//! ```text
//! γ̂ᵢ = rank(𝔰) − rank(𝔭) + 1 − 2/p   (both)
//!    = n_i − rank(𝔭) + 1 − 1/p       (predecessor only)
//!    = rank(𝔰) − 1/p                 (successor only)
//!    = n_i                           (neither)
//! ```
//!
//! Every case is of the form `Aᵢ − Bᵢ/p` with `Aᵢ ∈ ℤ` and
//! `Bᵢ = [𝔭 exists] + [𝔰 exists] ∈ {0, 1, 2}`, and the global sum
//! regroups into five range-decomposable integer aggregates:
//!
//! ```text
//! Σᵢ Aᵢ = Σ_{𝔰 exists} rank(𝔰)            (R_succ)
//!       − Σ_{𝔭 exists} rank(𝔭)            (R_pred)
//!       + #{i : 𝔭 exists}                  (C_pred)
//!       + Σ_{𝔰 missing} n_i                (N − N_succ)
//! Σᵢ Bᵢ = C_pred + #{i : 𝔰 exists}         (C_succ)
//! ```
//!
//! In the merged value-sorted order, each node's entries keep their rank
//! order, so "node `i`'s predecessor under threshold `c`" is simply its
//! *last* entry among the first `c` merged entries. Extending the prefix
//! by one entry of node `i` with rank `r` therefore changes `R_pred` by
//! `r − r_prev` (the node's previous entry's rank, `0` for its first) —
//! a per-entry constant. The same telescoping works from the right for
//! `R_succ`. All five aggregates become prefix/suffix sums over per-entry
//! deltas, evaluated at the two cut positions
//! `pos_l = #{values < l}` and `pos_u = #{values ≤ u}`.
//!
//! ## Bit-exact agreement with the per-node path
//!
//! Every indexed path and the per-node scan ([`scan_rank_terms`])
//! accumulate the *same* exact integers `(ΣA, ΣB)` and apply the *same*
//! final float expression ([`finish_rank_terms`]), so their results are
//! bit-identical by construction — the broker may switch between them
//! freely without perturbing PR 1's determinism and cross-driver identity
//! guarantees. The decomposition requires one shared `1/p`, so an index
//! only exists for stations whose data-bearing nodes report one uniform
//! positive sampling probability ([`BaseStation::uniform_probability`]);
//! heterogeneous stations stay on the per-node path.
//!
//! ## Incremental maintenance (LSM-style segments)
//!
//! [`SegmentedRankIndex`] generalizes the monolithic structure into a
//! sequence of immutable sorted *segments*, each covering a disjoint
//! subset of nodes. Because `(ΣA, ΣB)` are plain integer sums over
//! nodes, a query fans the same pair of `partition_point`s across every
//! segment and adds the per-segment aggregates — still bit-identical.
//! A collection round's [`RoundDelta`](prc_net::network::RoundDelta)
//! names exactly the changed nodes: the index *tombstones* them in older
//! segments (their exact old contribution is subtracted per query from
//! per-node snapshots) and builds one new segment over just their fresh
//! samples — `O(Δ log Δ)` instead of `O(S log S)` per round. A
//! deterministic size-tiered [`CompactionPolicy`] (a pure function of
//! segment sizes; `compaction` module) bounds the segment count, and the
//! [`cost`] module's ski-rental accrual decides when paying for a build
//! beats continuing to scan. The sampling probability only enters at
//! [`finish_rank_terms`], so segments built at different probabilities
//! remain valid across top-ups.
//!
//! ## Complexity
//!
//! | path                   | per query       | build / maintain          |
//! |------------------------|-----------------|---------------------------|
//! | per-node scan          | `O(k log s)`    | —                         |
//! | [`RankIndex`]          | `O(log S)`      | `O(S log S)` per epoch    |
//! | [`SegmentedRankIndex`] | `O(m log S)`    | `O(Δ log Δ)` per delta    |
//!
//! (`m` = live segments, bounded logarithmically by compaction; `Δ` =
//! entries of the round's changed nodes.)
//!
//! Builds shard one run per node (entries are already value-sorted),
//! k-way merge shards over the shared `prc-runtime` pool, and accumulate
//! the prefix/suffix arrays in one sequential pass.

pub mod compaction;
pub mod cost;
mod merge;
mod monolithic;
mod segment;
mod segmented;

pub use compaction::CompactionPolicy;
pub use cost::{BuildAccrual, CostModel};
pub use monolithic::RankIndex;
pub use segmented::SegmentedRankIndex;

use prc_net::base_station::BaseStation;
use prc_net::message::SampleEntry;

use crate::query::RangeQuery;

/// The canonical combine step shared by the indexed and per-node paths:
/// `ΣA − ΣB/p` evaluated with one fixed floating-point expression.
///
/// Keeping this a single function is what makes all paths bit-exact:
/// each feeds it identical exact integers, so each releases identical
/// bits. With `p = 1` the result is an exact integer (the estimator
/// degenerates to exact counting).
pub fn finish_rank_terms(sum_a: i64, sum_b: i64, p: f64) -> f64 {
    sum_a as f64 - sum_b as f64 / p
}

/// One node's exact integer contribution `(Aᵢ, Bᵢ)` to a query, from its
/// rank-sorted entry slice and claimed population.
///
/// This is the single source of truth for the per-node arithmetic: the
/// scan path sums it over every data-bearing node, and segments use it
/// to subtract a tombstoned node's old contribution exactly. Integer
/// addition is associative, so any grouping of nodes into segments sums
/// to the same `(ΣA, ΣB)`.
pub(crate) fn node_rank_terms(
    entries: &[SampleEntry],
    population: i64,
    query: RangeQuery,
) -> (i64, i64) {
    let mut sum_a: i64 = 0;
    let mut sum_b: i64 = 0;
    // Entries are sorted by rank, hence by value (node data is sorted).
    let (pred_idx, succ_idx) = crate::estimator::engine::entry_boundary_ranks(entries, query);
    if pred_idx > 0 {
        sum_a += 1 - i64::from(entries[pred_idx - 1].rank);
        sum_b += 1;
    }
    match entries.get(succ_idx) {
        Some(succ) => {
            sum_a += i64::from(succ.rank);
            sum_b += 1;
        }
        None => sum_a += population,
    }
    (sum_a, sum_b)
}

/// The per-node reference path: accumulates the exact integer aggregates
/// `(ΣA, ΣB)` with two binary searches per data-bearing node.
///
/// [`crate::estimator::RankCounting::estimate`] uses this whenever the
/// station reports a uniform sampling probability; every index must
/// agree with it bit-for-bit on every query (enforced by the property
/// tests and the benches' self-checks).
pub fn scan_rank_terms(station: &BaseStation, query: RangeQuery) -> (i64, i64) {
    let mut sum_a: i64 = 0;
    let mut sum_b: i64 = 0;
    for sample in station.data_bearing_samples() {
        let (a, b) = node_rank_terms(sample.entries(), sample.population_size as i64, query);
        sum_a += a;
        sum_b += b;
    }
    (sum_a, sum_b)
}
