//! Deterministic size-tiered compaction for the segmented index.
//!
//! The policy is a **pure function of segment sizes** — no wall clock,
//! no randomness, no I/O (prc-lint D001–D003 apply to this module like
//! any other deterministic answer path). Two runs over the same station
//! history therefore compact identically, which keeps the segmented
//! index's internal layout — and its counters — reproducible across
//! drivers and machines.
//!
//! Three rules, checked in priority order:
//!
//! 1. **Drop** — a segment with no live *members* is pure overhead (a
//!    live member with zero entries still carries population, so entry
//!    counts alone cannot justify a drop);
//! 2. **Rewrite** — a segment whose tombstoned entries outnumber its
//!    live ones pays more per query (snapshot subtraction) than a
//!    rebuild costs amortized; rebuild it from its live members only;
//! 3. **MergeTail** — size-tiered: the newest segments are merged while
//!    each predecessor is within `fanout ×` of the accumulated tail, a
//!    binary-counter scheme that bounds the live segment count to
//!    `O(log_fanout S)` and the total merge work to `O(S log S)`
//!    amortized over any append sequence.

/// Live/dead entry counts of one segment, oldest-first, as the policy
/// sees them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Entries owned by live members.
    pub live: usize,
    /// Entries owned by tombstoned members.
    pub dead: usize,
    /// Members not yet tombstoned. A member can be live with zero
    /// entries — a node whose sample drew nothing still contributes its
    /// population to the A-term — so emptiness of `live` alone must
    /// never drop a segment.
    pub live_members: usize,
}

/// One compaction step; the maintainer applies steps until the policy
/// returns `None` (a fixpoint, reached because every step removes a
/// segment or zeroes a dead count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionStep {
    /// Remove segment `i` outright (no live entries).
    Drop(usize),
    /// Rebuild segment `i` from its live members only.
    Rewrite(usize),
    /// Merge the newest `count` segments (`count ≥ 2`) into one.
    MergeTail(usize),
}

/// The deterministic size-tiered policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Size-tier ratio: a predecessor within `fanout ×` of the
    /// accumulated tail is absorbed into the merge.
    pub fanout: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { fanout: 2 }
    }
}

impl CompactionPolicy {
    /// Plans the next step for segments with the given stats
    /// (oldest-first), or `None` at the fixpoint.
    ///
    /// Pure: the plan depends only on `stats` and the policy's `fanout`.
    pub fn plan(&self, stats: &[SegmentStats]) -> Option<CompactionStep> {
        for (i, s) in stats.iter().enumerate() {
            if s.live_members == 0 {
                return Some(CompactionStep::Drop(i));
            }
        }
        for (i, s) in stats.iter().enumerate() {
            if s.dead > 0 && s.dead >= s.live {
                return Some(CompactionStep::Rewrite(i));
            }
        }
        let n = stats.len();
        if n >= 2 {
            let mut tail = stats[n - 1].live;
            let mut j = n - 1;
            while j > 0 && stats[j - 1].live <= self.fanout.saturating_mul(tail) {
                tail += stats[j - 1].live;
                j -= 1;
            }
            if n - j >= 2 {
                return Some(CompactionStep::MergeTail(n - j));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(live: usize, dead: usize) -> SegmentStats {
        SegmentStats {
            live,
            dead,
            live_members: usize::from(live > 0),
        }
    }

    /// A segment whose only live members drew zero entries: carries
    /// population but no values.
    fn population_only() -> SegmentStats {
        SegmentStats {
            live: 0,
            dead: 0,
            live_members: 1,
        }
    }

    #[test]
    fn empty_and_singleton_layouts_are_stable() {
        let policy = CompactionPolicy::default();
        assert_eq!(policy.plan(&[]), None);
        assert_eq!(policy.plan(&[s(100, 0)]), None);
        assert_eq!(policy.plan(&[s(100, 40)]), None, "dead < live keeps");
    }

    #[test]
    fn fully_dead_segments_drop_first() {
        let policy = CompactionPolicy::default();
        assert_eq!(
            policy.plan(&[s(10, 0), s(0, 7), s(10, 10)]),
            Some(CompactionStep::Drop(1))
        );
    }

    #[test]
    fn population_only_segments_are_never_dropped() {
        let policy = CompactionPolicy::default();
        // A lone population-only segment is a fixpoint, not a Drop: its
        // members' populations still feed the A-term.
        assert_eq!(policy.plan(&[s(100, 0), population_only()]), None);
        // As a predecessor its zero entry count always fits the tail
        // ratio, so the next append absorbs it for free.
        assert_eq!(
            policy.plan(&[s(100, 0), population_only(), s(10, 0)]),
            Some(CompactionStep::MergeTail(2))
        );
    }

    #[test]
    fn tombstone_heavy_segments_rewrite() {
        let policy = CompactionPolicy::default();
        assert_eq!(
            policy.plan(&[s(500, 0), s(10, 10)]),
            Some(CompactionStep::Rewrite(1))
        );
    }

    #[test]
    fn similar_sized_tails_merge() {
        let policy = CompactionPolicy::default();
        assert_eq!(
            policy.plan(&[s(1_000, 0), s(12, 0), s(10, 0)]),
            Some(CompactionStep::MergeTail(2))
        );
        // The merged tail then absorbs upward only within the ratio.
        assert_eq!(policy.plan(&[s(1_000, 0), s(22, 0)]), None);
    }

    #[test]
    fn geometric_layouts_are_a_fixpoint() {
        let policy = CompactionPolicy::default();
        assert_eq!(policy.plan(&[s(800, 0), s(200, 0), s(40, 0)]), None);
    }

    #[test]
    fn plan_is_a_pure_function_of_sizes() {
        let policy = CompactionPolicy::default();
        let layout = [s(64, 1), s(64, 0)];
        assert_eq!(policy.plan(&layout), policy.plan(&layout));
        assert_eq!(
            policy.plan(&layout),
            Some(CompactionStep::MergeTail(2)),
            "within-ratio tail merges regardless of when it was built"
        );
    }
}
