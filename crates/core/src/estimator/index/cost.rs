//! The build-vs-scan cost model and its ski-rental accrual.
//!
//! The broker's old policy was a static entry-count threshold: build an
//! index whenever the station holds ≥ 512 merged entries. That wastes a
//! build on a station that sees one query per epoch, and delays one on a
//! small station hammered by thousands. The replacement is the classic
//! **ski-rental** scheme: keep scanning ("renting") while accumulating
//! the per-query saving an index *would have* delivered; the moment the
//! foregone saving reaches the build cost, build ("buy"). Deterministic
//! — the decision depends only on the observed query count and the
//! station's entry/node counts, never on wall-clock time — and
//! 2-competitive against the optimal offline choice for any query
//! arrival sequence.
//!
//! All costs are **abstract integer comparison counts** (binary-search
//! steps via `ilog2`), not timings, so the decision is reproducible
//! across machines and drivers (prc-lint D002 holds).

/// Abstract costs of answering and indexing a station, in units of one
/// entry comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Multiplier on the `O(S log S)` build work relative to query
    /// comparisons (merging an entry costs about one heap sift plus the
    /// accumulation pass).
    pub build_factor: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { build_factor: 2 }
    }
}

fn log2_ceil(n: u64) -> u64 {
    if n <= 1 {
        1
    } else {
        u64::from((n - 1).ilog2()) + 1
    }
}

impl CostModel {
    /// Comparisons for one per-node scan query: two binary searches in
    /// each of `nodes` runs of about `entries / nodes` entries.
    pub fn scan_query_cost(&self, entries: usize, nodes: usize) -> u64 {
        let nodes = nodes.max(1) as u64;
        let per_node = (entries as u64).div_ceil(nodes);
        2 * nodes * log2_ceil(per_node)
    }

    /// Comparisons for one indexed query: two binary searches over all
    /// `entries` merged values.
    pub fn indexed_query_cost(&self, entries: usize) -> u64 {
        2 * log2_ceil(entries as u64)
    }

    /// Comparisons to build (or absorb into) an index over `entries`.
    pub fn build_cost(&self, entries: usize) -> u64 {
        self.build_factor * (entries as u64) * log2_ceil(entries as u64)
    }

    /// What one query saves when indexed instead of scanned (0 when the
    /// scan is already at least as cheap — e.g. a single-node station).
    pub fn query_saving(&self, entries: usize, nodes: usize) -> u64 {
        self.scan_query_cost(entries, nodes)
            .saturating_sub(self.indexed_query_cost(entries))
    }
}

/// Ski-rental state: the total per-query saving foregone by scanning so
/// far. Survives collection rounds — the amortization horizon is the
/// index's lifetime (deltas keep an index valid), not one epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildAccrual {
    foregone: u64,
}

impl BuildAccrual {
    /// Records `queries` answered by scanning a station with the given
    /// shape, accruing the saving an index would have delivered.
    pub fn observe(&mut self, model: &CostModel, entries: usize, nodes: usize, queries: u64) {
        self.foregone = self
            .foregone
            .saturating_add(model.query_saving(entries, nodes).saturating_mul(queries));
    }

    /// True once the foregone saving has paid for a build: renting now
    /// costs more than buying would have.
    pub fn should_build(&self, model: &CostModel, entries: usize) -> bool {
        entries > 0 && self.foregone >= model.build_cost(entries)
    }

    /// Accrued foregone saving, in comparisons.
    pub fn foregone(&self) -> u64 {
        self.foregone
    }

    /// Resets after a build: the bought index zeroes the rent meter.
    pub fn reset(&mut self) {
        self.foregone = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_shape() {
        let m = CostModel::default();
        // Many small nodes scan expensively; one merged structure is cheap.
        assert!(m.scan_query_cost(4096, 256) > m.indexed_query_cost(4096));
        // A single node *is* a merged structure: no saving to be had.
        assert_eq!(m.query_saving(4096, 1), 0);
        assert_eq!(m.query_saving(0, 0), 0);
        assert!(m.build_cost(4096) > m.build_cost(64));
    }

    #[test]
    fn accrual_buys_after_enough_rent() {
        let m = CostModel::default();
        let (entries, nodes) = (8192, 64);
        let mut accrual = BuildAccrual::default();
        assert!(!accrual.should_build(&m, entries), "no queries yet");

        let saving = m.query_saving(entries, nodes);
        assert!(saving > 0);
        let needed = m.build_cost(entries).div_ceil(saving);
        accrual.observe(&m, entries, nodes, needed - 1);
        assert!(!accrual.should_build(&m, entries), "one query short");
        accrual.observe(&m, entries, nodes, 1);
        assert!(accrual.should_build(&m, entries));

        accrual.reset();
        assert_eq!(accrual.foregone(), 0);
        assert!(!accrual.should_build(&m, entries));
    }

    #[test]
    fn single_node_stations_never_buy() {
        let m = CostModel::default();
        let mut accrual = BuildAccrual::default();
        accrual.observe(&m, 10_000, 1, u64::MAX);
        assert!(!accrual.should_build(&m, 10_000));
    }

    #[test]
    fn empty_stations_never_buy() {
        let m = CostModel::default();
        let accrual = BuildAccrual::default();
        assert!(!accrual.should_build(&m, 0));
    }

    #[test]
    fn accrual_saturates_instead_of_overflowing() {
        let m = CostModel::default();
        let mut accrual = BuildAccrual::default();
        accrual.observe(&m, 1 << 20, 1 << 10, u64::MAX);
        accrual.observe(&m, 1 << 20, 1 << 10, u64::MAX);
        assert_eq!(accrual.foregone(), u64::MAX);
    }
}
