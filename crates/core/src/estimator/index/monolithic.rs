//! The monolithic merged prefix-rank index: one segment covering every
//! node, rebuilt from scratch per epoch. The reference accelerator the
//! segmented variant must stay bit-identical to.

use prc_net::base_station::BaseStation;

use super::finish_rank_terms;
use super::merge::{MergedArrays, RunSource};
use crate::estimator::{BatchEstimate, QueryIndex};
use crate::query::RangeQuery;

/// The merged prefix-rank query index: one value-sorted
/// structure-of-arrays over every node's sample entries, answering
/// RankCounting queries in `O(log S)` with results bit-identical to the
/// per-node scan.
///
/// # Examples
///
/// ```
/// use prc_core::estimator::{RangeCountEstimator, RankCounting, RankIndex};
/// use prc_core::query::RangeQuery;
/// use prc_net::network::FlatNetwork;
///
/// # fn main() -> Result<(), prc_core::CoreError> {
/// let partitions: Vec<Vec<f64>> = (0..8)
///     .map(|i| (0..500).map(|j| (i * 500 + j) as f64).collect())
///     .collect();
/// let mut network = FlatNetwork::from_partitions(partitions, 11);
/// network.collect_samples(0.25);
///
/// let index = RankIndex::build(network.station()).expect("uniform station");
/// let query = RangeQuery::new(700.0, 2_900.0)?;
/// // Same bits as the O(k log s) per-node path, at O(log S) cost.
/// let scanned = RankCounting.estimate(network.station(), query);
/// assert_eq!(index.estimate(query).to_bits(), scanned.to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RankIndex {
    /// The uniform sampling probability the index was built at.
    probability: f64,
    arrays: MergedArrays,
}

impl RankIndex {
    /// Builds the index over the station's current samples.
    ///
    /// Returns `None` when the station has no uniform positive sampling
    /// probability across its data-bearing nodes (the `1/p` factoring the
    /// prefix-sum decomposition needs does not exist) — callers fall back
    /// to the per-node scan.
    ///
    /// The build shards one sorted run per node, merges shards over the
    /// shared `prc-runtime` pool (one contiguous node group per chunk),
    /// k-way merges the per-worker runs, and accumulates the prefix and
    /// suffix arrays in one sequential pass: `O(S log S)` total work.
    pub fn build(station: &BaseStation) -> Option<RankIndex> {
        let probability = station.uniform_probability()?;
        let sources: Vec<RunSource<'_>> = station
            .data_bearing_samples()
            .map(|s| RunSource {
                entries: s.entries(),
                population: s.population_size as i64,
            })
            .collect();
        Some(RankIndex {
            probability,
            arrays: MergedArrays::build(&sources),
        })
    }

    /// Answers one range query in `O(log S)`: two Eytzinger boundary
    /// searches over the merged values, five prefix/suffix lookups, one
    /// combine.
    pub fn estimate(&self, query: RangeQuery) -> f64 {
        let (sum_a, sum_b) = self.rank_terms(query);
        finish_rank_terms(sum_a, sum_b, self.probability)
    }

    /// Answers one query through the plain two-`partition_point`
    /// resolver instead of the Eytzinger descent — the reference the
    /// engine paths are proven bit-identical against (property tests
    /// and the `bench_query_engine` self-check).
    pub fn estimate_baseline(&self, query: RangeQuery) -> f64 {
        let (sum_a, sum_b) = self.arrays.rank_terms_baseline(query);
        finish_rank_terms(sum_a, sum_b, self.probability)
    }

    /// Answers a whole batch through the engine's sorted-boundary sweep:
    /// same bits as calling [`RankIndex::estimate`] per query, resolved
    /// in one forward pass over the merged values.
    pub fn estimate_batch(&self, queries: &[RangeQuery]) -> BatchEstimate {
        let (terms, gallop_steps) = self.arrays.rank_terms_batch(queries);
        BatchEstimate {
            estimates: terms
                .into_iter()
                .map(|(sum_a, sum_b)| finish_rank_terms(sum_a, sum_b, self.probability))
                .collect(),
            gallop_steps,
        }
    }

    /// The exact integer aggregates `(ΣA, ΣB)` for one query — must match
    /// [`scan_rank_terms`] exactly on the same station.
    pub fn rank_terms(&self, query: RangeQuery) -> (i64, i64) {
        self.arrays.rank_terms(query)
    }

    /// Number of merged sample entries (`S`).
    pub fn merged_entries(&self) -> usize {
        self.arrays.len()
    }

    /// The uniform sampling probability the index was built at.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl QueryIndex for RankIndex {
    fn estimate(&self, query: RangeQuery) -> f64 {
        RankIndex::estimate(self, query)
    }

    fn estimate_batch(&self, queries: &[RangeQuery]) -> BatchEstimate {
        RankIndex::estimate_batch(self, queries)
    }

    fn merged_entries(&self) -> usize {
        RankIndex::merged_entries(self)
    }

    fn probability(&self) -> f64 {
        RankIndex::probability(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::index::scan_rank_terms;
    use crate::estimator::{RangeCountEstimator, RankCounting};
    use prc_net::message::{NodeId, SampleEntry, SampleMessage};
    use prc_net::network::FlatNetwork;

    fn q(l: f64, u: f64) -> RangeQuery {
        RangeQuery::new(l, u).unwrap()
    }

    /// `(sampled (value, rank) pairs, population size, probability)`.
    type NodeSpec<'a> = (&'a [(f64, u32)], usize, f64);

    fn station(nodes: &[NodeSpec]) -> BaseStation {
        let mut station = BaseStation::new();
        for (i, (entries, n, p)) in nodes.iter().enumerate() {
            station.ingest(SampleMessage {
                node_id: NodeId(i as u32),
                population_size: *n,
                probability: *p,
                entries: entries
                    .iter()
                    .map(|&(value, rank)| SampleEntry { value, rank })
                    .collect(),
            });
        }
        station
    }

    fn assert_identical(station: &BaseStation, queries: &[(f64, f64)]) {
        let index = RankIndex::build(station).expect("index should build");
        for &(l, u) in queries {
            let indexed = index.estimate(q(l, u));
            let scanned = RankCounting.estimate(station, q(l, u));
            assert_eq!(
                indexed.to_bits(),
                scanned.to_bits(),
                "({l}, {u}): indexed {indexed} vs scanned {scanned}"
            );
            let (scan_a, scan_b) = scan_rank_terms(station, q(l, u));
            assert_eq!(index.rank_terms(q(l, u)), (scan_a, scan_b));
        }
    }

    #[test]
    fn matches_scan_on_handcrafted_station() {
        let s = station(&[
            (&[(2.0, 2), (5.0, 5), (9.0, 9)], 10, 0.5),
            (&[(1.0, 1), (5.0, 3), (5.0, 4), (8.0, 7)], 8, 0.5),
            (&[], 6, 0.5), // sampled nothing: always case 4
        ]);
        assert_identical(
            &s,
            &[
                (3.0, 7.0),
                (6.0, 20.0),
                (-5.0, 1.0),
                (-10.0, 30.0),
                (5.0, 5.0),
                (4.9, 5.1),
                (9.0, 9.0),
                (100.0, 200.0),
                (-7.0, -2.0),
            ],
        );
    }

    #[test]
    fn matches_scan_over_collected_networks() {
        for (k, per_node, p, seed) in [
            (1, 300, 0.2, 1u64),
            (7, 100, 0.35, 2),
            (16, 250, 0.6, 3),
            (5, 50, 1.0, 4),
        ] {
            let partitions: Vec<Vec<f64>> = (0..k)
                .map(|i| {
                    (0..per_node)
                        .map(|j| ((i * per_node + j) / 3) as f64) // duplicate-heavy
                        .collect()
                })
                .collect();
            let mut net = FlatNetwork::from_partitions(partitions, seed);
            net.collect_samples(p);
            let n = (k * per_node) as f64 / 3.0;
            assert_identical(
                net.station(),
                &[
                    (0.0, n),
                    (n * 0.25, n * 0.75),
                    (n * 0.5, n * 0.5),
                    (-10.0, -1.0),
                    (n + 5.0, n + 50.0),
                    (0.0, 0.0),
                ],
            );
        }
    }

    #[test]
    fn p_one_index_is_exact() {
        let values: Vec<f64> = vec![1.0, 2.0, 2.0, 3.0, 5.0, 5.0, 8.0, 9.0];
        let mut net = FlatNetwork::from_partitions(vec![values.clone()], 1);
        net.collect_samples(1.0);
        let index = RankIndex::build(net.station()).unwrap();
        for (l, u) in [(2.0, 5.0), (1.0, 9.0), (4.0, 4.5), (10.0, 20.0)] {
            let truth = values.iter().filter(|&&v| v >= l && v <= u).count() as f64;
            assert_eq!(index.estimate(q(l, u)), truth, "({l}, {u})");
        }
    }

    #[test]
    fn heterogeneous_probabilities_decline_to_build() {
        let s = station(&[(&[(1.0, 1)], 4, 0.5), (&[(2.0, 2)], 4, 0.25)]);
        assert!(RankIndex::build(&s).is_none());
        // The scan path still answers (per-node fallback in the estimator).
        assert!(RankCounting.estimate(&s, q(0.0, 3.0)).is_finite());
    }

    #[test]
    fn empty_station_declines_to_build() {
        assert!(RankIndex::build(&BaseStation::new()).is_none());
        let all_empty = station(&[(&[], 0, 0.5)]);
        assert!(RankIndex::build(&all_empty).is_none());
    }

    #[test]
    fn zero_population_nodes_are_ignored() {
        let s = station(&[(&[(1.0, 1), (4.0, 4)], 6, 0.5), (&[], 0, 0.9)]);
        assert_identical(&s, &[(0.0, 5.0), (2.0, 3.0), (-2.0, 0.5)]);
    }

    #[test]
    fn accessors_report_build_parameters() {
        let s = station(&[(&[(1.0, 1), (4.0, 4)], 6, 0.25), (&[(2.0, 2)], 3, 0.25)]);
        let index = RankIndex::build(&s).unwrap();
        assert_eq!(index.merged_entries(), 3);
        assert_eq!(RankIndex::probability(&index), 0.25);
        let boxed: Box<dyn QueryIndex> = Box::new(index);
        assert_eq!(boxed.merged_entries(), 3);
        assert_eq!(boxed.probability(), 0.25);
        assert_eq!(
            boxed.estimate(q(1.5, 3.5)).to_bits(),
            RankCounting.estimate(&s, q(1.5, 3.5)).to_bits()
        );
    }

    #[test]
    fn finish_is_exact_at_p_one() {
        assert_eq!(finish_rank_terms(42, 6, 1.0), 36.0);
        assert_eq!(finish_rank_terms(-3, 0, 0.25), -3.0);
    }
}
