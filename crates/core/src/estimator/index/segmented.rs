//! The segmented (LSM-style) rank index: immutable sorted segments over
//! disjoint node subsets, maintained incrementally from collection
//! deltas instead of rebuilt per epoch.

use prc_net::base_station::BaseStation;
use prc_net::message::NodeId;

use super::compaction::{CompactionPolicy, CompactionStep, SegmentStats};
use super::finish_rank_terms;
use super::segment::{Segment, SegmentMember};
use crate::estimator::{BatchEstimate, DeltaOutcome, QueryIndex};
use crate::query::RangeQuery;

/// An incrementally-maintained merged prefix-rank index.
///
/// Invariant: every data-bearing node of the station the index was last
/// synchronized with appears as a *live* member of exactly one segment.
/// `(ΣA, ΣB)` are integer sums over nodes, so a query fans the same two
/// `partition_point`s across every segment and adds the per-segment
/// aggregates — bit-identical to the monolithic [`super::RankIndex`] and
/// to the per-node scan, at `O(m log S)` per query for `m` live
/// segments.
///
/// On a collection round, [`SegmentedRankIndex::absorb_delta`] takes the
/// round's changed-node set, tombstones those nodes in older segments,
/// and builds one new segment over just their fresh samples —
/// `O(Δ log Δ)` maintenance instead of an `O(S log S)` rebuild. The
/// deterministic size-tiered [`CompactionPolicy`] then bounds the live
/// segment count to `O(log S)`.
///
/// The sampling probability enters only at the final
/// [`finish_rank_terms`] combine, never inside a segment, so segments
/// built before a top-up remain valid after it; `absorb_delta` simply
/// refreshes the stored probability.
#[derive(Debug, Clone)]
pub struct SegmentedRankIndex {
    /// The station's current uniform sampling probability (refreshed on
    /// every absorb).
    probability: f64,
    /// Oldest-first immutable segments over disjoint live node sets.
    segments: Vec<Segment>,
    policy: CompactionPolicy,
    /// Deltas absorbed since the initial build.
    delta_appends: u64,
    /// Compaction steps applied since the initial build.
    compactions: u64,
}

impl SegmentedRankIndex {
    /// Builds a single-segment index over the station's current samples;
    /// `None` when no uniform positive sampling probability exists
    /// (same contract as [`super::RankIndex::build`]).
    pub fn build(station: &BaseStation) -> Option<SegmentedRankIndex> {
        let probability = station.uniform_probability()?;
        let members = members_of(station, station.data_bearing_samples().map(|s| s.node_id));
        Some(SegmentedRankIndex {
            probability,
            segments: vec![Segment::build(members)],
            policy: CompactionPolicy::default(),
            delta_appends: 0,
            compactions: 0,
        })
    }

    /// Absorbs one collection round's delta: tombstones `changed` nodes
    /// in existing segments, appends one fresh segment over their
    /// current samples, and compacts to the policy's fixpoint.
    ///
    /// Returns `None` when the station no longer has a uniform positive
    /// sampling probability — the index is invalid and the caller must
    /// discard it. Work is `O(Δ log Δ)` plus amortized compaction, where
    /// `Δ` is the changed nodes' entry count.
    pub fn absorb_delta(
        &mut self,
        station: &BaseStation,
        changed: &[NodeId],
    ) -> Option<DeltaOutcome> {
        let probability = station.uniform_probability()?;
        self.probability = probability;
        if changed.is_empty() {
            return Some(DeltaOutcome::default());
        }

        let mut tombstoned_entries = 0usize;
        for segment in &mut self.segments {
            for &node in changed {
                tombstoned_entries += segment.tombstone(node);
            }
        }

        let members = members_of(
            station,
            changed.iter().copied().filter(|&n| {
                station
                    .node_sample(n)
                    .is_some_and(|s| s.population_size > 0)
            }),
        );
        let appended_entries: usize = members.iter().map(|m| m.entries.len()).sum();
        if !members.is_empty() {
            self.segments.push(Segment::build(members));
        }
        self.delta_appends += 1;

        let compactions = self.compact();
        Some(DeltaOutcome {
            appended_entries,
            tombstoned_entries,
            compactions,
        })
    }

    /// Applies compaction steps until the policy reaches its fixpoint;
    /// returns the number of steps applied.
    fn compact(&mut self) -> u64 {
        let mut applied = 0u64;
        loop {
            let stats: Vec<SegmentStats> = self
                .segments
                .iter()
                .map(|s| SegmentStats {
                    live: s.live_entries(),
                    dead: s.dead_entries(),
                    live_members: s.live_members(),
                })
                .collect();
            let Some(step) = self.policy.plan(&stats) else {
                break;
            };
            match step {
                CompactionStep::Drop(i) => {
                    self.segments.remove(i);
                }
                CompactionStep::Rewrite(i) => {
                    let old = self.segments.remove(i);
                    self.segments
                        .insert(i, Segment::build(old.into_live_members()));
                }
                CompactionStep::MergeTail(count) => {
                    let tail_start = self.segments.len() - count;
                    let members: Vec<SegmentMember> = self
                        .segments
                        .drain(tail_start..)
                        .flat_map(Segment::into_live_members)
                        .collect();
                    self.segments.push(Segment::build(members));
                }
            }
            applied += 1;
        }
        self.compactions += applied;
        applied
    }

    /// Answers one range query: the two binary searches fan across every
    /// segment and the exact integer aggregates are summed once.
    pub fn estimate(&self, query: RangeQuery) -> f64 {
        let (sum_a, sum_b) = self.rank_terms(query);
        finish_rank_terms(sum_a, sum_b, self.probability)
    }

    /// The exact integer aggregates `(ΣA, ΣB)` — must match
    /// [`super::scan_rank_terms`] and the monolithic index exactly.
    pub fn rank_terms(&self, query: RangeQuery) -> (i64, i64) {
        let mut sum_a = 0i64;
        let mut sum_b = 0i64;
        for segment in &self.segments {
            let (a, b) = segment.rank_terms(query);
            sum_a += a;
            sum_b += b;
        }
        (sum_a, sum_b)
    }

    /// [`SegmentedRankIndex::estimate`] through the plain
    /// two-`partition_point` resolver instead of the Eytzinger descent
    /// (the reference for equivalence tests and benches).
    pub fn estimate_baseline(&self, query: RangeQuery) -> f64 {
        let mut sum_a = 0i64;
        let mut sum_b = 0i64;
        for segment in &self.segments {
            let (a, b) = segment.rank_terms_baseline(query);
            sum_a += a;
            sum_b += b;
        }
        finish_rank_terms(sum_a, sum_b, self.probability)
    }

    /// Answers a whole batch through the engine's sorted-boundary
    /// sweep, one forward pass per segment: same bits as calling
    /// [`SegmentedRankIndex::estimate`] per query (integer addition is
    /// grouping-independent, and each sweep resolves the exact
    /// `partition_point` positions).
    pub fn estimate_batch(&self, queries: &[RangeQuery]) -> BatchEstimate {
        let mut terms = vec![(0i64, 0i64); queries.len()];
        let mut gallop_steps = 0u64;
        for segment in &self.segments {
            let (segment_terms, steps) = segment.rank_terms_batch(queries);
            gallop_steps += steps;
            for (total, part) in terms.iter_mut().zip(segment_terms) {
                total.0 += part.0;
                total.1 += part.1;
            }
        }
        BatchEstimate {
            estimates: terms
                .into_iter()
                .map(|(sum_a, sum_b)| finish_rank_terms(sum_a, sum_b, self.probability))
                .collect(),
            gallop_steps,
        }
    }

    /// Live merged entries across all segments (`S`).
    pub fn merged_entries(&self) -> usize {
        self.segments.iter().map(Segment::live_entries).sum()
    }

    /// Tombstoned entries still paid for per query (shrinks under
    /// compaction).
    pub fn dead_entries(&self) -> usize {
        self.segments.iter().map(Segment::dead_entries).sum()
    }

    /// The uniform sampling probability as of the last build or absorb.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Live segment count (`m` in the `O(m log S)` query bound).
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Deltas absorbed since the initial build.
    pub fn delta_appends(&self) -> u64 {
        self.delta_appends
    }

    /// Compaction steps applied since the initial build.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

/// Snapshots the given nodes' current samples as fresh segment members.
fn members_of(
    station: &BaseStation,
    nodes: impl IntoIterator<Item = NodeId>,
) -> Vec<SegmentMember> {
    nodes
        .into_iter()
        .filter_map(|node_id| station.node_sample(node_id))
        .map(|s| SegmentMember {
            node_id: s.node_id,
            population: s.population_size as i64,
            entries: s.entries().to_vec(),
            dead: false,
        })
        .collect()
}

impl QueryIndex for SegmentedRankIndex {
    fn estimate(&self, query: RangeQuery) -> f64 {
        SegmentedRankIndex::estimate(self, query)
    }

    fn estimate_batch(&self, queries: &[RangeQuery]) -> BatchEstimate {
        SegmentedRankIndex::estimate_batch(self, queries)
    }

    fn merged_entries(&self) -> usize {
        SegmentedRankIndex::merged_entries(self)
    }

    fn probability(&self) -> f64 {
        SegmentedRankIndex::probability(self)
    }

    fn segments(&self) -> usize {
        SegmentedRankIndex::segments(self)
    }

    fn absorb_delta(&mut self, station: &BaseStation, changed: &[NodeId]) -> Option<DeltaOutcome> {
        SegmentedRankIndex::absorb_delta(self, station, changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::index::{scan_rank_terms, RankIndex};
    use prc_net::failure::FailurePlan;
    use prc_net::message::{SampleEntry, SampleMessage};
    use prc_net::network::FlatNetwork;

    fn q(l: f64, u: f64) -> RangeQuery {
        RangeQuery::new(l, u).unwrap()
    }

    fn ingest(station: &mut BaseStation, node: u32, n: usize, p: f64, pairs: &[(f64, u32)]) {
        station.ingest(SampleMessage {
            node_id: NodeId(node),
            population_size: n,
            probability: p,
            entries: pairs
                .iter()
                .map(|&(value, rank)| SampleEntry { value, rank })
                .collect(),
        });
    }

    /// Asserts the segmented index agrees bit-for-bit with the scan and
    /// with a freshly built monolithic index on a spread of queries.
    fn assert_synchronized(index: &SegmentedRankIndex, station: &BaseStation) {
        let fresh = RankIndex::build(station).expect("reference index should build");
        assert_eq!(index.merged_entries(), fresh.merged_entries());
        for (l, u) in [
            (-1.0e9, 1.0e9),
            (-5.0, 3.0),
            (0.0, 10.0),
            (2.5, 2.5),
            (7.0, 40.0),
            (100.0, 200.0),
            (-20.0, -10.0),
        ] {
            assert_eq!(
                index.rank_terms(q(l, u)),
                scan_rank_terms(station, q(l, u)),
                "scan mismatch on ({l}, {u})"
            );
            assert_eq!(
                index.estimate(q(l, u)).to_bits(),
                fresh.estimate(q(l, u)).to_bits(),
                "monolithic mismatch on ({l}, {u})"
            );
        }
    }

    #[test]
    fn build_matches_monolithic_bit_for_bit() {
        let mut station = BaseStation::new();
        ingest(&mut station, 0, 10, 0.5, &[(2.0, 2), (5.0, 5), (9.0, 9)]);
        ingest(&mut station, 1, 8, 0.5, &[(1.0, 1), (5.0, 3), (8.0, 7)]);
        ingest(&mut station, 2, 6, 0.5, &[]);
        let index = SegmentedRankIndex::build(&station).unwrap();
        assert_eq!(index.segments(), 1);
        assert_synchronized(&index, &station);
    }

    #[test]
    fn absorb_tracks_updated_and_new_nodes() {
        let mut station = BaseStation::new();
        ingest(&mut station, 0, 10, 0.5, &[(2.0, 2), (9.0, 9)]);
        ingest(&mut station, 1, 8, 0.5, &[(1.0, 1), (8.0, 7)]);
        let mut index = SegmentedRankIndex::build(&station).unwrap();
        let rev = station.revision();

        // Node 1 grows (entries extend), node 2 appears.
        ingest(&mut station, 1, 9, 0.5, &[(4.0, 4)]);
        ingest(&mut station, 2, 5, 0.5, &[(3.0, 2)]);
        let changed = station.changed_since(rev);
        assert_eq!(changed, vec![NodeId(1), NodeId(2)]);

        let outcome = index.absorb_delta(&station, &changed).unwrap();
        assert_eq!(outcome.tombstoned_entries, 2, "node 1's old snapshot");
        assert_eq!(outcome.appended_entries, 4, "node 1 fresh (3) + node 2 (1)");
        assert_eq!(index.delta_appends(), 1);
        assert_synchronized(&index, &station);
    }

    #[test]
    fn empty_delta_is_a_cheap_no_op() {
        let mut station = BaseStation::new();
        ingest(&mut station, 0, 4, 0.25, &[(1.0, 1)]);
        let mut index = SegmentedRankIndex::build(&station).unwrap();
        let outcome = index.absorb_delta(&station, &[]).unwrap();
        assert_eq!(outcome, DeltaOutcome::default());
        assert_eq!(index.delta_appends(), 0);
        assert_synchronized(&index, &station);
    }

    #[test]
    fn top_up_refreshes_probability_across_old_segments() {
        let mut station = BaseStation::new();
        ingest(&mut station, 0, 10, 0.25, &[(2.0, 2)]);
        ingest(&mut station, 1, 10, 0.25, &[(6.0, 3)]);
        let mut index = SegmentedRankIndex::build(&station).unwrap();
        let rev = station.revision();

        // A global top-up raises every node's probability; old segments
        // stay valid because p only enters at the final combine.
        ingest(&mut station, 0, 10, 0.5, &[(4.0, 4)]);
        ingest(&mut station, 1, 10, 0.5, &[(8.0, 7)]);
        let changed = station.changed_since(rev);
        index.absorb_delta(&station, &changed).unwrap();
        assert_eq!(index.probability(), 0.5);
        assert_synchronized(&index, &station);
    }

    #[test]
    fn heterogeneous_probability_invalidates() {
        let mut station = BaseStation::new();
        ingest(&mut station, 0, 4, 0.5, &[(1.0, 1)]);
        ingest(&mut station, 1, 4, 0.5, &[(2.0, 2)]);
        let mut index = SegmentedRankIndex::build(&station).unwrap();
        let rev = station.revision();
        ingest(&mut station, 1, 4, 0.75, &[(3.0, 3)]);
        assert!(index
            .absorb_delta(&station, &station.changed_since(rev))
            .is_none());
    }

    #[test]
    fn repeated_deltas_stay_synchronized_and_compact() {
        let partitions: Vec<Vec<f64>> = (0..12)
            .map(|i| (0..200).map(|j| ((i * 200 + j) / 2) as f64).collect())
            .collect();
        let mut net = FlatNetwork::from_partitions(partitions, 77);
        // Nodes 10 and 11 are down for the first epoch: they never report,
        // so the station stays uniform at the target without them.
        let mut plan = FailurePlan::none();
        plan.kill_node(NodeId(10));
        plan.kill_node(NodeId(11));
        net.set_failure_plan(plan);
        net.collect_samples(0.3);
        let mut index = SegmentedRankIndex::build(net.station()).unwrap();
        let mut rev = net.station().revision();

        // Revival catch-up at the same target: exactly the two previously
        // dead nodes change.
        net.set_failure_plan(FailurePlan::none());
        net.collect_samples(0.3);
        let delta = net.station().changed_since(rev);
        assert_eq!(delta, vec![NodeId(10), NodeId(11)]);
        index.absorb_delta(net.station(), &delta).unwrap();
        rev = net.station().revision();
        assert_synchronized(&index, net.station());

        // Growth: rounds of nodes joining and catching up to the target.
        for round in 0..5u64 {
            for j in 0..2u64 {
                let base = 3_000 + (round * 2 + j) * 200;
                let data = (0..200).map(|v| ((base + v) / 2) as f64).collect();
                net.add_node(data, 1_000 + round * 2 + j);
            }
            net.collect_samples(0.3);
            let delta = net.station().changed_since(rev);
            assert_eq!(delta.len(), 2, "only the joiners change");
            index.absorb_delta(net.station(), &delta).unwrap();
            rev = net.station().revision();
            assert_synchronized(&index, net.station());
        }
        assert!(index.delta_appends() >= 6);
        assert!(index.compactions() > 0, "size-tiered merges must fire");
        assert!(
            index.segments() <= 5,
            "compaction must bound segments, got {}",
            index.segments()
        );

        // A global top-up changes every node: a full delta mass-tombstones
        // the old segments, which compaction then reclaims entirely.
        net.collect_samples(0.5);
        let delta = net.station().changed_since(rev);
        assert_eq!(delta.len(), net.station().node_count());
        let outcome = index.absorb_delta(net.station(), &delta).unwrap();
        assert!(outcome.tombstoned_entries > 0);
        assert_eq!(index.probability(), 0.5);
        assert_eq!(index.dead_entries(), 0, "fully-dead segments are dropped");
        assert_synchronized(&index, net.station());
    }

    #[test]
    fn trait_object_surface_reports_segment_state() {
        let mut station = BaseStation::new();
        ingest(&mut station, 0, 4, 0.5, &[(1.0, 1)]);
        ingest(&mut station, 1, 4, 0.5, &[(2.0, 2)]);
        let index = SegmentedRankIndex::build(&station).unwrap();
        let mut boxed: Box<dyn QueryIndex> = Box::new(index);
        assert_eq!(boxed.segments(), 1);
        assert_eq!(boxed.merged_entries(), 2);

        let rev = station.revision();
        ingest(&mut station, 2, 4, 0.5, &[(3.0, 3)]);
        let outcome = boxed
            .absorb_delta(&station, &station.changed_since(rev))
            .expect("segmented trait objects absorb deltas");
        assert_eq!(outcome.appended_entries, 1);
        assert_eq!(
            boxed.estimate(q(0.0, 5.0)).to_bits(),
            RankIndex::build(&station)
                .unwrap()
                .estimate(q(0.0, 5.0))
                .to_bits()
        );
    }
}
