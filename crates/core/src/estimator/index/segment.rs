//! One immutable sorted segment of the segmented index: merged arrays
//! over a disjoint subset of nodes, plus per-node snapshots enabling
//! exact tombstone subtraction and lossless compaction merges.

use prc_net::message::{NodeId, SampleEntry};

use super::merge::{MergedArrays, RunSource};
use super::node_rank_terms;
use crate::query::RangeQuery;

/// One node's sample state as frozen into a segment at build time: the
/// authoritative data the segment's arrays were accumulated from.
///
/// Snapshots serve two purposes. When the node is *tombstoned* (its live
/// sample moved to a newer segment), its exact old contribution
/// `(Aᵢ, Bᵢ)` is recomputed per query from the snapshot and subtracted
/// from the segment's aggregate — integer arithmetic, so the subtraction
/// is exact, not approximate. And when segments are compacted, live
/// snapshots are re-merged without touching the station.
#[derive(Debug, Clone)]
pub(crate) struct SegmentMember {
    pub node_id: NodeId,
    /// Claimed population `n_i` at snapshot time.
    pub population: i64,
    /// Rank-sorted (hence value-sorted) entries at snapshot time.
    pub entries: Vec<SampleEntry>,
    /// Tombstoned: a newer segment now carries this node's live sample.
    pub dead: bool,
}

/// An immutable sorted segment: the merged prefix-rank arrays over its
/// member nodes, answering `(ΣA, ΣB)` restricted to *live* members.
///
/// The segmented index maintains the invariant that every live node of
/// the station appears as a live member of exactly one segment, so
/// summing `rank_terms` across segments reproduces the full-station
/// aggregates bit-for-bit.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    /// Members in node-id order. The dense merge order within the
    /// segment never affects the aggregates (integer sums are grouping-
    /// independent), but a canonical order keeps rebuilds deterministic.
    members: Vec<SegmentMember>,
    arrays: MergedArrays,
    /// Indices (into `members`) of tombstoned members, so the per-query
    /// subtraction loop touches only the dead — a freshly built or
    /// compacted segment answers in pure `O(log S)` with no member walk.
    dead_members: Vec<usize>,
    /// Entries belonging to tombstoned members.
    dead_entries: usize,
}

impl Segment {
    /// Builds a segment over `members` (tombstones cleared), sorting
    /// them into canonical node-id order.
    pub fn build(mut members: Vec<SegmentMember>) -> Segment {
        members.sort_by_key(|m| m.node_id);
        for m in &mut members {
            m.dead = false;
        }
        let sources: Vec<RunSource<'_>> = members
            .iter()
            .map(|m| RunSource {
                entries: &m.entries,
                population: m.population,
            })
            .collect();
        let arrays = MergedArrays::build(&sources);
        Segment {
            members,
            arrays,
            dead_members: Vec::new(),
            dead_entries: 0,
        }
    }

    /// The exact `(ΣA, ΣB)` over this segment's live members: the
    /// aggregate over *all* members minus each tombstoned member's exact
    /// snapshot contribution.
    pub fn rank_terms(&self, query: RangeQuery) -> (i64, i64) {
        let (mut sum_a, mut sum_b) = self.arrays.rank_terms(query);
        for m in self
            .dead_members
            .iter()
            .filter_map(|&i| self.members.get(i))
        {
            let (a, b) = node_rank_terms(&m.entries, m.population, query);
            sum_a -= a;
            sum_b -= b;
        }
        (sum_a, sum_b)
    }

    /// [`Segment::rank_terms`] through the plain two-`partition_point`
    /// resolver instead of the Eytzinger descent (equivalence testing).
    pub fn rank_terms_baseline(&self, query: RangeQuery) -> (i64, i64) {
        let (mut sum_a, mut sum_b) = self.arrays.rank_terms_baseline(query);
        for m in self
            .dead_members
            .iter()
            .filter_map(|&i| self.members.get(i))
        {
            let (a, b) = node_rank_terms(&m.entries, m.population, query);
            sum_a -= a;
            sum_b -= b;
        }
        (sum_a, sum_b)
    }

    /// One `(ΣA, ΣB)` per query over this segment's live members, the
    /// batch's boundaries resolved in one sorted forward sweep; returns
    /// the aggregates in submission order plus the sweep's gallop-step
    /// meter. Tombstone subtraction stays per query: node snapshots are
    /// tiny next to the merged arrays, so the sweep targets the arrays.
    pub fn rank_terms_batch(&self, queries: &[RangeQuery]) -> (Vec<(i64, i64)>, u64) {
        let (mut terms, gallop_steps) = self.arrays.rank_terms_batch(queries);
        for m in self
            .dead_members
            .iter()
            .filter_map(|&i| self.members.get(i))
        {
            for (term, &query) in terms.iter_mut().zip(queries) {
                let (a, b) = node_rank_terms(&m.entries, m.population, query);
                term.0 -= a;
                term.1 -= b;
            }
        }
        (terms, gallop_steps)
    }

    /// Tombstones `node` if it is a live member; returns the number of
    /// entries newly deadened (0 when the node is absent or already
    /// dead).
    pub fn tombstone(&mut self, node: NodeId) -> usize {
        match self.members.binary_search_by_key(&node, |m| m.node_id) {
            Ok(pos) => {
                let member = &mut self.members[pos];
                if member.dead {
                    0
                } else {
                    member.dead = true;
                    self.dead_members.push(pos);
                    self.dead_entries += member.entries.len();
                    member.entries.len()
                }
            }
            Err(_) => 0,
        }
    }

    /// Entries still owned by live members.
    pub fn live_entries(&self) -> usize {
        self.arrays.len() - self.dead_entries
    }

    /// Entries owned by tombstoned members (per-query subtraction work).
    pub fn dead_entries(&self) -> usize {
        self.dead_entries
    }

    /// Members not yet tombstoned. Can exceed zero while
    /// [`Segment::live_entries`] is zero: a member whose sample drew no
    /// entries still contributes its population to the A-term.
    pub fn live_members(&self) -> usize {
        self.members.len() - self.dead_members.len()
    }

    /// Consumes the segment, yielding its live members (compaction
    /// input).
    pub fn into_live_members(self) -> Vec<SegmentMember> {
        self.members.into_iter().filter(|m| !m.dead).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::index::scan_rank_terms;
    use prc_net::base_station::BaseStation;
    use prc_net::message::SampleMessage;

    fn q(l: f64, u: f64) -> RangeQuery {
        RangeQuery::new(l, u).unwrap()
    }

    fn member(node: u32, population: i64, pairs: &[(f64, u32)]) -> SegmentMember {
        SegmentMember {
            node_id: NodeId(node),
            population,
            entries: pairs
                .iter()
                .map(|&(value, rank)| SampleEntry { value, rank })
                .collect(),
            dead: false,
        }
    }

    fn station_of(members: &[SegmentMember], p: f64) -> BaseStation {
        let mut station = BaseStation::new();
        for m in members {
            station.ingest(SampleMessage {
                node_id: m.node_id,
                population_size: m.population as usize,
                probability: p,
                entries: m.entries.clone(),
            });
        }
        station
    }

    #[test]
    fn segment_aggregates_match_the_scan_over_its_members() {
        let members = vec![
            member(0, 10, &[(2.0, 2), (5.0, 5), (9.0, 9)]),
            member(1, 8, &[(1.0, 1), (5.0, 3), (8.0, 7)]),
            member(2, 6, &[]),
        ];
        let station = station_of(&members, 0.5);
        let segment = Segment::build(members);
        for (l, u) in [(3.0, 7.0), (-5.0, 1.0), (5.0, 5.0), (100.0, 200.0)] {
            assert_eq!(
                segment.rank_terms(q(l, u)),
                scan_rank_terms(&station, q(l, u)),
                "({l}, {u})"
            );
        }
    }

    #[test]
    fn tombstone_subtracts_the_exact_old_contribution() {
        let members = vec![
            member(0, 10, &[(2.0, 2), (5.0, 5)]),
            member(1, 8, &[(1.0, 1), (8.0, 7)]),
        ];
        // Reference: a station holding only the surviving member.
        let survivors = station_of(&members[..1], 0.5);
        let mut segment = Segment::build(members);

        assert_eq!(segment.tombstone(NodeId(1)), 2);
        assert_eq!(segment.tombstone(NodeId(1)), 0, "idempotent");
        assert_eq!(segment.tombstone(NodeId(9)), 0, "absent node");
        assert_eq!(segment.live_entries(), 2);
        assert_eq!(segment.dead_entries(), 2);

        for (l, u) in [(0.0, 3.0), (4.0, 9.0), (-2.0, -1.0), (20.0, 30.0)] {
            assert_eq!(
                segment.rank_terms(q(l, u)),
                scan_rank_terms(&survivors, q(l, u)),
                "({l}, {u})"
            );
        }
    }

    #[test]
    fn into_live_members_drops_tombstones() {
        let members = vec![member(0, 4, &[(1.0, 1)]), member(1, 4, &[(2.0, 2)])];
        let mut segment = Segment::build(members);
        segment.tombstone(NodeId(0));
        let live = segment.into_live_members();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].node_id, NodeId(1));
    }
}
