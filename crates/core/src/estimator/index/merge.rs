//! Shared merge machinery: per-node runs, deterministic k-way merge,
//! and the prefix/suffix structure-of-arrays every index variant
//! queries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use prc_net::message::SampleEntry;
use prc_runtime::{CutoffPolicy, Runtime};

use crate::estimator::engine::{self, EytzingerSearcher};
use crate::query::RangeQuery;

/// One source of a merge: a node's rank-sorted entry slice plus its
/// claimed population `n_i`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunSource<'a> {
    pub entries: &'a [SampleEntry],
    pub population: i64,
}

/// One merged entry with its telescoping deltas, produced per node before
/// the merge (a node's neighbours in merged order are its neighbours in
/// its own rank-sorted slice).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MergedEntry {
    value: f64,
    /// Dense node index (position among the merge's sources) — merge
    /// tie-break only; never affects the accumulated aggregates.
    node: u32,
    /// Local rank — merge tie-break for within-node duplicates.
    rank: u32,
    /// `rank − rank_prev` (`rank` for the node's first entry).
    pred_delta: i64,
    /// `rank − rank_next` (`rank` for the node's last entry).
    succ_delta: i64,
    /// This is the node's first entry (opens its predecessor case).
    first: bool,
    /// This is the node's last entry (closes its successor case).
    last: bool,
    /// `n_i` on the node's last entry, else `0` (suffix population sum).
    pop: i64,
}

fn merged_entry(source: RunSource<'_>, dense: u32, pos: usize) -> MergedEntry {
    let entries = source.entries;
    let e = entries[pos];
    let prev = if pos > 0 {
        i64::from(entries[pos - 1].rank)
    } else {
        0
    };
    let next = if pos + 1 < entries.len() {
        i64::from(entries[pos + 1].rank)
    } else {
        0
    };
    let last = pos + 1 == entries.len();
    MergedEntry {
        value: e.value,
        node: dense,
        rank: e.rank,
        pred_delta: i64::from(e.rank) - prev,
        succ_delta: i64::from(e.rank) - next,
        first: pos == 0,
        last,
        pop: if last { source.population } else { 0 },
    }
}

/// Heap key: ascending `(value, node, rank)` — a total order because
/// `(node, rank)` is unique, so the merged order (and the arrays it
/// produces) is deterministic regardless of sharding or thread count.
#[derive(Debug, Clone, Copy)]
struct MergeKey {
    value: f64,
    node: u32,
    rank: u32,
}

impl PartialEq for MergeKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeKey {}
impl PartialOrd for MergeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .total_cmp(&other.value)
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.rank.cmp(&other.rank))
    }
}

/// K-way merges already-sorted runs of entries into one sorted vector.
fn merge_runs(runs: Vec<Vec<MergedEntry>>, capacity: usize) -> Vec<MergedEntry> {
    let mut runs: Vec<Vec<MergedEntry>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    if runs.len() == 1 {
        return runs.pop().unwrap_or_default();
    }
    let mut heap: BinaryHeap<std::cmp::Reverse<(MergeKey, usize)>> =
        BinaryHeap::with_capacity(runs.len());
    let mut cursors = vec![0usize; runs.len()];
    for (r, run) in runs.iter().enumerate() {
        if let Some(&e) = run.first() {
            heap.push(std::cmp::Reverse((
                MergeKey {
                    value: e.value,
                    node: e.node,
                    rank: e.rank,
                },
                r,
            )));
        }
    }
    let mut merged = Vec::with_capacity(capacity);
    while let Some(std::cmp::Reverse((_, r))) = heap.pop() {
        let pos = cursors[r];
        merged.push(runs[r][pos]);
        cursors[r] += 1;
        if let Some(e) = runs[r].get(cursors[r]) {
            heap.push(std::cmp::Reverse((
                MergeKey {
                    value: e.value,
                    node: e.node,
                    rank: e.rank,
                },
                r,
            )));
        }
    }
    merged
}

/// Merges one shard (a contiguous group of sources) into a sorted run.
fn merge_shard(group: &[RunSource<'_>], dense_base: u32) -> Vec<MergedEntry> {
    let capacity: usize = group.iter().map(|s| s.entries.len()).sum();
    let runs: Vec<Vec<MergedEntry>> = group
        .iter()
        .enumerate()
        .map(|(i, &source)| {
            let dense = dense_base + i as u32;
            (0..source.entries.len())
                .map(|pos| merged_entry(source, dense, pos))
                .collect()
        })
        .collect();
    merge_runs(runs, capacity)
}

/// Below this many merged entries the pool fan-out costs more than the
/// merge itself (dispatch is microseconds; so is the whole merge) —
/// delta segments and small compactions stay on the calling thread. The
/// sequential path assigns the same dense indices and the merge key is a
/// total order, so the cutoff never changes the produced arrays, only
/// who builds them.
const MERGE_CUTOFF: CutoffPolicy = CutoffPolicy::min_work(1 << 15);

/// Merges every source's entries into one deterministic value-sorted run,
/// sharding contiguous source groups over the shared [`Runtime`] pool
/// once the input is large enough to amortize the fan-out.
///
/// Dense node indices come from each source's global position (the
/// chunk's input offset), so any chunking — including the sequential
/// single chunk — produces identical runs and an identical final merge.
///
/// # Panics
///
/// Only to propagate a shard worker's panic, re-raised through the
/// runtime's single panic path ([`Runtime::map_chunked`]); the merge
/// itself does not panic.
fn parallel_merge(sources: &[RunSource<'_>]) -> Vec<MergedEntry> {
    let total_entries: usize = sources.iter().map(|s| s.entries.len()).sum();
    let runs = Runtime::global().map_chunked(sources, total_entries, MERGE_CUTOFF, |chunk| {
        merge_shard(chunk.items, chunk.offset as u32)
    });
    merge_runs(runs, total_entries)
}

/// The value-sorted prefix/suffix structure-of-arrays at the heart of
/// every index variant: five integer aggregates plus the merged values,
/// answering `(ΣA, ΣB)` over its sources with two `partition_point`s and
/// five lookups.
#[derive(Debug, Clone)]
pub(crate) struct MergedArrays {
    /// Merged sample values, sorted ascending (`S` entries).
    values: Vec<f64>,
    /// `cum_pred_rank[c] = R_pred(c)`: Σ over nodes of the rank of their
    /// last entry among the first `c` merged entries.
    cum_pred_rank: Vec<i64>,
    /// `cum_first[c] = C_pred(c)`: nodes with ≥ 1 entry among the first `c`.
    cum_first: Vec<i64>,
    /// `suf_succ_rank[c] = R_succ(c)`: Σ over nodes of the rank of their
    /// first entry at or after position `c`.
    suf_succ_rank: Vec<i64>,
    /// `suf_last[c] = C_succ(c)`: nodes with ≥ 1 entry at or after `c`.
    suf_last: Vec<i64>,
    /// `suf_pop[c] = N_succ(c)`: Σ `n_i` over nodes with ≥ 1 entry at or
    /// after `c`.
    suf_pop: Vec<i64>,
    /// Σ `n_i` over all sources (entry-less sources included).
    total_population: i64,
    /// Eytzinger relayout of `values`, built once with the arrays: the
    /// engine's single-query boundary resolver.
    searcher: EytzingerSearcher,
}

impl MergedArrays {
    /// Builds the arrays over `sources` in one parallel merge plus one
    /// sequential accumulation pass: `O(S log S)` total work.
    pub fn build(sources: &[RunSource<'_>]) -> MergedArrays {
        let total_population: i64 = sources.iter().map(|s| s.population).sum();
        let merged = parallel_merge(sources);

        let s = merged.len();
        let mut values = Vec::with_capacity(s);
        let mut cum_pred_rank = Vec::with_capacity(s + 1);
        let mut cum_first = Vec::with_capacity(s + 1);
        let mut running_pred = 0i64;
        let mut running_first = 0i64;
        cum_pred_rank.push(running_pred);
        cum_first.push(running_first);
        for e in &merged {
            values.push(e.value);
            running_pred += e.pred_delta;
            running_first += i64::from(e.first);
            cum_pred_rank.push(running_pred);
            cum_first.push(running_first);
        }
        let mut suf_succ_rank = vec![0i64; s + 1];
        let mut suf_last = vec![0i64; s + 1];
        let mut suf_pop = vec![0i64; s + 1];
        for (j, e) in merged.iter().enumerate().rev() {
            suf_succ_rank[j] = suf_succ_rank[j + 1] + e.succ_delta;
            suf_last[j] = suf_last[j + 1] + i64::from(e.last);
            suf_pop[j] = suf_pop[j + 1] + e.pop;
        }

        let searcher = EytzingerSearcher::from_sorted(&values);
        MergedArrays {
            values,
            cum_pred_rank,
            cum_first,
            suf_succ_rank,
            suf_last,
            suf_pop,
            total_population,
            searcher,
        }
    }

    /// The exact integer aggregates `(ΣA, ΣB)` over every source, for
    /// one query: two Eytzinger boundary searches, five lookups. The
    /// searcher returns exactly the `partition_point` indices (see
    /// [`MergedArrays::rank_terms_baseline`]), so the aggregates — and
    /// every released answer — are bit-identical to the baseline.
    pub fn rank_terms(&self, query: RangeQuery) -> (i64, i64) {
        let (pos_l, pos_u) = self.searcher.boundary_ranks(query);
        self.rank_terms_at(pos_l, pos_u)
    }

    /// The reference resolver: the shared two-`partition_point`
    /// baseline ([`engine::boundary_ranks`]) the engine paths are
    /// proven against, kept for equivalence tests and benchmarks.
    pub fn rank_terms_baseline(&self, query: RangeQuery) -> (i64, i64) {
        let (pos_l, pos_u) = engine::boundary_ranks(&self.values, query);
        self.rank_terms_at(pos_l, pos_u)
    }

    /// One `(ΣA, ΣB)` per query, the batch's boundaries resolved in a
    /// single sorted forward sweep ([`engine::resolve_batch_with`]);
    /// returns the per-query aggregates in submission order plus the
    /// sweep's gallop-step meter.
    ///
    /// The five aggregate lookups happen *inside* the sweep, at
    /// monotonically non-decreasing positions — the prefix and suffix
    /// arrays are walked forward instead of probed in submission order,
    /// which is where a large epoch's cache misses live.
    pub fn rank_terms_batch(&self, queries: &[RangeQuery]) -> (Vec<(i64, i64)>, u64) {
        // `(cum_pred_rank, cum_first)` at each lower boundary and
        // `(suf_succ_rank, suf_last, suf_pop)` at each upper one,
        // scattered back to submission slots.
        let mut lower = vec![(0i64, 0i64); queries.len()];
        let mut upper = vec![(0i64, 0i64, 0i64); queries.len()];
        let gallop_steps =
            engine::resolve_batch_with(&self.values, queries, |slot, is_lower, pos| {
                if is_lower {
                    lower[slot] = (self.cum_pred_rank[pos], self.cum_first[pos]);
                } else {
                    upper[slot] = (
                        self.suf_succ_rank[pos],
                        self.suf_last[pos],
                        self.suf_pop[pos],
                    );
                }
            });
        let terms = lower
            .into_iter()
            .zip(upper)
            .map(|((pred_rank, first), (succ_rank, last, pop))| {
                combine_terms(
                    self.total_population,
                    pred_rank,
                    first,
                    succ_rank,
                    last,
                    pop,
                )
            })
            .collect();
        (terms, gallop_steps)
    }

    /// The five aggregate lookups for already-resolved boundary
    /// positions, feeding the shared combine.
    fn rank_terms_at(&self, pos_l: usize, pos_u: usize) -> (i64, i64) {
        combine_terms(
            self.total_population,
            self.cum_pred_rank[pos_l],
            self.cum_first[pos_l],
            self.suf_succ_rank[pos_u],
            self.suf_last[pos_u],
            self.suf_pop[pos_u],
        )
    }

    /// Number of merged sample entries (`S`).
    pub fn len(&self) -> usize {
        self.values.len()
    }
}

/// The `(ΣA, ΣB)` combine over the five aggregate values at a query's
/// two boundaries — the one place this arithmetic exists, shared by
/// every resolver so a faster boundary search can never change it.
fn combine_terms(
    total_population: i64,
    pred_rank: i64,
    first: i64,
    succ_rank: i64,
    last: i64,
    pop: i64,
) -> (i64, i64) {
    let sum_a = succ_rank - pred_rank + first + (total_population - pop);
    let sum_b = first + last;
    (sum_a, sum_b)
}
