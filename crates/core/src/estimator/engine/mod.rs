//! The cache-conscious batched query engine.
//!
//! Every estimator path in this crate answers a range query by locating
//! the same two boundaries in a value-sorted sequence: the first
//! position whose value is `>= lower` and the first `> upper`. The
//! engine owns that resolution step in three forms, all returning
//! *exactly* the indices `slice::partition_point` would:
//!
//! * [`boundary_ranks`] / [`entry_boundary_ranks`] — the shared
//!   two-`partition_point` baseline every scan-path estimator calls (and
//!   the reference the other two forms are proven against);
//! * [`EytzingerSearcher`] — a BFS-order (Eytzinger) relayout of the
//!   sorted values with a branchless descent, built once per merged
//!   index segment, so a single query's two searches touch a
//!   cache-friendly prefix instead of random-walking the whole array;
//! * [`resolve_batch`] — the sorted-batch sweep for `answer_batch`: all
//!   `2q` boundaries of a query batch are sorted once (an index-stable,
//!   total order) and resolved in one forward pass, galloping from the
//!   previous hit instead of restarting at the root.
//!
//! Because every form resolves to identical indices, the downstream
//! `(ΣA, ΣB)` integer aggregation is untouched and released answers
//! stay bit-identical across the scan, indexed, and batched paths.
//!
//! The module also houses the optimizer [`PlanCache`](plan_cache): the
//! grid sweep of problem (3) is a pure function of the accuracy target,
//! the rate tier, and the station state, so its result is memoized
//! under the same revision stamps that pin the query index to an epoch.

mod boundary;
mod eytzinger;
mod plan_cache;
mod sweep;

pub use boundary::{boundary_ranks, boundary_ranks_by, entry_boundary_ranks};
pub use eytzinger::EytzingerSearcher;
pub(crate) use plan_cache::PlanCache;
pub use sweep::{resolve_batch, resolve_batch_with, ResolvedBoundaries};
