//! Memoized optimizer plans, pinned to a station revision.
//!
//! Solving problem (3) is a grid sweep over `grid_points` candidate
//! `α′` values — pure, but not free — and a batch (or a run of single
//! sessions inside one epoch) repeats it for every query that shares an
//! accuracy target and rate tier. The result is a deterministic
//! function of exactly three inputs: the customer accuracy `(α, δ)`,
//! the tier's effective sampling probability, and the station's shape —
//! and the shape is itself a function of the station state, which the
//! revision journal stamps. So the cache key is the first two as exact
//! bit patterns, and the whole cache is invalidated whenever the
//! station's revision moves — the same `IndexGeneration` revision
//! contract that pins the query index to an epoch. Budget state never
//! enters a plan (holds are taken *after* planning), so a hold or
//! rollback cannot stale the cache; anything that does change the
//! planning problem outside the station — swapping the
//! [`crate::optimizer::OptimizerConfig`] — must call
//! [`PlanCache::clear`].

use std::collections::BTreeMap;

use crate::optimizer::PerturbationPlan;
use crate::query::Accuracy;

/// One planning problem inside an epoch: the accuracy target and rate
/// tier as exact bit patterns.
pub(crate) type PlanFingerprint = (u64, u64, u64);

/// A revision-stamped memo of optimizer grid sweeps.
///
/// Deterministic by construction: a `BTreeMap` over exact bit-pattern
/// keys, storing [`PerturbationPlan`]s that are themselves pure
/// grid-sweep outputs — a hit returns the identical bits a fresh sweep
/// would.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanCache {
    /// Station revision the cached plans were swept at.
    revision: Option<u64>,
    plans: BTreeMap<PlanFingerprint, PerturbationPlan>,
}

impl PlanCache {
    /// The cache key for one accuracy target at one rate tier.
    pub fn fingerprint(accuracy: Accuracy, probability: f64) -> PlanFingerprint {
        (
            accuracy.alpha().to_bits(),
            accuracy.delta().to_bits(),
            probability.to_bits(),
        )
    }

    /// Looks a memoized plan up, first discarding every entry if the
    /// station has moved past the cached revision.
    pub fn lookup(&mut self, revision: u64, key: PlanFingerprint) -> Option<PerturbationPlan> {
        self.synchronize(revision);
        self.plans.get(&key).copied()
    }

    /// Memoizes a freshly swept plan at the given revision.
    pub fn insert(&mut self, revision: u64, key: PlanFingerprint, plan: PerturbationPlan) {
        self.synchronize(revision);
        self.plans.insert(key, plan);
    }

    /// Drops every entry (config swaps, policy changes).
    pub fn clear(&mut self) {
        self.revision = None;
        self.plans.clear();
    }

    /// Live entries (test support).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    fn synchronize(&mut self, revision: u64) {
        if self.revision != Some(revision) {
            self.plans.clear();
            self.revision = Some(revision);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(alpha_prime: f64) -> PerturbationPlan {
        let epsilon = prc_dp::budget::Epsilon::new(0.5).expect("valid epsilon");
        PerturbationPlan {
            alpha_prime,
            delta_prime: 0.5,
            epsilon,
            effective_epsilon: epsilon,
            sensitivity: 1.0,
            noise_scale: 1.0,
            probability: 0.5,
            tail_probability: 0.1,
        }
    }

    fn key(alpha: f64) -> PlanFingerprint {
        PlanCache::fingerprint(Accuracy::new(alpha, 0.5).expect("valid accuracy"), 0.25)
    }

    #[test]
    fn hits_within_a_revision_return_the_inserted_plan() {
        let mut cache = PlanCache::default();
        assert!(cache.lookup(7, key(0.1)).is_none());
        cache.insert(7, key(0.1), plan(2.0));
        cache.insert(7, key(0.2), plan(3.0));
        assert_eq!(cache.len(), 2);
        let hit = cache.lookup(7, key(0.1)).expect("cached");
        assert_eq!(hit.alpha_prime.to_bits(), 2.0f64.to_bits());
    }

    #[test]
    fn a_revision_move_discards_every_entry() {
        let mut cache = PlanCache::default();
        cache.insert(7, key(0.1), plan(2.0));
        assert!(cache.lookup(8, key(0.1)).is_none());
        assert_eq!(cache.len(), 0);
        // Looking up at the old revision after the move also misses:
        // the cache tracks one revision, never a history.
        cache.insert(8, key(0.1), plan(4.0));
        assert!(cache.lookup(7, key(0.1)).is_none());
    }

    #[test]
    fn distinct_tiers_and_targets_never_collide() {
        let a = PlanCache::fingerprint(Accuracy::new(0.1, 0.5).expect("valid"), 0.25);
        let b = PlanCache::fingerprint(Accuracy::new(0.1, 0.5).expect("valid"), 0.5);
        let c = PlanCache::fingerprint(Accuracy::new(0.1, 0.25).expect("valid"), 0.25);
        assert_ne!(a, b);
        assert_ne!(a, c);
        let mut cache = PlanCache::default();
        cache.insert(1, a, plan(1.0));
        assert!(cache.lookup(1, b).is_none());
        assert!(cache.lookup(1, c).is_none());
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = PlanCache::default();
        cache.insert(3, key(0.1), plan(1.0));
        cache.clear();
        assert!(cache.lookup(3, key(0.1)).is_none());
    }
}
