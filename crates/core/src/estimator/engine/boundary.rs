//! The shared lower/upper boundary lookup — the single
//! two-`partition_point` seam every estimator path resolves through.

use prc_net::message::SampleEntry;

use crate::query::RangeQuery;

/// Resolves a query's two boundary positions in a slice sorted
/// ascending by `key`.
///
/// Returns `(pos_l, pos_u)` where `pos_l` is the first position whose
/// key is `>= query.lower()` and `pos_u` the first whose key is
/// `> query.upper()` — so `pos_u - pos_l` items fall inside the closed
/// range, `pos_l` names a node-local predecessor candidate at
/// `pos_l - 1`, and `pos_u` a successor candidate. These are exactly
/// `partition_point(key < lower)` and `partition_point(key <= upper)`;
/// any accelerated resolver (the Eytzinger descent, the sorted-batch
/// sweep) must return the same indices bit-for-bit.
pub fn boundary_ranks_by<T>(
    items: &[T],
    query: RangeQuery,
    key: impl Fn(&T) -> f64,
) -> (usize, usize) {
    let pos_l = items.partition_point(|item| key(item) < query.lower());
    let pos_u = items.partition_point(|item| key(item) <= query.upper());
    (pos_l, pos_u)
}

/// [`boundary_ranks_by`] over a plain sorted value slice.
pub fn boundary_ranks(values: &[f64], query: RangeQuery) -> (usize, usize) {
    boundary_ranks_by(values, query, |&v| v)
}

/// [`boundary_ranks_by`] over a node's rank-sorted sample entries
/// (sorted by value, since local rank order is value order).
pub fn entry_boundary_ranks(entries: &[SampleEntry], query: RangeQuery) -> (usize, usize) {
    boundary_ranks_by(entries, query, |e| e.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(lower: f64, upper: f64) -> RangeQuery {
        RangeQuery::new(lower, upper).expect("valid range")
    }

    #[test]
    fn boundaries_bracket_the_closed_range() {
        let values = [1.0, 2.0, 2.0, 2.0, 5.0, 8.0];
        assert_eq!(boundary_ranks(&values, q(2.0, 5.0)), (1, 5));
        assert_eq!(boundary_ranks(&values, q(2.0, 2.0)), (1, 4));
        assert_eq!(boundary_ranks(&values, q(0.0, 0.5)), (0, 0));
        assert_eq!(boundary_ranks(&values, q(9.0, 10.0)), (6, 6));
        assert_eq!(boundary_ranks(&values, q(0.0, 100.0)), (0, 6));
    }

    #[test]
    fn empty_and_all_equal_slices() {
        assert_eq!(boundary_ranks(&[], q(0.0, 1.0)), (0, 0));
        let same = [3.0; 7];
        assert_eq!(boundary_ranks(&same, q(3.0, 3.0)), (0, 7));
        assert_eq!(boundary_ranks(&same, q(0.0, 2.0)), (0, 0));
        assert_eq!(boundary_ranks(&same, q(4.0, 9.0)), (7, 7));
    }

    #[test]
    fn entry_flavour_keys_on_value() {
        let entries: Vec<SampleEntry> = [1.0, 4.0, 4.0, 9.0]
            .iter()
            .enumerate()
            .map(|(i, &value)| SampleEntry {
                value,
                rank: (i + 1) as u32,
            })
            .collect();
        assert_eq!(entry_boundary_ranks(&entries, q(2.0, 4.0)), (1, 3));
        let plain: Vec<f64> = entries.iter().map(|e| e.value).collect();
        for (l, u) in [(0.0, 0.5), (1.0, 9.0), (4.0, 4.0), (10.0, 11.0)] {
            assert_eq!(
                entry_boundary_ranks(&entries, q(l, u)),
                boundary_ranks(&plain, q(l, u))
            );
        }
    }
}
