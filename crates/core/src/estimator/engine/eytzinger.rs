//! Eytzinger-layout boundary search: the sorted values relaid in
//! BFS order of their implicit binary-search tree, descended
//! branchlessly.
//!
//! `partition_point` over a large sorted array is a cache-hostile
//! random walk: each probe lands half an array away from the last. The
//! Eytzinger (Breadth-First-Search) layout stores the root at slot 1
//! and the children of slot `k` at `2k` and `2k + 1`, so the first few
//! levels of *every* search share the same few cache lines and the
//! descent is a single multiply-add per level with no branch on the
//! comparison result.
//!
//! The searcher carries each slot's original sorted position alongside
//! its key, so a search returns the exact `partition_point` index — the
//! downstream prefix/suffix aggregate lookups are untouched and the
//! bit-identity contract of the index paths is preserved by
//! construction (and proven by the exhaustive tests below plus the
//! `tests/query_engine_props.rs` sweep).

use crate::query::RangeQuery;

/// A BFS-order relayout of a sorted `f64` slice answering
/// `partition_point` queries with a branchless descent.
#[derive(Debug, Clone)]
pub struct EytzingerSearcher {
    /// Keys in BFS order; slot 0 is a never-read pivot pad so the
    /// children of slot `k` sit at `2k` and `2k + 1`.
    keys: Vec<f64>,
    /// Each BFS slot's position in the original sorted slice. `u32`
    /// keeps the sidecar at half a key's width — segments stay far
    /// below `2^32` entries (asserted at build).
    positions: Vec<u32>,
    /// Number of searchable keys (`keys.len() - 1`).
    len: usize,
}

/// In-order walk over the BFS slot tree, assigning sorted positions.
fn fill(sorted: &[f64], keys: &mut [f64], positions: &mut [u32], slot: usize, next: &mut usize) {
    if slot > sorted.len() {
        return;
    }
    fill(sorted, keys, positions, 2 * slot, next);
    keys[slot] = sorted[*next];
    positions[slot] = *next as u32;
    *next += 1;
    fill(sorted, keys, positions, 2 * slot + 1, next);
}

impl EytzingerSearcher {
    /// Builds the layout from an ascending-sorted slice (`O(n)` time and
    /// space; the in-order walk recurses to the tree height, `O(log n)`).
    pub fn from_sorted(sorted: &[f64]) -> EytzingerSearcher {
        let n = sorted.len();
        assert!(n <= u32::MAX as usize, "segment exceeds u32 position range");
        let mut keys = vec![0.0f64; n + 1];
        let mut positions = vec![0u32; n + 1];
        let mut next = 0usize;
        fill(sorted, &mut keys, &mut positions, 1, &mut next);
        EytzingerSearcher {
            keys,
            positions,
            len: n,
        }
    }

    /// Number of searchable keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the searcher holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The branchless descent: goes right while the predicate (`< x` or
    /// `<= x`) holds, then recovers the last left turn by cancelling the
    /// trailing right turns from the path word. Returns the sorted
    /// position of the first key failing the predicate (`len` when none
    /// fails) — exactly `partition_point`'s contract.
    fn descend(&self, x: f64, strict: bool) -> usize {
        let mut k = 1usize;
        while k <= self.len {
            let key = self.keys[k];
            let go_right = if strict { key < x } else { key <= x };
            k = 2 * k + usize::from(go_right);
        }
        k >>= k.trailing_ones() + 1;
        if k == 0 {
            self.len
        } else {
            self.positions[k] as usize
        }
    }

    /// `sorted.partition_point(|&v| v < x)`: position of the first key
    /// `>= x`.
    pub fn lower_bound(&self, x: f64) -> usize {
        self.descend(x, true)
    }

    /// `sorted.partition_point(|&v| v <= x)`: position of the first key
    /// `> x`.
    pub fn upper_bound(&self, x: f64) -> usize {
        self.descend(x, false)
    }

    /// Both boundary positions of a range query, matching
    /// [`super::boundary_ranks`] on the original sorted slice.
    pub fn boundary_ranks(&self, query: RangeQuery) -> (usize, usize) {
        (
            self.lower_bound(query.lower()),
            self.upper_bound(query.upper()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::engine::boundary_ranks;

    /// Probes around every value: the value itself, just below, just
    /// above, and far outside the support on both sides.
    fn probes(sorted: &[f64]) -> Vec<f64> {
        let mut probes = vec![-1e9, 1e9, 0.0, -0.0];
        for &v in sorted {
            probes.extend([v, v - 0.5, v + 0.5]);
        }
        probes
    }

    fn assert_matches_partition_point(sorted: &[f64]) {
        let searcher = EytzingerSearcher::from_sorted(sorted);
        assert_eq!(searcher.len(), sorted.len());
        for x in probes(sorted) {
            assert_eq!(
                searcher.lower_bound(x),
                sorted.partition_point(|&v| v < x),
                "lower_bound({x}) over {sorted:?}"
            );
            assert_eq!(
                searcher.upper_bound(x),
                sorted.partition_point(|&v| v <= x),
                "upper_bound({x}) over {sorted:?}"
            );
        }
    }

    /// Exhaustive equivalence over every array length 0..=64 (distinct
    /// ascending values): both predicates match `partition_point` at
    /// every boundary-adjacent probe.
    #[test]
    fn exhaustive_distinct_values() {
        for n in 0..=64usize {
            let sorted: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
            assert_matches_partition_point(&sorted);
        }
    }

    /// Exhaustive equivalence over duplicate-heavy arrays: every length
    /// 0..=48 quantized onto 4 distinct values, plus all-equal arrays.
    #[test]
    fn exhaustive_duplicates_and_all_equal() {
        for n in 0..=48usize {
            let sorted: Vec<f64> = (0..n).map(|i| ((i * 7) % 4) as f64).collect();
            let mut sorted = sorted;
            sorted.sort_by(f64::total_cmp);
            assert_matches_partition_point(&sorted);
            let same: Vec<f64> = vec![5.0; n];
            assert_matches_partition_point(&same);
        }
    }

    #[test]
    fn empty_searcher_answers_zero() {
        let searcher = EytzingerSearcher::from_sorted(&[]);
        assert!(searcher.is_empty());
        assert_eq!(searcher.lower_bound(3.0), 0);
        assert_eq!(searcher.upper_bound(3.0), 0);
    }

    #[test]
    fn boundary_ranks_matches_the_shared_helper() {
        let sorted = [0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 7.0];
        let searcher = EytzingerSearcher::from_sorted(&sorted);
        for (l, u) in [(0.0, 2.5), (1.0, 1.0), (2.5, 7.0), (8.0, 9.0), (-2.0, -1.0)] {
            let query = RangeQuery::new(l, u).expect("valid range");
            assert_eq!(
                searcher.boundary_ranks(query),
                boundary_ranks(&sorted, query)
            );
        }
    }
}
