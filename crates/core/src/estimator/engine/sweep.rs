//! The sorted-batch boundary resolver: all `2q` boundaries of a query
//! batch, sorted once and resolved in a single forward sweep.
//!
//! Answering a batch one query at a time restarts a root-to-leaf binary
//! search per boundary — `2q log S` cache-hostile probes over the same
//! array. The sweep instead sorts the batch's boundaries by their
//! resolution order and walks the value array once, forward from the
//! previous boundary's position: a cache-line stride merge-scan when
//! probes are dense (the whole sweep then streams the array once), a
//! *gallop* (exponential search) when they are sparse. Probes are
//! monotone non-decreasing, so total work is
//! `O(q log q + min(S/8 + q, q log(S/q)))` with near-sequential access.
//!
//! Determinism: the probe order is an **index-stable total order** —
//! `(value, kind, submission slot)` with `f64::total_cmp` over values,
//! except that signed zeros are collapsed to `+0.0` — so equal
//! boundaries resolve in submission order and the sort (and therefore
//! the sweep) is a pure function of the batch, independent of sort
//! implementation details, chunking, or thread count. Each probe's
//! result is provably the global `partition_point` index (the gallop
//! window always brackets the partition boundary), so chunking a batch
//! across workers cannot change any resolved position — only which
//! worker resolves it.
//!
//! Each probe is packed into one `u128` key — the value's bits mapped
//! into the order-preserving integer form of IEEE-754 total ordering
//! (`f64::total_cmp` with `-0.0` normalized to `+0.0`, since the
//! resolution predicates cannot tell the zeros apart — see
//! [`orderable_bits`]), then the kind bit, then the submission slot —
//! so the index-stable order above is plain unsigned comparison and the
//! sort runs branchless over integers instead of through a three-way
//! float comparator (measured ~4× cheaper on 8k probes, and the sort is
//! the resolver's dominant cost).

use crate::query::RangeQuery;

/// Sign bit of an `f64`'s bit pattern.
const SIGN: u64 = 1 << 63;

/// Maps `f64` bits to an unsigned integer whose `<` order is exactly
/// `f64::total_cmp` *over the values a probe can distinguish*: negative
/// values flip entirely (descending bit patterns become ascending),
/// non-negative values set the sign bit to sort above every negative.
///
/// Signed zero is normalized to `+0.0` first. `total_cmp` orders
/// `-0.0 < +0.0`, but the resolution predicates compare numerically,
/// where the two are equal — an upper probe at `-0.0` resolves *past* a
/// lower probe at `+0.0`, and sorting it earlier would strand the
/// forward-only cursor beyond the later probe's position. Collapsing
/// the zeros makes sort order agree with resolution order; ties then
/// break deterministically on the kind and slot bits.
fn orderable_bits(value: f64) -> u64 {
    let value = if value == 0.0 { 0.0 } else { value };
    let bits = value.to_bits();
    if bits & SIGN != 0 {
        !bits
    } else {
        bits | SIGN
    }
}

/// Inverse of [`orderable_bits`] — bit-exact except for a `-0.0` input,
/// which round-trips to the normalized `+0.0`. Either way the predicate
/// a probe evaluates is the same numeric `f64` comparison the baseline
/// would run (`-0.0 == +0.0` under `<` / `<=`).
fn value_of(mapped: u64) -> f64 {
    if mapped & SIGN != 0 {
        f64::from_bits(mapped & !SIGN)
    } else {
        f64::from_bits(!mapped)
    }
}

/// Packs one boundary probe: mapped value bits above, then the kind bit
/// (0 lower / 1 upper — lowers resolve first on ties), then the
/// submission slot. Unsigned order over the packed key *is* the
/// index-stable `(value, kind, slot)` order.
fn probe_key(value: f64, upper: bool, slot: usize) -> u128 {
    (u128::from(orderable_bits(value)) << 64) | (u128::from(upper) << 63) | slot as u128
}

/// Unpacks a probe key to `(value, is_lower, slot)`.
fn probe_parts(key: u128) -> (f64, bool, usize) {
    let value = value_of((key >> 64) as u64);
    let is_lower = key & (1 << 63) == 0;
    let slot = (key as u64 & (SIGN - 1)) as usize;
    (value, is_lower, slot)
}

/// Boundary positions for a batch of queries, scattered back into
/// submission order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolvedBoundaries {
    /// `pos_l[i] = values.partition_point(|&v| v < queries[i].lower())`.
    pub pos_l: Vec<usize>,
    /// `pos_u[i] = values.partition_point(|&v| v <= queries[i].upper())`.
    pub pos_u: Vec<usize>,
    /// Forward-advance steps the sweep took: gallop doublings before
    /// each window's binary search in sparse mode, cache-line strides
    /// in dense merge-scan mode — the engine's work meter (diagnostic:
    /// depends on how a driver chunks the batch, never on the resolved
    /// positions).
    pub gallop_steps: u64,
}

/// Resolves every query's two boundaries over an ascending-sorted value
/// slice, returning exactly the indices the two-`partition_point`
/// baseline ([`super::boundary_ranks`]) would.
pub fn resolve_batch(values: &[f64], queries: &[RangeQuery]) -> ResolvedBoundaries {
    let mut pos_l = vec![0usize; queries.len()];
    let mut pos_u = vec![0usize; queries.len()];
    let gallop_steps = resolve_batch_with(values, queries, |slot, is_lower, pos| {
        if is_lower {
            pos_l[slot] = pos;
        } else {
            pos_u[slot] = pos;
        }
    });
    ResolvedBoundaries {
        pos_l,
        pos_u,
        gallop_steps,
    }
}

/// The sweep core: resolves the batch's boundaries in sorted order,
/// reporting each through `visit(slot, is_lower, position)` *as it
/// resolves* — i.e. in ascending position order — and returns the
/// gallop-step meter.
///
/// Callers that look resolved positions up in side arrays (the merged
/// index's five aggregate arrays) should do so inside `visit`: the
/// positions stream monotonically, so those lookups walk the arrays
/// forward instead of jumping per submission order.
pub fn resolve_batch_with(
    values: &[f64],
    queries: &[RangeQuery],
    mut visit: impl FnMut(usize, bool, usize),
) -> u64 {
    let mut probes: Vec<u128> = Vec::with_capacity(queries.len() * 2);
    for (slot, query) in queries.iter().enumerate() {
        probes.push(probe_key(query.lower(), false, slot));
        probes.push(probe_key(query.upper(), true, slot));
    }
    // Index-stable total order: ties on (value, kind) keep submission
    // order, so the permutation is unique and `sort_unstable` is safe.
    probes.sort_unstable();

    // Dense batches (small gaps between consecutive resolved positions)
    // are resolved by a cache-line stride merge-scan: the whole sweep
    // then walks the array once, forward, one probe per line — which
    // the hardware prefetcher streams — instead of paying a scattered
    // gallop-plus-binary-search per boundary. Sparse batches gallop.
    // Both modes return the exact partition point, so the choice (which
    // can differ per chunk of a split batch) never changes a position.
    let dense = values.len() / probes.len().max(1) < MERGE_GAP_MAX;

    let mut gallop_steps = 0u64;
    let mut cursor = 0usize;
    for key in probes {
        let (value, is_lower, slot) = probe_parts(key);
        cursor = if dense {
            advance_to(values, cursor, value, is_lower, &mut gallop_steps)
        } else {
            gallop_from(values, cursor, value, is_lower, &mut gallop_steps)
        };
        visit(slot, is_lower, cursor);
    }
    gallop_steps
}

/// Expected elements per probe below which the stride merge-scan beats
/// galloping: at (or under) one-to-two cache lines per probe the scan's
/// sequential traffic is cheaper than scattered gallop probes.
const MERGE_GAP_MAX: usize = 128;

/// Dense-mode forward advance to `values.partition_point(pred)` given
/// the boundary lies at or after `start`: strides one cache line (8
/// `f64`s) while the line's last element still satisfies the predicate
/// — sortedness makes that one check cover the octet — then finishes
/// element-wise inside the final line.
fn advance_to(values: &[f64], start: usize, x: f64, strict: bool, steps: &mut u64) -> usize {
    let pred = |v: f64| if strict { v < x } else { v <= x };
    let n = values.len();
    let mut cursor = start;
    while cursor + 8 <= n && pred(values[cursor + 7]) {
        cursor += 8;
        *steps += 1;
    }
    while cursor < n && pred(values[cursor]) {
        cursor += 1;
    }
    cursor
}

/// Finds `values.partition_point(pred)` given that the partition
/// boundary is known to lie at or after `start`: doubles a probe window
/// forward until it brackets the boundary, then binary-searches inside
/// it. The window invariant (predicate true before it, false after)
/// makes the result exactly the global partition point.
fn gallop_from(values: &[f64], start: usize, x: f64, strict: bool, steps: &mut u64) -> usize {
    let pred = |v: f64| if strict { v < x } else { v <= x };
    let n = values.len();
    if start >= n || !pred(values[start]) {
        return start;
    }
    // `start` satisfies the predicate, so the boundary is in
    // `(start, n]`. `known` is the largest offset proven true.
    let mut known = 0usize;
    let mut bound = 1usize;
    while start + bound < n && pred(values[start + bound]) {
        known = bound;
        bound = bound.saturating_mul(2);
        *steps += 1;
    }
    let lo = start + known + 1;
    let hi = (start + bound).min(n);
    lo + values[lo..hi].partition_point(|&v| pred(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::engine::boundary_ranks;

    fn q(lower: f64, upper: f64) -> RangeQuery {
        RangeQuery::new(lower, upper).expect("valid range")
    }

    fn assert_matches_baseline(values: &[f64], queries: &[RangeQuery]) {
        let resolved = resolve_batch(values, queries);
        for (i, &query) in queries.iter().enumerate() {
            let (pos_l, pos_u) = boundary_ranks(values, query);
            assert_eq!(
                (resolved.pos_l[i], resolved.pos_u[i]),
                (pos_l, pos_u),
                "query {i} [{}, {}] over {values:?}",
                query.lower(),
                query.upper()
            );
        }
    }

    #[test]
    fn unordered_batches_scatter_back_to_submission_order() {
        let values = [0.0, 1.0, 1.0, 2.0, 5.0, 5.0, 9.0];
        let queries = [
            q(5.0, 9.0),
            q(0.0, 1.0),
            q(1.0, 5.0),
            q(-3.0, -1.0),
            q(10.0, 20.0),
            q(1.0, 1.0),
        ];
        assert_matches_baseline(&values, &queries);
    }

    #[test]
    fn duplicate_boundaries_and_all_equal_values() {
        let values = [4.0; 9];
        let queries = [q(4.0, 4.0), q(4.0, 4.0), q(0.0, 4.0), q(4.0, 8.0)];
        assert_matches_baseline(&values, &queries);
        assert_matches_baseline(&[], &queries);
        assert_matches_baseline(&values, &[]);
    }

    /// Signed-zero bounds over zero-valued samples: `-0.0` and `+0.0`
    /// are distinct under `total_cmp` but equal under the resolution
    /// predicates, so probe keys must collapse them — otherwise an
    /// upper probe at `-0.0` sorts before a lower probe at `+0.0` yet
    /// resolves to a larger position, stranding the forward-only
    /// cursor. This is the exact regression: `[-1, -0.0]` then
    /// `[0.0, 1]` over `[0.0]` must give `(0, 1)` for the second query.
    #[test]
    fn signed_zero_bounds_match_baseline() {
        assert_matches_baseline(&[0.0], &[q(-1.0, -0.0), q(0.0, 1.0)]);
        let values = [-2.0, -0.0, -0.0, 0.0, 0.0, 0.0, 3.0];
        let zeros = [-0.0, 0.0];
        let mut queries = Vec::new();
        for lower in zeros {
            for upper in zeros {
                queries.push(q(lower, upper));
            }
            queries.push(q(-5.0, lower));
            queries.push(q(lower, 5.0));
        }
        // Interleave non-zero boundaries so the cursor crosses the zero
        // run from both sides in one sweep.
        queries.push(q(-2.0, -0.0));
        queries.push(q(0.0, 3.0));
        assert_matches_baseline(&values, &queries);
        // Sparse mode (gallop) must collapse the zeros too.
        let wide: Vec<f64> = (0..4096).map(|i| i as f64 - 2048.0).collect();
        assert_matches_baseline(&wide, &[q(-9.0, -0.0), q(0.0, 9.0)]);
    }

    #[test]
    fn dense_grids_exercise_every_gallop_window() {
        let values: Vec<f64> = (0..257).map(|i| (i / 3) as f64).collect();
        let queries: Vec<RangeQuery> = (0..64)
            .map(|i| {
                let lower = ((i * 37) % 90) as f64;
                q(lower, lower + ((i * 13) % 17) as f64)
            })
            .collect();
        assert_matches_baseline(&values, &queries);
    }

    /// Chunking a batch cannot change any resolved position — the
    /// per-chunk sweeps and the whole-batch sweep agree exactly.
    #[test]
    fn chunked_and_whole_batch_sweeps_agree() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 7) % 23) as f64).collect();
        let mut values = values;
        values.sort_by(f64::total_cmp);
        let queries: Vec<RangeQuery> = (0..31)
            .map(|i| {
                let lower = ((i * 11) % 20) as f64;
                q(lower, lower + ((i * 5) % 7) as f64)
            })
            .collect();
        let whole = resolve_batch(&values, &queries);
        for chunk_len in 1..=queries.len() {
            let mut pos_l = Vec::new();
            let mut pos_u = Vec::new();
            for chunk in queries.chunks(chunk_len) {
                let part = resolve_batch(&values, chunk);
                pos_l.extend(part.pos_l);
                pos_u.extend(part.pos_u);
            }
            assert_eq!(pos_l, whole.pos_l, "chunk_len {chunk_len}");
            assert_eq!(pos_u, whole.pos_u, "chunk_len {chunk_len}");
        }
    }
}
