//! Sampling-based range-count estimators (§III-A).
//!
//! Both estimators consume the per-node sample sets collected by the
//! `prc-net` base station and estimate the global count
//! `γ(l, u, D) = Σᵢ γ(l, u, i)` as a sum of independent per-node
//! estimates:
//!
//! * [`BasicCounting`] — the straightforward baseline
//!   `γ_B = |{x ∈ S : l ≤ x ≤ u}|/p`; unbiased, but its variance
//!   `γ(l,u,D)(1−p)/p` grows with the queried range, up to `|D|(1−p)/p`;
//! * [`RankCounting`] — the paper's estimator, which exploits each sampled
//!   element's local rank. Its per-node variance is bounded by `8/p²`
//!   **independent of the range width** (Theorem 3.1), so the global
//!   variance is at most `8k/p²` (Theorem 3.2).
//!
//! Estimators may additionally offer a per-epoch [`QueryIndex`]
//! (via [`RangeCountEstimator::build_index`]): an immutable snapshot built
//! once after a collection round that answers subsequent queries faster
//! than the per-node walk. [`RankIndex`] is RankCounting's monolithic
//! index — a merged prefix-rank structure that turns `O(k log s)` per
//! query into `O(log S)` with bit-identical results — and
//! [`SegmentedRankIndex`] is its incrementally-maintained successor,
//! absorbing per-round collection deltas instead of rebuilding.

pub mod basic;
pub mod engine;
pub mod index;
pub mod rank;

pub use basic::BasicCounting;
pub use index::{BuildAccrual, CompactionPolicy, CostModel, RankIndex, SegmentedRankIndex};
pub use rank::RankCounting;

use prc_net::base_station::{BaseStation, NodeSample};
use prc_net::message::NodeId;

use crate::query::RangeQuery;

/// What one [`QueryIndex::absorb_delta`] call did, for the broker's
/// stage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Sample entries appended in the delta's fresh segment.
    pub appended_entries: usize,
    /// Entries newly tombstoned in older segments.
    pub tombstoned_entries: usize,
    /// Compaction steps applied after the append.
    pub compactions: u64,
}

/// A batch of estimates resolved in one call, plus the engine's work
/// meter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchEstimate {
    /// One estimate per submitted query, in submission order.
    pub estimates: Vec<f64>,
    /// Forward-advance steps the sorted-batch sweep took — gallop
    /// doublings when probes are sparse, cache-line strides in dense
    /// merge-scan mode (`0` on the per-query fallback path).
    /// Diagnostic: the total depends on how the caller chunks the
    /// batch, never on the estimates.
    pub gallop_steps: u64,
}

/// A per-epoch query accelerator over a station's samples.
///
/// An index answers queries against the sample state it was last
/// synchronized with. After a collection round, owners (the broker) hand
/// the round's changed-node set to [`QueryIndex::absorb_delta`];
/// implementations that maintain themselves incrementally absorb it,
/// while snapshot-only implementations decline and are discarded and
/// rebuilt. Either way, implementations must return results
/// **bit-identical** to the estimator's direct
/// [`RangeCountEstimator::estimate`] on the same station, so switching
/// between the paths can never change a released answer.
pub trait QueryIndex: std::fmt::Debug + Send + Sync {
    /// Estimates the global count `γ(l, u, D)` for one query.
    fn estimate(&self, query: RangeQuery) -> f64;

    /// Estimates a whole batch of queries in submission order.
    ///
    /// Must return exactly the bits of calling
    /// [`QueryIndex::estimate`] per query; implementations backed by
    /// the [`engine`] resolve the batch's sorted boundaries in one
    /// forward sweep instead ([`engine::resolve_batch`]), which
    /// preserves the identity by construction. The default falls back
    /// to the per-query path.
    fn estimate_batch(&self, queries: &[RangeQuery]) -> BatchEstimate {
        BatchEstimate {
            estimates: queries.iter().map(|&query| self.estimate(query)).collect(),
            gallop_steps: 0,
        }
    }

    /// Number of merged sample entries the index covers (`S`).
    fn merged_entries(&self) -> usize;

    /// The uniform sampling probability the index was built at.
    fn probability(&self) -> f64;

    /// Live segment count (`1` for monolithic snapshot indexes).
    fn segments(&self) -> usize {
        1
    }

    /// Brings the index up to date with `station` after a collection
    /// round that changed exactly the nodes in `changed`.
    ///
    /// Returns `None` when the index cannot absorb the delta (snapshot
    /// implementations, or the station lost its uniform probability);
    /// the owner must then discard the index and rebuild from scratch.
    fn absorb_delta(&mut self, station: &BaseStation, changed: &[NodeId]) -> Option<DeltaOutcome> {
        let _ = (station, changed);
        None
    }
}

/// A sampling-based estimator of range counts.
///
/// Implementations must produce *unbiased* per-node estimates whenever the
/// query range intersects the node's value support (see the crate docs for
/// the degenerate boundary cases).
pub trait RangeCountEstimator {
    /// Short human-readable name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Estimates the local count `γ(l, u, i)` from one node's sample set.
    ///
    /// Returns `0` when the node holds no data. The estimate may be
    /// negative or exceed `n_i`; consumers that need a physical count may
    /// clamp, but clamping forfeits unbiasedness.
    fn estimate_node(&self, sample: &NodeSample, query: RangeQuery) -> f64;

    /// Estimates the global count `γ(l, u, D) = Σᵢ γ(l, u, i)`.
    fn estimate(&self, station: &BaseStation, query: RangeQuery) -> f64 {
        station
            .node_samples()
            .map(|s| self.estimate_node(s, query))
            .sum()
    }

    /// Worst-case variance bound of the *global* estimate for `k` nodes,
    /// population `n`, and sampling probability `p`.
    fn variance_bound(&self, k: usize, n: usize, p: f64) -> f64;

    /// Builds a per-epoch [`QueryIndex`] over the station's current
    /// samples, if this estimator supports one *and* the station's state
    /// admits it (e.g. a uniform sampling probability).
    ///
    /// The default declines; estimators without an accelerated path run
    /// every query through [`RangeCountEstimator::estimate`].
    fn build_index(&self, station: &BaseStation) -> Option<Box<dyn QueryIndex>> {
        let _ = station;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prc_net::message::{NodeId, SampleEntry, SampleMessage};

    /// The default `estimate` sums per-node estimates.
    struct One;
    impl RangeCountEstimator for One {
        fn name(&self) -> &'static str {
            "one"
        }
        fn estimate_node(&self, _: &NodeSample, _: RangeQuery) -> f64 {
            1.0
        }
        fn variance_bound(&self, _: usize, _: usize, _: f64) -> f64 {
            0.0
        }
    }

    #[test]
    fn default_estimate_sums_nodes() {
        let mut station = BaseStation::new();
        for i in 0..5 {
            station.ingest(SampleMessage {
                node_id: NodeId(i),
                population_size: 10,
                probability: 0.5,
                entries: vec![SampleEntry {
                    value: 1.0,
                    rank: 1,
                }],
            });
        }
        let q = RangeQuery::new(0.0, 2.0).unwrap();
        assert_eq!(One.estimate(&station, q), 5.0);
    }
}
