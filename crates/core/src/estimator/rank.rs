//! The RankCounting estimator (§III-A, Theorems 3.1–3.3).
//!
//! Each node ships sampled values together with their **local ranks**
//! (1-based positions in the node's sorted data). Given a query `[l, u]`,
//! the estimator looks only at two *boundary* samples:
//!
//! * the predecessor `𝔭(l, i)` — the sampled element of largest rank with
//!   value **strictly below** `l`;
//! * the successor `𝔰(u, i)` — the sampled element of smallest rank with
//!   value **strictly above** `u`;
//!
//! and corrects the rank distance between them by the expected boundary
//! gap `1/p` per existing side:
//!
//! ```text
//! γ̂(l, u, i) = rank(𝔰) − rank(𝔭) + 1 − 2/p   if both exist
//!             = n_i − rank(𝔭) + 1 − 1/p       if only 𝔭 exists
//!             = rank(𝔰) − 1/p                 if only 𝔰 exists
//!             = n_i                           otherwise
//! ```
//!
//! **Tie handling.** The paper defines the predecessor as the largest
//! sampled value *no larger than* `l`, implicitly assuming continuous data
//! where ties have probability zero. We use the strict inequality: the
//! boundary gaps `rank(l) − rank(𝔭)` and `rank(𝔰) − rank(u)` are then
//! truncated-geometric(p) *exactly*, even under duplicate values, which is
//! what the unbiasedness proof of Theorem 3.1 requires. With `p = 1` the
//! estimator degenerates to the exact count in every case.
//!
//! **Degenerate ranges.** When `[l, u]` lies strictly outside the node's
//! value support, the theorem's premises (`r(l)`, `r(u)` well defined) do
//! not hold; the estimator remains well defined and is still
//! approximately zero-mean, but exact unbiasedness is not guaranteed.
//! Tests cover both regimes.
//!
//! **Canonical aggregation.** Every per-node estimate is of the form
//! `Aᵢ − Bᵢ/p` with exact integers `Aᵢ, Bᵢ` (see
//! [`crate::estimator::index`]). When the station reports one uniform
//! sampling probability, the global [`RangeCountEstimator::estimate`]
//! accumulates `(ΣA, ΣB)` exactly and combines once — the *same*
//! computation the `O(log S)` [`crate::estimator::RankIndex`] performs
//! from its prefix sums, so the scan and indexed paths release
//! bit-identical answers. Heterogeneous stations (mixed per-node rates)
//! fall back to summing [`RangeCountEstimator::estimate_node`] floats in
//! node-id order, which is still deterministic.

use prc_net::base_station::{BaseStation, NodeSample};

use crate::estimator::engine::entry_boundary_ranks;
use crate::estimator::index::{finish_rank_terms, scan_rank_terms, SegmentedRankIndex};
use crate::estimator::{QueryIndex, RangeCountEstimator};
use crate::query::RangeQuery;

/// The paper's rank-based estimator: unbiased with per-node variance at
/// most `8/p²` regardless of range width (Theorem 3.1), hence global
/// variance at most `8k/p²` (Theorem 3.2).
///
/// # Examples
///
/// ```
/// use prc_core::estimator::{RangeCountEstimator, RankCounting};
/// use prc_core::query::RangeQuery;
/// use prc_net::network::FlatNetwork;
///
/// # fn main() -> Result<(), prc_core::CoreError> {
/// let mut network = FlatNetwork::from_partitions(
///     vec![(0..1000).map(f64::from).collect(), (1000..2000).map(f64::from).collect()],
///     7,
/// );
/// network.collect_samples(0.25);
/// let estimate = RankCounting.estimate(network.station(), RangeQuery::new(500.0, 1500.0)?);
/// // Truth is 1001; the estimate has standard deviation ≤ √(8·2)/0.25.
/// assert!((estimate - 1001.0).abs() < 500.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankCounting;

impl RankCounting {
    /// Creates the estimator.
    pub fn new() -> Self {
        RankCounting
    }
}

impl RangeCountEstimator for RankCounting {
    fn name(&self) -> &'static str {
        "RankCounting"
    }

    fn estimate_node(&self, sample: &NodeSample, query: RangeQuery) -> f64 {
        let n_i = sample.population_size;
        if n_i == 0 {
            return 0.0;
        }
        let p = sample.probability;
        if p <= 0.0 {
            // Nothing was ever sampled; the only unbiased guess with no
            // information is the whole-population fallback of case 4.
            return n_i as f64;
        }
        let entries = sample.entries();
        // Entries are sorted by rank, and the node's data is sorted, so
        // they are sorted by value as well (ties keep rank order).
        let (pred_idx, succ_idx) = entry_boundary_ranks(entries, query);
        let predecessor = pred_idx.checked_sub(1).map(|i| entries[i]);
        let successor = entries.get(succ_idx);

        match (predecessor, successor) {
            (Some(pred), Some(succ)) => (succ.rank as f64 - pred.rank as f64 + 1.0) - 2.0 / p,
            (Some(pred), None) => (n_i as f64 - pred.rank as f64 + 1.0) - 1.0 / p,
            (None, Some(succ)) => succ.rank as f64 - 1.0 / p,
            (None, None) => n_i as f64,
        }
    }

    /// Canonical station-level estimate: exact integer aggregation over
    /// the per-node boundary searches whenever the station has one
    /// uniform sampling probability (bit-identical to [`RankIndex`]),
    /// falling back to the per-node float sum otherwise.
    fn estimate(&self, station: &BaseStation, query: RangeQuery) -> f64 {
        match station.uniform_probability() {
            Some(p) => {
                let (sum_a, sum_b) = scan_rank_terms(station, query);
                finish_rank_terms(sum_a, sum_b, p)
            }
            None => station
                .node_samples()
                .map(|s| self.estimate_node(s, query))
                .sum(),
        }
    }

    fn variance_bound(&self, k: usize, _n: usize, p: f64) -> f64 {
        if p <= 0.0 {
            return f64::INFINITY;
        }
        8.0 * k as f64 / (p * p)
    }

    fn build_index(&self, station: &BaseStation) -> Option<Box<dyn QueryIndex>> {
        SegmentedRankIndex::build(station).map(|index| Box::new(index) as Box<dyn QueryIndex>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prc_net::base_station::BaseStation;
    use prc_net::message::{NodeId, SampleEntry, SampleMessage};
    use prc_net::network::FlatNetwork;

    fn q(l: f64, u: f64) -> RangeQuery {
        RangeQuery::new(l, u).unwrap()
    }

    fn sample(values_ranks: &[(f64, u32)], n: usize, p: f64) -> NodeSample {
        let mut station = BaseStation::new();
        station.ingest(SampleMessage {
            node_id: NodeId(0),
            population_size: n,
            probability: p,
            entries: values_ranks
                .iter()
                .map(|&(value, rank)| SampleEntry { value, rank })
                .collect(),
        });
        station.node_sample(NodeId(0)).unwrap().clone()
    }

    #[test]
    fn four_cases_compute_the_papers_formulas() {
        let p = 0.5;
        // Node data (conceptually): ranks 1..=10 with value = rank.
        let s = sample(&[(2.0, 2), (5.0, 5), (9.0, 9)], 10, p);

        // Both predecessor (2.0 @ rank 2) and successor (9.0 @ rank 9)
        // exist for the query [3, 7]: (9 - 2 + 1) - 2/p = 8 - 4 = 4.
        assert_eq!(RankCounting.estimate_node(&s, q(3.0, 7.0)), 4.0);

        // Only predecessor for [6, 20] (no sampled value > 20):
        // (10 - 5 + 1) - 1/p = 6 - 2 = 4.
        assert_eq!(RankCounting.estimate_node(&s, q(6.0, 20.0)), 4.0);

        // Only successor for [-5, 1] (no sampled value < -5):
        // rank(2.0) - 1/p = 2 - 2 = 0.
        assert_eq!(RankCounting.estimate_node(&s, q(-5.0, 1.0)), 0.0);

        // Neither for [-10, 30]: n_i = 10.
        assert_eq!(RankCounting.estimate_node(&s, q(-10.0, 30.0)), 10.0);
    }

    #[test]
    fn boundary_values_use_strict_comparison() {
        let p = 0.5;
        let s = sample(&[(3.0, 3), (7.0, 7)], 10, p);
        // Query [3, 7]: the sampled 3.0 is *in* range (not a predecessor),
        // and the sampled 7.0 is in range (not a successor) => case 4.
        assert_eq!(RankCounting.estimate_node(&s, q(3.0, 7.0)), 10.0);
        // Query (3, 7) shifted: [3.5, 6.5] makes them boundary samples.
        assert_eq!(
            RankCounting.estimate_node(&s, q(3.5, 6.5)),
            (7.0 - 3.0 + 1.0) - 2.0 / p
        );
    }

    #[test]
    fn p_one_is_exact_for_every_case() {
        // With p = 1 the estimator must equal the exact count, whichever
        // case fires.
        let values: Vec<f64> = vec![1.0, 2.0, 2.0, 3.0, 5.0, 5.0, 8.0, 9.0];
        let mut net = FlatNetwork::from_partitions(vec![values.clone()], 1);
        net.collect_samples(1.0);
        for (l, u) in [
            (2.0, 5.0),   // both boundary samples exist
            (2.0, 9.0),   // no successor
            (1.0, 5.0),   // no predecessor
            (1.0, 9.0),   // neither
            (0.0, 100.0), // covers everything
            (4.0, 4.5),   // empty interior range
            (2.0, 2.0),   // point query on duplicates
            (10.0, 20.0), // entirely above support
            (-5.0, 0.0),  // entirely below support
        ] {
            let truth = values.iter().filter(|&&v| v >= l && v <= u).count() as f64;
            let est = RankCounting.estimate(net.station(), q(l, u));
            assert_eq!(est, truth, "({l}, {u})");
        }
    }

    #[test]
    fn empty_node_estimates_zero() {
        let s = sample(&[], 0, 0.5);
        assert_eq!(RankCounting.estimate_node(&s, q(0.0, 1.0)), 0.0);
    }

    #[test]
    fn unsampled_node_falls_back_to_population() {
        let s = sample(&[], 10, 0.0);
        assert_eq!(RankCounting.estimate_node(&s, q(0.0, 1.0)), 10.0);
    }

    #[test]
    fn unbiased_monte_carlo_single_node() {
        // Theorem 3.1: E[γ̂(l, u, i)] = γ(l, u, i).
        let n = 600;
        let p = 0.25;
        let truth = 201.0; // values 200..=400
        let trials = 4_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for seed in 0..trials {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut net = FlatNetwork::from_partitions(vec![values], seed);
            net.collect_samples(p);
            let e = RankCounting.estimate(net.station(), q(200.0, 400.0));
            sum += e;
            sum_sq += (e - truth).powi(2);
        }
        let mean = sum / trials as f64;
        let mse = sum_sq / trials as f64;
        // Var ≤ 8/p² = 128; std error of the mean ≈ sqrt(128/4000) ≈ 0.18.
        assert!((mean - truth).abs() < 0.7, "mean {mean} vs truth {truth}");
        // Theorem 3.1's variance bound (MSE ≈ variance for an unbiased
        // estimator).
        assert!(
            mse <= 8.0 / (p * p) * 1.1,
            "MSE {mse} exceeds the 8/p² bound {}",
            8.0 / (p * p)
        );
    }

    #[test]
    fn unbiased_monte_carlo_multi_node_with_duplicates() {
        // Theorem 3.2 with tie-heavy data: values are i/10 so each value
        // appears 10 times; the strict predecessor/successor definition
        // must keep the estimator unbiased.
        let k = 4;
        let per_node = 300;
        let p = 0.3;
        let trials = 3_000;
        let partitions: Vec<Vec<f64>> = (0..k)
            .map(|i| {
                (0..per_node)
                    .map(|j| ((i * per_node + j) / 10) as f64)
                    .collect()
            })
            .collect();
        let truth = partitions
            .iter()
            .flatten()
            .filter(|&&v| (20.0..=75.0).contains(&v))
            .count() as f64;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut net = FlatNetwork::from_partitions(partitions.clone(), seed + 50_000);
            net.collect_samples(p);
            sum += RankCounting.estimate(net.station(), q(20.0, 75.0));
        }
        let mean = sum / trials as f64;
        // Var ≤ 8k/p² ≈ 356; std error ≈ sqrt(356/3000) ≈ 0.35.
        assert!((mean - truth).abs() < 1.4, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn variance_is_insensitive_to_range_width() {
        // The headline property: unlike BasicCounting, RankCounting's
        // spread does not grow with the queried range.
        let p = 0.2;
        let trials = 1_200;
        let spread = |l: f64, u: f64, offset: u64| {
            let truth = {
                let count = (0..2_000)
                    .filter(|&i| (i as f64) >= l && (i as f64) <= u)
                    .count();
                count as f64
            };
            let mut sq = 0.0;
            for seed in 0..trials {
                let values: Vec<f64> = (0..2_000).map(|i| i as f64).collect();
                let mut net = FlatNetwork::from_partitions(vec![values], seed + offset);
                net.collect_samples(p);
                let e = RankCounting.estimate(net.station(), q(l, u));
                sq += (e - truth).powi(2);
            }
            sq / trials as f64
        };
        let narrow = spread(950.0, 1_050.0, 1_000);
        let wide = spread(10.0, 1_990.0, 2_000);
        let bound = 8.0 / (p * p);
        assert!(
            narrow <= bound * 1.15,
            "narrow variance {narrow} > bound {bound}"
        );
        assert!(wide <= bound * 1.15, "wide variance {wide} > bound {bound}");
        // And the two are of the same order (within 4x), unlike the baseline.
        assert!(
            wide < narrow * 4.0 + bound,
            "wide {wide} vs narrow {narrow}"
        );
    }

    #[test]
    fn variance_bound_formula() {
        assert_eq!(RankCounting.variance_bound(2, 999, 0.5), 64.0);
        assert_eq!(RankCounting.variance_bound(1, 999, 1.0), 8.0);
        assert_eq!(RankCounting.variance_bound(1, 999, 0.0), f64::INFINITY);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RankCounting.name(), "RankCounting");
        assert_eq!(RankCounting::new(), RankCounting);
    }

    #[test]
    fn canonical_aggregation_tracks_the_per_node_sum() {
        // The uniform-probability fast path reassociates the sum through
        // exact integers; it must agree with the naive per-node float sum
        // to within reassociation rounding (and exactly at p = 1).
        let partitions: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..400).map(|j| ((i * 400 + j) / 7) as f64).collect())
            .collect();
        for p in [0.1, 0.37, 1.0] {
            let mut net = FlatNetwork::from_partitions(partitions.clone(), 42);
            net.collect_samples(p);
            for (l, u) in [(10.0, 250.0), (0.0, 400.0), (-5.0, -1.0), (90.0, 90.0)] {
                let fast = RankCounting.estimate(net.station(), q(l, u));
                let naive: f64 = net
                    .station()
                    .node_samples()
                    .map(|s| RankCounting.estimate_node(s, q(l, u)))
                    .sum();
                if p == 1.0 {
                    assert_eq!(fast, naive, "p=1 must be exact, ({l}, {u})");
                } else {
                    let tol = 1e-9 * (1.0 + naive.abs());
                    assert!(
                        (fast - naive).abs() <= tol,
                        "p={p} ({l}, {u}): fast {fast} vs naive {naive}"
                    );
                }
            }
        }
    }

    #[test]
    fn heterogeneous_stations_use_the_per_node_fallback() {
        let mut station = BaseStation::new();
        for (node, p) in [(0u32, 0.5), (1, 0.25)] {
            station.ingest(SampleMessage {
                node_id: NodeId(node),
                population_size: 10,
                probability: p,
                entries: vec![
                    SampleEntry {
                        value: 2.0,
                        rank: 2,
                    },
                    SampleEntry {
                        value: 8.0,
                        rank: 8,
                    },
                ],
            });
        }
        assert_eq!(station.uniform_probability(), None);
        let expected: f64 = station
            .node_samples()
            .map(|s| RankCounting.estimate_node(s, q(3.0, 7.0)))
            .sum();
        let actual = RankCounting.estimate(&station, q(3.0, 7.0));
        assert_eq!(actual.to_bits(), expected.to_bits());
    }

    #[test]
    fn build_index_round_trips_through_the_trait() {
        let partitions: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..200).map(|j| (i * 200 + j) as f64).collect())
            .collect();
        let mut net = FlatNetwork::from_partitions(partitions, 5);
        net.collect_samples(0.3);
        let index = RankCounting.build_index(net.station()).expect("uniform");
        let query = q(100.0, 650.0);
        assert_eq!(
            index.estimate(query).to_bits(),
            RankCounting.estimate(net.station(), query).to_bits()
        );
        // BasicCounting has no index.
        assert!(crate::estimator::BasicCounting
            .build_index(net.station())
            .is_none());
    }
}
