//! The merged prefix-rank query index: `O(log S)` RankCounting.
//!
//! The per-node RankCounting path answers a query `[l, u]` with **two
//! binary searches per node** — `O(k·log s)` over `k` nodes. That is fine
//! for one query, but the broker's whole value proposition is amortizing
//! one collection epoch across many priced queries, and at `k` in the tens
//! of thousands the per-node scan dominates every batch. [`RankIndex`]
//! removes the `k` factor: after a collection epoch it merges all `S`
//! sample entries into one value-sorted structure-of-arrays whose prefix
//! sums encode *every* node's boundary state at every threshold, so one
//! query costs **two binary searches total** — `O(log S)`.
//!
//! ## The per-case decomposition
//!
//! Theorem 3.1 gives four per-node cases, depending on whether the
//! boundary predecessor `𝔭(l, i)` (largest-rank sample with value `< l`)
//! and successor `𝔰(u, i)` (smallest-rank sample with value `> u`) exist:
//!
//! ```text
//! γ̂ᵢ = rank(𝔰) − rank(𝔭) + 1 − 2/p   (both)
//!    = n_i − rank(𝔭) + 1 − 1/p       (predecessor only)
//!    = rank(𝔰) − 1/p                 (successor only)
//!    = n_i                           (neither)
//! ```
//!
//! Every case is of the form `Aᵢ − Bᵢ/p` with `Aᵢ ∈ ℤ` and
//! `Bᵢ = [𝔭 exists] + [𝔰 exists] ∈ {0, 1, 2}`, and the global sum
//! regroups into five range-decomposable integer aggregates:
//!
//! ```text
//! Σᵢ Aᵢ = Σ_{𝔰 exists} rank(𝔰)            (R_succ)
//!       − Σ_{𝔭 exists} rank(𝔭)            (R_pred)
//!       + #{i : 𝔭 exists}                  (C_pred)
//!       + Σ_{𝔰 missing} n_i                (N − N_succ)
//! Σᵢ Bᵢ = C_pred + #{i : 𝔰 exists}         (C_succ)
//! ```
//!
//! In the merged value-sorted order, each node's entries keep their rank
//! order, so "node `i`'s predecessor under threshold `c`" is simply its
//! *last* entry among the first `c` merged entries. Extending the prefix
//! by one entry of node `i` with rank `r` therefore changes `R_pred` by
//! `r − r_prev` (the node's previous entry's rank, `0` for its first) —
//! a per-entry constant. The same telescoping works from the right for
//! `R_succ`. All five aggregates become prefix/suffix sums over per-entry
//! deltas, evaluated at the two cut positions
//! `pos_l = #{values < l}` and `pos_u = #{values ≤ u}`.
//!
//! ## Bit-exact agreement with the per-node path
//!
//! Both the indexed path and the per-node scan ([`scan_rank_terms`])
//! accumulate the *same* exact integers `(ΣA, ΣB)` and apply the *same*
//! final float expression ([`finish_rank_terms`]), so their results are
//! bit-identical by construction — the broker may switch between them
//! freely without perturbing PR 1's determinism and cross-driver identity
//! guarantees. The decomposition requires one shared `1/p`, so the index
//! only exists for stations whose data-bearing nodes report one uniform
//! positive sampling probability ([`BaseStation::uniform_probability`]);
//! heterogeneous stations stay on the per-node path.
//!
//! ## Complexity
//!
//! | path                | per query      | build                   |
//! |---------------------|----------------|-------------------------|
//! | per-node scan       | `O(k log s)`   | —                       |
//! | [`RankIndex`]       | `O(log S)`     | `O(S log S)` (parallel) |
//!
//! The build shards one run per node (entries are already value-sorted),
//! k-way merges shards over crossbeam scoped threads, and accumulates the
//! prefix/suffix arrays in one sequential pass.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use prc_net::base_station::{BaseStation, NodeSample};

use crate::estimator::QueryIndex;
use crate::query::RangeQuery;

/// The canonical combine step shared by the indexed and per-node paths:
/// `ΣA − ΣB/p` evaluated with one fixed floating-point expression.
///
/// Keeping this a single function is what makes the two paths bit-exact:
/// both feed it identical exact integers, so both release identical bits.
/// With `p = 1` the result is an exact integer (the estimator degenerates
/// to exact counting).
pub fn finish_rank_terms(sum_a: i64, sum_b: i64, p: f64) -> f64 {
    sum_a as f64 - sum_b as f64 / p
}

/// The per-node reference path: accumulates the exact integer aggregates
/// `(ΣA, ΣB)` with two binary searches per data-bearing node.
///
/// [`crate::estimator::RankCounting::estimate`] uses this whenever the
/// station reports a uniform sampling probability; [`RankIndex`] must
/// agree with it bit-for-bit on every query (enforced by the build's
/// property tests and the benches' self-checks).
pub fn scan_rank_terms(station: &BaseStation, query: RangeQuery) -> (i64, i64) {
    let mut sum_a: i64 = 0;
    let mut sum_b: i64 = 0;
    for sample in station.data_bearing_samples() {
        let entries = sample.entries();
        // Entries are sorted by rank, hence by value (node data is sorted).
        let pred_idx = entries.partition_point(|e| e.value < query.lower());
        if pred_idx > 0 {
            sum_a += 1 - i64::from(entries[pred_idx - 1].rank);
            sum_b += 1;
        }
        let succ_idx = entries.partition_point(|e| e.value <= query.upper());
        match entries.get(succ_idx) {
            Some(succ) => {
                sum_a += i64::from(succ.rank);
                sum_b += 1;
            }
            None => sum_a += sample.population_size as i64,
        }
    }
    (sum_a, sum_b)
}

/// One merged entry with its telescoping deltas, produced per node before
/// the merge (a node's neighbours in merged order are its neighbours in
/// its own rank-sorted slice).
#[derive(Debug, Clone, Copy)]
struct MergedEntry {
    value: f64,
    /// Dense node index (position among data-bearing nodes) — merge
    /// tie-break only.
    node: u32,
    /// Local rank — merge tie-break for within-node duplicates.
    rank: u32,
    /// `rank − rank_prev` (`rank` for the node's first entry).
    pred_delta: i64,
    /// `rank − rank_next` (`rank` for the node's last entry).
    succ_delta: i64,
    /// This is the node's first entry (opens its predecessor case).
    first: bool,
    /// This is the node's last entry (closes its successor case).
    last: bool,
    /// `n_i` on the node's last entry, else `0` (suffix population sum).
    pop: i64,
}

fn merged_entry(sample: &NodeSample, dense: u32, pos: usize) -> MergedEntry {
    let entries = sample.entries();
    let e = entries[pos];
    let prev = if pos > 0 {
        i64::from(entries[pos - 1].rank)
    } else {
        0
    };
    let next = if pos + 1 < entries.len() {
        i64::from(entries[pos + 1].rank)
    } else {
        0
    };
    let last = pos + 1 == entries.len();
    MergedEntry {
        value: e.value,
        node: dense,
        rank: e.rank,
        pred_delta: i64::from(e.rank) - prev,
        succ_delta: i64::from(e.rank) - next,
        first: pos == 0,
        last,
        pop: if last {
            sample.population_size as i64
        } else {
            0
        },
    }
}

/// Heap key: ascending `(value, node, rank)` — a total order because
/// `(node, rank)` is unique, so the merged order (and the index it
/// produces) is deterministic regardless of sharding or thread count.
#[derive(Debug, Clone, Copy)]
struct MergeKey {
    value: f64,
    node: u32,
    rank: u32,
}

impl PartialEq for MergeKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeKey {}
impl PartialOrd for MergeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .total_cmp(&other.value)
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.rank.cmp(&other.rank))
    }
}

/// K-way merges already-sorted runs of entries into one sorted vector.
fn merge_runs(runs: Vec<Vec<MergedEntry>>, capacity: usize) -> Vec<MergedEntry> {
    let mut runs: Vec<Vec<MergedEntry>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    if runs.len() == 1 {
        return runs.pop().unwrap_or_default();
    }
    let mut heap: BinaryHeap<std::cmp::Reverse<(MergeKey, usize)>> =
        BinaryHeap::with_capacity(runs.len());
    let mut cursors = vec![0usize; runs.len()];
    for (r, run) in runs.iter().enumerate() {
        if let Some(&e) = run.first() {
            heap.push(std::cmp::Reverse((
                MergeKey {
                    value: e.value,
                    node: e.node,
                    rank: e.rank,
                },
                r,
            )));
        }
    }
    let mut merged = Vec::with_capacity(capacity);
    while let Some(std::cmp::Reverse((_, r))) = heap.pop() {
        let pos = cursors[r];
        merged.push(runs[r][pos]);
        cursors[r] += 1;
        if let Some(e) = runs[r].get(cursors[r]) {
            heap.push(std::cmp::Reverse((
                MergeKey {
                    value: e.value,
                    node: e.node,
                    rank: e.rank,
                },
                r,
            )));
        }
    }
    merged
}

/// Merges one shard (a contiguous group of nodes) into a sorted run.
fn merge_shard(group: &[&NodeSample], dense_base: u32) -> Vec<MergedEntry> {
    let capacity: usize = group.iter().map(|s| s.len()).sum();
    let runs: Vec<Vec<MergedEntry>> = group
        .iter()
        .enumerate()
        .map(|(i, sample)| {
            let dense = dense_base + i as u32;
            (0..sample.len())
                .map(|pos| merged_entry(sample, dense, pos))
                .collect()
        })
        .collect();
    merge_runs(runs, capacity)
}

/// The merged prefix-rank query index: one value-sorted
/// structure-of-arrays over every node's sample entries, answering
/// RankCounting queries in `O(log S)` with results bit-identical to the
/// per-node scan.
///
/// # Examples
///
/// ```
/// use prc_core::estimator::{RangeCountEstimator, RankCounting, RankIndex};
/// use prc_core::query::RangeQuery;
/// use prc_net::network::FlatNetwork;
///
/// # fn main() -> Result<(), prc_core::CoreError> {
/// let partitions: Vec<Vec<f64>> = (0..8)
///     .map(|i| (0..500).map(|j| (i * 500 + j) as f64).collect())
///     .collect();
/// let mut network = FlatNetwork::from_partitions(partitions, 11);
/// network.collect_samples(0.25);
///
/// let index = RankIndex::build(network.station()).expect("uniform station");
/// let query = RangeQuery::new(700.0, 2_900.0)?;
/// // Same bits as the O(k log s) per-node path, at O(log S) cost.
/// let scanned = RankCounting.estimate(network.station(), query);
/// assert_eq!(index.estimate(query).to_bits(), scanned.to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RankIndex {
    /// The uniform sampling probability the index was built at.
    probability: f64,
    /// Merged sample values, sorted ascending (`S` entries).
    values: Vec<f64>,
    /// `cum_pred_rank[c] = R_pred(c)`: Σ over nodes of the rank of their
    /// last entry among the first `c` merged entries.
    cum_pred_rank: Vec<i64>,
    /// `cum_first[c] = C_pred(c)`: nodes with ≥ 1 entry among the first `c`.
    cum_first: Vec<i64>,
    /// `suf_succ_rank[c] = R_succ(c)`: Σ over nodes of the rank of their
    /// first entry at or after position `c`.
    suf_succ_rank: Vec<i64>,
    /// `suf_last[c] = C_succ(c)`: nodes with ≥ 1 entry at or after `c`.
    suf_last: Vec<i64>,
    /// `suf_pop[c] = N_succ(c)`: Σ `n_i` over nodes with ≥ 1 entry at or
    /// after `c`.
    suf_pop: Vec<i64>,
    /// Σ `n_i` over all data-bearing nodes.
    total_population: i64,
}

impl RankIndex {
    /// Builds the index over the station's current samples.
    ///
    /// Returns `None` when the station has no uniform positive sampling
    /// probability across its data-bearing nodes (the `1/p` factoring the
    /// prefix-sum decomposition needs does not exist) — callers fall back
    /// to the per-node scan.
    ///
    /// The build shards one sorted run per node, merges shards over
    /// crossbeam scoped threads (one contiguous node group per worker),
    /// k-way merges the per-worker runs, and accumulates the prefix and
    /// suffix arrays in one sequential pass: `O(S log S)` total work.
    pub fn build(station: &BaseStation) -> Option<RankIndex> {
        let probability = station.uniform_probability()?;
        let nodes: Vec<&NodeSample> = station.data_bearing_samples().collect();
        let total_population: i64 = nodes.iter().map(|s| s.population_size as i64).sum();
        let total_entries: usize = nodes.iter().map(|s| s.len()).sum();

        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(1, 8)
            .min(nodes.len().max(1));
        let chunk = nodes.len().div_ceil(threads).max(1);
        let runs: Vec<Vec<MergedEntry>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .chunks(chunk)
                .enumerate()
                .map(|(g, group)| {
                    let dense_base = (g * chunk) as u32;
                    scope.spawn(move || merge_shard(group, dense_base))
                })
                .collect();
            handles
                .into_iter()
                // prc-lint: allow(P002, reason = "re-raises a worker panic; no sound recovery exists")
                .map(|h| h.join().expect("index shard worker panicked"))
                .collect()
        })
        // prc-lint: allow(P002, reason = "re-raises a worker panic; no sound recovery exists")
        .expect("index build scope failed");
        let merged = merge_runs(runs, total_entries);

        let s = merged.len();
        let mut values = Vec::with_capacity(s);
        let mut cum_pred_rank = Vec::with_capacity(s + 1);
        let mut cum_first = Vec::with_capacity(s + 1);
        let mut running_pred = 0i64;
        let mut running_first = 0i64;
        cum_pred_rank.push(running_pred);
        cum_first.push(running_first);
        for e in &merged {
            values.push(e.value);
            running_pred += e.pred_delta;
            running_first += i64::from(e.first);
            cum_pred_rank.push(running_pred);
            cum_first.push(running_first);
        }
        let mut suf_succ_rank = vec![0i64; s + 1];
        let mut suf_last = vec![0i64; s + 1];
        let mut suf_pop = vec![0i64; s + 1];
        for (j, e) in merged.iter().enumerate().rev() {
            suf_succ_rank[j] = suf_succ_rank[j + 1] + e.succ_delta;
            suf_last[j] = suf_last[j + 1] + i64::from(e.last);
            suf_pop[j] = suf_pop[j + 1] + e.pop;
        }

        Some(RankIndex {
            probability,
            values,
            cum_pred_rank,
            cum_first,
            suf_succ_rank,
            suf_last,
            suf_pop,
            total_population,
        })
    }

    /// Answers one range query in `O(log S)`: two binary searches over the
    /// merged values, five prefix/suffix lookups, one combine.
    pub fn estimate(&self, query: RangeQuery) -> f64 {
        let (sum_a, sum_b) = self.rank_terms(query);
        finish_rank_terms(sum_a, sum_b, self.probability)
    }

    /// The exact integer aggregates `(ΣA, ΣB)` for one query — must match
    /// [`scan_rank_terms`] exactly on the same station.
    pub fn rank_terms(&self, query: RangeQuery) -> (i64, i64) {
        let pos_l = self.values.partition_point(|&v| v < query.lower());
        let pos_u = self.values.partition_point(|&v| v <= query.upper());
        let sum_a = self.suf_succ_rank[pos_u] - self.cum_pred_rank[pos_l]
            + self.cum_first[pos_l]
            + (self.total_population - self.suf_pop[pos_u]);
        let sum_b = self.cum_first[pos_l] + self.suf_last[pos_u];
        (sum_a, sum_b)
    }

    /// Number of merged sample entries (`S`).
    pub fn merged_entries(&self) -> usize {
        self.values.len()
    }

    /// The uniform sampling probability the index was built at.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl QueryIndex for RankIndex {
    fn estimate(&self, query: RangeQuery) -> f64 {
        RankIndex::estimate(self, query)
    }

    fn merged_entries(&self) -> usize {
        RankIndex::merged_entries(self)
    }

    fn probability(&self) -> f64 {
        RankIndex::probability(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{RangeCountEstimator, RankCounting};
    use prc_net::message::{NodeId, SampleEntry, SampleMessage};
    use prc_net::network::FlatNetwork;

    fn q(l: f64, u: f64) -> RangeQuery {
        RangeQuery::new(l, u).unwrap()
    }

    /// `(sampled (value, rank) pairs, population size, probability)`.
    type NodeSpec<'a> = (&'a [(f64, u32)], usize, f64);

    fn station(nodes: &[NodeSpec]) -> BaseStation {
        let mut station = BaseStation::new();
        for (i, (entries, n, p)) in nodes.iter().enumerate() {
            station.ingest(SampleMessage {
                node_id: NodeId(i as u32),
                population_size: *n,
                probability: *p,
                entries: entries
                    .iter()
                    .map(|&(value, rank)| SampleEntry { value, rank })
                    .collect(),
            });
        }
        station
    }

    fn assert_identical(station: &BaseStation, queries: &[(f64, f64)]) {
        let index = RankIndex::build(station).expect("index should build");
        for &(l, u) in queries {
            let indexed = index.estimate(q(l, u));
            let scanned = RankCounting.estimate(station, q(l, u));
            assert_eq!(
                indexed.to_bits(),
                scanned.to_bits(),
                "({l}, {u}): indexed {indexed} vs scanned {scanned}"
            );
            let (scan_a, scan_b) = scan_rank_terms(station, q(l, u));
            assert_eq!(index.rank_terms(q(l, u)), (scan_a, scan_b));
        }
    }

    #[test]
    fn matches_scan_on_handcrafted_station() {
        let s = station(&[
            (&[(2.0, 2), (5.0, 5), (9.0, 9)], 10, 0.5),
            (&[(1.0, 1), (5.0, 3), (5.0, 4), (8.0, 7)], 8, 0.5),
            (&[], 6, 0.5), // sampled nothing: always case 4
        ]);
        assert_identical(
            &s,
            &[
                (3.0, 7.0),
                (6.0, 20.0),
                (-5.0, 1.0),
                (-10.0, 30.0),
                (5.0, 5.0),
                (4.9, 5.1),
                (9.0, 9.0),
                (100.0, 200.0),
                (-7.0, -2.0),
            ],
        );
    }

    #[test]
    fn matches_scan_over_collected_networks() {
        for (k, per_node, p, seed) in [
            (1, 300, 0.2, 1u64),
            (7, 100, 0.35, 2),
            (16, 250, 0.6, 3),
            (5, 50, 1.0, 4),
        ] {
            let partitions: Vec<Vec<f64>> = (0..k)
                .map(|i| {
                    (0..per_node)
                        .map(|j| ((i * per_node + j) / 3) as f64) // duplicate-heavy
                        .collect()
                })
                .collect();
            let mut net = FlatNetwork::from_partitions(partitions, seed);
            net.collect_samples(p);
            let n = (k * per_node) as f64 / 3.0;
            assert_identical(
                net.station(),
                &[
                    (0.0, n),
                    (n * 0.25, n * 0.75),
                    (n * 0.5, n * 0.5),
                    (-10.0, -1.0),
                    (n + 5.0, n + 50.0),
                    (0.0, 0.0),
                ],
            );
        }
    }

    #[test]
    fn p_one_index_is_exact() {
        let values: Vec<f64> = vec![1.0, 2.0, 2.0, 3.0, 5.0, 5.0, 8.0, 9.0];
        let mut net = FlatNetwork::from_partitions(vec![values.clone()], 1);
        net.collect_samples(1.0);
        let index = RankIndex::build(net.station()).unwrap();
        for (l, u) in [(2.0, 5.0), (1.0, 9.0), (4.0, 4.5), (10.0, 20.0)] {
            let truth = values.iter().filter(|&&v| v >= l && v <= u).count() as f64;
            assert_eq!(index.estimate(q(l, u)), truth, "({l}, {u})");
        }
    }

    #[test]
    fn heterogeneous_probabilities_decline_to_build() {
        let s = station(&[(&[(1.0, 1)], 4, 0.5), (&[(2.0, 2)], 4, 0.25)]);
        assert!(RankIndex::build(&s).is_none());
        // The scan path still answers (per-node fallback in the estimator).
        assert!(RankCounting.estimate(&s, q(0.0, 3.0)).is_finite());
    }

    #[test]
    fn empty_station_declines_to_build() {
        assert!(RankIndex::build(&BaseStation::new()).is_none());
        let all_empty = station(&[(&[], 0, 0.5)]);
        assert!(RankIndex::build(&all_empty).is_none());
    }

    #[test]
    fn zero_population_nodes_are_ignored() {
        let s = station(&[(&[(1.0, 1), (4.0, 4)], 6, 0.5), (&[], 0, 0.9)]);
        assert_identical(&s, &[(0.0, 5.0), (2.0, 3.0), (-2.0, 0.5)]);
    }

    #[test]
    fn accessors_report_build_parameters() {
        let s = station(&[(&[(1.0, 1), (4.0, 4)], 6, 0.25), (&[(2.0, 2)], 3, 0.25)]);
        let index = RankIndex::build(&s).unwrap();
        assert_eq!(index.merged_entries(), 3);
        assert_eq!(RankIndex::probability(&index), 0.25);
        let boxed: Box<dyn QueryIndex> = Box::new(index);
        assert_eq!(boxed.merged_entries(), 3);
        assert_eq!(boxed.probability(), 0.25);
        assert_eq!(
            boxed.estimate(q(1.5, 3.5)).to_bits(),
            RankCounting.estimate(&s, q(1.5, 3.5)).to_bits()
        );
    }

    #[test]
    fn finish_is_exact_at_p_one() {
        assert_eq!(finish_rank_terms(42, 6, 1.0), 36.0);
        assert_eq!(finish_rank_terms(-3, 0, 0.25), -3.0);
    }
}
