//! Differentially private quantile estimation by noisy binary search.
//!
//! The second aggregate of the paper's reference \[6\] (*"Approximate
//! aggregation for tracking quantiles and range countings in wireless
//! sensor networks"*): the `q`-quantile of the distributed data. We
//! estimate it with a noisy binary search over private prefix counts —
//! each probe asks the RankCounting estimator for `γ̂(−∞, mid]`, perturbs
//! it with Laplace noise scaled to a per-step share of the budget, and
//! branches on the comparison with `q·n̂`. With `s` steps the whole
//! search is `ε`-differentially private by sequential composition of the
//! `ε/s` probes.

use prc_dp::budget::Epsilon;
use prc_dp::laplace::draw_centered;
use prc_dp::mechanism::Sensitivity;
// prc-lint: allow(B003, reason = "generic rng plumbing only; all draws happen inside prc-dp")
use rand::Rng;

use prc_net::base_station::BaseStation;

use crate::error::CoreError;
use crate::estimator::RangeCountEstimator;
use crate::query::RangeQuery;

/// Configuration of the noisy binary search.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantileConfig {
    /// Inclusive search domain for the quantile value.
    pub domain: (f64, f64),
    /// Number of bisection steps (each spends `ε/steps`).
    pub steps: usize,
    /// Total privacy budget for the whole search.
    pub epsilon: Epsilon,
    /// Sensitivity of one prefix count (the paper's expected `1/p` or a
    /// conservative choice).
    pub sensitivity: Sensitivity,
}

/// A released private quantile estimate with its search diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrivateQuantile {
    /// The quantile level `q` that was asked.
    pub q: f64,
    /// The released value estimate.
    pub value: f64,
    /// The total budget consumed.
    pub epsilon: Epsilon,
    /// Number of probes performed.
    pub steps: usize,
}

/// Estimates the `q`-quantile of the distributed data privately.
///
/// `q` must lie in `(0, 1)`. Returns the bisection midpoint after
/// `config.steps` noisy probes.
///
/// # Examples
///
/// ```
/// use prc_core::estimator::RankCounting;
/// use prc_core::quantile::{private_quantile, QuantileConfig};
/// use prc_dp::budget::Epsilon;
/// use prc_dp::mechanism::Sensitivity;
/// use prc_net::network::FlatNetwork;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), prc_core::CoreError> {
/// let mut network = FlatNetwork::from_partitions(
///     vec![(0..10_000).map(f64::from).collect()], 3);
/// network.collect_samples(1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let config = QuantileConfig {
///     domain: (0.0, 10_000.0),
///     steps: 20,
///     epsilon: Epsilon::new(20.0)?,
///     sensitivity: Sensitivity::new(1.0)?,
/// };
/// let median = private_quantile(&RankCounting, network.station(), 0.5, &config, &mut rng)?;
/// assert!((median.value - 5_000.0).abs() < 500.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidAccuracy`] — `q ∉ (0, 1)`;
/// * [`CoreError::InvalidRange`] — an invalid search domain or
///   `steps = 0`;
/// * [`CoreError::NoSamples`] — the station holds nothing;
/// * [`CoreError::Dp`] — `ε = 0`.
// prc-lint: allow(F001, reason = "standalone release API: the draws are paid for by the explicit epsilon in the caller's QuantileConfig, outside the broker's reservation ledger")
pub fn private_quantile<E, R>(
    estimator: &E,
    station: &BaseStation,
    q: f64,
    config: &QuantileConfig,
    rng: &mut R,
) -> Result<PrivateQuantile, CoreError>
where
    E: RangeCountEstimator,
    R: Rng + ?Sized,
{
    if !(q > 0.0 && q < 1.0) {
        return Err(CoreError::InvalidAccuracy { alpha: q, delta: q });
    }
    let (mut lo, mut hi) = config.domain;
    if lo.is_nan() || hi.is_nan() || lo >= hi || config.steps == 0 {
        return Err(CoreError::InvalidRange { l: lo, u: hi });
    }
    if station.node_count() == 0 || station.total_population() == 0 {
        return Err(CoreError::NoSamples);
    }
    if config.epsilon.is_zero() {
        return Err(CoreError::Dp(prc_dp::DpError::InvalidEpsilon {
            value: 0.0,
        }));
    }

    let per_step = config.epsilon.value() / config.steps as f64;
    let noise_scale = config.sensitivity.value() / per_step;
    let target = q * station.total_population() as f64;

    for _ in 0..config.steps {
        let mid = 0.5 * (lo + hi);
        let prefix = estimator.estimate(station, RangeQuery::new(f64::NEG_INFINITY, mid)?);
        let noisy_prefix = prefix + draw_centered(noise_scale, rng)?;
        if noisy_prefix < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    Ok(PrivateQuantile {
        q,
        value: 0.5 * (lo + hi),
        epsilon: config.epsilon,
        steps: config.steps,
    })
}

/// Estimates several quantiles, splitting the budget evenly across them
/// (sequential composition: the whole release is `ε`-DP).
///
/// # Errors
///
/// Propagates [`private_quantile`]'s errors; `qs` must be non-empty.
pub fn private_quantiles<E, R>(
    estimator: &E,
    station: &BaseStation,
    qs: &[f64],
    config: &QuantileConfig,
    rng: &mut R,
) -> Result<Vec<PrivateQuantile>, CoreError>
where
    E: RangeCountEstimator,
    R: Rng + ?Sized,
{
    if qs.is_empty() {
        return Err(CoreError::InvalidAccuracy {
            alpha: f64::NAN,
            delta: f64::NAN,
        });
    }
    let per_quantile = QuantileConfig {
        epsilon: Epsilon::new(config.epsilon.value() / qs.len() as f64)?,
        ..*config
    };
    qs.iter()
        .map(|&q| private_quantile(estimator, station, q, &per_quantile, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::RankCounting;
    use prc_net::network::FlatNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(epsilon: f64) -> QuantileConfig {
        QuantileConfig {
            domain: (0.0, 10_000.0),
            steps: 25,
            epsilon: Epsilon::new(epsilon).unwrap(),
            sensitivity: Sensitivity::unit(),
        }
    }

    fn uniform_network(n: usize, k: usize, p: f64, seed: u64) -> FlatNetwork {
        let parts: Vec<Vec<f64>> = (0..k)
            .map(|i| (0..n).filter(|j| j % k == i).map(|j| j as f64).collect())
            .collect();
        let mut net = FlatNetwork::from_partitions(parts, seed);
        net.collect_samples(p);
        net
    }

    #[test]
    fn median_of_uniform_data_is_found() {
        let net = uniform_network(10_000, 8, 1.0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let result =
            private_quantile(&RankCounting, net.station(), 0.5, &config(50.0), &mut rng).unwrap();
        assert!(
            (result.value - 5_000.0).abs() < 100.0,
            "median {} should be near 5000",
            result.value
        );
        assert_eq!(result.steps, 25);
        assert_eq!(result.q, 0.5);
    }

    #[test]
    fn extreme_quantiles_land_in_the_right_region() {
        let net = uniform_network(10_000, 8, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let q05 =
            private_quantile(&RankCounting, net.station(), 0.05, &config(50.0), &mut rng).unwrap();
        let q95 =
            private_quantile(&RankCounting, net.station(), 0.95, &config(50.0), &mut rng).unwrap();
        assert!(q05.value < 1_000.0, "q05 {}", q05.value);
        assert!(q95.value > 9_000.0, "q95 {}", q95.value);
    }

    #[test]
    fn works_under_sampling() {
        // With p < 1 the prefix estimates are noisy even before the DP
        // noise; the search still converges near the truth.
        let net = uniform_network(10_000, 10, 0.3, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let result =
            private_quantile(&RankCounting, net.station(), 0.5, &config(20.0), &mut rng).unwrap();
        assert!(
            (result.value - 5_000.0).abs() < 600.0,
            "sampled median {}",
            result.value
        );
    }

    #[test]
    fn stricter_budget_is_noisier() {
        // Spread of the median estimate grows as ε shrinks.
        let spread = |epsilon: f64| {
            let net = uniform_network(5_000, 5, 1.0, 9);
            let mut rng = StdRng::seed_from_u64(10);
            let mut values = Vec::new();
            for _ in 0..60 {
                let r = private_quantile(
                    &RankCounting,
                    net.station(),
                    0.5,
                    &QuantileConfig {
                        domain: (0.0, 5_000.0),
                        ..config(epsilon)
                    },
                    &mut rng,
                )
                .unwrap();
                values.push(r.value);
            }
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
        };
        let tight_budget = spread(100.0);
        let loose_budget = spread(0.05);
        assert!(
            loose_budget > tight_budget * 3.0,
            "ε=0.05 spread {loose_budget} should dwarf ε=100 spread {tight_budget}"
        );
    }

    #[test]
    fn multiple_quantiles_split_the_budget() {
        let net = uniform_network(8_000, 8, 1.0, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let results = private_quantiles(
            &RankCounting,
            net.station(),
            &[0.25, 0.5, 0.75],
            &config(90.0),
            &mut rng,
        )
        .unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!((r.epsilon.value() - 30.0).abs() < 1e-12);
        }
        assert!(results[0].value < results[1].value);
        assert!(results[1].value < results[2].value);
    }

    #[test]
    fn validation_errors() {
        let net = uniform_network(100, 2, 1.0, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let c = config(1.0);
        for bad_q in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(private_quantile(&RankCounting, net.station(), bad_q, &c, &mut rng).is_err());
        }
        let bad_domain = QuantileConfig {
            domain: (5.0, 5.0),
            ..c
        };
        assert!(
            private_quantile(&RankCounting, net.station(), 0.5, &bad_domain, &mut rng).is_err()
        );
        let zero_steps = QuantileConfig { steps: 0, ..c };
        assert!(
            private_quantile(&RankCounting, net.station(), 0.5, &zero_steps, &mut rng).is_err()
        );
        let zero_eps = QuantileConfig {
            epsilon: Epsilon::new(0.0).unwrap(),
            ..c
        };
        assert!(private_quantile(&RankCounting, net.station(), 0.5, &zero_eps, &mut rng).is_err());
        let empty = prc_net::base_station::BaseStation::new();
        assert!(matches!(
            private_quantile(&RankCounting, &empty, 0.5, &c, &mut rng),
            Err(CoreError::NoSamples)
        ));
        assert!(private_quantiles(&RankCounting, net.station(), &[], &c, &mut rng).is_err());
    }
}
