//! # prc-core — differentially private approximate range counting
//!
//! The primary contribution of *"Trading Private Range Counting over Big
//! IoT Data"* (Cai & He, ICDCS 2019), implemented end to end:
//!
//! 1. **Sampling-based (α, δ)-range counting** (§III-A): the
//!    [`estimator::RankCounting`] estimator uses each sampled element's
//!    local rank to estimate `γ(l, u, D)` without bias and with variance
//!    at most `8k/p²` (Theorems 3.1–3.2) — independent of the queried
//!    range width, unlike the [`estimator::BasicCounting`] baseline whose
//!    variance grows to `|D|(1−p)/p`. Theorem 3.3's sampling-probability
//!    calculus lives in [`accuracy`].
//! 2. **Optimal perturbation** (§III-B): [`optimizer`] solves the paper's
//!    optimization problem (3) — given a customer's accuracy demand
//!    `(α, δ)` and the sample rate `p`, it searches intermediate
//!    accuracies `(α′, δ′)` for the Laplace budget `ε` whose amplified
//!    effective budget `ε′ = ln(1 + p(e^ε − 1))` is smallest while the
//!    noisy answer still meets `(α, δ)`.
//! 3. **The broker pipeline** (§II-A): every [`broker::DataBroker`]
//!    entry point drives the staged [`pipeline`] session — Admit (price
//!    quote, cache), Collect (sample top-up), Reserve (plan + two-phase
//!    budget hold), Estimate, Perturb, Settle (commit, cache, ledger) —
//!    and returns a [`broker::PrivateAnswer`]; [`consumer`] provides the
//!    client side, including the averaging combinator adversaries use in
//!    arbitrage attacks (Eq. 4).
//!
//! Pricing lives in the sibling crate `prc-pricing` and is wired into
//! the broker through its [`prc_pricing::engine::PricingEngine`] seam:
//! [`broker::DataBroker::answer_as`] quotes at admission and settles
//! every released answer into the engine's ledger.
//!
//! ## Quick start
//!
//! ```
//! use prc_core::broker::DataBroker;
//! use prc_core::query::{Accuracy, QueryRequest, RangeQuery};
//! use prc_net::network::FlatNetwork;
//!
//! # fn main() -> Result<(), prc_core::CoreError> {
//! // 4 nodes, 1000 values each.
//! let partitions: Vec<Vec<f64>> = (0..4)
//!     .map(|i| (0..1000).map(|j| (i * 1000 + j) as f64).collect())
//!     .collect();
//! let network = FlatNetwork::from_partitions(partitions, 7);
//! let mut broker = DataBroker::new(network, 7);
//!
//! let request = QueryRequest::new(
//!     RangeQuery::new(500.0, 2500.0)?,
//!     Accuracy::new(0.05, 0.9)?,
//! );
//! let answer = broker.answer(&request)?;
//! assert!(answer.value.is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod audit;
pub mod broker;
pub mod consumer;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod histogram;
pub mod monitor;
pub mod optimizer;
pub mod pipeline;
pub mod quantile;
pub mod query;

pub use broker::{DataBroker, PrivateAnswer};
pub use error::CoreError;
pub use estimator::{BasicCounting, QueryIndex, RangeCountEstimator, RankCounting, RankIndex};
pub use optimizer::{OptimizerConfig, PerturbationPlan, PlanSummary, SensitivityPolicy};
pub use pipeline::{PricedAnswer, QuerySession};
pub use query::{Accuracy, QueryRequest, RangeQuery};
