//! The consumer side: purchasing answers and combining them.
//!
//! Example 4.1 of the paper describes the adversarial play this module
//! implements: buy `m` cheap, high-variance answers to the *same* range
//! and average them (Eq. 4), obtaining variance `(1/m²)·Σ V(αᵢ, δᵢ)` —
//! potentially lower than the variance of a single expensive answer. The
//! pricing crate uses [`AnswerBundle`] to simulate exactly this attack.

use crate::broker::PrivateAnswer;

/// A set of purchased answers to the same range query, combined by plain
/// averaging (the paper's Eq. 4).
#[derive(Debug, Clone, Default)]
pub struct AnswerBundle {
    answers: Vec<PrivateAnswer>,
}

impl AnswerBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        AnswerBundle::default()
    }

    /// Adds a purchased answer.
    ///
    /// # Panics
    ///
    /// Panics if the answer's query differs from the bundle's existing
    /// query — averaging answers to different ranges is meaningless.
    pub fn push(&mut self, answer: PrivateAnswer) {
        if let Some(first) = self.answers.first() {
            assert_eq!(
                first.query, answer.query,
                "bundle must hold answers to a single range query"
            );
        }
        self.answers.push(answer);
    }

    /// Number of purchased answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when nothing has been purchased.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The purchased answers.
    pub fn answers(&self) -> &[PrivateAnswer] {
        &self.answers
    }

    /// Equal-weight average of the purchased values (Eq. 4), or `None`
    /// for an empty bundle.
    pub fn combined_value(&self) -> Option<f64> {
        if self.answers.is_empty() {
            return None;
        }
        Some(self.answers.iter().map(|a| a.value).sum::<f64>() / self.answers.len() as f64)
    }

    /// Variance bound of the average: `(1/m²)·Σ Vᵢ` with each `Vᵢ` taken
    /// from the answer's broker-certified [`PrivateAnswer::variance_bound`].
    ///
    /// Returns `None` for an empty bundle.
    pub fn combined_variance_bound(&self) -> Option<f64> {
        if self.answers.is_empty() {
            return None;
        }
        let m = self.answers.len() as f64;
        Some(self.answers.iter().map(|a| a.variance_bound).sum::<f64>() / (m * m))
    }
}

impl FromIterator<PrivateAnswer> for AnswerBundle {
    fn from_iter<I: IntoIterator<Item = PrivateAnswer>>(iter: I) -> Self {
        let mut bundle = AnswerBundle::new();
        for a in iter {
            bundle.push(a);
        }
        bundle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::PerturbationPlan;
    use crate::query::{Accuracy, RangeQuery};
    use prc_dp::budget::Epsilon;

    fn answer(value: f64, variance: f64, l: f64, u: f64) -> PrivateAnswer {
        PrivateAnswer {
            query: RangeQuery::new(l, u).unwrap(),
            accuracy: Some(Accuracy::new(0.1, 0.5).unwrap()),
            value,
            sample_estimate: value,
            plan: PerturbationPlan {
                alpha_prime: 0.05,
                delta_prime: 0.8,
                epsilon: Epsilon::new(1.0).unwrap(),
                effective_epsilon: Epsilon::new(0.5).unwrap(),
                sensitivity: 2.0,
                noise_scale: 2.0,
                probability: 0.5,
                tail_probability: 0.6,
            },
            variance_bound: variance,
        }
    }

    #[test]
    fn empty_bundle_yields_none() {
        let bundle = AnswerBundle::new();
        assert!(bundle.is_empty());
        assert_eq!(bundle.combined_value(), None);
        assert_eq!(bundle.combined_variance_bound(), None);
    }

    #[test]
    fn averaging_follows_equation_4() {
        let bundle: AnswerBundle = vec![
            answer(10.0, 100.0, 0.0, 1.0),
            answer(20.0, 200.0, 0.0, 1.0),
            answer(30.0, 300.0, 0.0, 1.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(bundle.len(), 3);
        assert_eq!(bundle.combined_value(), Some(20.0));
        // (100+200+300)/9
        assert!((bundle.combined_variance_bound().unwrap() - 600.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn averaging_reduces_variance() {
        // m identical purchases divide the variance bound by m.
        let m = 5;
        let bundle: AnswerBundle = (0..m).map(|_| answer(7.0, 50.0, 0.0, 1.0)).collect();
        let combined = bundle.combined_variance_bound().unwrap();
        assert!((combined - 50.0 / m as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "single range query")]
    fn mixed_queries_panic() {
        let mut bundle = AnswerBundle::new();
        bundle.push(answer(1.0, 1.0, 0.0, 1.0));
        bundle.push(answer(1.0, 1.0, 0.0, 2.0));
    }
}
