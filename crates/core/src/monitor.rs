//! Continuous monitoring: long-term private queries over a live stream.
//!
//! The paper's one-sample/many-queries design assumes a static dataset;
//! real IoT deployments re-collect as data arrives (the "long-term
//! queries via continuous data collection" line of its related work,
//! §VI). [`ContinuousMonitor`] runs the full private pipeline once per
//! *epoch* over a sliding window of recent records:
//!
//! 1. the window advances and a fresh network is built over its contents;
//! 2. the broker answers the standing query at the epoch's accuracy;
//! 3. the epoch's effective budget is charged to a session accountant —
//!    the monitor stops (returns [`CoreError::Dp`]) when the session
//!    budget is exhausted, making the privacy cost of *indefinite*
//!    monitoring explicit.
//!
//! Because each epoch's window contains (mostly) fresh records, epochs
//! over disjoint windows would compose in parallel; the accountant here
//! is deliberately conservative and charges sequentially, which stays
//! correct for overlapping windows.

use prc_data::partition::PartitionStrategy;
use prc_data::record::{AirQualityIndex, PollutionRecord};
use prc_data::stream::SlidingWindow;
use prc_dp::budget::{BudgetAccountant, Epsilon};

use prc_net::network::FlatNetwork;

use crate::broker::{DataBroker, IndexCacheHandle, PrivateAnswer, StageCounters};
use crate::error::CoreError;
use crate::query::{Accuracy, QueryRequest, RangeQuery};

/// Configuration of a continuous monitor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonitorConfig {
    /// The standing range query.
    pub query: RangeQuery,
    /// Accuracy demanded for every epoch's answer.
    pub accuracy: Accuracy,
    /// The air-quality index monitored.
    pub index: AirQualityIndex,
    /// Window span in seconds.
    pub window_seconds: i64,
    /// Number of nodes the window's records are distributed over.
    pub nodes: usize,
    /// Total privacy budget for the whole monitoring session.
    pub session_budget: Epsilon,
    /// RNG seed.
    pub seed: u64,
}

/// One epoch's released result.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpochResult {
    /// Epoch number, starting at 0.
    pub epoch: u64,
    /// Records inside the window at answer time.
    pub window_size: usize,
    /// The released private answer.
    pub answer: PrivateAnswer,
    /// Session budget remaining after this epoch.
    pub budget_remaining: f64,
    /// Per-stage pipeline counters for this epoch (collection rounds,
    /// samples delivered, cache traffic, releases).
    pub stages: StageCounters,
    /// Chargeable (non-piggybacked) messages this epoch's collection
    /// cost, from the epoch network's `CostMeter`.
    pub chargeable_messages: u64,
}

/// A long-running private monitor over a sliding window.
///
/// # Examples
///
/// ```
/// use prc_core::monitor::{ContinuousMonitor, MonitorConfig};
/// use prc_core::query::{Accuracy, RangeQuery};
/// use prc_data::generator::CityPulseGenerator;
/// use prc_data::record::AirQualityIndex;
/// use prc_data::stream::StreamReplayer;
/// use prc_dp::budget::Epsilon;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = CityPulseGenerator::new(1).record_count(600).generate();
/// let mut replay = StreamReplayer::new(&dataset);
/// let mut monitor = ContinuousMonitor::new(MonitorConfig {
///     query: RangeQuery::new(60.0, 140.0)?,
///     accuracy: Accuracy::new(0.2, 0.5)?,
///     index: AirQualityIndex::Ozone,
///     window_seconds: 6 * 3600,
///     nodes: 4,
///     session_budget: Epsilon::new(5.0)?,
///     seed: 1,
/// });
/// monitor.ingest(replay.advance_by(200));
/// let epoch = monitor.answer_epoch()?;
/// assert_eq!(epoch.epoch, 0);
/// assert!(epoch.answer.value.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ContinuousMonitor {
    config: MonitorConfig,
    window: SlidingWindow,
    accountant: BudgetAccountant,
    /// The previous epoch's query index, threaded into the next epoch's
    /// broker. Adoption is keyed on full structural station equality, so
    /// it fires exactly when an epoch reproduces the prior epoch's
    /// collected state (e.g. an unchanged window) — the broker then
    /// skips the rebuild and the released bits are unchanged by the
    /// [`crate::estimator::QueryIndex`] contract.
    index_cache: Option<IndexCacheHandle>,
    epoch: u64,
}

impl ContinuousMonitor {
    /// Creates a monitor.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `window_seconds <= 0`.
    pub fn new(config: MonitorConfig) -> Self {
        assert!(config.nodes > 0, "monitor needs at least one node");
        ContinuousMonitor {
            window: SlidingWindow::new(config.window_seconds),
            accountant: BudgetAccountant::new(config.session_budget),
            config,
            index_cache: None,
            epoch: 0,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Number of epochs answered so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Session budget still available.
    pub fn budget_remaining(&self) -> Epsilon {
        self.accountant.remaining()
    }

    /// Records currently inside the window.
    pub fn window_size(&self) -> usize {
        self.window.len()
    }

    /// Ingests newly arrived records (timestamp-ordered) without
    /// answering.
    ///
    /// # Panics
    ///
    /// Panics when records arrive out of timestamp order.
    pub fn ingest(&mut self, records: impl IntoIterator<Item = PollutionRecord>) {
        self.window.ingest_all(records);
    }

    /// Runs one epoch: answers the standing query over the current window
    /// and charges the session budget.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoSamples`] — the window is empty;
    /// * [`CoreError::Dp`] — the session budget cannot cover this epoch
    ///   (nothing is released in that case);
    /// * any pipeline error from the underlying broker.
    pub fn answer_epoch(&mut self) -> Result<EpochResult, CoreError> {
        let snapshot = self.window.snapshot();
        if snapshot.is_empty() {
            return Err(CoreError::NoSamples);
        }
        let nodes = self.config.nodes.min(snapshot.len());
        let network = FlatNetwork::from_dataset(
            &snapshot,
            self.config.index,
            nodes,
            PartitionStrategy::RoundRobin,
            self.config.seed ^ self.epoch,
        );
        let mut broker = DataBroker::new(network, self.config.seed ^ (self.epoch << 17));
        // Thread the session accountant through the epoch broker: the
        // pipeline's Reserve stage holds this epoch's effective ε′
        // against it before any noise is drawn, and Settle commits the
        // hold — nothing is released when the session cannot pay.
        let session = std::mem::replace(
            &mut self.accountant,
            BudgetAccountant::new(self.config.session_budget),
        );
        broker.install_accountant(session);
        // Offer the previous epoch's index the same way: the broker
        // adopts it only if this epoch's collected station reproduces
        // the one the index was synchronized with.
        if let Some(handle) = self.index_cache.take() {
            broker.install_index_cache(handle);
        }
        let outcome = broker.answer(&QueryRequest::new(self.config.query, self.config.accuracy));
        if let Some(session) = broker.take_accountant() {
            self.accountant = session;
        }
        self.index_cache = broker.take_index_cache();
        let answer = outcome?;
        let result = EpochResult {
            epoch: self.epoch,
            window_size: snapshot.len(),
            answer,
            budget_remaining: self.accountant.remaining().value(),
            stages: broker.counters(),
            chargeable_messages: broker.network().meter().snapshot().chargeable_messages(),
        };
        self.epoch += 1;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prc_data::generator::CityPulseGenerator;
    use prc_data::stream::StreamReplayer;

    fn config(budget: f64) -> MonitorConfig {
        MonitorConfig {
            query: RangeQuery::new(60.0, 140.0).unwrap(),
            accuracy: Accuracy::new(0.15, 0.5).unwrap(),
            index: AirQualityIndex::Ozone,
            window_seconds: 6 * 3_600,
            nodes: 8,
            session_budget: Epsilon::new(budget).unwrap(),
            seed: 42,
        }
    }

    #[test]
    fn monitor_answers_epochs_over_a_replayed_stream() {
        let dataset = CityPulseGenerator::new(5).record_count(2_000).generate();
        let mut replay = StreamReplayer::new(&dataset);
        let mut monitor = ContinuousMonitor::new(config(10.0));

        let mut results = Vec::new();
        for _ in 0..6 {
            monitor.ingest(replay.advance_by(200));
            let result = monitor.answer_epoch().unwrap();
            results.push(result);
        }
        assert_eq!(monitor.epochs(), 6);
        // Epoch numbers are sequential; budget decreases monotonically.
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.epoch, i as u64);
            assert!(r.window_size > 0);
            assert!(r.answer.value.is_finite());
            // Per-stage counters are threaded through from the broker.
            assert!(r.stages.collection_rounds >= 1);
            assert!(r.stages.samples_collected > 0);
            assert_eq!(r.stages.answers_released, 1);
            assert!(r.chargeable_messages > 0);
        }
        for pair in results.windows(2) {
            assert!(pair[1].budget_remaining < pair[0].budget_remaining);
        }
    }

    #[test]
    fn window_eviction_bounds_the_population() {
        // 6 h window over 5-minute records = at most 72-ish records.
        let dataset = CityPulseGenerator::new(7).record_count(3_000).generate();
        let mut replay = StreamReplayer::new(&dataset);
        let mut monitor = ContinuousMonitor::new(config(50.0));
        for _ in 0..10 {
            monitor.ingest(replay.advance_by(300));
            let result = monitor.answer_epoch().unwrap();
            assert!(
                result.window_size <= 73,
                "window {} exceeded its span",
                result.window_size
            );
        }
    }

    #[test]
    fn exhausted_session_budget_stops_the_monitor() {
        let dataset = CityPulseGenerator::new(9).record_count(2_000).generate();
        let mut replay = StreamReplayer::new(&dataset);
        // Learn a typical per-epoch cost first.
        let mut probe = ContinuousMonitor::new(config(100.0));
        probe.ingest(replay.advance_by(300));
        let per_epoch = probe
            .answer_epoch()
            .unwrap()
            .answer
            .plan
            .effective_epsilon
            .value();

        let mut replay = StreamReplayer::new(&dataset);
        let mut monitor = ContinuousMonitor::new(config(per_epoch * 2.5));
        let mut served = 0;
        let mut stopped = false;
        for _ in 0..10 {
            monitor.ingest(replay.advance_by(300));
            match monitor.answer_epoch() {
                Ok(_) => served += 1,
                Err(CoreError::Dp(prc_dp::DpError::BudgetExhausted { .. })) => {
                    stopped = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(stopped, "monitor should hit its session budget");
        assert!(served >= 2, "served only {served}");
        assert!(monitor.budget_remaining().value() < per_epoch);
    }

    #[test]
    fn empty_window_is_reported() {
        let mut monitor = ContinuousMonitor::new(config(1.0));
        assert!(matches!(monitor.answer_epoch(), Err(CoreError::NoSamples)));
        assert_eq!(monitor.epochs(), 0);
        assert_eq!(monitor.window_size(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let mut c = config(1.0);
        c.nodes = 0;
        let _ = ContinuousMonitor::new(c);
    }
}
