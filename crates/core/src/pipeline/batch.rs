//! The batched driver: the same six stages as [`crate::pipeline`], run
//! on a per-tier schedule instead of per request.
//!
//! The batch is partitioned by each request's *required sampling rate*;
//! rates are visited in ascending order, so every tier's queries are
//! evaluated right after the single [`Collect`] round that tops the
//! network up to that tier (lower tiers are answered at their own,
//! cheaper rate — exactly what a sorted sequence of single sessions
//! would do). Within a tier, admission, planning, and budget holds run
//! sequentially in input order; the [`Estimate`] stage fans out over
//! the shared [`prc_runtime::Runtime`] pool against the shared
//! base-station sample; the
//! [`Perturb`] stage then runs sequentially in input order, keeping the
//! whole batch deterministic in the broker's seed regardless of thread
//! scheduling. Each member's hold is committed at its [`Settle`] or
//! rolled back if its release fails.

use std::collections::BTreeMap;

use prc_dp::budget::Reservation;
use prc_net::network::Network;
use prc_pricing::reuse::Demand;
use prc_runtime::{CutoffPolicy, Runtime};

use crate::accuracy::required_probability_clamped;
use crate::broker::{BatchReport, BatchStats, DataBroker, IndexState, PrivateAnswer};
use crate::error::CoreError;
use crate::estimator::RangeCountEstimator;
use crate::optimizer::{NetworkShape, PerturbationPlan};
use crate::pipeline::stages::{
    abort, demand_cache_lookup, plan_with_retry, prepare_index, reserve_effective, Collect,
    Perturb, Settle,
};
use crate::pipeline::QuerySession;
use crate::query::QueryRequest;

/// One tier member that survived admission and reservation, awaiting its
/// estimate and release.
struct Pending {
    slot: usize,
    plan: PerturbationPlan,
    reservation: Option<Reservation>,
}

/// Runs a batch of requests through the staged pipeline.
///
/// # Panics
///
/// Only to propagate an estimate worker's panic, re-raised through the
/// runtime's single panic path ([`Runtime::map_chunked`]), or if the
/// tier scheduler violates its own invariant and leaves a member's slot
/// unfilled.
pub fn run_batch<E, N>(broker: &mut DataBroker<E, N>, requests: &[QueryRequest]) -> BatchReport
where
    E: RangeCountEstimator + Sync,
    N: Network,
{
    let meter_before = broker.network.meter().snapshot();
    let counters_before = broker.counters;
    let mut fan_out_threads: u64 = 0;
    let mut answers: Vec<Option<Result<PrivateAnswer, CoreError>>> =
        requests.iter().map(|_| None).collect();

    let k = broker.network.node_count();
    let n = broker.network.total_data_size();
    let mut tiers: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    if n == 0 {
        answers.fill(Some(Err(CoreError::NoSamples)));
    } else {
        // Admit (batch half): partition by required sampling rate.
        for (i, request) in requests.iter().enumerate() {
            let internal = broker.sampling_policy.internal_target(request.accuracy);
            match required_probability_clamped(internal, k, n) {
                Ok(p) => tiers.entry(p.to_bits()).or_default().push(i),
                Err(e) => answers[i] = Some(Err(e)),
            }
        }
    }
    let rate_tiers = tiers.len() as u64;

    for (p_bits, members) in tiers {
        // Collect: one round per tier (ascending rates, so each round is
        // an incremental top-up).
        Collect {
            target_probability: f64::from_bits(p_bits),
        }
        .run(broker);

        // Admit (cache half) + Reserve: sequential, in input order,
        // because they mutate broker state.
        let mut pending: Vec<Pending> = Vec::new();
        let mut deferred: Vec<usize> = Vec::new();
        for &i in &members {
            let request = &requests[i];
            if let Some(hit) = demand_cache_lookup(broker, request) {
                broker.counters.answers_released += 1;
                answers[i] = Some(Ok(hit));
                continue;
            }
            // A duplicate of an earlier in-flight request will be
            // servable from the cache once the tier releases; defer it
            // instead of planning (and paying for) it twice.
            if let Some(guard) = broker.reuse_guard.as_deref() {
                let requested = Demand::new(request.accuracy.alpha(), request.accuracy.delta());
                let duplicate = pending.iter().any(|member| {
                    let prior = &requests[member.slot];
                    prior.query == request.query
                        && guard.allows_reuse(
                            requested,
                            Demand::new(prior.accuracy.alpha(), prior.accuracy.delta()),
                        )
                });
                if duplicate {
                    deferred.push(i);
                    continue;
                }
            }
            let plan = match plan_with_retry(broker, request.accuracy) {
                Ok(plan) => plan,
                Err(e) => {
                    answers[i] = Some(Err(e));
                    continue;
                }
            };
            let reservation = match reserve_effective(broker, plan.effective_epsilon) {
                Ok(reservation) => reservation,
                Err(e) => {
                    answers[i] = Some(Err(e));
                    continue;
                }
            };
            pending.push(Pending {
                slot: i,
                plan,
                reservation,
            });
        }
        if pending.is_empty() && deferred.is_empty() {
            continue;
        }

        if !pending.is_empty() {
            // Estimate: fan out over the shared sample. The station is
            // immutable for the rest of the tier, so worker threads share
            // it; chunked spawning keeps the result order (and therefore
            // the released answers) deterministic. With a query index
            // ready for this epoch, every worker answers through it —
            // same bits as the scan, `O(log S)` per query instead of
            // `O(k log s)`.
            prepare_index(broker, pending.len() as u64);
            let station = broker.network.station();
            let estimator = &broker.estimator;
            let index = match &broker.index {
                IndexState::Ready(_, index) => Some(index.as_ref()),
                _ => None,
            };
            let runtime = Runtime::global();
            fan_out_threads = fan_out_threads.max(runtime.lanes_for(pending.len()) as u64);
            // Chunk results flatten in submission order, so the released
            // answers are independent of worker count and scheduling.
            // Each chunk resolves its boundaries in one sorted sweep
            // through the engine's batch path (gallop-step meter rides
            // along; the estimates themselves are chunk-invariant).
            let chunked: Vec<(Vec<f64>, u64)> = runtime.map_chunked(
                &pending,
                pending.len(),
                CutoffPolicy::always_parallel(),
                |chunk| match index {
                    Some(index) => {
                        let queries: Vec<_> = chunk
                            .items
                            .iter()
                            .map(|member| requests[member.slot].query)
                            .collect();
                        let batch = index.estimate_batch(&queries);
                        (batch.estimates, batch.gallop_steps)
                    }
                    None => (
                        chunk
                            .items
                            .iter()
                            .map(|member| estimator.estimate(station, requests[member.slot].query))
                            .collect(),
                        0,
                    ),
                },
            );
            let gallop_steps: u64 = chunked.iter().map(|(_, steps)| steps).sum();
            let estimates: Vec<f64> = chunked
                .into_iter()
                .flat_map(|(estimates, _)| estimates)
                .collect();
            if index.is_some() {
                broker.counters.indexed_estimates += pending.len() as u64;
                broker.counters.engine_hits += pending.len() as u64;
                broker.counters.gallop_steps += gallop_steps;
            }

            // Perturb + Settle: sequential in input order so the broker's
            // noise stream is independent of the fan-out. Each member's
            // hold commits with its release, or rolls back on failure.
            let shape = NetworkShape::from_station(broker.network.station());
            for (member, sample_estimate) in pending.into_iter().zip(estimates) {
                let result = shape.clone().and_then(|shape| {
                    Perturb {
                        query: requests[member.slot].query,
                        accuracy: Some(requests[member.slot].accuracy),
                        plan: member.plan,
                        sample_estimate,
                    }
                    .run_with_shape(broker, shape)
                });
                answers[member.slot] = Some(match result {
                    Ok(answer) => {
                        let settled = Settle {
                            answer,
                            reservation: member.reservation,
                            quote: None,
                            buyer: None,
                        }
                        .run(broker);
                        Ok(settled.answer)
                    }
                    Err(e) => {
                        abort(broker, member.reservation);
                        Err(e)
                    }
                });
            }
        }

        // Deferred duplicates now find their progenitor in the cache
        // (or, if it failed, re-run the pipeline and fail the same way).
        for i in deferred {
            let result = QuerySession::new(broker)
                .run(&requests[i])
                .map(|priced| priced.answer);
            answers[i] = Some(result);
        }
    }

    let meter_after = broker.network.meter().snapshot();
    let counters_after = broker.counters;
    BatchReport {
        answers: answers
            .into_iter()
            // prc-lint: allow(P002, reason = "loud invariant: every tier fills its members' slots; a silent Err would mask a scheduler bug")
            .map(|slot| slot.expect("every request resolved"))
            .collect(),
        stats: BatchStats {
            requests: requests.len() as u64,
            rate_tiers,
            collection_rounds: counters_after.collection_rounds - counters_before.collection_rounds,
            samples_collected: counters_after.samples_collected - counters_before.samples_collected,
            cache_hits: counters_after.cache_hits - counters_before.cache_hits,
            chargeable_messages: meter_after.chargeable_messages()
                - meter_before.chargeable_messages(),
            fan_out_threads,
            index_builds: counters_after.index_builds - counters_before.index_builds,
            indexed_estimates: counters_after.indexed_estimates - counters_before.indexed_estimates,
            engine_hits: counters_after.engine_hits - counters_before.engine_hits,
            plan_cache_hits: counters_after.plan_cache_hits - counters_before.plan_cache_hits,
            gallop_steps: counters_after.gallop_steps - counters_before.gallop_steps,
        },
    }
}
