//! The staged query pipeline every broker entry point runs through.
//!
//! One request, one [`QuerySession`], six stages:
//!
//! ```text
//!  Admit ──► Collect ──► Reserve ──► Estimate ──► Perturb ──► Settle
//!  quote     sample      plan +      index or     Laplace     commit,
//!  cache     top-up      budget      scan         noise       cache,
//!  checks                hold                                 ledger
//!    │                      │                        │
//!    └─ cached hit ─────────┼────────────────────────┼──────► Settle
//!                           └─ any later failure ────┴──────► abort
//!                                                             (rollback)
//! ```
//!
//! The stage order differs from a naive reading in one deliberate way:
//! **Collect runs before Reserve**. The effective budget `ε′` of an
//! answer depends on the sampling probability actually achieved
//! (privacy amplification, Theorem 3.2), so the perturbation plan — and
//! therefore the amount to hold — can only be computed after the top-up.
//! Holding a provisional amount before collecting would either over-hold
//! (rejecting affordable queries) or change the committed arithmetic
//! (breaking bit-compatibility with the pre-pipeline broker).
//!
//! Budgeting is two-phase: Reserve places a [`prc_dp::budget::Reservation`]
//! hold, Settle commits it, and any failure between the two rolls it
//! back through [`stages::abort`] — a failed noise draw can no longer
//! leak budget the way the old single-phase `spend` did.
//!
//! Pricing rides the same stages: a priced session
//! ([`QuerySession::for_buyer`]) quotes the demand at Admit — refusing
//! invalid or arbitrageable demands before any budget or sample moves —
//! and settles the sale (price, noise variance, rendered plan) into the
//! engine's ledger at Settle.

pub mod batch;
pub mod stages;

use prc_net::network::Network;

use crate::broker::{DataBroker, PrivateAnswer};
use crate::error::CoreError;
use crate::estimator::RangeCountEstimator;
use crate::query::{QueryRequest, RangeQuery};
use prc_dp::budget::Epsilon;

use stages::{
    abort, Admission, Admit, AdmitFixed, Collect, Estimate, FixedAdmission, Perturb, Reserve,
    ReserveFixed, Reserved, Settle,
};

/// A released answer plus the commercial half of its transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct PricedAnswer {
    /// The released private answer.
    pub answer: PrivateAnswer,
    /// The posted price quoted for the demand (priced sessions only).
    pub price: Option<f64>,
    /// The ledger sequence number of the settled sale (priced sessions
    /// with an installed engine only).
    pub settlement: Option<u64>,
}

/// One request's pass through the staged pipeline.
///
/// Constructed over a broker (plain, via [`QuerySession::new`], or on
/// behalf of a named buyer via [`QuerySession::for_buyer`]) and consumed
/// by one driver: [`QuerySession::run`] for `(α, δ)` demands,
/// [`QuerySession::run_fixed`] for the fixed-ε experiment hook. The
/// batch engine ([`batch::run_batch`]) composes the same stages with a
/// per-tier schedule instead of using a session per request.
#[derive(Debug)]
pub struct QuerySession<'b, E, N> {
    broker: &'b mut DataBroker<E, N>,
    buyer: Option<&'b str>,
}

impl<'b, E: RangeCountEstimator, N: Network> QuerySession<'b, E, N> {
    /// An unpriced session: no quote, no settlement.
    pub fn new(broker: &'b mut DataBroker<E, N>) -> Self {
        QuerySession {
            broker,
            buyer: None,
        }
    }

    /// A priced session for `buyer`; requires the broker to have a
    /// pricing engine installed for the quote/settle stages to engage.
    pub fn for_buyer(broker: &'b mut DataBroker<E, N>, buyer: &'b str) -> Self {
        QuerySession {
            broker,
            buyer: Some(buyer),
        }
    }

    /// Drives an `(α, δ)` request through all six stages.
    ///
    /// # Errors
    ///
    /// Any stage's error; on a failure after Reserve the budget hold is
    /// rolled back before the error propagates.
    pub fn run(self, request: &QueryRequest) -> Result<PricedAnswer, CoreError> {
        let broker = self.broker;
        let admitted = match (Admit {
            request,
            buyer: self.buyer,
        })
        .run(broker)?
        {
            Admission::Cached { answer, quote } => {
                return Ok(Settle {
                    answer,
                    reservation: None,
                    quote,
                    buyer: self.buyer,
                }
                .run(broker))
            }
            Admission::Fresh(admitted) => admitted,
        };
        let quote = admitted.quote;
        Collect {
            target_probability: admitted.target_probability,
        }
        .run(broker);
        let Reserved { plan, reservation } = Reserve {
            accuracy: admitted.request.accuracy,
        }
        .run(broker)?;
        let estimated = Estimate {
            query: admitted.request.query,
        }
        .run(broker);
        let perturbed = Perturb {
            query: admitted.request.query,
            accuracy: Some(admitted.request.accuracy),
            plan,
            sample_estimate: estimated.sample_estimate,
        }
        .run(broker);
        match perturbed {
            Ok(answer) => Ok(Settle {
                answer,
                reservation,
                quote,
                buyer: self.buyer,
            }
            .run(broker)),
            Err(e) => {
                abort(broker, reservation);
                Err(e)
            }
        }
    }

    /// Drives a fixed-ε request (the Fig. 5 / Fig. 6 experiment hook)
    /// through the same stages, with the fixed-ε Admit/Reserve variants.
    ///
    /// # Errors
    ///
    /// Any stage's error; on a failure after Reserve the budget hold is
    /// rolled back before the error propagates.
    pub fn run_fixed(
        self,
        query: RangeQuery,
        epsilon: Epsilon,
        p: f64,
    ) -> Result<PrivateAnswer, CoreError> {
        let broker = self.broker;
        match (AdmitFixed {
            query,
            epsilon,
            probability: p,
        })
        .run(broker)?
        {
            FixedAdmission::Cached(answer) => return Ok(answer),
            FixedAdmission::Fresh => {}
        }
        Collect {
            target_probability: p,
        }
        .run(broker);
        let Reserved { plan, reservation } = ReserveFixed { epsilon }.run(broker)?;
        let estimated = Estimate { query }.run(broker);
        let perturbed = Perturb {
            query,
            accuracy: None,
            plan,
            sample_estimate: estimated.sample_estimate,
        }
        .run(broker);
        match perturbed {
            Ok(answer) => Ok(Settle {
                answer,
                reservation,
                quote: None,
                buyer: None,
            }
            .run(broker)
            .answer),
            Err(e) => {
                abort(broker, reservation);
                Err(e)
            }
        }
    }
}
