//! The six pipeline stages.
//!
//! Each stage is a named struct whose `run` consumes its typed input and
//! produces the next stage's typed input. Stages mutate only the broker
//! state they own — the same mutations, in the same order, as the
//! pre-pipeline entry points, which is what keeps every released answer
//! bit-identical across the refactor:
//!
//! * [`Admit`] / [`AdmitFixed`] — price quote, cache lookup, admission
//!   checks (no broker mutation beyond cache counters);
//! * [`Collect`] — sample top-up through
//!   [`prc_net::network::Network::top_up`] (station mutation, index
//!   invalidation);
//! * [`Reserve`] / [`ReserveFixed`] — perturbation planning and the
//!   two-phase budget **hold** (reserve now, commit or roll back later);
//! * [`Estimate`] — index-or-scan sample estimate (index build);
//! * [`Perturb`] — the only stage that consumes broker randomness;
//! * [`Settle`] — budget commit, cache store, ledger settlement.

use prc_dp::budget::{Epsilon, Reservation};
use prc_dp::laplace::draw_centered;
use prc_net::message::NodeId;
use prc_net::network::Network;
use prc_pricing::engine::{Quote, Settlement};
use prc_pricing::reuse::Demand;

use crate::accuracy::required_probability_clamped;
use crate::broker::{
    DataBroker, IndexFingerprint, IndexGeneration, IndexPolicy, IndexState, PrivateAnswer,
};
use crate::error::CoreError;
use crate::estimator::engine::PlanCache;
use crate::estimator::RangeCountEstimator;
use crate::optimizer::{optimize, NetworkShape, PerturbationPlan, SensitivityPolicy};
use crate::pipeline::PricedAnswer;
use crate::query::{Accuracy, QueryRequest, RangeQuery};

/// Admission decision for one `(α, δ)` request.
#[derive(Debug)]
pub enum Admission {
    /// The cache already holds a reusable answer; skip straight to
    /// [`Settle`] (a re-release is post-processing: budget-free).
    Cached {
        /// The cached answer, bit-identical to its first release.
        answer: PrivateAnswer,
        /// The quote issued for this request, if the session is priced.
        quote: Option<Quote>,
    },
    /// No reusable answer; run the full pipeline.
    Fresh(Admitted),
}

/// A freshly admitted request, ready for [`Collect`].
#[derive(Debug)]
pub struct Admitted {
    /// The admitted request.
    pub request: QueryRequest,
    /// Sampling probability the collection stage must reach.
    pub target_probability: f64,
    /// The quote issued for this request, if the session is priced.
    pub quote: Option<Quote>,
}

/// Stage 1 — Admit: quote the demand (priced sessions), consult the
/// answer cache, and validate that the network can be sampled at all.
#[derive(Debug)]
pub struct Admit<'r> {
    /// The incoming request.
    pub request: &'r QueryRequest,
    /// The purchasing consumer, when the session is priced.
    pub buyer: Option<&'r str>,
}

impl Admit<'_> {
    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// [`CoreError::Pricing`] when the engine refuses the demand (invalid
    /// or arbitrageable — checked *before* any budget or sample moves);
    /// [`CoreError::NoSamples`] when the network is empty;
    /// [`CoreError::InvalidAccuracy`] from the sampling-target solver.
    pub fn run<E: RangeCountEstimator, N: Network>(
        self,
        broker: &mut DataBroker<E, N>,
    ) -> Result<Admission, CoreError> {
        let quote = match (&mut broker.pricing, self.buyer) {
            (Some(engine), Some(_)) => Some(engine.quote(Demand::new(
                self.request.accuracy.alpha(),
                self.request.accuracy.delta(),
            ))?),
            _ => None,
        };
        if let Some(answer) = demand_cache_lookup(broker, self.request) {
            broker.counters.answers_released += 1;
            return Ok(Admission::Cached { answer, quote });
        }
        let k = broker.network.node_count();
        let n = broker.network.total_data_size();
        if n == 0 {
            return Err(CoreError::NoSamples);
        }
        let internal = broker
            .sampling_policy
            .internal_target(self.request.accuracy);
        let target_probability = required_probability_clamped(internal, k, n)?;
        Ok(Admission::Fresh(Admitted {
            request: *self.request,
            target_probability,
            quote,
        }))
    }
}

/// Admission decision for one fixed-ε request.
#[derive(Debug)]
pub enum FixedAdmission {
    /// A cached fixed-ε answer at this exact ε covers the request.
    Cached(PrivateAnswer),
    /// Run the full fixed-ε pipeline.
    Fresh,
}

/// Stage 1 (fixed-ε variant) — validate the requested probability and
/// consult the cache for a prior release at the same range and ε.
#[derive(Debug)]
pub struct AdmitFixed {
    /// The queried range.
    pub query: RangeQuery,
    /// The fixed Laplace budget.
    pub epsilon: Epsilon,
    /// The sampling probability to top up to.
    pub probability: f64,
}

impl AdmitFixed {
    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidProbability`] when `p` is outside `(0, 1]`.
    pub fn run<E: RangeCountEstimator, N: Network>(
        self,
        broker: &mut DataBroker<E, N>,
    ) -> Result<FixedAdmission, CoreError> {
        let p = self.probability;
        if !(0.0..=1.0).contains(&p) || p == 0.0 {
            return Err(CoreError::InvalidProbability { value: p });
        }
        if let Some(answer) = fixed_cache_lookup(broker, self.query, self.epsilon, p) {
            broker.counters.answers_released += 1;
            return Ok(FixedAdmission::Cached(answer));
        }
        Ok(FixedAdmission::Fresh)
    }
}

/// Post-collection station state.
#[derive(Debug, Clone, Copy)]
pub struct Collected {
    /// The sampling probability actually achieved after the top-up.
    pub achieved_probability: f64,
}

/// Stage 2 — Collect: top the network up to the admitted target.
///
/// A round that actually collects reports its [`RoundDelta`]
/// (`prc_net::network::RoundDelta`) — the exact set of changed nodes.
/// The query index is *not* discarded: [`prepare_index`] later absorbs
/// the delta through the station's revision journal. The answer cache
/// *is* delta-filtered here: cached answers whose range touches a
/// changed node's value span are evicted, while answers over untouched
/// ranges survive the round (eviction consumes no randomness and no
/// budget — it only forces a fresh pipeline run on the next request).
#[derive(Debug)]
pub struct Collect {
    /// Sampling probability to reach.
    pub target_probability: f64,
}

impl Collect {
    /// Runs the stage (infallible: a short delivery simply leaves the
    /// achieved probability below target, which later stages re-check).
    pub fn run<E, N: Network>(self, broker: &mut DataBroker<E, N>) -> Collected {
        if let Some(delta) = broker.network.top_up_delta(self.target_probability) {
            broker.counters.collection_rounds += 1;
            broker.counters.samples_collected += delta.delivered as u64;
            evict_touched_answers(broker, &delta.changed);
        }
        Collected {
            achieved_probability: broker.network.station().effective_probability(),
        }
    }
}

/// Evicts cached answers whose query range intersects a changed node's
/// value span, so only answers the round could not have affected keep
/// being re-served. A changed node without entries has no known span and
/// is treated as touching everything (conservative full clear).
pub(crate) fn evict_touched_answers<E, N: Network>(
    broker: &mut DataBroker<E, N>,
    changed: &[NodeId],
) {
    if broker.cache.is_empty() || changed.is_empty() {
        return;
    }
    let station = broker.network.station();
    let mut spans: Vec<(f64, f64)> = Vec::with_capacity(changed.len());
    for &node in changed {
        match station.node_sample(node).and_then(|s| s.value_span()) {
            Some(span) => spans.push(span),
            None => {
                broker.cache.clear();
                return;
            }
        }
    }
    broker.cache.retain(|&(lower_bits, upper_bits, _), _| {
        let lower = f64::from_bits(lower_bits);
        let upper = f64::from_bits(upper_bits);
        !spans.iter().any(|&(lo, hi)| lo <= upper && lower <= hi)
    });
}

/// A planned and budget-held request, ready for [`Estimate`].
///
/// `reservation` is a two-phase hold on the accountant: [`Settle`]
/// commits it after a successful release, [`abort`] rolls it back if any
/// later stage fails — the budget leak the old single-phase `spend` had
/// on failed answers cannot happen here.
#[derive(Debug)]
pub struct Reserved {
    /// The perturbation plan the answer will be released under.
    pub plan: PerturbationPlan,
    /// The budget hold (`None` when no accountant is installed).
    pub reservation: Option<Reservation>,
}

/// Stage 3 — Reserve: solve problem (3) for the perturbation plan and
/// place a hold for its effective `ε′` on the accountant.
#[derive(Debug)]
pub struct Reserve {
    /// The customer accuracy to plan for.
    pub accuracy: Accuracy,
}

impl Reserve {
    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// [`CoreError::InfeasibleAccuracy`] when even a full top-up cannot
    /// meet the demand; [`CoreError::Dp`] when the hold would overdraw
    /// the budget.
    pub fn run<E: RangeCountEstimator, N: Network>(
        self,
        broker: &mut DataBroker<E, N>,
    ) -> Result<Reserved, CoreError> {
        let plan = plan_with_retry(broker, self.accuracy)?;
        let reservation = reserve_effective(broker, plan.effective_epsilon)?;
        Ok(Reserved { plan, reservation })
    }
}

/// Stage 3 (fixed-ε variant) — derive the degenerate plan from the
/// achieved probability and the configured sensitivity policy, then hold
/// the amplified `ε′`.
#[derive(Debug)]
pub struct ReserveFixed {
    /// The fixed Laplace budget.
    pub epsilon: Epsilon,
}

impl ReserveFixed {
    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoSamples`] on an empty station; [`CoreError::Dp`]
    /// from amplification or an overdrawing hold.
    pub fn run<E: RangeCountEstimator, N: Network>(
        self,
        broker: &mut DataBroker<E, N>,
    ) -> Result<Reserved, CoreError> {
        let shape = NetworkShape::from_station(broker.network.station())?;
        let achieved = broker.network.station().effective_probability();
        let sensitivity = match broker.optimizer_config.sensitivity {
            SensitivityPolicy::Expected => 1.0 / achieved,
            SensitivityPolicy::WorstCase => shape.max_node_population as f64,
            // Deliberately unvalidated: the experiment hook sweeps raw
            // values, and a bad one must fail at the noise draw — after
            // the hold — so the rollback path stays honest.
            SensitivityPolicy::Fixed(v) => v,
        };
        let noise_scale = sensitivity / self.epsilon.value();
        let effective = prc_dp::amplification::amplify(self.epsilon, achieved)?;
        // A degenerate but fully finite plan: the fixed-ε hook has no
        // intermediate accuracy split, so (α′, δ′) take their vacuous
        // values (no error bound claimed, confidence 1 that none is
        // exceeded) and the tail probability is 0.
        let plan = PerturbationPlan {
            alpha_prime: 0.0,
            delta_prime: 1.0,
            epsilon: self.epsilon,
            effective_epsilon: effective,
            sensitivity,
            noise_scale,
            probability: achieved,
            tail_probability: 0.0,
        };
        let reservation = reserve_effective(broker, effective)?;
        Ok(Reserved { plan, reservation })
    }
}

/// The pre-noise sample estimate.
#[derive(Debug, Clone, Copy)]
pub struct Estimated {
    /// The estimator's (or index's) range-count estimate.
    pub sample_estimate: f64,
}

/// Stage 4 — Estimate: answer the range count from the station's current
/// sample, through the epoch's query index when one is available
/// (bit-identical to the direct scan by the
/// [`crate::estimator::QueryIndex`] contract).
#[derive(Debug)]
pub struct Estimate {
    /// The queried range.
    pub query: RangeQuery,
}

impl Estimate {
    /// Runs the stage.
    pub fn run<E: RangeCountEstimator, N: Network>(
        self,
        broker: &mut DataBroker<E, N>,
    ) -> Estimated {
        prepare_index(broker, 1);
        let sample_estimate = match &broker.index {
            IndexState::Ready(_, index) => {
                broker.counters.indexed_estimates += 1;
                broker.counters.engine_hits += 1;
                index.estimate(self.query)
            }
            _ => broker
                .estimator
                .estimate(broker.network.station(), self.query),
        };
        Estimated { sample_estimate }
    }
}

/// Stage 5 — Perturb: draw the Laplace noise and assemble the answer.
///
/// The only stage that consumes broker randomness; batch drivers run it
/// sequentially in input order so the noise stream is independent of any
/// estimator fan-out.
#[derive(Debug)]
pub struct Perturb {
    /// The queried range.
    pub query: RangeQuery,
    /// The customer accuracy (`None` on the fixed-ε path).
    pub accuracy: Option<Accuracy>,
    /// The plan to perturb under.
    pub plan: PerturbationPlan,
    /// The pre-noise estimate.
    pub sample_estimate: f64,
}

impl Perturb {
    /// Runs the stage against the station's current shape.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoSamples`] on an empty station; [`CoreError::Dp`]
    /// when the plan's noise scale is not a positive finite number.
    pub fn run<E: RangeCountEstimator, N: Network>(
        self,
        broker: &mut DataBroker<E, N>,
    ) -> Result<PrivateAnswer, CoreError> {
        let shape = NetworkShape::from_station(broker.network.station())?;
        self.run_with_shape(broker, shape)
    }

    /// Runs the stage with a shape the caller already computed (the batch
    /// driver computes it once per tier).
    ///
    /// # Errors
    ///
    /// [`CoreError::Dp`] when the plan's noise scale is not a positive
    /// finite number.
    pub fn run_with_shape<E: RangeCountEstimator, N: Network>(
        self,
        broker: &mut DataBroker<E, N>,
        shape: NetworkShape,
    ) -> Result<PrivateAnswer, CoreError> {
        let noise = draw_centered(self.plan.noise_scale, &mut broker.rng)?;
        let variance_bound =
            broker
                .estimator
                .variance_bound(shape.k, shape.n, self.plan.probability)
                + self.plan.noise_variance();
        broker.counters.answers_released += 1;
        Ok(PrivateAnswer {
            query: self.query,
            accuracy: self.accuracy,
            value: self.sample_estimate + noise,
            sample_estimate: self.sample_estimate,
            plan: self.plan,
            variance_bound,
        })
    }
}

/// Stage 6 — Settle: commit the budget hold, store the answer for
/// reuse, and (priced sessions) record the sale in the engine's ledger.
#[derive(Debug)]
pub struct Settle<'r> {
    /// The released answer.
    pub answer: PrivateAnswer,
    /// The budget hold to commit (`None`: unbudgeted, or a cached hit).
    pub reservation: Option<Reservation>,
    /// The quote issued at admission, if the session is priced.
    pub quote: Option<Quote>,
    /// The purchasing consumer, when the session is priced.
    pub buyer: Option<&'r str>,
}

impl Settle<'_> {
    /// Runs the stage (infallible: everything that can refuse the
    /// transaction already has).
    pub fn run<E, N: Network>(self, broker: &mut DataBroker<E, N>) -> PricedAnswer {
        if let Some(hold) = self.reservation {
            if let Some(accountant) = &mut broker.accountant {
                accountant.commit(hold);
            }
        }
        cache_store(broker, &self.answer);
        let (price, settlement) = match (self.quote, self.buyer, &mut broker.pricing) {
            (Some(quote), Some(buyer), Some(engine)) => {
                let summary = self.answer.plan.summary();
                let sequence = engine.settle(Settlement {
                    buyer: buyer.to_owned(),
                    demand: quote.demand,
                    price: quote.price,
                    noise_variance: summary.noise_variance,
                    plan: summary.to_string(),
                });
                broker.counters.settlements += 1;
                (Some(quote.price), Some(sequence))
            }
            (Some(quote), ..) => (Some(quote.price), None),
            _ => (None, None),
        };
        PricedAnswer {
            answer: self.answer,
            price,
            settlement,
        }
    }
}

/// Rolls a failed session's budget hold back, restoring the reserved
/// `ε′` to the accountant.
pub(crate) fn abort<E, N>(broker: &mut DataBroker<E, N>, reservation: Option<Reservation>) {
    if let Some(hold) = reservation {
        if let Some(accountant) = &mut broker.accountant {
            accountant.rollback(hold);
            broker.counters.budget_rollbacks += 1;
        }
    }
}

/// Places a hold for `epsilon` on the accountant, if one is installed.
pub(crate) fn reserve_effective<E, N>(
    broker: &mut DataBroker<E, N>,
    epsilon: Epsilon,
) -> Result<Option<Reservation>, CoreError> {
    match &mut broker.accountant {
        Some(accountant) => Ok(Some(accountant.reserve(epsilon)?)),
        None => Ok(None),
    }
}

/// Solves problem (3), topping up once more if the optimizer reports the
/// demand infeasible at the achieved probability.
pub(crate) fn plan_with_retry<E: RangeCountEstimator, N: Network>(
    broker: &mut DataBroker<E, N>,
    accuracy: Accuracy,
) -> Result<PerturbationPlan, CoreError> {
    match plan(broker, accuracy) {
        Ok(plan) => Ok(plan),
        Err(CoreError::InfeasibleAccuracy {
            required_probability,
            ..
        }) => {
            Collect {
                target_probability: (required_probability * 1.05).min(1.0),
            }
            .run(broker);
            plan(broker, accuracy)
        }
        Err(e) => Err(e),
    }
}

/// Solves problem (3) at the currently achieved sampling probability,
/// memoizing the grid sweep in the broker's plan cache.
///
/// The cache key is the fingerprint of `(α, δ, p)`; everything else the
/// optimizer reads — the network shape and the achieved rate — is a
/// function of the station, so the cache synchronizes on the station's
/// revision stamp (the same stamp the index cache invalidates on) and a
/// stale epoch can never serve a plan. Budget state never enters the
/// sweep (holds are placed *after* planning), so no budget-side
/// invalidation is needed; config swaps clear the cache at the setter.
fn plan<E: RangeCountEstimator, N: Network>(
    broker: &mut DataBroker<E, N>,
    accuracy: Accuracy,
) -> Result<PerturbationPlan, CoreError> {
    let station = broker.network.station();
    let p = station.effective_probability();
    if p <= 0.0 {
        return Err(CoreError::NoSamples);
    }
    let revision = station.revision();
    let key = PlanCache::fingerprint(accuracy, p);
    if let Some(plan) = broker.plan_cache.lookup(revision, key) {
        broker.counters.plan_cache_hits += 1;
        return Ok(plan);
    }
    let shape = NetworkShape::from_station(station)?;
    let plan = optimize(accuracy, p, shape, &broker.optimizer_config)?;
    broker.plan_cache.insert(revision, key, plan);
    Ok(plan)
}

/// Makes the index slot reflect the station's *current* state, about to
/// answer `upcoming_queries` estimates. After this returns, an
/// `IndexState::Ready` slot is safe to answer from.
///
/// In order of preference:
///
/// 1. a live generation whose revision matches the station is kept
///    as-is;
/// 2. a drifted generation absorbs the exact changed-node delta from
///    the revision journal (`O(Δ log Δ)`), falling back to 4 only when
///    the index declines (e.g. the station lost its uniform rate);
/// 3. a pending cross-broker [`crate::broker::IndexCacheHandle`] whose
///    station matches structurally is adopted instead of building;
/// 4. otherwise the [`IndexPolicy`] decides whether to build from
///    scratch now: a threshold policy compares sample counts, the
///    adaptive policy accrues the scanning cost of `upcoming_queries`
///    into its ski-rental meter and builds once scanning has foregone a
///    build's worth of savings.
pub(crate) fn prepare_index<E: RangeCountEstimator, N: Network>(
    broker: &mut DataBroker<E, N>,
    upcoming_queries: u64,
) {
    let station = broker.network.station();
    let revision = station.revision();
    let fingerprint: IndexFingerprint = (
        station.uniform_probability().map(f64::to_bits),
        station.total_samples(),
    );

    // 1 + 2: a live generation is kept or brought up to date in place.
    if let IndexState::Ready(generation, index) = &mut broker.index {
        if generation.revision == revision {
            return;
        }
        let changed = station.changed_since(generation.revision);
        if let Some(outcome) = index.absorb_delta(station, &changed) {
            *generation = IndexGeneration {
                fingerprint,
                revision,
            };
            broker.counters.delta_appends += 1;
            broker.counters.compactions += outcome.compactions;
            broker.counters.segments_live = index.segments() as u64;
            return;
        }
        broker.index = IndexState::Stale;
        broker.counters.segments_live = 0;
    }

    if let IndexState::Unavailable(f) = &broker.index {
        if *f == fingerprint {
            return;
        }
    }

    // 3: adopt a threaded-in index if its station matches ours exactly.
    if broker
        .pending_index
        .as_ref()
        .is_some_and(|handle| *station == handle.station)
    {
        if let Some(handle) = broker.pending_index.take() {
            broker.counters.segments_live = handle.index.segments() as u64;
            broker.index = IndexState::Ready(
                IndexGeneration {
                    fingerprint,
                    revision,
                },
                handle.index,
            );
            return;
        }
    }

    // 4: build-from-scratch decision.
    let entries = station.total_samples();
    let should_build = match broker.index_policy {
        IndexPolicy::Threshold(threshold) => entries >= threshold,
        IndexPolicy::Adaptive(model) => {
            let nodes = station.data_bearing_samples().count();
            broker
                .build_accrual
                .observe(&model, entries, nodes, upcoming_queries);
            broker.build_accrual.should_build(&model, entries)
        }
    };
    if !should_build {
        broker.index = IndexState::Stale;
        return;
    }
    broker.index = match broker.estimator.build_index(station) {
        Some(index) => {
            broker.counters.index_builds += 1;
            broker.counters.segments_live = index.segments() as u64;
            broker.build_accrual = crate::estimator::BuildAccrual::default();
            IndexState::Ready(
                IndexGeneration {
                    fingerprint,
                    revision,
                },
                index,
            )
        }
        None => IndexState::Unavailable(fingerprint),
    };
}

/// Looks an `(α, δ)` request up in the answer cache, if caching is
/// enabled. Only demand-path answers (with a recorded accuracy) are
/// candidates; the guard decides whether re-serving one can undercut the
/// posted price curve.
pub(crate) fn demand_cache_lookup<E, N>(
    broker: &mut DataBroker<E, N>,
    request: &QueryRequest,
) -> Option<PrivateAnswer> {
    let guard = broker.reuse_guard.as_deref()?;
    let lower = request.query.lower().to_bits();
    let upper = request.query.upper().to_bits();
    let requested = Demand::new(request.accuracy.alpha(), request.accuracy.delta());
    let hit = broker
        .cache
        .range((lower, upper, u64::MIN)..=(lower, upper, u64::MAX))
        .map(|(_, answer)| answer)
        .find(|answer| {
            answer.accuracy.is_some_and(|cached| {
                guard.allows_reuse(requested, Demand::new(cached.alpha(), cached.delta()))
            })
        })
        .copied();
    if hit.is_some() {
        broker.counters.cache_hits += 1;
    } else {
        broker.counters.cache_misses += 1;
    }
    hit
}

/// Looks a fixed-ε request up in the answer cache, if caching is
/// enabled. A cached fixed-ε answer is reusable only for the *same*
/// range at the *same* ε, sampled at least as hard as requested — there
/// is no accuracy demand for a guard to price, so the match is exact.
fn fixed_cache_lookup<E, N>(
    broker: &mut DataBroker<E, N>,
    query: RangeQuery,
    epsilon: Epsilon,
    p: f64,
) -> Option<PrivateAnswer> {
    broker.reuse_guard.as_deref()?;
    let lower = query.lower().to_bits();
    let upper = query.upper().to_bits();
    let hit = broker
        .cache
        .range((lower, upper, u64::MIN)..=(lower, upper, u64::MAX))
        .map(|(_, answer)| answer)
        .find(|answer| {
            answer.accuracy.is_none()
                && answer.plan.epsilon.value().to_bits() == epsilon.value().to_bits()
                && answer.plan.probability >= p
        })
        .copied();
    if hit.is_some() {
        broker.counters.cache_hits += 1;
    } else {
        broker.counters.cache_misses += 1;
    }
    hit
}

/// Stores a freshly released answer for future reuse.
pub(crate) fn cache_store<E, N>(broker: &mut DataBroker<E, N>, answer: &PrivateAnswer) {
    if broker.reuse_guard.is_none() {
        return;
    }
    let key = (
        answer.query.lower().to_bits(),
        answer.query.upper().to_bits(),
        answer.plan.epsilon.value().to_bits(),
    );
    broker.cache.entry(key).or_insert(*answer);
}
