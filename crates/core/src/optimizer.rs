//! The optimal-perturbation problem (§III-B, Eq. 3).
//!
//! Given a customer demand `(α, δ)`, sample rate `p`, and network shape
//! `(k, n)`, the broker must pick an intermediate accuracy `(α′, δ′)` for
//! the sampling stage and a Laplace budget `ε` for the noise stage so that
//! the *composed* answer still meets `(α, δ)`, while the **effective**
//! privacy budget after amplification by sampling,
//! `ε′ = ln(1 + p(e^ε − 1))` (Lemma 3.4), is as small as possible:
//!
//! ```text
//! min  ε′ = ln(1 + p(e^ε − 1))
//! s.t. δ′ = 1 − 8k/(α′·n·p)²            (all samples at rate p are used)
//!      α′ ≤ α,   δ ≤ δ′
//!      Pr[|Lap(Δγ̂/ε)| ≤ (α − α′)n] ≥ δ/δ′
//! ```
//!
//! The tail constraint gives the closed form
//! `ε(α′) = Δγ̂/((α−α′)n) · ln(δ′/(δ′−δ))`; the solver sweeps a discrete
//! grid of `α′ ∈ (0, α)` and keeps the minimum. Grids of at least
//! [`PARALLEL_GRID_MIN`] points are swept across the shared
//! [`prc_runtime::Runtime`] pool; chunks are folded in ascending grid
//! order with the same strict-`<` argmin and first-error rule as the
//! sequential loop, so the returned plan (and error) is bit-identical
//! either way.
//!
//! **Direction of the tail constraint.** The paper prints the constraint
//! as `Pr[|Lap(ε)| ≤ (α−α′)n] ≤ δ/δ′`, but its own derivation (and the
//! closed form above) requires `≥` — the noise must be *small enough*
//! with probability at least `δ/δ′` so that `δ′ · Pr[noise small] ≥ δ`.
//! We implement the mathematically consistent direction; see DESIGN.md §3.
//!
//! **Sensitivity.** The sampled estimator's worst-case sensitivity is
//! `n_i`, which would destroy utility; the paper adopts the *expected*
//! sensitivity `Δγ̂ = 1/p`. Both are available via [`SensitivityPolicy`].

use prc_dp::amplification::amplify;
use prc_dp::budget::Epsilon;
use prc_dp::laplace::required_epsilon;
use prc_net::base_station::BaseStation;
use prc_runtime::{CutoffPolicy, Runtime};

use crate::accuracy::achieved_delta;
use crate::error::CoreError;
use crate::query::Accuracy;

/// How the broker estimates the sensitivity `Δγ̂` of the sampled estimator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SensitivityPolicy {
    /// The paper's choice: the expected sensitivity `1/p`.
    Expected,
    /// The conservative choice: the largest node population `max_i n_i`
    /// (an adversarial record could shift a node's estimate by up to its
    /// whole population).
    WorstCase,
    /// A caller-supplied constant.
    Fixed(f64),
}

/// Shape of the network the optimizer plans for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NetworkShape {
    /// Number of nodes `k`.
    pub k: usize,
    /// Global population `n = |D|`.
    pub n: usize,
    /// Largest per-node population `max_i n_i` (used by
    /// [`SensitivityPolicy::WorstCase`]).
    pub max_node_population: usize,
}

impl NetworkShape {
    /// A shape with `max_node_population` defaulted to `⌈n/k⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `n == 0`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k > 0 && n > 0, "network shape must be non-empty");
        NetworkShape {
            k,
            n,
            max_node_population: n.div_ceil(k),
        }
    }

    /// Reads the exact shape from a base station's sample state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSamples`] when no node has reported.
    pub fn from_station(station: &BaseStation) -> Result<Self, CoreError> {
        let k = station.node_count();
        let n = station.total_population();
        if k == 0 || n == 0 {
            return Err(CoreError::NoSamples);
        }
        let max_node_population = station
            .node_samples()
            .map(|s| s.population_size)
            .max()
            .unwrap_or(0);
        Ok(NetworkShape {
            k,
            n,
            max_node_population,
        })
    }
}

/// Configuration of the grid-search solver.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OptimizerConfig {
    /// Number of `α′` grid points swept inside `(0, α)`.
    pub grid_points: usize,
    /// Sensitivity policy for `Δγ̂`.
    pub sensitivity: SensitivityPolicy,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            grid_points: 200,
            sensitivity: SensitivityPolicy::Expected,
        }
    }
}

/// The optimizer's output: everything the broker needs to perturb one
/// answer, plus the diagnostics the experiments report.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerturbationPlan {
    /// Chosen intermediate error bound `α′ < α`.
    pub alpha_prime: f64,
    /// Confidence `δ′ > δ` achieved by sampling at `α′`.
    pub delta_prime: f64,
    /// Laplace budget `ε` spent on the sample.
    pub epsilon: Epsilon,
    /// Effective budget `ε′ = ln(1 + p(e^ε − 1))` after amplification —
    /// the quantity the optimizer minimizes and the privacy level the
    /// released answer actually enjoys.
    pub effective_epsilon: Epsilon,
    /// Sensitivity `Δγ̂` used to scale the noise.
    pub sensitivity: f64,
    /// Laplace noise scale `b = Δγ̂/ε`.
    pub noise_scale: f64,
    /// Sampling probability the plan assumes.
    pub probability: f64,
    /// Required central noise mass `τ = δ/δ′` at tolerance `(α − α′)n`.
    pub tail_probability: f64,
}

impl PerturbationPlan {
    /// Variance of the Laplace noise this plan injects: `2b²`.
    pub fn noise_variance(&self) -> f64 {
        2.0 * self.noise_scale * self.noise_scale
    }

    /// The plan's release-facing digest: the one place the noise
    /// variance, budgets, and scale are derived for consumers
    /// (the broker's release stage and the pricing ledger's settlement
    /// records both render this instead of re-deriving formulas).
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            epsilon: self.epsilon.value(),
            effective_epsilon: self.effective_epsilon.value(),
            sensitivity: self.sensitivity,
            noise_scale: self.noise_scale,
            noise_variance: self.noise_variance(),
            probability: self.probability,
        }
    }
}

/// A `Display`/serde-friendly digest of a [`PerturbationPlan`]: the
/// numbers a settlement record or log line needs, with the noise
/// variance derived once from the plan's own scale.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanSummary {
    /// Laplace budget `ε`.
    pub epsilon: f64,
    /// Effective (amplified) budget `ε′`.
    pub effective_epsilon: f64,
    /// Sensitivity `Δγ̂`.
    pub sensitivity: f64,
    /// Laplace noise scale `b`.
    pub noise_scale: f64,
    /// Noise variance `2b²`.
    pub noise_variance: f64,
    /// Sampling probability the plan assumes.
    pub probability: f64,
}

impl std::fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ε={} ε′={} Δ={} b={} 2b²={} p={}",
            self.epsilon,
            self.effective_epsilon,
            self.sensitivity,
            self.noise_scale,
            self.noise_variance,
            self.probability
        )
    }
}

/// Resolves the sensitivity value for a policy.
fn resolve_sensitivity(
    policy: SensitivityPolicy,
    p: f64,
    shape: NetworkShape,
) -> Result<f64, CoreError> {
    let value = match policy {
        SensitivityPolicy::Expected => 1.0 / p,
        SensitivityPolicy::WorstCase => shape.max_node_population as f64,
        SensitivityPolicy::Fixed(v) => v,
    };
    if !value.is_finite() || value <= 0.0 {
        return Err(CoreError::Dp(prc_dp::DpError::InvalidSensitivity { value }));
    }
    Ok(value)
}

/// Evaluates one grid point `α′`, returning the plan when feasible.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] for `p ∉ (0, 1]` and
/// propagates sensitivity errors; infeasible grid points return `Ok(None)`.
pub fn plan_for_alpha_prime(
    alpha_prime: f64,
    accuracy: Accuracy,
    p: f64,
    shape: NetworkShape,
    config: &OptimizerConfig,
) -> Result<Option<PerturbationPlan>, CoreError> {
    let alpha = accuracy.alpha();
    let delta = accuracy.delta();
    if !(alpha_prime > 0.0 && alpha_prime < alpha) {
        return Ok(None);
    }
    let delta_prime = achieved_delta(p, alpha_prime, shape.k, shape.n)?;
    if delta_prime <= delta {
        return Ok(None);
    }
    // τ = δ/δ′ is the central mass the noise must keep within (α−α′)n.
    let tau = delta / delta_prime;
    let tolerance = (alpha - alpha_prime) * shape.n as f64;
    let sensitivity = resolve_sensitivity(config.sensitivity, p, shape)?;
    let eps_value = required_epsilon(sensitivity, tolerance, tau)?;
    if eps_value <= 0.0 || !eps_value.is_finite() {
        return Ok(None);
    }
    let epsilon = Epsilon::new(eps_value)?;
    let effective_epsilon = amplify(epsilon, p)?;
    Ok(Some(PerturbationPlan {
        alpha_prime,
        delta_prime,
        epsilon,
        effective_epsilon,
        sensitivity,
        noise_scale: sensitivity / eps_value,
        probability: p,
        tail_probability: tau,
    }))
}

/// Grids of at least this many points are swept in parallel; smaller
/// sweeps stay sequential because the dispatch overhead would exceed
/// the per-point work. This is the `min_work` of [`GRID_CUTOFF`].
pub const PARALLEL_GRID_MIN: usize = 512;

/// The sweep's cutoff policy, with `work` measured in grid points.
const GRID_CUTOFF: CutoffPolicy = CutoffPolicy::min_work(PARALLEL_GRID_MIN);

/// Sweeps the grid points `indices` (of a `grid_points`-point grid),
/// returning the feasible plan with the smallest `ε′` — ties keep the
/// lowest grid point — or the first error.
fn sweep_grid(
    indices: &[usize],
    grid_points: usize,
    accuracy: Accuracy,
    p: f64,
    shape: NetworkShape,
    config: &OptimizerConfig,
) -> Result<Option<PerturbationPlan>, CoreError> {
    let alpha = accuracy.alpha();
    let mut best: Option<PerturbationPlan> = None;
    for &j in indices {
        let alpha_prime = alpha * j as f64 / (grid_points + 1) as f64;
        if let Some(plan) = plan_for_alpha_prime(alpha_prime, accuracy, p, shape, config)? {
            let better = match &best {
                Some(b) => plan.effective_epsilon < b.effective_epsilon,
                None => true,
            };
            if better {
                best = Some(plan);
            }
        }
    }
    Ok(best)
}

/// Solves the paper's optimization problem (3): sweeps `α′` over a grid in
/// `(0, α)` and returns the feasible plan with the smallest effective
/// budget `ε′`.
///
/// # Examples
///
/// ```
/// use prc_core::optimizer::{optimize, NetworkShape, OptimizerConfig};
/// use prc_core::query::Accuracy;
///
/// # fn main() -> Result<(), prc_core::CoreError> {
/// let shape = NetworkShape::new(50, 17_568);
/// let plan = optimize(Accuracy::new(0.08, 0.6)?, 0.4, shape, &OptimizerConfig::default())?;
/// // The two-phase split is strict, and amplification tightened the budget.
/// assert!(plan.alpha_prime < 0.08 && plan.delta_prime > 0.6);
/// assert!(plan.effective_epsilon < plan.epsilon);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidProbability`] — `p ∉ (0, 1]`;
/// * [`CoreError::InfeasibleAccuracy`] — no grid point satisfies the
///   constraints; the error carries the sampling probability that would
///   make the demand feasible so the broker can top up.
///
/// # Panics
///
/// Only to propagate a sweep worker's panic, re-raised through the
/// runtime's single panic path ([`Runtime::reduce_ordered`]); the sweep
/// itself does not panic.
pub fn optimize(
    accuracy: Accuracy,
    p: f64,
    shape: NetworkShape,
    config: &OptimizerConfig,
) -> Result<PerturbationPlan, CoreError> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 {
        return Err(CoreError::InvalidProbability { value: p });
    }
    let alpha = accuracy.alpha();
    let grid_points = config.grid_points.max(2);
    let grid: Vec<usize> = (1..=grid_points).collect();
    // Fold in ascending grid order: the earliest chunk's error wins (the
    // sequential loop would have hit it first), and the strict `<` keeps
    // the lowest-j plan on ε′ ties — so the result is bit-identical to
    // the sequential sweep for any chunking, including the sequential
    // fallback below [`PARALLEL_GRID_MIN`].
    let best = Runtime::global().reduce_ordered(
        &grid,
        grid_points,
        GRID_CUTOFF,
        |chunk| sweep_grid(chunk.items, grid_points, accuracy, p, shape, config),
        Ok(None),
        |best: Result<Option<PerturbationPlan>, CoreError>, partial| {
            let best = best?;
            let Some(plan) = partial? else {
                return Ok(best);
            };
            let better = match &best {
                Some(b) => plan.effective_epsilon < b.effective_epsilon,
                None => true,
            };
            Ok(if better { Some(plan) } else { best })
        },
    )?;
    best.ok_or_else(|| {
        // Feasibility needs δ′(α′) > δ for some α′ < α; report the p that
        // achieves δ′ = (1+δ)/2 at α′ = 0.9α, a comfortably feasible point.
        let required = Accuracy::new(0.9 * alpha, (1.0 + accuracy.delta()) / 2.0)
            .ok()
            .and_then(|target| {
                crate::accuracy::required_probability_clamped(target, shape.k, shape.n).ok()
            })
            .unwrap_or(1.0);
        CoreError::InfeasibleAccuracy {
            available_probability: p,
            required_probability: required,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prc_dp::laplace::Laplace;

    fn acc(a: f64, d: f64) -> Accuracy {
        Accuracy::new(a, d).unwrap()
    }

    fn shape() -> NetworkShape {
        NetworkShape::new(50, 17_568)
    }

    #[test]
    fn optimal_plan_satisfies_every_constraint() {
        let accuracy = acc(0.08, 0.6);
        let p = 0.4;
        let plan = optimize(accuracy, p, shape(), &OptimizerConfig::default()).unwrap();

        // α′ < α and δ′ > δ.
        assert!(plan.alpha_prime > 0.0 && plan.alpha_prime < accuracy.alpha());
        assert!(plan.delta_prime > accuracy.delta() && plan.delta_prime <= 1.0);

        // δ′ consistency with Theorem 3.3's inverse.
        let d = achieved_delta(p, plan.alpha_prime, 50, 17_568).unwrap();
        assert!((d - plan.delta_prime).abs() < 1e-12);

        // The Laplace tail constraint holds with equality at the optimum.
        let noise = Laplace::centered(plan.noise_scale).unwrap();
        let tolerance = (accuracy.alpha() - plan.alpha_prime) * 17_568.0;
        let mass = noise.central_probability(tolerance);
        assert!(
            (mass - plan.tail_probability).abs() < 1e-9,
            "mass {mass} vs τ {}",
            plan.tail_probability
        );
        // Composition: δ′ · τ ≥ δ.
        assert!(plan.delta_prime * mass >= accuracy.delta() - 1e-9);

        // Amplification consistency.
        let amplified = amplify(plan.epsilon, p).unwrap();
        assert!((amplified.value() - plan.effective_epsilon.value()).abs() < 1e-12);
        assert!(plan.effective_epsilon.value() < plan.epsilon.value());

        // Expected sensitivity = 1/p.
        assert!((plan.sensitivity - 1.0 / p).abs() < 1e-12);
        assert!(plan.noise_variance() > 0.0);
    }

    #[test]
    fn optimum_beats_arbitrary_feasible_points() {
        let accuracy = acc(0.1, 0.5);
        let p = 0.3;
        let config = OptimizerConfig::default();
        let best = optimize(accuracy, p, shape(), &config).unwrap();
        for frac in [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95] {
            let alpha_prime = accuracy.alpha() * frac;
            if let Some(plan) =
                plan_for_alpha_prime(alpha_prime, accuracy, p, shape(), &config).unwrap()
            {
                assert!(
                    best.effective_epsilon.value() <= plan.effective_epsilon.value() + 1e-9,
                    "grid point {frac} beat the optimum"
                );
            }
        }
    }

    #[test]
    fn more_samples_allow_stronger_privacy() {
        let accuracy = acc(0.08, 0.6);
        let config = OptimizerConfig::default();
        let low = optimize(accuracy, 0.2, shape(), &config).unwrap();
        let high = optimize(accuracy, 0.6, shape(), &config).unwrap();
        assert!(
            high.effective_epsilon.value() < low.effective_epsilon.value(),
            "p=0.6 should yield smaller ε′ than p=0.2 ({} vs {})",
            high.effective_epsilon,
            low.effective_epsilon
        );
    }

    #[test]
    fn looser_accuracy_allows_stronger_privacy() {
        let config = OptimizerConfig::default();
        let p = 0.4;
        let strict = optimize(acc(0.05, 0.8), p, shape(), &config).unwrap();
        let loose = optimize(acc(0.2, 0.5), p, shape(), &config).unwrap();
        assert!(loose.effective_epsilon.value() < strict.effective_epsilon.value());
    }

    #[test]
    fn infeasible_demand_reports_required_probability() {
        // Tiny p cannot satisfy a strict demand.
        let accuracy = acc(0.02, 0.95);
        let err = optimize(accuracy, 0.01, shape(), &OptimizerConfig::default()).unwrap_err();
        match err {
            CoreError::InfeasibleAccuracy {
                available_probability,
                required_probability,
            } => {
                assert_eq!(available_probability, 0.01);
                assert!(required_probability > 0.01);
                // Topping up to the hinted probability must make the
                // demand feasible.
                let plan = optimize(
                    accuracy,
                    required_probability,
                    shape(),
                    &OptimizerConfig::default(),
                );
                assert!(plan.is_ok(), "hinted probability still infeasible");
            }
            other => panic!("expected InfeasibleAccuracy, got {other:?}"),
        }
    }

    #[test]
    fn invalid_probability_is_rejected() {
        let accuracy = acc(0.1, 0.5);
        for p in [0.0, -0.1, 1.5, f64::NAN] {
            assert!(matches!(
                optimize(accuracy, p, shape(), &OptimizerConfig::default()),
                Err(CoreError::InvalidProbability { .. })
            ));
        }
    }

    #[test]
    fn worst_case_sensitivity_needs_more_noise() {
        let accuracy = acc(0.1, 0.5);
        let p = 0.4;
        let expected = optimize(
            accuracy,
            p,
            shape(),
            &OptimizerConfig {
                sensitivity: SensitivityPolicy::Expected,
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        let worst = optimize(
            accuracy,
            p,
            shape(),
            &OptimizerConfig {
                sensitivity: SensitivityPolicy::WorstCase,
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        // Same tolerance must be met, so worst-case sensitivity forces a
        // larger ε (weaker privacy).
        assert!(worst.epsilon.value() > expected.epsilon.value());
        assert!(worst.sensitivity > expected.sensitivity);
    }

    #[test]
    fn fixed_sensitivity_policy() {
        let accuracy = acc(0.1, 0.5);
        let plan = optimize(
            accuracy,
            0.4,
            shape(),
            &OptimizerConfig {
                sensitivity: SensitivityPolicy::Fixed(3.0),
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(plan.sensitivity, 3.0);
        let bad = optimize(
            accuracy,
            0.4,
            shape(),
            &OptimizerConfig {
                sensitivity: SensitivityPolicy::Fixed(-1.0),
                ..OptimizerConfig::default()
            },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn finer_grids_never_hurt() {
        let accuracy = acc(0.08, 0.6);
        let p = 0.4;
        let coarse = optimize(
            accuracy,
            p,
            shape(),
            &OptimizerConfig {
                grid_points: 10,
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        let fine = optimize(
            accuracy,
            p,
            shape(),
            &OptimizerConfig {
                grid_points: 2_000,
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        assert!(fine.effective_epsilon.value() <= coarse.effective_epsilon.value() + 1e-9);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_the_sequential_reference() {
        let accuracy = acc(0.08, 0.6);
        let p = 0.4;
        let grid_points = 2 * PARALLEL_GRID_MIN; // forces the parallel path
        let config = OptimizerConfig {
            grid_points,
            ..OptimizerConfig::default()
        };
        let plan = optimize(accuracy, p, shape(), &config).unwrap();
        // Reference: the plain sequential loop over the same grid.
        let mut best: Option<PerturbationPlan> = None;
        for j in 1..=grid_points {
            let alpha_prime = accuracy.alpha() * j as f64 / (grid_points + 1) as f64;
            if let Some(candidate) =
                plan_for_alpha_prime(alpha_prime, accuracy, p, shape(), &config).unwrap()
            {
                let better = best
                    .as_ref()
                    .is_none_or(|b| candidate.effective_epsilon < b.effective_epsilon);
                if better {
                    best = Some(candidate);
                }
            }
        }
        let reference = best.unwrap();
        assert_eq!(plan.alpha_prime.to_bits(), reference.alpha_prime.to_bits());
        assert_eq!(
            plan.effective_epsilon.value().to_bits(),
            reference.effective_epsilon.value().to_bits()
        );
        assert_eq!(plan.noise_scale.to_bits(), reference.noise_scale.to_bits());
    }

    #[test]
    fn parallel_sweep_reports_infeasibility_like_the_sequential_one() {
        let accuracy = acc(0.02, 0.95);
        let parallel_cfg = OptimizerConfig {
            grid_points: 2 * PARALLEL_GRID_MIN,
            ..OptimizerConfig::default()
        };
        let err = optimize(accuracy, 0.01, shape(), &parallel_cfg).unwrap_err();
        assert!(matches!(err, CoreError::InfeasibleAccuracy { .. }));
    }

    #[test]
    fn network_shape_constructors() {
        let s = NetworkShape::new(3, 10);
        assert_eq!(s.max_node_population, 4);
        let s = NetworkShape::new(5, 10);
        assert_eq!(s.max_node_population, 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_shape_panics() {
        let _ = NetworkShape::new(0, 10);
    }

    #[test]
    fn shape_from_station() {
        use prc_net::message::{NodeId, SampleMessage};
        let mut station = BaseStation::new();
        assert!(matches!(
            NetworkShape::from_station(&station),
            Err(CoreError::NoSamples)
        ));
        station.ingest(SampleMessage {
            node_id: NodeId(0),
            population_size: 30,
            probability: 0.2,
            entries: vec![],
        });
        station.ingest(SampleMessage {
            node_id: NodeId(1),
            population_size: 70,
            probability: 0.2,
            entries: vec![],
        });
        let shape = NetworkShape::from_station(&station).unwrap();
        assert_eq!(shape.k, 2);
        assert_eq!(shape.n, 100);
        assert_eq!(shape.max_node_population, 70);
    }

    #[test]
    fn plan_summary_is_consistent_with_the_plan() {
        let plan = PerturbationPlan {
            alpha_prime: 0.05,
            delta_prime: 0.8,
            epsilon: Epsilon::new(1.5).unwrap(),
            effective_epsilon: Epsilon::new(0.9).unwrap(),
            sensitivity: 2.5,
            noise_scale: 2.5 / 1.5,
            probability: 0.4,
            tail_probability: 0.75,
        };
        let summary = plan.summary();
        assert_eq!(summary.noise_variance, plan.noise_variance());
        assert_eq!(summary.epsilon, 1.5);
        assert_eq!(summary.effective_epsilon, 0.9);
        assert_eq!(summary.probability, 0.4);
        let rendered = summary.to_string();
        assert!(rendered.contains("ε=1.5"));
        assert!(rendered.contains("p=0.4"));
    }
}
