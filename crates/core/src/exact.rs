//! Exact range counting `γ(l, u, D)` (Definition 2.1).
//!
//! Ground truth for every experiment, and the answer a non-approximating
//! system would pay full communication cost to compute.

use crate::query::RangeQuery;

/// Exact count over unsorted values: `|{x ∈ values : l ≤ x ≤ u}|`. `O(n)`.
pub fn range_count(values: &[f64], query: RangeQuery) -> usize {
    values.iter().filter(|&&v| query.contains(v)).count()
}

/// Exact count over **ascending-sorted** values via binary search. `O(log n)`.
///
/// # Panics
///
/// Debug builds assert that `values` is sorted.
pub fn range_count_sorted(values: &[f64], query: RangeQuery) -> usize {
    debug_assert!(
        values.is_sorted(),
        "range_count_sorted requires ascending-sorted input"
    );
    let (lo, hi) = crate::estimator::engine::boundary_ranks(values, query);
    hi - lo
}

/// Exact count over data partitioned across nodes: `γ(l, u, D) = Σ γ(l, u, i)`.
pub fn range_count_partitioned(partitions: &[Vec<f64>], query: RangeQuery) -> usize {
    partitions.iter().map(|p| range_count(p, query)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(l: f64, u: f64) -> RangeQuery {
        RangeQuery::new(l, u).unwrap()
    }

    #[test]
    fn unsorted_and_sorted_agree() {
        let unsorted = vec![5.0, 1.0, 3.0, 3.0, 9.0, 2.0];
        let mut sorted = unsorted.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (l, u) in [(0.0, 10.0), (3.0, 3.0), (2.5, 5.0), (9.5, 20.0), (1.0, 1.0)] {
            assert_eq!(
                range_count(&unsorted, q(l, u)),
                range_count_sorted(&sorted, q(l, u)),
                "({l}, {u})"
            );
        }
    }

    #[test]
    fn bounds_are_inclusive() {
        let values = [1.0, 2.0, 3.0];
        assert_eq!(range_count(&values, q(1.0, 3.0)), 3);
        assert_eq!(range_count(&values, q(1.0, 1.0)), 1);
        assert_eq!(range_count_sorted(&values, q(2.0, 2.0)), 1);
    }

    #[test]
    fn duplicates_are_counted() {
        let values = [2.0, 2.0, 2.0, 5.0];
        assert_eq!(range_count_sorted(&values, q(2.0, 2.0)), 3);
        assert_eq!(range_count_sorted(&values, q(0.0, 10.0)), 4);
    }

    #[test]
    fn empty_input_counts_zero() {
        assert_eq!(range_count(&[], q(0.0, 1.0)), 0);
        assert_eq!(range_count_sorted(&[], q(0.0, 1.0)), 0);
    }

    #[test]
    fn infinite_range_counts_everything() {
        let values = [1.0, 2.0, 3.0];
        assert_eq!(
            range_count_sorted(&values, q(f64::NEG_INFINITY, f64::INFINITY)),
            3
        );
    }

    #[test]
    fn partitioned_sums_nodes() {
        let parts = vec![vec![1.0, 2.0], vec![2.0, 3.0], vec![]];
        assert_eq!(range_count_partitioned(&parts, q(2.0, 3.0)), 3);
        assert_eq!(range_count_partitioned(&parts, q(10.0, 20.0)), 0);
    }
}
