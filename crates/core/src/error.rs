//! Error types for the range-counting pipeline.

use std::fmt;

use prc_dp::DpError;

/// Errors produced by query construction, estimation, and perturbation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A range bound was NaN, or `l > u`.
    InvalidRange {
        /// Lower bound as given.
        l: f64,
        /// Upper bound as given.
        u: f64,
    },
    /// An accuracy parameter fell outside `(0, 1)`.
    InvalidAccuracy {
        /// The α parameter as given.
        alpha: f64,
        /// The δ parameter as given.
        delta: f64,
    },
    /// No intermediate accuracy `(α′, δ′)` satisfies the optimizer's
    /// constraints at the current sampling probability; more samples are
    /// needed.
    InfeasibleAccuracy {
        /// The sampling probability available.
        available_probability: f64,
        /// A sampling probability that would make the demand feasible.
        required_probability: f64,
    },
    /// A sampling probability fell outside `(0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// The network has reported no samples at all.
    NoSamples,
    /// An underlying differential-privacy error.
    Dp(DpError),
    /// The pricing engine refused the transaction at admission (invalid
    /// demand, or the posted curve is arbitrageable at it).
    Pricing(prc_pricing::PricingError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidRange { l, u } => {
                write!(
                    f,
                    "invalid range: bounds must be non-NaN with l <= u, got [{l}, {u}]"
                )
            }
            CoreError::InvalidAccuracy { alpha, delta } => write!(
                f,
                "accuracy parameters must lie in (0, 1), got alpha={alpha}, delta={delta}"
            ),
            CoreError::InfeasibleAccuracy {
                available_probability,
                required_probability,
            } => write!(
                f,
                "accuracy demand infeasible at sampling probability {available_probability}; \
                 approximately {required_probability} is required"
            ),
            CoreError::InvalidProbability { value } => {
                write!(f, "sampling probability must be in (0, 1], got {value}")
            }
            CoreError::NoSamples => write!(f, "the base station holds no samples"),
            CoreError::Dp(e) => write!(f, "differential privacy error: {e}"),
            CoreError::Pricing(e) => write!(f, "pricing error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dp(e) => Some(e),
            CoreError::Pricing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DpError> for CoreError {
    fn from(e: DpError) -> Self {
        CoreError::Dp(e)
    }
}

impl From<prc_pricing::PricingError> for CoreError {
    fn from(e: prc_pricing::PricingError) -> Self {
        CoreError::Pricing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidRange { l: 3.0, u: 1.0 };
        assert!(e.to_string().contains("[3, 1]"));
        let e = CoreError::InfeasibleAccuracy {
            available_probability: 0.1,
            required_probability: 0.4,
        };
        assert!(e.to_string().contains("0.4"));
    }

    #[test]
    fn dp_errors_convert_and_chain() {
        use std::error::Error as _;
        let e: CoreError = DpError::InvalidEpsilon { value: -1.0 }.into();
        assert!(matches!(e, CoreError::Dp(_)));
        assert!(e.source().is_some());
        assert!(CoreError::NoSamples.source().is_none());
    }
}
