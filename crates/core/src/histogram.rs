//! Differentially private histograms over the sampled data.
//!
//! A natural product built from private range counting (and the
//! workhorse of the paper's reference \[6\], which tracks quantiles and
//! range counts together): cut the value domain into buckets, estimate
//! each bucket's count with RankCounting from the *same* sample, and
//! perturb each bucket with Laplace noise.
//!
//! Bucket semantics are left-open/right-closed, `(e_i, e_{i+1}]`, with
//! the first bucket additionally including its left edge. Counts are
//! produced by differencing prefix estimates `γ̂(−∞, e_i]`, so the
//! buckets always sum to the full-population estimate.
//!
//! **Privacy.** Adding or removing one record changes exactly one bucket
//! count, so perturbing every bucket with `Lap(Δγ̂/ε)` yields an
//! `ε`-differentially private histogram by parallel composition — one ε
//! for the whole vector, not ε per bucket.

use prc_dp::budget::Epsilon;
use prc_dp::exponential::ExponentialMechanism;
use prc_dp::laplace::draw_centered;
use prc_dp::mechanism::Sensitivity;
// prc-lint: allow(B003, reason = "generic rng plumbing only; all draws happen inside prc-dp")
use rand::Rng;

use prc_net::base_station::BaseStation;

use crate::error::CoreError;
use crate::estimator::RangeCountEstimator;
use crate::query::RangeQuery;

/// A released, ε-differentially private histogram.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrivateHistogram {
    edges: Vec<f64>,
    counts: Vec<f64>,
    epsilon: Epsilon,
}

impl PrivateHistogram {
    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the histogram has no buckets.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Bucket edges (`len() + 1` values, ascending).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Noisy bucket counts (may be negative; clamping is post-processing
    /// the caller may apply).
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// The privacy budget this release consumed.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// `(low, high]` bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.len(), "bucket index out of range");
        (self.edges[i], self.edges[i + 1])
    }

    /// Sum of all noisy counts.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The noisy cumulative distribution at each right edge, normalized
    /// by [`PrivateHistogram::total`] and clamped to `[0, 1]`.
    pub fn cdf(&self) -> Vec<f64> {
        let total = self.total().max(f64::MIN_POSITIVE);
        let mut cumulative = 0.0;
        self.counts
            .iter()
            .map(|c| {
                cumulative += c;
                (cumulative / total).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Estimates the `q`-quantile by inverting the noisy CDF with linear
    /// interpolation inside the bucket. `q` is clamped to `[0, 1]`.
    ///
    /// Returns `None` for an empty histogram or a non-positive total.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.counts.is_empty() || self.total() <= 0.0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let cdf = self.cdf();
        let mut prev = 0.0;
        for (i, &c) in cdf.iter().enumerate() {
            if q <= c || i == cdf.len() - 1 {
                let (lo, hi) = self.bucket_bounds(i);
                let span = (c - prev).max(f64::MIN_POSITIVE);
                let frac = ((q - prev) / span).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            prev = c;
        }
        None
    }
}

/// Validates histogram edges: at least two, finite where required, strictly
/// ascending.
fn validate_edges(edges: &[f64]) -> Result<(), CoreError> {
    if edges.len() < 2 {
        return Err(CoreError::InvalidRange {
            l: f64::NAN,
            u: f64::NAN,
        });
    }
    for (&l, &u) in edges.iter().zip(edges.iter().skip(1)) {
        if l.is_nan() || u.is_nan() || l >= u {
            return Err(CoreError::InvalidRange { l, u });
        }
    }
    Ok(())
}

/// Raw (pre-noise) bucket estimates by prefix differencing.
fn bucket_estimates<E: RangeCountEstimator>(
    estimator: &E,
    station: &BaseStation,
    edges: &[f64],
) -> Result<Vec<f64>, CoreError> {
    validate_edges(edges)?;
    if station.node_count() == 0 {
        return Err(CoreError::NoSamples);
    }
    // Prefix estimates γ̂(−∞, e_i]; the first bucket also includes its
    // left edge, which the (−∞, e_0] prefix subtracts away — widen the
    // first prefix to just below e_0 instead.
    let mut prefixes = Vec::with_capacity(edges.len());
    for (i, &edge) in edges.iter().enumerate() {
        let upper = if i == 0 {
            // Everything strictly below the histogram's domain.
            edge.next_down()
        } else {
            edge
        };
        let query = RangeQuery::new(f64::NEG_INFINITY, upper)?;
        prefixes.push(estimator.estimate(station, query));
    }
    Ok(prefixes
        .iter()
        .zip(prefixes.iter().skip(1))
        .map(|(lo, hi)| hi - lo)
        .collect())
}

/// Builds an ε-differentially private histogram from the base station's
/// samples.
///
/// # Examples
///
/// ```
/// use prc_core::estimator::RankCounting;
/// use prc_core::histogram::private_histogram;
/// use prc_dp::budget::Epsilon;
/// use prc_dp::mechanism::Sensitivity;
/// use prc_net::network::FlatNetwork;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), prc_core::CoreError> {
/// let mut network = FlatNetwork::from_partitions(
///     vec![(0..1000).map(f64::from).collect()], 7);
/// network.collect_samples(0.5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let histogram = private_histogram(
///     &RankCounting,
///     network.station(),
///     &[0.0, 250.0, 500.0, 750.0, 1000.0],
///     Epsilon::new(1.0)?,
///     Sensitivity::new(2.0)?,
///     &mut rng,
/// )?;
/// assert_eq!(histogram.len(), 4);
/// assert!(histogram.quantile(0.5).is_some());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidRange`] — fewer than two edges, NaN edges, or a
///   non-ascending pair;
/// * [`CoreError::NoSamples`] — the station holds nothing;
/// * [`CoreError::Dp`] — `ε = 0`.
// prc-lint: allow(F001, reason = "standalone release API: the draws are paid for by the explicit epsilon argument the caller supplies, outside the broker's reservation ledger")
pub fn private_histogram<E, R>(
    estimator: &E,
    station: &BaseStation,
    edges: &[f64],
    epsilon: Epsilon,
    sensitivity: Sensitivity,
    rng: &mut R,
) -> Result<PrivateHistogram, CoreError>
where
    E: RangeCountEstimator,
    R: Rng + ?Sized,
{
    if epsilon.is_zero() {
        return Err(CoreError::Dp(prc_dp::DpError::InvalidEpsilon {
            value: 0.0,
        }));
    }
    let raw = bucket_estimates(estimator, station, edges)?;
    let scale = sensitivity.value() / epsilon.value();
    let mut counts = Vec::with_capacity(raw.len());
    for c in raw {
        counts.push(c + draw_centered(scale, rng)?);
    }
    Ok(PrivateHistogram {
        edges: edges.to_vec(),
        counts,
        epsilon,
    })
}

/// ε-differentially private *arg-max* bucket: selects the index of the
/// most loaded bucket via the exponential mechanism over the raw bucket
/// estimates — cheaper (in privacy) than releasing the whole histogram
/// when only the mode is needed.
///
/// # Errors
///
/// Same conditions as [`private_histogram`].
pub fn private_argmax_bucket<E, R>(
    estimator: &E,
    station: &BaseStation,
    edges: &[f64],
    epsilon: Epsilon,
    sensitivity: Sensitivity,
    rng: &mut R,
) -> Result<usize, CoreError>
where
    E: RangeCountEstimator,
    R: Rng + ?Sized,
{
    let raw = bucket_estimates(estimator, station, edges)?;
    let mechanism = ExponentialMechanism::new(epsilon, sensitivity)?;
    Ok(mechanism.select(&raw, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::RankCounting;
    use prc_net::network::FlatNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Network whose values are 0..n spread over k nodes, fully sampled.
    fn exact_network(n: usize, k: usize) -> FlatNetwork {
        let parts: Vec<Vec<f64>> = (0..k)
            .map(|i| (0..n).filter(|j| j % k == i).map(|j| j as f64).collect())
            .collect();
        let mut net = FlatNetwork::from_partitions(parts, 1);
        net.collect_samples(1.0);
        net
    }

    #[test]
    fn histogram_counts_match_truth_with_generous_budget() {
        let net = exact_network(1_000, 4);
        let edges = [0.0, 250.0, 500.0, 750.0, 1_000.0];
        let mut rng = StdRng::seed_from_u64(3);
        let h = private_histogram(
            &RankCounting,
            net.station(),
            &edges,
            eps(1e6),
            Sensitivity::unit(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(h.len(), 4);
        // Buckets (left-open except the first): [0,250], (250,500], ...
        // With integer values 0..=999: 251, 250, 250, 249.
        let expect = [251.0, 250.0, 250.0, 249.0];
        for (c, e) in h.counts().iter().zip(expect) {
            assert!((c - e).abs() < 0.01, "count {c} vs {e}");
        }
        assert!((h.total() - 1_000.0).abs() < 0.1);
        assert_eq!(h.epsilon(), eps(1e6));
        assert_eq!(h.bucket_bounds(0), (0.0, 250.0));
    }

    #[test]
    fn buckets_partition_the_population_estimate() {
        // Even with sampling (p < 1), differenced buckets sum to the
        // full-domain estimate exactly.
        let parts: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..500).map(|j| (i * 500 + j) as f64).collect())
            .collect();
        let mut net = FlatNetwork::from_partitions(parts, 7);
        net.collect_samples(0.3);
        let edges = [0.0, 600.0, 1_200.0, 2_500.0];
        let raw = bucket_estimates(&RankCounting, net.station(), &edges).unwrap();
        // Telescoping invariant: the buckets sum to the estimate of the
        // whole domain (everything above the below-domain prefix).
        let full = RankCounting.estimate(
            net.station(),
            RangeQuery::new(f64::NEG_INFINITY, 2_500.0).unwrap(),
        );
        let below = RankCounting.estimate(
            net.station(),
            RangeQuery::new(f64::NEG_INFINITY, 0.0f64.next_down()).unwrap(),
        );
        assert!((raw.iter().sum::<f64>() - (full - below)).abs() < 1e-9);
    }

    #[test]
    fn noise_has_the_laplace_scale() {
        let net = exact_network(2_000, 4);
        let edges = [0.0, 1_000.0, 2_000.0];
        let e = 0.5;
        let mut rng = StdRng::seed_from_u64(11);
        let mut errors = Vec::new();
        for _ in 0..3_000 {
            let h = private_histogram(
                &RankCounting,
                net.station(),
                &edges,
                eps(e),
                Sensitivity::unit(),
                &mut rng,
            )
            .unwrap();
            errors.push(h.counts()[0] - 1_001.0); // truth of bucket 0
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let var = errors.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / errors.len() as f64;
        let theory = 2.0 / (e * e);
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var - theory).abs() / theory < 0.1, "var {var} vs {theory}");
    }

    #[test]
    fn cdf_and_quantiles_invert_sensibly() {
        let net = exact_network(10_000, 8);
        let edges: Vec<f64> = (0..=20).map(|i| i as f64 * 500.0).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let h = private_histogram(
            &RankCounting,
            net.station(),
            &edges,
            eps(10.0),
            Sensitivity::unit(),
            &mut rng,
        )
        .unwrap();
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 20);
        assert!((cdf[19] - 1.0).abs() < 1e-12);
        // Uniform data: the median is near 5000.
        let median = h.quantile(0.5).unwrap();
        assert!((median - 5_000.0).abs() < 300.0, "median {median}");
        let q10 = h.quantile(0.1).unwrap();
        assert!((q10 - 1_000.0).abs() < 300.0, "q10 {q10}");
        assert!(h.quantile(0.0).unwrap() >= 0.0);
        assert!(h.quantile(1.0).unwrap() <= 10_000.0);
    }

    #[test]
    fn argmax_finds_the_heavy_bucket() {
        // Heavily skewed data: nearly everything in bucket 1.
        let mut values: Vec<f64> = (0..900).map(|i| 150.0 + (i % 100) as f64 / 2.0).collect();
        values.extend((0..100).map(|i| 400.0 + i as f64));
        let mut net = FlatNetwork::from_partitions(vec![values], 3);
        net.collect_samples(1.0);
        let edges = [0.0, 100.0, 300.0, 500.0];
        let mut rng = StdRng::seed_from_u64(9);
        let mut hits = 0;
        for _ in 0..200 {
            let idx = private_argmax_bucket(
                &RankCounting,
                net.station(),
                &edges,
                eps(1.0),
                Sensitivity::unit(),
                &mut rng,
            )
            .unwrap();
            if idx == 1 {
                hits += 1;
            }
        }
        assert!(
            hits > 190,
            "exponential mechanism should find the mode: {hits}/200"
        );
    }

    #[test]
    fn validation_errors() {
        let net = exact_network(100, 2);
        let mut rng = StdRng::seed_from_u64(0);
        // Too few edges.
        assert!(private_histogram(
            &RankCounting,
            net.station(),
            &[1.0],
            eps(1.0),
            Sensitivity::unit(),
            &mut rng
        )
        .is_err());
        // Non-ascending edges.
        assert!(private_histogram(
            &RankCounting,
            net.station(),
            &[0.0, 10.0, 5.0],
            eps(1.0),
            Sensitivity::unit(),
            &mut rng
        )
        .is_err());
        // Zero epsilon.
        assert!(private_histogram(
            &RankCounting,
            net.station(),
            &[0.0, 10.0],
            eps(0.0),
            Sensitivity::unit(),
            &mut rng
        )
        .is_err());
        // Empty station.
        let empty = prc_net::base_station::BaseStation::new();
        assert!(matches!(
            private_histogram(
                &RankCounting,
                &empty,
                &[0.0, 10.0],
                eps(1.0),
                Sensitivity::unit(),
                &mut rng
            ),
            Err(CoreError::NoSamples)
        ));
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = PrivateHistogram {
            edges: vec![0.0, 1.0],
            counts: vec![-3.0],
            epsilon: eps(1.0),
        };
        // Negative total: quantile is undefined.
        assert_eq!(h.quantile(0.5), None);
        assert!(!h.is_empty());
    }
}
