//! The data broker (§II-A): the entity that owns sample collection,
//! estimation, perturbation, and privacy accounting.
//!
//! The broker is generic over the network driver (any
//! [`prc_net::network::Network`]) and over the estimator. Besides the
//! one-request [`DataBroker::answer`] pipeline it offers a batched engine,
//! [`DataBroker::answer_batch`], which partitions a request batch by
//! required sampling rate, collects samples once per rate tier, fans the
//! per-tier estimator evaluations out over the shared
//! [`prc_runtime::Runtime`] pool, and
//! serves repeat requests from an arbitrage-consistent answer cache
//! guarded by the pricing layer ([`prc_pricing::reuse`]).
//!
//! # Generational query index
//!
//! When the estimator offers a [`QueryIndex`] (RankCounting's
//! [`crate::estimator::SegmentedRankIndex`]), the broker maintains it as
//! a *generation*: the index plus the station revision it was last
//! synchronized with. A collection round no longer discards the index —
//! before every use the slot is revalidated against the station's
//! revision journal, and a drifted generation absorbs the exact
//! changed-node delta ([`QueryIndex::absorb_delta`], `O(Δ log Δ)`)
//! instead of rebuilding from scratch. External mutation through
//! [`DataBroker::network_mut`] flows through the same journal, so a
//! stale generation can never serve.
//!
//! Whether to pay for the first build is decided by the [`IndexPolicy`]:
//! the default [`IndexPolicy::Adaptive`] runs a ski-rental accrual over
//! the observed query traffic (build once the scanning it has paid for
//! would have covered a build), while [`IndexPolicy::Threshold`] keeps
//! the legacy fixed sample-count cutover. Indexed and scanned paths are
//! **bit-identical** by construction, so the policy is unobservable in
//! released answers.

use std::collections::BTreeMap;

use prc_dp::budget::{BudgetAccountant, Epsilon};
// prc-lint: allow(B003, reason = "seeded noise-source RNG owned by the broker; every draw from it goes through prc-dp's draw_centered")
use rand::{rngs::StdRng, SeedableRng};

use prc_net::network::{FlatNetwork, Network};
use prc_pricing::engine::PricingEngine;
use prc_pricing::reuse::ReuseGuard;

use crate::error::CoreError;
use crate::estimator::engine::PlanCache;
use crate::estimator::{BuildAccrual, CostModel, QueryIndex, RangeCountEstimator, RankCounting};
use crate::optimizer::{OptimizerConfig, PerturbationPlan};
use crate::pipeline::{PricedAnswer, QuerySession};
use crate::query::{Accuracy, QueryRequest, RangeQuery};

/// How aggressively the broker tops up samples before answering.
///
/// The broker aims its sampling at an internal accuracy strictly tighter
/// than the customer's, leaving the optimizer headroom: it targets
/// `α′ = alpha_fraction·α` and `δ′ = δ + delta_margin·(1 − δ)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SamplingPolicy {
    /// Fraction of the customer's `α` to aim the sampling stage at, in `(0, 1)`.
    pub alpha_fraction: f64,
    /// Fraction of the remaining confidence gap to claim, in `(0, 1)`.
    pub delta_margin: f64,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy {
            alpha_fraction: 0.5,
            delta_margin: 0.5,
        }
    }
}

impl SamplingPolicy {
    /// The internal accuracy this policy aims sampling at, for a customer
    /// demand `accuracy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy's fields are outside `(0, 1)`.
    pub fn internal_target(&self, accuracy: Accuracy) -> Accuracy {
        assert!(
            self.alpha_fraction > 0.0 && self.alpha_fraction < 1.0,
            "alpha_fraction must be in (0, 1)"
        );
        assert!(
            self.delta_margin > 0.0 && self.delta_margin < 1.0,
            "delta_margin must be in (0, 1)"
        );
        let alpha = accuracy.alpha() * self.alpha_fraction;
        let delta = accuracy.delta() + self.delta_margin * (1.0 - accuracy.delta());
        // prc-lint: allow(P002, reason = "the asserts above pin both fields into (0, 1); documented panic")
        Accuracy::new(alpha, delta).expect("scaled accuracy stays in (0,1)")
    }
}

/// One differentially private, (α, δ)-approximate answer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrivateAnswer {
    /// The queried range.
    pub query: RangeQuery,
    /// The accuracy the customer asked (and pays) for. `None` for answers
    /// released through the fixed-ε experiment hook
    /// ([`DataBroker::answer_with_epsilon`]), which bypasses the `(α, δ)`
    /// demand language entirely — there is no customer accuracy to record.
    pub accuracy: Option<Accuracy>,
    /// The released noisy count — the only value a customer may see.
    pub value: f64,
    /// Broker-side record of the pre-noise sample estimate. **Never
    /// release this to a customer** — it is kept for evaluation and
    /// auditing only.
    pub sample_estimate: f64,
    /// The perturbation plan that produced the answer.
    pub plan: PerturbationPlan,
    /// Upper bound on the released answer's variance: the estimator's
    /// sampling variance bound plus the Laplace noise variance.
    pub variance_bound: f64,
}

/// Per-stage counters accumulated across a broker's lifetime.
///
/// Every pipeline stage reports into these: sample collection (rounds and
/// delivered entries), the answer cache (hits and misses, counted only
/// while a reuse guard is installed), and the release stage. Message and
/// byte traffic lives in the network's [`prc_net::network::CostMeter`];
/// epoch-level consumers combine both views.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StageCounters {
    /// Collection rounds that actually topped the network up.
    pub collection_rounds: u64,
    /// Sample entries delivered to the base station by those rounds.
    pub samples_collected: u64,
    /// Requests served from the answer cache.
    pub cache_hits: u64,
    /// Cache lookups that had to fall through to the full pipeline.
    pub cache_misses: u64,
    /// Answers released (fresh and cached).
    pub answers_released: u64,
    /// Query-index builds from scratch.
    pub index_builds: u64,
    /// Estimates answered through a query index instead of the scan.
    pub indexed_estimates: u64,
    /// Collection deltas absorbed into a live index (each replacing what
    /// would have been a full rebuild).
    #[serde(default)]
    pub delta_appends: u64,
    /// Compaction steps the index applied while absorbing deltas.
    #[serde(default)]
    pub compactions: u64,
    /// Gauge: live segments in the current index (`0` when none).
    #[serde(default)]
    pub segments_live: u64,
    /// Estimates resolved through the engine's cache-conscious boundary
    /// resolvers (Eytzinger descent or sorted-batch sweep) — every
    /// indexed estimate since the engine became the index's resolver.
    #[serde(default)]
    pub engine_hits: u64,
    /// Optimizer grid sweeps skipped because the plan cache held a
    /// memoized plan for the same accuracy target, rate tier, and
    /// station revision.
    #[serde(default)]
    pub plan_cache_hits: u64,
    /// Forward-advance steps the sorted-batch sweep took: gallop
    /// doublings when probes are sparse, cache-line strides in dense
    /// merge-scan mode. Diagnostic work meter: depends on how batches
    /// are chunked across the fan-out (like `fan_out_threads`), never
    /// on released answers.
    #[serde(default)]
    pub gallop_steps: u64,
    /// Priced transactions settled into the pricing engine's ledger.
    pub settlements: u64,
    /// Budget reservations rolled back because a later stage failed.
    pub budget_rollbacks: u64,
}

/// Aggregate statistics for one [`DataBroker::answer_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BatchStats {
    /// Requests in the batch.
    pub requests: u64,
    /// Distinct sampling-rate tiers the batch partitioned into.
    pub rate_tiers: u64,
    /// Collection rounds run for this batch.
    pub collection_rounds: u64,
    /// Sample entries delivered during this batch.
    pub samples_collected: u64,
    /// Requests served from the answer cache.
    pub cache_hits: u64,
    /// Chargeable (non-piggybacked) messages the batch added to the meter.
    pub chargeable_messages: u64,
    /// Widest estimator fan-out used by any tier.
    pub fan_out_threads: u64,
    /// Query-index builds triggered by this batch.
    pub index_builds: u64,
    /// Estimates in this batch answered through a query index.
    pub indexed_estimates: u64,
    /// Estimates in this batch resolved through the engine's boundary
    /// resolvers.
    #[serde(default)]
    pub engine_hits: u64,
    /// Grid sweeps this batch skipped via the optimizer plan cache.
    #[serde(default)]
    pub plan_cache_hits: u64,
    /// Forward-advance steps the batch's sorted sweeps took — gallop
    /// doublings or dense-mode cache-line strides (diagnostic; varies
    /// with fan-out width).
    #[serde(default)]
    pub gallop_steps: u64,
}

/// The outcome of one batched call: per-request results in input order,
/// plus the batch's stage statistics.
#[derive(Debug)]
pub struct BatchReport {
    /// One result per input request, in input order.
    pub answers: Vec<Result<PrivateAnswer, CoreError>>,
    /// Per-stage statistics for this batch.
    pub stats: BatchStats,
}

impl BatchReport {
    /// The released answers, discarding per-request errors.
    pub fn released(&self) -> impl Iterator<Item = &PrivateAnswer> {
        self.answers.iter().filter_map(|r| r.as_ref().ok())
    }
}

/// Cache key: the queried range and the Laplace budget of the stored
/// plan, all as exact bit patterns (grouped by range, so lookups scan the
/// contiguous key span of one range).
pub(crate) type CacheKey = (u64, u64, u64);

/// Snapshot of the station state a query index was built against: the
/// uniform sampling probability (as exact bits, `None` when the station
/// is heterogeneous) and the total sample count. Used for the
/// [`IndexState::Unavailable`] memo: while it matches, re-attempting a
/// build at this station state is pointless.
pub(crate) type IndexFingerprint = (Option<u64>, usize);

/// The delta lineage of a live index: the station state it was last
/// synchronized with. `revision` is the station's journal counter —
/// every mutation flows through [`prc_net::base_station::BaseStation::ingest`],
/// so an unchanged revision certifies byte-identical sample state, and a
/// drifted one names the exact changed-node delta to absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IndexGeneration {
    pub fingerprint: IndexFingerprint,
    pub revision: u64,
}

/// The broker's generational query-index slot.
#[derive(Debug, Default)]
pub(crate) enum IndexState {
    /// No index and no knowledge of the station (initial state).
    #[default]
    Stale,
    /// The station was inspected at this fingerprint and no index could
    /// be built; don't retry until the station changes.
    Unavailable(IndexFingerprint),
    /// A live index synchronized with this generation. On revision
    /// drift the index absorbs the delta and the generation advances —
    /// the index is discarded only when absorption is impossible.
    Ready(IndexGeneration, Box<dyn QueryIndex>),
}

/// When the broker pays for a query-index build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPolicy {
    /// Ski-rental: keep scanning while accruing the per-query saving an
    /// index would have delivered; build once the foregone saving covers
    /// the build cost (2-competitive for any query arrival sequence).
    /// The decision depends only on observed query counts and the
    /// station's shape — never on wall-clock time.
    Adaptive(CostModel),
    /// Legacy fixed cutover: build whenever the station holds at least
    /// this many samples (`0` always builds, `usize::MAX` never).
    Threshold(usize),
}

impl Default for IndexPolicy {
    fn default() -> Self {
        IndexPolicy::Adaptive(CostModel::default())
    }
}

/// A detached query index plus the full station state it was
/// synchronized with, for threading across brokers (e.g. the continuous
/// monitor's per-epoch brokers).
///
/// Revision counters are per-station-instance and not comparable across
/// brokers, so a handle carries the *entire* station as its fingerprint:
/// adoption requires the candidate broker's station to compare equal,
/// structurally — samples, populations, probabilities, and journal. That
/// is the strongest honest key; anything weaker could adopt an index for
/// a station it does not describe.
#[derive(Debug)]
pub struct IndexCacheHandle {
    pub(crate) station: prc_net::base_station::BaseStation,
    pub(crate) index: Box<dyn QueryIndex>,
}

/// The data broker: answers `Λ(α, δ)` requests over any [`Network`].
///
/// Every entry point — [`DataBroker::answer`], [`DataBroker::answer_as`],
/// [`DataBroker::answer_batch`], [`DataBroker::answer_with_epsilon`] — is
/// a thin wrapper over the staged [`crate::pipeline`] session:
/// Admit (quote + cache) → Collect (sample top-up per the
/// [`SamplingPolicy`]) → Reserve (plan + two-phase budget hold) →
/// Estimate → Perturb (`Lap(Δγ̂/ε)`) → Settle (commit, cache, ledger).
///
/// An optional [`BudgetAccountant`] enforces a total privacy cap across
/// queries (sequential composition of the *effective* budgets). An
/// optional answer cache ([`DataBroker::enable_answer_cache`]) re-serves
/// prior noisy answers when the pricing layer's [`ReuseGuard`] confirms
/// the reuse cannot undercut the posted price curve; re-releasing an
/// already-released value is privacy-free (post-processing), so cache
/// hits spend no budget.
#[derive(Debug)]
pub struct DataBroker<E = RankCounting, N = FlatNetwork> {
    pub(crate) network: N,
    pub(crate) estimator: E,
    pub(crate) optimizer_config: OptimizerConfig,
    pub(crate) sampling_policy: SamplingPolicy,
    pub(crate) accountant: Option<BudgetAccountant>,
    pub(crate) rng: StdRng,
    pub(crate) reuse_guard: Option<Box<dyn ReuseGuard>>,
    pub(crate) pricing: Option<Box<dyn PricingEngine>>,
    pub(crate) cache: BTreeMap<CacheKey, PrivateAnswer>,
    pub(crate) counters: StageCounters,
    pub(crate) index: IndexState,
    pub(crate) index_policy: IndexPolicy,
    pub(crate) build_accrual: BuildAccrual,
    pub(crate) pending_index: Option<IndexCacheHandle>,
    pub(crate) plan_cache: PlanCache,
}

impl<N: Network> DataBroker<RankCounting, N> {
    /// Creates a broker using the paper's RankCounting estimator.
    pub fn new(network: N, seed: u64) -> Self {
        DataBroker::with_estimator(network, RankCounting, seed)
    }
}

impl<E: RangeCountEstimator, N: Network> DataBroker<E, N> {
    /// Creates a broker with a custom estimator.
    pub fn with_estimator(network: N, estimator: E, seed: u64) -> Self {
        DataBroker {
            network,
            estimator,
            optimizer_config: OptimizerConfig::default(),
            sampling_policy: SamplingPolicy::default(),
            accountant: None,
            rng: StdRng::seed_from_u64(seed ^ 0xb5ad_4ece_da1c_e2a9),
            reuse_guard: None,
            pricing: None,
            cache: BTreeMap::new(),
            counters: StageCounters::default(),
            index: IndexState::Stale,
            index_policy: IndexPolicy::default(),
            build_accrual: BuildAccrual::default(),
            pending_index: None,
            plan_cache: PlanCache::default(),
        }
    }

    /// Replaces the index build policy (resetting the slot and any
    /// accrued build credit).
    pub fn set_index_policy(&mut self, policy: IndexPolicy) {
        self.index_policy = policy;
        self.build_accrual = BuildAccrual::default();
        self.index = IndexState::Stale;
    }

    /// The current index build policy.
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// Compatibility shim for the pre-cost-model API: installs
    /// [`IndexPolicy::Threshold`] at the given sample count (`0` always
    /// builds, `usize::MAX` disables indexing). New code should use
    /// [`DataBroker::set_index_policy`]; the adaptive default needs no
    /// tuning.
    pub fn set_index_threshold(&mut self, threshold: usize) {
        self.set_index_policy(IndexPolicy::Threshold(threshold));
    }

    /// Detaches the current index (if one is live) together with a full
    /// clone of the station it answers for, so a coordinator can offer
    /// it to another broker over the same data via
    /// [`DataBroker::install_index_cache`]. The slot reverts to
    /// [`IndexState::Stale`].
    pub fn take_index_cache(&mut self) -> Option<IndexCacheHandle> {
        match std::mem::replace(&mut self.index, IndexState::Stale) {
            IndexState::Ready(_, index) => Some(IndexCacheHandle {
                station: self.network.station().clone(),
                index,
            }),
            other => {
                self.index = other;
                None
            }
        }
    }

    /// Offers a detached index to this broker. The handle is held until
    /// the broker's station structurally equals the handle's — at which
    /// point the index is adopted in place of a fresh build (it is
    /// bit-identical by the [`QueryIndex`] contract). A handle that
    /// never matches is simply never used.
    pub fn install_index_cache(&mut self, handle: IndexCacheHandle) {
        self.pending_index = Some(handle);
    }

    /// Replaces the optimizer configuration (discarding memoized plans:
    /// the grid sweep is a function of the config).
    pub fn set_optimizer_config(&mut self, config: OptimizerConfig) {
        self.optimizer_config = config;
        self.plan_cache.clear();
    }

    /// Replaces the sampling policy.
    pub fn set_sampling_policy(&mut self, policy: SamplingPolicy) {
        self.sampling_policy = policy;
    }

    /// Installs a total privacy budget; subsequent answers spend their
    /// effective `ε′` against it.
    pub fn set_privacy_budget(&mut self, total: Epsilon) {
        self.accountant = Some(BudgetAccountant::new(total));
    }

    /// The privacy accountant, if a budget was installed.
    pub fn accountant(&self) -> Option<&BudgetAccountant> {
        self.accountant.as_ref()
    }

    /// Installs an existing accountant (e.g. a session-scoped budget a
    /// monitor threads through its per-epoch brokers); subsequent answers
    /// reserve and commit their effective `ε′` against it.
    pub fn install_accountant(&mut self, accountant: BudgetAccountant) {
        self.accountant = Some(accountant);
    }

    /// Removes and returns the accountant, leaving the broker unbudgeted.
    pub fn take_accountant(&mut self) -> Option<BudgetAccountant> {
        self.accountant.take()
    }

    /// Installs a pricing engine. With one installed,
    /// [`DataBroker::answer_as`] quotes every admitted request against the
    /// posted curve (refusing arbitrageable demands) and settles each
    /// released answer into the engine's ledger.
    pub fn enable_pricing(&mut self, engine: Box<dyn PricingEngine>) {
        self.pricing = Some(engine);
    }

    /// The pricing engine, if one is installed.
    pub fn pricing(&self) -> Option<&dyn PricingEngine> {
        self.pricing.as_deref()
    }

    /// Enables the answer cache behind a pricing-layer reuse guard.
    ///
    /// With a guard installed, [`DataBroker::answer`] and
    /// [`DataBroker::answer_batch`] re-serve a previously released answer
    /// for a request over the same range whenever the guard allows the
    /// reuse — i.e. the pricing layer confirms that handing out the
    /// stored answer at the new request's posted price cannot undercut
    /// the price curve. Without a guard (the default) every request runs
    /// the full pipeline.
    pub fn enable_answer_cache(&mut self, guard: Box<dyn ReuseGuard>) {
        self.reuse_guard = Some(guard);
    }

    /// Drops the reuse guard and clears all cached answers.
    pub fn disable_answer_cache(&mut self) {
        self.reuse_guard = None;
        self.cache.clear();
    }

    /// Number of answers currently cached.
    pub fn cached_answers(&self) -> usize {
        self.cache.len()
    }

    /// Per-stage counters accumulated so far.
    pub fn counters(&self) -> StageCounters {
        self.counters
    }

    /// Resets the per-stage counters to zero (the cache is kept).
    pub fn reset_counters(&mut self) {
        self.counters = StageCounters::default();
    }

    /// The underlying network (cost-meter and ground-truth access).
    pub fn network(&self) -> &N {
        &self.network
    }

    /// Mutable access to the underlying network (failure injection etc.).
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.network
    }

    /// Answers one request through the full two-phase pipeline, consulting
    /// the answer cache first when one is enabled.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InfeasibleAccuracy`] — even sampling everything
    ///   cannot meet the demand;
    /// * [`CoreError::Dp`] — the privacy budget is exhausted;
    /// * [`CoreError::NoSamples`] — the network delivered nothing (e.g.
    ///   every node dead).
    pub fn answer(&mut self, request: &QueryRequest) -> Result<PrivateAnswer, CoreError> {
        QuerySession::new(self)
            .run(request)
            .map(|priced| priced.answer)
    }

    /// Answers one request as a *priced transaction* for a named buyer.
    ///
    /// Requires a pricing engine ([`DataBroker::enable_pricing`]): the
    /// Admit stage quotes the demand against the posted curve (refusing
    /// invalid or arbitrageable demands before any budget is touched),
    /// and the Settle stage records the trade — price, noise variance,
    /// and rendered plan — into the engine's ledger.
    ///
    /// # Errors
    ///
    /// Everything [`DataBroker::answer`] returns, plus
    /// [`CoreError::Pricing`] when the engine refuses the quote.
    pub fn answer_as(
        &mut self,
        buyer: &str,
        request: &QueryRequest,
    ) -> Result<PricedAnswer, CoreError> {
        QuerySession::for_buyer(self, buyer).run(request)
    }

    /// Answers a batch of requests through the batched engine.
    ///
    /// The batch is partitioned by each request's *required sampling
    /// rate*; rates are visited in ascending order, so every tier's
    /// queries are evaluated right after the single collection round that
    /// tops the network up to that tier (lower tiers are answered at
    /// their own, cheaper rate — exactly what a sorted sequence of
    /// [`DataBroker::answer`] calls would do). Within a tier, cache
    /// lookups, perturbation planning, and budget accounting run
    /// sequentially in input order; the estimator evaluations fan out
    /// over the shared [`prc_runtime::Runtime`] pool against the shared
    /// base-station
    /// sample; noise is then drawn sequentially in input order, keeping
    /// the whole batch deterministic in the broker's seed regardless of
    /// thread scheduling.
    ///
    /// Per-request failures (infeasible accuracy, exhausted budget) land
    /// in that request's slot of [`BatchReport::answers`]; the rest of
    /// the batch proceeds.
    pub fn answer_batch(&mut self, requests: &[QueryRequest]) -> BatchReport
    where
        E: Sync,
    {
        crate::pipeline::batch::run_batch(self, requests)
    }

    /// Experiment hook: answers with a *fixed* Laplace budget `ε` instead
    /// of the optimizer (used by the Fig. 5 / Fig. 6 reproductions, which
    /// sweep ε directly). Samples are topped up to `p` first; sensitivity
    /// follows the configured policy. The released answer carries
    /// `accuracy: None` — there is no `(α, δ)` demand to record — and a
    /// degenerate but fully finite [`PerturbationPlan`].
    ///
    /// # Errors
    ///
    /// Propagates sampling, sensitivity, and budget errors.
    pub fn answer_with_epsilon(
        &mut self,
        query: RangeQuery,
        epsilon: Epsilon,
        p: f64,
    ) -> Result<PrivateAnswer, CoreError> {
        QuerySession::new(self).run_fixed(query, epsilon, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::BasicCounting;
    use prc_net::network::ThreadedNetwork;
    use prc_pricing::functions::InverseVariancePricing;
    use prc_pricing::reuse::PostedPriceReuse;
    use prc_pricing::variance::ChebyshevVariance;

    fn partitions(k: usize, per_node: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
            .collect()
    }

    fn network(k: usize, per_node: usize, seed: u64) -> FlatNetwork {
        FlatNetwork::from_partitions(partitions(k, per_node), seed)
    }

    fn request(l: f64, u: f64, a: f64, d: f64) -> QueryRequest {
        QueryRequest::new(RangeQuery::new(l, u).unwrap(), Accuracy::new(a, d).unwrap())
    }

    fn guard(n: usize) -> Box<dyn ReuseGuard> {
        let model = ChebyshevVariance::new(n);
        Box::new(PostedPriceReuse::new(
            InverseVariancePricing::new(1e7, model),
            model,
        ))
    }

    #[test]
    fn end_to_end_answer_meets_accuracy_often() {
        // Definition 2.2: |answer − truth| ≤ αn with probability ≥ δ.
        let n_total = 10_000.0;
        let req = request(2_000.0, 7_000.0, 0.05, 0.8);
        let truth = 5_001.0;
        let trials = 300;
        let mut hits = 0;
        for seed in 0..trials {
            let mut broker = DataBroker::new(network(10, 1_000, seed), seed);
            let answer = broker.answer(&req).unwrap();
            if (answer.value - truth).abs() <= 0.05 * n_total {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!(
            rate >= 0.8,
            "accuracy guarantee violated empirically: hit rate {rate}"
        );
    }

    #[test]
    fn answer_reports_consistent_plan() {
        let mut broker = DataBroker::new(network(8, 500, 3), 3);
        let req = request(100.0, 900.0, 0.1, 0.6);
        let answer = broker.answer(&req).unwrap();
        assert_eq!(answer.query, req.query);
        assert_eq!(answer.accuracy, Some(req.accuracy));
        assert!(answer.plan.alpha_prime < req.accuracy.alpha());
        assert!(answer.plan.delta_prime > req.accuracy.delta());
        assert!(answer.variance_bound > 0.0);
        assert!((answer.value - answer.sample_estimate).abs() < answer.plan.noise_scale * 60.0);
    }

    #[test]
    fn broker_tops_up_samples_on_demand() {
        let mut broker = DataBroker::new(network(5, 2_000, 1), 1);
        assert_eq!(broker.network().station().total_samples(), 0);
        let loose = request(0.0, 10_000.0, 0.2, 0.5);
        broker.answer(&loose).unwrap();
        let after_loose = broker.network().station().effective_probability();
        assert!(after_loose > 0.0);
        // A stricter query forces a higher sampling probability.
        let strict = request(0.0, 10_000.0, 0.03, 0.9);
        broker.answer(&strict).unwrap();
        let after_strict = broker.network().station().effective_probability();
        assert!(after_strict > after_loose);
        // The counters saw both collection rounds.
        let counters = broker.counters();
        assert!(counters.collection_rounds >= 2);
        assert!(counters.samples_collected > 0);
        assert_eq!(counters.answers_released, 2);
    }

    #[test]
    fn budget_accounting_blocks_overspend() {
        let mut broker = DataBroker::new(network(5, 2_000, 2), 2);
        let req = request(0.0, 5_000.0, 0.1, 0.6);
        // Learn the per-answer cost, then install a budget for ~2 answers.
        let probe = broker.answer(&req).unwrap();
        let per_query = probe.plan.effective_epsilon.value();
        broker.set_privacy_budget(Epsilon::new(per_query * 2.5).unwrap());
        broker.answer(&req).unwrap();
        broker.answer(&req).unwrap();
        let err = broker.answer(&req).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Dp(prc_dp::DpError::BudgetExhausted { .. })
        ));
        let acc = broker.accountant().unwrap();
        assert_eq!(acc.operations(), 2);
    }

    #[test]
    fn works_with_basic_counting_estimator() {
        let mut broker = DataBroker::with_estimator(network(5, 1_000, 4), BasicCounting, 4);
        let answer = broker.answer(&request(0.0, 2_500.0, 0.1, 0.6)).unwrap();
        assert!(answer.value.is_finite());
        // BasicCounting's variance bound dominates RankCounting's here.
        assert!(answer.variance_bound > 0.0);
    }

    #[test]
    fn fixed_epsilon_hook_controls_noise_scale() {
        let mut broker = DataBroker::new(network(5, 1_000, 5), 5);
        let q = RangeQuery::new(0.0, 2_500.0).unwrap();
        let answer = broker
            .answer_with_epsilon(q, Epsilon::new(2.0).unwrap(), 0.4)
            .unwrap();
        assert!((answer.plan.probability - 0.4).abs() < 1e-12);
        // Δ = 1/p = 2.5, b = Δ/ε = 1.25.
        assert!((answer.plan.noise_scale - 1.25).abs() < 1e-12);
        assert!(answer.plan.effective_epsilon.value() < 2.0);
        assert!(broker
            .answer_with_epsilon(q, Epsilon::new(1.0).unwrap(), 0.0)
            .is_err());
    }

    #[test]
    fn answers_are_noisy_but_centred() {
        let req = request(1_000.0, 3_000.0, 0.08, 0.6);
        let truth = 2_001.0;
        let trials = 400;
        let mut sum = 0.0;
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..trials {
            let mut broker = DataBroker::new(network(4, 1_000, seed + 100), seed + 100);
            let a = broker.answer(&req).unwrap();
            sum += a.value;
            distinct.insert(a.value.to_bits());
        }
        assert!(distinct.len() > trials as usize - 5, "answers must vary");
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() < 25.0,
            "released answers should be centred on the truth: mean {mean}"
        );
    }

    #[test]
    fn empty_network_data_errors() {
        let mut broker = DataBroker::new(FlatNetwork::from_partitions(vec![vec![]], 0), 0);
        let err = broker.answer(&request(0.0, 1.0, 0.1, 0.5)).unwrap_err();
        assert!(matches!(err, CoreError::NoSamples));
    }

    #[test]
    fn sampling_policy_targets_are_strictly_tighter() {
        let accuracy = Accuracy::new(0.1, 0.6).unwrap();
        let target = SamplingPolicy::default().internal_target(accuracy);
        assert!(target.alpha() < accuracy.alpha());
        assert!(target.delta() > accuracy.delta());
    }

    #[test]
    #[should_panic(expected = "alpha_fraction")]
    fn bad_sampling_policy_panics() {
        let policy = SamplingPolicy {
            alpha_fraction: 1.5,
            delta_margin: 0.5,
        };
        policy.internal_target(Accuracy::new(0.1, 0.5).unwrap());
    }

    #[test]
    fn broker_runs_over_threaded_networks() {
        let net = ThreadedNetwork::from_partitions(partitions(6, 500), 11);
        let mut broker = DataBroker::new(net, 11);
        let answer = broker.answer(&request(500.0, 2_500.0, 0.1, 0.6)).unwrap();
        assert!(answer.value.is_finite());
        assert_eq!(broker.network().node_count(), 6);
    }

    #[test]
    fn cache_serves_identical_requests_and_skips_budget() {
        let mut broker = DataBroker::new(network(5, 2_000, 6), 6);
        broker.enable_answer_cache(guard(10_000));
        let req = request(0.0, 5_000.0, 0.1, 0.6);
        let first = broker.answer(&req).unwrap();
        broker
            .set_privacy_budget(Epsilon::new(first.plan.effective_epsilon.value() * 0.5).unwrap());
        // A repeat request is served from cache: identical bits, no spend
        // against the (deliberately too small) budget.
        let second = broker.answer(&req).unwrap();
        assert_eq!(first.value.to_bits(), second.value.to_bits());
        assert_eq!(broker.accountant().unwrap().operations(), 0);
        assert_eq!(broker.counters().cache_hits, 1);
        assert_eq!(broker.cached_answers(), 1);
        // A different demand over the same range is answered fresh.
        let looser = request(0.0, 5_000.0, 0.2, 0.5);
        let third = broker.answer(&looser).unwrap();
        assert_ne!(third.value.to_bits(), first.value.to_bits());
        assert_eq!(broker.counters().cache_misses, 2);
        // Disabling clears the cache.
        broker.disable_answer_cache();
        assert_eq!(broker.cached_answers(), 0);
    }

    #[test]
    fn answer_batch_matches_request_order_and_counts_stages() {
        let workload: Vec<QueryRequest> = vec![
            request(0.0, 2_500.0, 0.1, 0.6),
            request(2_500.0, 7_500.0, 0.05, 0.8),
            request(0.0, 2_500.0, 0.1, 0.6), // duplicate of #0
            request(5_000.0, 9_000.0, 0.2, 0.5),
        ];
        let mut broker = DataBroker::new(network(10, 1_000, 8), 8);
        broker.enable_answer_cache(guard(10_000));
        let report = broker.answer_batch(&workload);
        assert_eq!(report.answers.len(), 4);
        assert_eq!(report.stats.requests, 4);
        assert!(report.stats.rate_tiers >= 2);
        assert_eq!(report.stats.cache_hits, 1);
        assert!(report.stats.samples_collected > 0);
        assert!(report.stats.chargeable_messages > 0);
        assert!(report.stats.fan_out_threads >= 1);
        for (i, result) in report.answers.iter().enumerate() {
            let answer = result.as_ref().unwrap();
            assert_eq!(answer.query, workload[i].query, "slot {i} out of order");
        }
        // The duplicate was served the cached bits.
        let a0 = report.answers[0].as_ref().unwrap();
        let a2 = report.answers[2].as_ref().unwrap();
        assert_eq!(a0.value.to_bits(), a2.value.to_bits());
    }

    #[test]
    fn answer_batch_is_deterministic_across_drivers() {
        let workload: Vec<QueryRequest> = vec![
            request(0.0, 2_000.0, 0.15, 0.5),
            request(1_000.0, 3_000.0, 0.08, 0.7),
            request(500.0, 3_500.0, 0.15, 0.5),
        ];
        let run_flat = |seed: u64| {
            let mut broker =
                DataBroker::new(FlatNetwork::from_partitions(partitions(6, 700), seed), seed);
            broker
                .answer_batch(&workload)
                .answers
                .into_iter()
                .map(|r| r.unwrap().value.to_bits())
                .collect::<Vec<u64>>()
        };
        let run_threaded = |seed: u64| {
            let net = ThreadedNetwork::from_partitions(partitions(6, 700), seed);
            let mut broker = DataBroker::new(net, seed);
            broker
                .answer_batch(&workload)
                .answers
                .into_iter()
                .map(|r| r.unwrap().value.to_bits())
                .collect::<Vec<u64>>()
        };
        // Same seed: byte-identical answers, same driver or not.
        assert_eq!(run_flat(9), run_flat(9));
        assert_eq!(run_flat(9), run_threaded(9));
        // Different seed: different noise.
        assert_ne!(run_flat(9), run_flat(10));
    }

    #[test]
    fn answer_batch_reports_per_request_budget_errors() {
        let mut broker = DataBroker::new(network(5, 2_000, 12), 12);
        let req = request(0.0, 5_000.0, 0.1, 0.6);
        let probe = broker.answer(&req).unwrap();
        let per_query = probe.plan.effective_epsilon.value();
        broker.set_privacy_budget(Epsilon::new(per_query * 1.5).unwrap());
        let report = broker.answer_batch(&[req; 3]);
        let ok = report.answers.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, 1, "budget covers exactly one fresh answer");
        assert!(report
            .answers
            .iter()
            .any(|r| matches!(r, Err(CoreError::Dp(_)))));
        assert_eq!(report.released().count(), 1);
    }

    #[test]
    fn answer_batch_on_empty_network_errors_every_slot() {
        let mut broker = DataBroker::new(FlatNetwork::from_partitions(vec![vec![]], 0), 0);
        let report = broker.answer_batch(&[request(0.0, 1.0, 0.1, 0.5)]);
        assert!(matches!(report.answers[0], Err(CoreError::NoSamples)));
        assert_eq!(report.stats.rate_tiers, 0);
    }

    #[test]
    fn indexed_batches_release_the_same_bits_as_scan_batches() {
        let workload: Vec<QueryRequest> = vec![
            request(0.0, 2_000.0, 0.15, 0.5),
            request(1_000.0, 3_000.0, 0.08, 0.7),
            request(500.0, 3_500.0, 0.15, 0.5),
            request(-10.0, -1.0, 0.15, 0.5),      // below support
            request(1_000.0, 3_000.0, 0.08, 0.7), // duplicate
        ];
        let run = |threshold: usize| {
            let mut broker = DataBroker::new(network(8, 700, 21), 21);
            broker.set_index_threshold(threshold);
            let report = broker.answer_batch(&workload);
            let bits: Vec<u64> = report
                .answers
                .iter()
                .map(|r| r.as_ref().unwrap().value.to_bits())
                .collect();
            (bits, report.stats)
        };
        let (indexed_bits, indexed_stats) = run(0);
        let (scan_bits, scan_stats) = run(usize::MAX);
        assert_eq!(indexed_bits, scan_bits, "index changed released bits");
        assert!(indexed_stats.index_builds >= 1);
        assert!(indexed_stats.indexed_estimates >= workload.len() as u64 - 1);
        assert_eq!(scan_stats.index_builds, 0);
        assert_eq!(scan_stats.indexed_estimates, 0);
    }

    #[test]
    fn single_answers_use_the_index_and_match_scan() {
        let req = request(200.0, 3_300.0, 0.1, 0.6);
        let run = |threshold: usize| {
            let mut broker = DataBroker::new(network(6, 800, 33), 33);
            broker.set_index_threshold(threshold);
            let answer = broker.answer(&req).unwrap();
            (answer.value.to_bits(), broker.counters())
        };
        let (indexed, ic) = run(0);
        let (scanned, sc) = run(usize::MAX);
        assert_eq!(indexed, scanned);
        assert_eq!(ic.index_builds, 1);
        assert_eq!(ic.indexed_estimates, 1);
        assert_eq!(sc.index_builds, 0);
        assert_eq!(sc.indexed_estimates, 0);
    }

    #[test]
    fn collection_rounds_absorb_into_the_index() {
        let mut broker = DataBroker::new(network(5, 2_000, 7), 7);
        broker.set_index_threshold(0);
        broker.answer(&request(0.0, 10_000.0, 0.2, 0.5)).unwrap();
        let after_first = broker.counters();
        assert_eq!(after_first.index_builds, 1);
        assert!(after_first.segments_live >= 1);
        // Same epoch: a second loose query reuses the built index.
        broker.answer(&request(0.0, 4_000.0, 0.2, 0.5)).unwrap();
        assert_eq!(broker.counters().index_builds, 1);
        assert_eq!(broker.counters().indexed_estimates, 2);
        // A stricter query forces a top-up; the index absorbs the round's
        // delta instead of rebuilding from scratch.
        broker.answer(&request(0.0, 10_000.0, 0.03, 0.9)).unwrap();
        let after_strict = broker.counters();
        assert!(after_strict.collection_rounds > after_first.collection_rounds);
        assert_eq!(after_strict.index_builds, 1, "delta absorbed, not rebuilt");
        assert!(after_strict.delta_appends >= 1);
        assert_eq!(after_strict.indexed_estimates, 3);
        assert!(after_strict.segments_live >= 1);
    }

    #[test]
    fn small_stations_stay_on_the_scan_path() {
        // The adaptive default is a ski-rental: a lone query over a tiny
        // station never accrues enough foregone scan cost to pay for a
        // build, so the broker stays on the scan path.
        let mut broker = DataBroker::new(network(3, 50, 9), 9);
        assert!(matches!(broker.index_policy(), IndexPolicy::Adaptive(_)));
        broker.answer(&request(0.0, 100.0, 0.2, 0.5)).unwrap();
        assert_eq!(broker.counters().index_builds, 0);
        assert_eq!(broker.counters().indexed_estimates, 0);
        assert_eq!(broker.counters().segments_live, 0);
    }

    #[test]
    fn adaptive_policy_buys_the_index_once_queries_amortize_it() {
        // Wide fan-out makes the per-query scan saving large relative to
        // the one-off build cost, so a big batch pays for the index up
        // front under the default cost model.
        let req = request(0.0, 10_000.0, 0.2, 0.5);
        let mut broker = DataBroker::new(network(64, 100, 13), 13);
        broker.answer(&req).unwrap();
        assert_eq!(broker.counters().index_builds, 0, "one query rents");
        let report = broker.answer_batch(&vec![req; 256]);
        assert!(report.answers.iter().all(Result::is_ok));
        assert_eq!(broker.counters().index_builds, 1, "a batch buys");
        assert!(broker.counters().indexed_estimates >= 256);
        assert!(broker.counters().segments_live >= 1);
    }

    #[test]
    fn twin_brokers_adopt_a_detached_index_instead_of_rebuilding() {
        let req = request(0.0, 4_000.0, 0.15, 0.5);
        let run = |adopt: Option<IndexCacheHandle>| {
            let mut broker = DataBroker::new(network(6, 800, 21), 21);
            broker.set_index_threshold(0);
            if let Some(handle) = adopt {
                broker.install_index_cache(handle);
            }
            let bits = broker.answer(&req).unwrap().value.to_bits();
            (bits, broker.counters())
        };
        // A donor over the identical network builds once, then detaches
        // its index together with the station it answers for.
        let mut donor = DataBroker::new(network(6, 800, 21), 21);
        donor.set_index_threshold(0);
        donor.answer(&req).unwrap();
        let handle = donor.take_index_cache().expect("donor built an index");
        assert!(donor.take_index_cache().is_none(), "slot reverts to stale");

        let (fresh_bits, fresh) = run(None);
        let (adopted_bits, adopted) = run(Some(handle));
        assert_eq!(adopted_bits, fresh_bits, "adoption changed released bits");
        assert_eq!(fresh.index_builds, 1);
        assert_eq!(adopted.index_builds, 0, "handle adopted, build skipped");
        assert_eq!(adopted.indexed_estimates, 1);
        assert!(adopted.segments_live >= 1);
    }

    #[test]
    fn mismatched_index_handles_are_never_adopted() {
        let req = request(0.0, 4_000.0, 0.15, 0.5);
        let mut donor = DataBroker::new(network(6, 800, 21), 21);
        donor.set_index_threshold(0);
        donor.answer(&req).unwrap();
        let handle = donor.take_index_cache().expect("donor built an index");
        // A different seed collects a different station, so the handle's
        // fingerprint never matches and the broker builds for itself.
        let mut other = DataBroker::new(network(6, 800, 22), 22);
        other.set_index_threshold(0);
        other.install_index_cache(handle);
        other.answer(&req).unwrap();
        assert_eq!(other.counters().index_builds, 1);
    }

    #[test]
    fn collection_deltas_evict_only_touched_cached_answers() {
        let mut broker = DataBroker::new(network(6, 800, 31), 31);
        broker.enable_answer_cache(guard(4_800));
        let touched = request(0.0, 4_000.0, 0.2, 0.5);
        let untouched = request(-10.0, -1.0, 0.2, 0.5);
        let first_touched = broker.answer(&touched).unwrap();
        let first_untouched = broker.answer(&untouched).unwrap();
        assert_eq!(broker.cached_answers(), 2);

        // A stricter query forces a top-up: every node's fresh samples
        // overlap the data's value range, so the in-range answer is
        // evicted while the below-support one survives the epoch.
        broker.answer(&request(0.0, 4_800.0, 0.03, 0.9)).unwrap();
        let second_untouched = broker.answer(&untouched).unwrap();
        assert_eq!(
            second_untouched.value.to_bits(),
            first_untouched.value.to_bits(),
            "untouched range must survive as a cache hit"
        );
        assert_eq!(broker.counters().cache_hits, 1);
        let second_touched = broker.answer(&touched).unwrap();
        assert_ne!(
            second_touched.value.to_bits(),
            first_touched.value.to_bits(),
            "touched range must be re-answered fresh"
        );
        assert_eq!(broker.counters().cache_hits, 1);
    }

    #[test]
    fn surviving_cache_hits_stay_budget_free_across_rounds() {
        let mut broker = DataBroker::new(network(6, 800, 37), 37);
        broker.enable_answer_cache(guard(4_800));
        let untouched = request(-10.0, -1.0, 0.2, 0.5);
        let first = broker.answer(&untouched).unwrap();
        broker.answer(&request(0.0, 4_800.0, 0.03, 0.9)).unwrap();

        // Budget accounting is unchanged by eviction: the surviving
        // answer is re-served as post-processing, spending nothing even
        // against a budget too small for a fresh release.
        broker
            .set_privacy_budget(Epsilon::new(first.plan.effective_epsilon.value() * 0.1).unwrap());
        let replay = broker.answer(&untouched).unwrap();
        assert_eq!(replay.value.to_bits(), first.value.to_bits());
        assert_eq!(broker.accountant().unwrap().operations(), 0);
    }

    #[test]
    fn fixed_epsilon_hook_matches_bits_across_paths() {
        let q = RangeQuery::new(0.0, 2_500.0).unwrap();
        let run = |threshold: usize| {
            let mut broker = DataBroker::new(network(5, 1_000, 5), 5);
            broker.set_index_threshold(threshold);
            broker
                .answer_with_epsilon(q, Epsilon::new(2.0).unwrap(), 0.4)
                .unwrap()
                .value
                .to_bits()
        };
        assert_eq!(run(0), run(usize::MAX));
    }

    #[test]
    fn estimators_without_an_index_never_build_one() {
        let mut broker = DataBroker::with_estimator(network(5, 1_000, 4), BasicCounting, 4);
        broker.set_index_threshold(0);
        broker.answer(&request(0.0, 2_500.0, 0.1, 0.6)).unwrap();
        assert_eq!(broker.counters().index_builds, 0);
        assert_eq!(broker.counters().indexed_estimates, 0);
    }
}
