//! The data broker (§II-A): the entity that owns sample collection,
//! estimation, perturbation, and privacy accounting.

use prc_dp::budget::{BudgetAccountant, Epsilon};
use prc_dp::laplace::Laplace;
use rand::rngs::StdRng;
use rand::SeedableRng;

use prc_net::network::FlatNetwork;

use crate::accuracy::required_probability_clamped;
use crate::error::CoreError;
use crate::estimator::{RangeCountEstimator, RankCounting};
use crate::optimizer::{optimize, NetworkShape, OptimizerConfig, PerturbationPlan};
use crate::query::{Accuracy, QueryRequest, RangeQuery};

/// How aggressively the broker tops up samples before answering.
///
/// The broker aims its sampling at an internal accuracy strictly tighter
/// than the customer's, leaving the optimizer headroom: it targets
/// `α′ = alpha_fraction·α` and `δ′ = δ + delta_margin·(1 − δ)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SamplingPolicy {
    /// Fraction of the customer's `α` to aim the sampling stage at, in `(0, 1)`.
    pub alpha_fraction: f64,
    /// Fraction of the remaining confidence gap to claim, in `(0, 1)`.
    pub delta_margin: f64,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy {
            alpha_fraction: 0.5,
            delta_margin: 0.5,
        }
    }
}

impl SamplingPolicy {
    /// The internal accuracy this policy aims sampling at, for a customer
    /// demand `accuracy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy's fields are outside `(0, 1)`.
    pub fn internal_target(&self, accuracy: Accuracy) -> Accuracy {
        assert!(
            self.alpha_fraction > 0.0 && self.alpha_fraction < 1.0,
            "alpha_fraction must be in (0, 1)"
        );
        assert!(
            self.delta_margin > 0.0 && self.delta_margin < 1.0,
            "delta_margin must be in (0, 1)"
        );
        let alpha = accuracy.alpha() * self.alpha_fraction;
        let delta = accuracy.delta() + self.delta_margin * (1.0 - accuracy.delta());
        Accuracy::new(alpha, delta).expect("scaled accuracy stays in (0,1)")
    }
}

/// One differentially private, (α, δ)-approximate answer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrivateAnswer {
    /// The queried range.
    pub query: RangeQuery,
    /// The accuracy the customer asked (and pays) for.
    pub accuracy: Accuracy,
    /// The released noisy count — the only value a customer may see.
    pub value: f64,
    /// Broker-side record of the pre-noise sample estimate. **Never
    /// release this to a customer** — it is kept for evaluation and
    /// auditing only.
    pub sample_estimate: f64,
    /// The perturbation plan that produced the answer.
    pub plan: PerturbationPlan,
    /// Upper bound on the released answer's variance: the estimator's
    /// sampling variance bound plus the Laplace noise variance.
    pub variance_bound: f64,
}

/// The data broker: answers `Λ(α, δ)` requests over a [`FlatNetwork`].
///
/// The broker follows the paper's two-phase pipeline:
///
/// 1. ensure enough samples exist (topping the network up per its
///    [`SamplingPolicy`]),
/// 2. run the estimator at the achieved probability `p`,
/// 3. solve problem (3) for the optimal perturbation plan,
/// 4. inject `Lap(Δγ̂/ε)` noise and release.
///
/// An optional [`BudgetAccountant`] enforces a total privacy cap across
/// queries (sequential composition of the *effective* budgets).
#[derive(Debug)]
pub struct DataBroker<E = RankCounting> {
    network: FlatNetwork,
    estimator: E,
    optimizer_config: OptimizerConfig,
    sampling_policy: SamplingPolicy,
    accountant: Option<BudgetAccountant>,
    rng: StdRng,
}

impl DataBroker<RankCounting> {
    /// Creates a broker using the paper's RankCounting estimator.
    pub fn new(network: FlatNetwork, seed: u64) -> Self {
        DataBroker::with_estimator(network, RankCounting, seed)
    }
}

impl<E: RangeCountEstimator> DataBroker<E> {
    /// Creates a broker with a custom estimator.
    pub fn with_estimator(network: FlatNetwork, estimator: E, seed: u64) -> Self {
        DataBroker {
            network,
            estimator,
            optimizer_config: OptimizerConfig::default(),
            sampling_policy: SamplingPolicy::default(),
            accountant: None,
            rng: StdRng::seed_from_u64(seed ^ 0xb5ad_4ece_da1c_e2a9),
        }
    }

    /// Replaces the optimizer configuration.
    pub fn set_optimizer_config(&mut self, config: OptimizerConfig) {
        self.optimizer_config = config;
    }

    /// Replaces the sampling policy.
    pub fn set_sampling_policy(&mut self, policy: SamplingPolicy) {
        self.sampling_policy = policy;
    }

    /// Installs a total privacy budget; subsequent answers spend their
    /// effective `ε′` against it.
    pub fn set_privacy_budget(&mut self, total: Epsilon) {
        self.accountant = Some(BudgetAccountant::new(total));
    }

    /// The privacy accountant, if a budget was installed.
    pub fn accountant(&self) -> Option<&BudgetAccountant> {
        self.accountant.as_ref()
    }

    /// The underlying network (cost-meter and ground-truth access).
    pub fn network(&self) -> &FlatNetwork {
        &self.network
    }

    /// Mutable access to the underlying network (failure injection etc.).
    pub fn network_mut(&mut self) -> &mut FlatNetwork {
        &mut self.network
    }

    /// Answers one request through the full two-phase pipeline.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InfeasibleAccuracy`] — even sampling everything
    ///   cannot meet the demand;
    /// * [`CoreError::Dp`] — the privacy budget is exhausted;
    /// * [`CoreError::NoSamples`] — the network delivered nothing (e.g.
    ///   every node dead).
    pub fn answer(&mut self, request: &QueryRequest) -> Result<PrivateAnswer, CoreError> {
        let k = self.network.node_count();
        let n = self.network.total_data_size();
        if n == 0 {
            return Err(CoreError::NoSamples);
        }

        // Phase 1: make sure samples suffice for the internal target.
        let internal = self.sampling_policy.internal_target(request.accuracy);
        let target_p = required_probability_clamped(internal, k, n)?;
        self.ensure_probability(target_p);

        // Phase 2: plan the perturbation at the probability actually
        // achieved, topping up once more if the optimizer asks for it.
        let plan = match self.plan(request.accuracy) {
            Ok(plan) => plan,
            Err(CoreError::InfeasibleAccuracy {
                required_probability,
                ..
            }) => {
                self.ensure_probability((required_probability * 1.05).min(1.0));
                self.plan(request.accuracy)?
            }
            Err(e) => return Err(e),
        };

        // Spend the *effective* budget before releasing anything.
        if let Some(accountant) = &mut self.accountant {
            accountant.spend(plan.effective_epsilon)?;
        }

        let sample_estimate = self.estimator.estimate(self.network.station(), request.query);
        let noise = Laplace::centered(plan.noise_scale)?.sample(&mut self.rng);
        let shape = NetworkShape::from_station(self.network.station())?;
        let variance_bound = self
            .estimator
            .variance_bound(shape.k, shape.n, plan.probability)
            + plan.noise_variance();

        Ok(PrivateAnswer {
            query: request.query,
            accuracy: request.accuracy,
            value: sample_estimate + noise,
            sample_estimate,
            plan,
            variance_bound,
        })
    }

    /// Experiment hook: answers with a *fixed* Laplace budget `ε` instead
    /// of the optimizer (used by the Fig. 5 / Fig. 6 reproductions, which
    /// sweep ε directly). Samples are topped up to `p` first; sensitivity
    /// follows the configured policy.
    ///
    /// # Errors
    ///
    /// Propagates sampling, sensitivity, and budget errors.
    pub fn answer_with_epsilon(
        &mut self,
        query: RangeQuery,
        epsilon: Epsilon,
        p: f64,
    ) -> Result<PrivateAnswer, CoreError> {
        if !(0.0..=1.0).contains(&p) || p == 0.0 {
            return Err(CoreError::InvalidProbability { value: p });
        }
        self.ensure_probability(p);
        let shape = NetworkShape::from_station(self.network.station())?;
        let achieved = self.network.station().effective_probability();
        let sensitivity = match self.optimizer_config.sensitivity {
            crate::optimizer::SensitivityPolicy::Expected => 1.0 / achieved,
            crate::optimizer::SensitivityPolicy::WorstCase => {
                shape.max_node_population as f64
            }
            crate::optimizer::SensitivityPolicy::Fixed(v) => v,
        };
        let noise_scale = sensitivity / epsilon.value();
        let effective = prc_dp::amplification::amplify(epsilon, achieved)?;
        if let Some(accountant) = &mut self.accountant {
            accountant.spend(effective)?;
        }
        let sample_estimate = self.estimator.estimate(self.network.station(), query);
        let noise = Laplace::centered(noise_scale)?.sample(&mut self.rng);
        let plan = PerturbationPlan {
            alpha_prime: f64::NAN,
            delta_prime: f64::NAN,
            epsilon,
            effective_epsilon: effective,
            sensitivity,
            noise_scale,
            probability: achieved,
            tail_probability: f64::NAN,
        };
        let accuracy = Accuracy::new(0.5, 0.5).expect("placeholder accuracy is valid");
        Ok(PrivateAnswer {
            query,
            accuracy,
            value: sample_estimate + noise,
            sample_estimate,
            plan,
            variance_bound: self.estimator.variance_bound(shape.k, shape.n, achieved)
                + 2.0 * noise_scale * noise_scale,
        })
    }

    /// Solves problem (3) at the currently achieved sampling probability.
    fn plan(&self, accuracy: Accuracy) -> Result<PerturbationPlan, CoreError> {
        let station = self.network.station();
        let p = station.effective_probability();
        if p <= 0.0 {
            return Err(CoreError::NoSamples);
        }
        let shape = NetworkShape::from_station(station)?;
        optimize(accuracy, p, shape, &self.optimizer_config)
    }

    /// Tops the network up to probability `target` when it lags.
    fn ensure_probability(&mut self, target: f64) {
        let current = self.network.station().effective_probability();
        if current < target {
            self.network.collect_samples(target.clamp(f64::MIN_POSITIVE, 1.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::BasicCounting;

    fn network(k: usize, per_node: usize, seed: u64) -> FlatNetwork {
        let partitions: Vec<Vec<f64>> = (0..k)
            .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
            .collect();
        FlatNetwork::from_partitions(partitions, seed)
    }

    fn request(l: f64, u: f64, a: f64, d: f64) -> QueryRequest {
        QueryRequest::new(
            RangeQuery::new(l, u).unwrap(),
            Accuracy::new(a, d).unwrap(),
        )
    }

    #[test]
    fn end_to_end_answer_meets_accuracy_often() {
        // Definition 2.2: |answer − truth| ≤ αn with probability ≥ δ.
        let n_total = 10_000.0;
        let req = request(2_000.0, 7_000.0, 0.05, 0.8);
        let truth = 5_001.0;
        let trials = 300;
        let mut hits = 0;
        for seed in 0..trials {
            let mut broker = DataBroker::new(network(10, 1_000, seed), seed);
            let answer = broker.answer(&req).unwrap();
            if (answer.value - truth).abs() <= 0.05 * n_total {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!(
            rate >= 0.8,
            "accuracy guarantee violated empirically: hit rate {rate}"
        );
    }

    #[test]
    fn answer_reports_consistent_plan() {
        let mut broker = DataBroker::new(network(8, 500, 3), 3);
        let req = request(100.0, 900.0, 0.1, 0.6);
        let answer = broker.answer(&req).unwrap();
        assert_eq!(answer.query, req.query);
        assert_eq!(answer.accuracy, req.accuracy);
        assert!(answer.plan.alpha_prime < req.accuracy.alpha());
        assert!(answer.plan.delta_prime > req.accuracy.delta());
        assert!(answer.variance_bound > 0.0);
        assert!((answer.value - answer.sample_estimate).abs() < answer.plan.noise_scale * 60.0);
    }

    #[test]
    fn broker_tops_up_samples_on_demand() {
        let mut broker = DataBroker::new(network(5, 2_000, 1), 1);
        assert_eq!(broker.network().station().total_samples(), 0);
        let loose = request(0.0, 10_000.0, 0.2, 0.5);
        broker.answer(&loose).unwrap();
        let after_loose = broker.network().station().effective_probability();
        assert!(after_loose > 0.0);
        // A stricter query forces a higher sampling probability.
        let strict = request(0.0, 10_000.0, 0.03, 0.9);
        broker.answer(&strict).unwrap();
        let after_strict = broker.network().station().effective_probability();
        assert!(after_strict > after_loose);
    }

    #[test]
    fn budget_accounting_blocks_overspend() {
        let mut broker = DataBroker::new(network(5, 2_000, 2), 2);
        let req = request(0.0, 5_000.0, 0.1, 0.6);
        // Learn the per-answer cost, then install a budget for ~2 answers.
        let probe = broker.answer(&req).unwrap();
        let per_query = probe.plan.effective_epsilon.value();
        broker.set_privacy_budget(Epsilon::new(per_query * 2.5).unwrap());
        broker.answer(&req).unwrap();
        broker.answer(&req).unwrap();
        let err = broker.answer(&req).unwrap_err();
        assert!(matches!(err, CoreError::Dp(prc_dp::DpError::BudgetExhausted { .. })));
        let acc = broker.accountant().unwrap();
        assert_eq!(acc.operations(), 2);
    }

    #[test]
    fn works_with_basic_counting_estimator() {
        let mut broker = DataBroker::with_estimator(network(5, 1_000, 4), BasicCounting, 4);
        let answer = broker.answer(&request(0.0, 2_500.0, 0.1, 0.6)).unwrap();
        assert!(answer.value.is_finite());
        // BasicCounting's variance bound dominates RankCounting's here.
        assert!(answer.variance_bound > 0.0);
    }

    #[test]
    fn fixed_epsilon_hook_controls_noise_scale() {
        let mut broker = DataBroker::new(network(5, 1_000, 5), 5);
        let q = RangeQuery::new(0.0, 2_500.0).unwrap();
        let answer = broker
            .answer_with_epsilon(q, Epsilon::new(2.0).unwrap(), 0.4)
            .unwrap();
        assert!((answer.plan.probability - 0.4).abs() < 1e-12);
        // Δ = 1/p = 2.5, b = Δ/ε = 1.25.
        assert!((answer.plan.noise_scale - 1.25).abs() < 1e-12);
        assert!(answer.plan.effective_epsilon.value() < 2.0);
        assert!(broker
            .answer_with_epsilon(q, Epsilon::new(1.0).unwrap(), 0.0)
            .is_err());
    }

    #[test]
    fn answers_are_noisy_but_centred() {
        let req = request(1_000.0, 3_000.0, 0.08, 0.6);
        let truth = 2_001.0;
        let trials = 400;
        let mut sum = 0.0;
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..trials {
            let mut broker = DataBroker::new(network(4, 1_000, seed + 100), seed + 100);
            let a = broker.answer(&req).unwrap();
            sum += a.value;
            distinct.insert(a.value.to_bits());
        }
        assert!(distinct.len() > trials as usize - 5, "answers must vary");
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() < 25.0,
            "released answers should be centred on the truth: mean {mean}"
        );
    }

    #[test]
    fn empty_network_data_errors() {
        let mut broker = DataBroker::new(FlatNetwork::from_partitions(vec![vec![]], 0), 0);
        let err = broker.answer(&request(0.0, 1.0, 0.1, 0.5)).unwrap_err();
        assert!(matches!(err, CoreError::NoSamples));
    }

    #[test]
    fn sampling_policy_targets_are_strictly_tighter() {
        let accuracy = Accuracy::new(0.1, 0.6).unwrap();
        let target = SamplingPolicy::default().internal_target(accuracy);
        assert!(target.alpha() < accuracy.alpha());
        assert!(target.delta() > accuracy.delta());
    }

    #[test]
    #[should_panic(expected = "alpha_fraction")]
    fn bad_sampling_policy_panics() {
        let policy = SamplingPolicy {
            alpha_fraction: 1.5,
            delta_margin: 0.5,
        };
        policy.internal_target(Accuracy::new(0.1, 0.5).unwrap());
    }
}
