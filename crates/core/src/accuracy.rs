//! The (α, δ) accuracy calculus of Theorem 3.3.
//!
//! For `k` nodes, population `n`, and sampling probability `p`, the
//! RankCounting estimator's global variance is at most `8k/p²`
//! (Theorem 3.2). Chebyshev's inequality then gives
//!
//! ```text
//! Pr[|γ̂ − γ| ≤ αn] ≥ 1 − (8k/p²)/(αn)² ,
//! ```
//!
//! so the estimate is an (α, δ)-range counting whenever
//! `p ≥ (√(2k)/(αn)) · (2/√(1−δ))` (Theorem 3.3). This module provides
//! that bound, its inverse `δ′(p)` used by the optimizer, and the
//! Chebyshev helpers.

use crate::error::CoreError;
use crate::query::Accuracy;

/// Theorem 3.2's bound on the global variance of RankCounting: `8k/p²`.
///
/// Returns `+∞` for `p ≤ 0`.
pub fn rank_variance_bound(k: usize, p: f64) -> f64 {
    if p <= 0.0 {
        return f64::INFINITY;
    }
    8.0 * k as f64 / (p * p)
}

/// Theorem 3.3: the minimum sampling probability under which RankCounting
/// is an (α, δ)-range counting — `p ≥ (√(2k)/(αn)) · (2/√(1−δ))`.
///
/// The returned value may exceed `1`, meaning the demand is unachievable
/// by sampling on this population (use
/// [`required_probability_clamped`] when a usable probability is wanted).
///
/// # Examples
///
/// ```
/// use prc_core::accuracy::required_probability;
/// use prc_core::query::Accuracy;
///
/// # fn main() -> Result<(), prc_core::CoreError> {
/// // The paper's Fig. 4 point: α = 0.055, δ = 0.5 over the full dataset.
/// let p = required_probability(Accuracy::new(0.055, 0.5)?, 50, 17_568)?;
/// assert!((p - 0.0293).abs() < 0.001);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] when `k = 0` or `n = 0`.
pub fn required_probability(accuracy: Accuracy, k: usize, n: usize) -> Result<f64, CoreError> {
    if k == 0 || n == 0 {
        return Err(CoreError::InvalidProbability { value: 0.0 });
    }
    let alpha = accuracy.alpha();
    let delta = accuracy.delta();
    Ok((2.0 * k as f64).sqrt() / (alpha * n as f64) * 2.0 / (1.0 - delta).sqrt())
}

/// [`required_probability`], clamped to `(0, 1]` (sampling everything is
/// always sufficient — the estimator is exact at `p = 1`).
///
/// # Errors
///
/// Propagates [`required_probability`]'s errors.
pub fn required_probability_clamped(
    accuracy: Accuracy,
    k: usize,
    n: usize,
) -> Result<f64, CoreError> {
    Ok(required_probability(accuracy, k, n)?.min(1.0))
}

/// The inverse of Theorem 3.3: the confidence `δ′` actually achieved at
/// error bound `α′` by samples collected with probability `p`:
/// `δ′ = 1 − 8k/(α′·n·p)²`.
///
/// **Full sampling is exact**: at `p = 1` every element is collected, the
/// RankCounting estimator degenerates to the exact count (zero variance),
/// and `δ′ = 1` for every `α′` — the Chebyshev bound would be needlessly
/// conservative there, which matters for small populations (e.g. sliding
/// windows).
///
/// May be negative (no guarantee at all); callers must check.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] unless `p ∈ (0, 1]`, and when
/// `k = 0` or `n = 0`.
pub fn achieved_delta(p: f64, alpha_prime: f64, k: usize, n: usize) -> Result<f64, CoreError> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 {
        return Err(CoreError::InvalidProbability { value: p });
    }
    if k == 0 || n == 0 {
        return Err(CoreError::InvalidProbability { value: 0.0 });
    }
    if p >= 1.0 {
        return Ok(1.0);
    }
    let t = alpha_prime * n as f64 * p;
    Ok(1.0 - 8.0 * k as f64 / (t * t))
}

/// Chebyshev lower bound on `Pr[|X − E[X]| ≤ t]` for a variable of the
/// given variance: `max(0, 1 − variance/t²)`.
pub fn chebyshev_confidence(variance: f64, t: f64) -> f64 {
    if t <= 0.0 {
        return 0.0;
    }
    (1.0 - variance / (t * t)).max(0.0)
}

/// Expected number of samples shipped network-wide at probability `p`:
/// `|S| = n·p`.
pub fn expected_sample_count(n: usize, p: f64) -> f64 {
    n as f64 * p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(a: f64, d: f64) -> Accuracy {
        Accuracy::new(a, d).unwrap()
    }

    #[test]
    fn required_probability_matches_theorem_formula() {
        let k = 50;
        let n = 17_568;
        let a = acc(0.055, 0.5);
        let p = required_probability(a, k, n).unwrap();
        let by_hand = (2.0_f64 * 50.0).sqrt() / (0.055 * 17_568.0) * 2.0 / 0.5_f64.sqrt();
        assert!((p - by_hand).abs() < 1e-15);
    }

    #[test]
    fn theorem_3_3_selfconsistency() {
        // At p = required_probability, Chebyshev with Var = 8k/p² yields
        // exactly confidence δ.
        let k = 20;
        let n = 10_000;
        let a = acc(0.05, 0.7);
        let p = required_probability(a, k, n).unwrap();
        let var = rank_variance_bound(k, p);
        let conf = chebyshev_confidence(var, a.absolute_error(n));
        assert!((conf - a.delta()).abs() < 1e-9, "confidence {conf}");
        // achieved_delta agrees.
        let d = achieved_delta(p.min(1.0), a.alpha(), k, n).unwrap();
        assert!((d - a.delta()).abs() < 1e-9, "delta {d}");
    }

    #[test]
    fn achieved_delta_is_monotone_in_p_and_alpha() {
        let k = 10;
        let n = 5_000;
        let base = achieved_delta(0.2, 0.05, k, n).unwrap();
        assert!(achieved_delta(0.4, 0.05, k, n).unwrap() > base);
        assert!(achieved_delta(0.2, 0.1, k, n).unwrap() > base);
    }

    #[test]
    fn full_sampling_is_certain() {
        // p = 1 collects everything; the estimator is exact, so the
        // sampling stage achieves δ′ = 1 at any α′.
        assert_eq!(achieved_delta(1.0, 0.001, 100, 50).unwrap(), 1.0);
        assert_eq!(achieved_delta(1.0, 0.9, 1, 1_000_000).unwrap(), 1.0);
        // Just below full sampling the Chebyshev bound still applies.
        assert!(achieved_delta(0.999, 0.001, 100, 50).unwrap() < 1.0);
    }

    #[test]
    fn achieved_delta_can_be_negative() {
        // Tiny p, tiny alpha: no guarantee.
        let d = achieved_delta(0.01, 0.001, 100, 1_000).unwrap();
        assert!(d < 0.0);
    }

    #[test]
    fn required_probability_can_exceed_one_and_is_clamped() {
        // Very strict demand on a tiny population.
        let a = acc(0.01, 0.99);
        let raw = required_probability(a, 100, 1_000).unwrap();
        assert!(raw > 1.0);
        assert_eq!(required_probability_clamped(a, 100, 1_000).unwrap(), 1.0);
    }

    #[test]
    fn stricter_demands_need_more_samples() {
        let k = 10;
        let n = 100_000;
        let loose = required_probability(acc(0.1, 0.5), k, n).unwrap();
        let tighter_alpha = required_probability(acc(0.05, 0.5), k, n).unwrap();
        let tighter_delta = required_probability(acc(0.1, 0.9), k, n).unwrap();
        assert!(tighter_alpha > loose);
        assert!(tighter_delta > loose);
    }

    #[test]
    fn required_probability_decays_with_population() {
        // The Fig. 4 shape: p ∝ 1/n.
        let a = acc(0.055, 0.5);
        let k = 50;
        let p1 = required_probability(a, k, 2_000).unwrap();
        let p2 = required_probability(a, k, 4_000).unwrap();
        assert!((p1 / p2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_shapes_are_rejected() {
        let a = acc(0.1, 0.5);
        assert!(required_probability(a, 0, 100).is_err());
        assert!(required_probability(a, 10, 0).is_err());
        assert!(achieved_delta(0.0, 0.1, 10, 100).is_err());
        assert!(achieved_delta(1.5, 0.1, 10, 100).is_err());
        assert!(achieved_delta(0.5, 0.1, 0, 100).is_err());
    }

    #[test]
    fn chebyshev_edge_cases() {
        assert_eq!(chebyshev_confidence(100.0, 0.0), 0.0);
        assert_eq!(chebyshev_confidence(100.0, -1.0), 0.0);
        assert_eq!(chebyshev_confidence(100.0, 5.0), 0.0); // bound ≤ 0 clamps
        assert!((chebyshev_confidence(100.0, 20.0) - 0.75).abs() < 1e-12);
        assert_eq!(chebyshev_confidence(0.0, 1.0), 1.0);
    }

    #[test]
    fn variance_bound_and_sample_count() {
        assert_eq!(rank_variance_bound(2, 0.5), 64.0);
        assert_eq!(rank_variance_bound(2, 0.0), f64::INFINITY);
        assert_eq!(expected_sample_count(1_000, 0.25), 250.0);
    }
}
