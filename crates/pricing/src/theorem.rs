//! Grid checker for the three properties of Theorem 4.2.
//!
//! Theorem 4.2 states that `π(α, δ)` is arbitrage-avoiding iff:
//!
//! 1. `π(α, δ) = ψ(V(α, δ))` — price factors through the variance;
//! 2. for every `Δδ ≥ 0`:
//!    `(π(α, δ+Δδ) − π(α, δ))/π(α, δ+Δδ) ≥ (V(α, δ) − V(α, δ+Δδ))/V(α, δ)`;
//! 3. for every `Δα ≥ 0`:
//!    `(π(α, δ) − π(α+Δα, δ))/π(α, δ) ≤ (V(α+Δα, δ) − V(α, δ))/V(α+Δα, δ)`.
//!
//! Properties 2 and 3 are relative-difference bounds; algebraically they
//! say the product `π·V` is non-increasing in `V` along the δ axis and
//! non-decreasing in `V` along the α axis — jointly pinning
//! `π·V = const`, i.e. `π = c/V`. The checker evaluates all three
//! properties over a rectangular grid and reports every violation.

use crate::functions::PricingFunction;
use crate::variance::VarianceModel;

/// Which of Theorem 4.2's properties a grid point violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TheoremProperty {
    /// Property 1: price is not a function of the variance alone.
    VarianceDetermined,
    /// Property 2: the δ-axis relative-difference bound.
    DeltaAxis,
    /// Property 3: the α-axis relative-difference bound.
    AlphaAxis,
}

/// One recorded violation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TheoremViolation {
    /// The violated property.
    pub property: TheoremProperty,
    /// The base grid point `(α, δ)`.
    pub at: (f64, f64),
    /// The comparison point `(α′, δ′)`.
    pub versus: (f64, f64),
    /// `lhs − rhs` of the violated inequality (sign indicates direction).
    pub slack: f64,
}

/// Grid configuration for the checker.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TheoremCheckConfig {
    /// Number of grid points along each axis.
    pub grid: usize,
    /// Inclusive parameter range checked for α.
    pub alpha_range: (f64, f64),
    /// Inclusive parameter range checked for δ.
    pub delta_range: (f64, f64),
    /// Numerical tolerance on the inequalities.
    pub tolerance: f64,
}

impl Default for TheoremCheckConfig {
    fn default() -> Self {
        TheoremCheckConfig {
            grid: 12,
            alpha_range: (0.05, 0.8),
            delta_range: (0.05, 0.9),
            tolerance: 1e-9,
        }
    }
}

fn grid_points(range: (f64, f64), count: usize) -> Vec<f64> {
    assert!(count >= 2, "grid needs at least two points");
    (0..count)
        .map(|i| range.0 + (range.1 - range.0) * i as f64 / (count - 1) as f64)
        .collect()
}

/// Checks all three properties of Theorem 4.2 over a grid, returning every
/// violation found (empty means the function passes the literal theorem).
///
/// # Examples
///
/// ```
/// use prc_pricing::functions::InverseVariancePricing;
/// use prc_pricing::theorem::{check_theorem_4_2, TheoremCheckConfig};
/// use prc_pricing::variance::ChebyshevVariance;
///
/// let model = ChebyshevVariance::new(17_568);
/// let pricing = InverseVariancePricing::new(1e9, model);
/// let violations = check_theorem_4_2(&pricing, &model, &TheoremCheckConfig::default());
/// assert!(violations.is_empty(), "π = c/V satisfies the literal theorem");
/// ```
pub fn check_theorem_4_2<F, M>(
    pricing: &F,
    model: &M,
    config: &TheoremCheckConfig,
) -> Vec<TheoremViolation>
where
    F: PricingFunction,
    M: VarianceModel,
{
    let alphas = grid_points(config.alpha_range, config.grid);
    let deltas = grid_points(config.delta_range, config.grid);
    let tol = config.tolerance;
    let mut violations = Vec::new();

    // Property 1: equal variance must mean equal price. For each pair of
    // alphas and each delta, solve for the delta' on the second alpha
    // that matches the variance, and compare prices.
    for (ai, &a1) in alphas.iter().enumerate() {
        for &a2 in &alphas[ai + 1..] {
            for &d1 in &deltas {
                let v = model.variance(a1, d1);
                let d2 = model.delta_for_variance(a2, v);
                if d2 <= 0.0 || d2 >= 1.0 {
                    continue; // no matching point on this axis
                }
                let p1 = pricing.price(a1, d1);
                let p2 = pricing.price(a2, d2);
                let scale = p1.abs().max(p2.abs()).max(1e-300);
                if (p1 - p2).abs() / scale > tol.max(1e-9) {
                    violations.push(TheoremViolation {
                        property: TheoremProperty::VarianceDetermined,
                        at: (a1, d1),
                        versus: (a2, d2),
                        slack: p1 - p2,
                    });
                }
            }
        }
    }

    // Property 2: δ-axis relative differences.
    for &a in &alphas {
        for (di, &d0) in deltas.iter().enumerate() {
            for &d1 in &deltas[di + 1..] {
                let p0 = pricing.price(a, d0);
                let p1 = pricing.price(a, d1);
                let v0 = model.variance(a, d0);
                let v1 = model.variance(a, d1);
                let lhs = (p1 - p0) / p1;
                let rhs = (v0 - v1) / v0;
                if lhs < rhs - tol {
                    violations.push(TheoremViolation {
                        property: TheoremProperty::DeltaAxis,
                        at: (a, d0),
                        versus: (a, d1),
                        slack: lhs - rhs,
                    });
                }
            }
        }
    }

    // Property 3: α-axis relative differences.
    for &d in &deltas {
        for (ai, &a0) in alphas.iter().enumerate() {
            for &a1 in &alphas[ai + 1..] {
                let p0 = pricing.price(a0, d);
                let p1 = pricing.price(a1, d);
                let v0 = model.variance(a0, d);
                let v1 = model.variance(a1, d);
                let lhs = (p0 - p1) / p0;
                let rhs = (v1 - v0) / v1;
                if lhs > rhs + tol {
                    violations.push(TheoremViolation {
                        property: TheoremProperty::AlphaAxis,
                        at: (a0, d),
                        versus: (a1, d),
                        slack: lhs - rhs,
                    });
                }
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{InverseVariancePricing, LinearDeltaPricing, SqrtPrecisionPricing};
    use crate::variance::ChebyshevVariance;

    fn model() -> ChebyshevVariance {
        ChebyshevVariance::new(17_568)
    }

    #[test]
    fn inverse_variance_passes_all_properties() {
        let pricing = InverseVariancePricing::new(1e8, model());
        let violations = check_theorem_4_2(&pricing, &model(), &TheoremCheckConfig::default());
        assert!(
            violations.is_empty(),
            "π = c/V must pass the literal theorem: {violations:?}"
        );
    }

    #[test]
    fn sqrt_precision_fails_exactly_the_delta_axis() {
        let pricing = SqrtPrecisionPricing::new(1e4, model());
        let violations = check_theorem_4_2(&pricing, &model(), &TheoremCheckConfig::default());
        assert!(!violations.is_empty(), "c/√V must fail the literal theorem");
        assert!(
            violations
                .iter()
                .all(|v| v.property == TheoremProperty::DeltaAxis),
            "c/√V should violate only Property 2, got {:?}",
            violations
                .iter()
                .map(|v| v.property)
                .collect::<std::collections::HashSet<_>>()
        );
    }

    #[test]
    fn linear_delta_fails_property_one() {
        let pricing = LinearDeltaPricing::new(10.0);
        let violations = check_theorem_4_2(&pricing, &model(), &TheoremCheckConfig::default());
        assert!(violations
            .iter()
            .any(|v| v.property == TheoremProperty::VarianceDetermined));
    }

    #[test]
    fn scaled_inverse_variance_still_passes() {
        // The theorem is invariant under positive scaling of ψ.
        for c in [1e-3, 1.0, 1e12] {
            let pricing = InverseVariancePricing::new(c, model());
            assert!(
                check_theorem_4_2(&pricing, &model(), &TheoremCheckConfig::default()).is_empty(),
                "c={c}"
            );
        }
    }

    #[test]
    fn grid_points_cover_range() {
        let g = grid_points((0.0, 1.0), 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn degenerate_grid_panics() {
        let _ = grid_points((0.0, 1.0), 1);
    }
}
