//! History-aware (marginal-information) pricing.
//!
//! The paper prices each answer independently; Definition 2.3 then has to
//! rule out bundle arbitrage *inequality by inequality*. A stronger
//! discipline from the query-pricing literature (Li & Kifer's line of
//! work) is to charge each buyer for the **marginal information** a new
//! purchase adds to what they already hold:
//!
//! ```text
//! charge = f(w_before + w_new) − f(w_before)
//! ```
//!
//! where `w = 1/V` is an answer's *precision*, precisions of independent
//! answers to the same query add under optimal (inverse-variance
//! weighted) combination, and `f(w)` is the posted price of a fresh
//! answer with precision `w`.
//!
//! Telescoping makes the scheme exactly arbitrage-free for *any*
//! non-decreasing `f` with `f(0) = 0`: however a buyer splits their
//! shopping into bundles, the total paid is always `f(w_total)` — the
//! posted price of the information they end up holding. Splitting can
//! never save money, and (unlike the stateless scheme) over-buying in
//! small pieces never *loses* money either.

use std::collections::BTreeMap;

use crate::functions::{
    InverseVariancePricing, LogPrecisionPricing, PricingFunction, SqrtPrecisionPricing,
};
use crate::variance::VarianceModel;

/// A pricing function expressed over *precision* `w = 1/V`.
///
/// Implementations must be non-decreasing in `w` with
/// `price_of_precision(0) = 0`.
pub trait PrecisionPricing {
    /// The posted price of a fresh answer with precision `w`.
    fn price_of_precision(&self, w: f64) -> f64;
}

impl<M: VarianceModel> PrecisionPricing for InverseVariancePricing<M> {
    fn price_of_precision(&self, w: f64) -> f64 {
        if w <= 0.0 {
            0.0
        } else {
            self.price_of_variance(1.0 / w)
        }
    }
}

impl<M: VarianceModel> PrecisionPricing for SqrtPrecisionPricing<M> {
    fn price_of_precision(&self, w: f64) -> f64 {
        if w <= 0.0 {
            0.0
        } else {
            self.price_of_variance(1.0 / w)
        }
    }
}

impl<M: VarianceModel> PrecisionPricing for LogPrecisionPricing<M> {
    fn price_of_precision(&self, w: f64) -> f64 {
        if w <= 0.0 {
            0.0
        } else {
            self.price_of_variance(1.0 / w)
        }
    }
}

/// Marginal-information pricing over a buyer/query purchase history.
///
/// # Examples
///
/// ```
/// use prc_pricing::functions::SqrtPrecisionPricing;
/// use prc_pricing::history::HistoryAwarePricing;
/// use prc_pricing::variance::ChebyshevVariance;
///
/// let model = ChebyshevVariance::new(10_000);
/// let mut pricing = HistoryAwarePricing::new(SqrtPrecisionPricing::new(1e3, model), model);
/// let first = pricing.purchase("alice", "ozone:[80,120]", 0.1, 0.5);
/// let second = pricing.purchase("alice", "ozone:[80,120]", 0.1, 0.5);
/// // Under a concave posted price, the repeat purchase is discounted.
/// assert!(second < first);
/// ```
#[derive(Debug, Clone)]
pub struct HistoryAwarePricing<F, M> {
    base: F,
    model: M,
    /// Accumulated precision per (buyer, query key). A `BTreeMap` keeps
    /// every exported view of the ledger in a stable, reproducible order.
    holdings: BTreeMap<(String, String), f64>,
}

impl<F, M> HistoryAwarePricing<F, M>
where
    F: PricingFunction + PrecisionPricing,
    M: VarianceModel,
{
    /// Wraps a posted pricing function and its variance model.
    pub fn new(base: F, model: M) -> Self {
        HistoryAwarePricing {
            base,
            model,
            holdings: BTreeMap::new(),
        }
    }

    /// The underlying posted pricing function.
    pub fn base(&self) -> &F {
        &self.base
    }

    /// Precision the buyer already holds for the query.
    pub fn held_precision(&self, buyer: &str, query_key: &str) -> f64 {
        self.holdings
            .get(&(buyer.to_owned(), query_key.to_owned()))
            .copied()
            .unwrap_or(0.0)
    }

    /// The marginal price of one more `(α, δ)` answer for this buyer and
    /// query, without recording a purchase.
    ///
    /// # Panics
    ///
    /// Panics when `α` or `δ` is outside `(0, 1)` (propagated from the
    /// variance model).
    pub fn quote(&self, buyer: &str, query_key: &str, alpha: f64, delta: f64) -> f64 {
        let w_new = 1.0 / self.model.variance(alpha, delta);
        let w_before = self.held_precision(buyer, query_key);
        (self.base.price_of_precision(w_before + w_new) - self.base.price_of_precision(w_before))
            .max(0.0)
    }

    /// Records a purchase and returns the charged (marginal) price.
    ///
    /// # Panics
    ///
    /// Panics when `α` or `δ` is outside `(0, 1)`.
    pub fn purchase(&mut self, buyer: &str, query_key: &str, alpha: f64, delta: f64) -> f64 {
        let price = self.quote(buyer, query_key, alpha, delta);
        let w_new = 1.0 / self.model.variance(alpha, delta);
        *self
            .holdings
            .entry((buyer.to_owned(), query_key.to_owned()))
            .or_insert(0.0) += w_new;
        price
    }

    /// Forgets one buyer's history (e.g. after a data refresh makes old
    /// answers stale).
    pub fn forget_buyer(&mut self, buyer: &str) {
        self.holdings.retain(|(b, _), _| b != buyer);
    }

    /// The full ledger of held precisions, sorted by `(buyer, query key)`.
    ///
    /// The iteration order is deterministic — identical purchase
    /// histories always export identical sequences — so audit logs and
    /// serialized reports built from it are byte-reproducible.
    pub fn holdings(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.holdings
            .iter()
            .map(|((buyer, query), &w)| (buyer.as_str(), query.as_str(), w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::ChebyshevVariance;

    fn model() -> ChebyshevVariance {
        ChebyshevVariance::new(10_000)
    }

    #[test]
    fn first_purchase_matches_posted_price() {
        let base = InverseVariancePricing::new(1e6, model());
        let mut pricing = HistoryAwarePricing::new(base, model());
        let quoted = pricing.quote("alice", "q1", 0.1, 0.5);
        assert!((quoted - base.price(0.1, 0.5)).abs() < 1e-9);
        let charged = pricing.purchase("alice", "q1", 0.1, 0.5);
        assert_eq!(charged, quoted);
    }

    #[test]
    fn linear_precision_pricing_is_history_invariant() {
        // With π = c/V (linear in precision), the marginal price of an
        // answer never depends on history.
        let base = InverseVariancePricing::new(1e6, model());
        let mut pricing = HistoryAwarePricing::new(base, model());
        let fresh = pricing.quote("alice", "q1", 0.05, 0.8);
        pricing.purchase("alice", "q1", 0.2, 0.5);
        pricing.purchase("alice", "q1", 0.1, 0.9);
        let after_history = pricing.quote("alice", "q1", 0.05, 0.8);
        assert!((fresh - after_history).abs() / fresh < 1e-9);
    }

    #[test]
    fn concave_pricing_discounts_repeat_buyers() {
        // With a concave f (√precision), each additional identical answer
        // is cheaper than the last — the buyer already holds most of the
        // information.
        let base = SqrtPrecisionPricing::new(1e3, model());
        let mut pricing = HistoryAwarePricing::new(base, model());
        let p1 = pricing.purchase("bob", "q1", 0.1, 0.5);
        let p2 = pricing.purchase("bob", "q1", 0.1, 0.5);
        let p3 = pricing.purchase("bob", "q1", 0.1, 0.5);
        assert!(p1 > p2 && p2 > p3, "{p1} > {p2} > {p3} expected");
        assert!(p3 > 0.0);
    }

    #[test]
    fn telescoping_makes_total_paid_path_independent() {
        // Whatever the purchase path, the total paid equals f(w_total).
        let base = LogPrecisionPricing::new(50.0, model());
        let m = model();

        let path_a = [(0.1, 0.5), (0.05, 0.8), (0.2, 0.9)];
        let path_b = [(0.2, 0.9), (0.1, 0.5), (0.05, 0.8)]; // same set, reordered

        let total = |path: &[(f64, f64)]| {
            let mut pricing = HistoryAwarePricing::new(base, m);
            path.iter()
                .map(|&(a, d)| pricing.purchase("carol", "q", a, d))
                .sum::<f64>()
        };
        let total_a = total(&path_a);
        let total_b = total(&path_b);
        assert!((total_a - total_b).abs() < 1e-9, "{total_a} vs {total_b}");

        // And both equal the posted price of the combined precision.
        let w_total: f64 = path_a.iter().map(|&(a, d)| 1.0 / m.variance(a, d)).sum();
        assert!((total_a - base.price_of_precision(w_total)).abs() < 1e-9);
    }

    #[test]
    fn splitting_never_saves_money() {
        // Buying the target accuracy directly vs. accumulating it in k
        // cheap pieces costs exactly the same — arbitrage-free with
        // equality, for every family.
        let m = model();
        let target_w = 1.0 / m.variance(0.03, 0.9);

        fn check<F: PricingFunction + PrecisionPricing + Clone>(
            base: F,
            m: ChebyshevVariance,
            target_w: f64,
        ) {
            let direct = base.price_of_precision(target_w);
            let mut pricing = HistoryAwarePricing::new(base, m);
            // Ten equal slices of the target precision: realized as ten
            // purchases of an accuracy with a tenth of the precision.
            // (We bypass (α, δ) and add precision via quotes on a crafted
            // accuracy whose variance is 10/target_w.)
            let slice_v = 10.0 / target_w;
            let alpha = 0.5;
            let delta = m.delta_for_variance(alpha, slice_v);
            assert!(delta > 0.0 && delta < 1.0, "crafted slice must be valid");
            let total: f64 = (0..10)
                .map(|_| pricing.purchase("dave", "q", alpha, delta))
                .sum();
            assert!(
                (total - direct).abs() / direct < 1e-6,
                "split total {total} vs direct {direct}"
            );
        }
        check(InverseVariancePricing::new(1e6, m), m, target_w);
        check(SqrtPrecisionPricing::new(1e3, m), m, target_w);
        check(LogPrecisionPricing::new(50.0, m), m, target_w);
    }

    #[test]
    fn histories_are_isolated_per_buyer_and_query() {
        let base = SqrtPrecisionPricing::new(1e3, model());
        let mut pricing = HistoryAwarePricing::new(base, model());
        let fresh = pricing.quote("alice", "q1", 0.1, 0.5);
        pricing.purchase("alice", "q1", 0.1, 0.5);
        // Other buyer and other query still pay the fresh price.
        assert_eq!(pricing.quote("bob", "q1", 0.1, 0.5), fresh);
        assert_eq!(pricing.quote("alice", "q2", 0.1, 0.5), fresh);
        // Alice on q1 pays less.
        assert!(pricing.quote("alice", "q1", 0.1, 0.5) < fresh);
        assert!(pricing.held_precision("alice", "q1") > 0.0);
        assert_eq!(pricing.held_precision("bob", "q1"), 0.0);
    }

    #[test]
    fn forget_buyer_resets_their_discounts() {
        let base = SqrtPrecisionPricing::new(1e3, model());
        let mut pricing = HistoryAwarePricing::new(base, model());
        let fresh = pricing.quote("alice", "q1", 0.1, 0.5);
        pricing.purchase("alice", "q1", 0.1, 0.5);
        pricing.purchase("bob", "q1", 0.1, 0.5);
        pricing.forget_buyer("alice");
        assert_eq!(pricing.quote("alice", "q1", 0.1, 0.5), fresh);
        // Bob's history survives.
        assert!(pricing.quote("bob", "q1", 0.1, 0.5) < fresh);
    }

    #[test]
    fn holdings_export_is_sorted_and_insertion_order_independent() {
        let keys = [
            ("carol", "q2"),
            ("alice", "q9"),
            ("bob", "q1"),
            ("alice", "q1"),
            ("carol", "q1"),
        ];
        let export = |order: &[(&str, &str)]| {
            let mut pricing =
                HistoryAwarePricing::new(SqrtPrecisionPricing::new(1e3, model()), model());
            for &(buyer, query) in order {
                pricing.purchase(buyer, query, 0.1, 0.5);
            }
            pricing
                .holdings()
                .map(|(b, q, w)| (b.to_owned(), q.to_owned(), w))
                .collect::<Vec<_>>()
        };
        let forward = export(&keys);
        let mut reversed_keys = keys;
        reversed_keys.reverse();
        let backward = export(&reversed_keys);
        // The emitted order is pinned to the sorted key order, whatever
        // order purchases arrived in.
        assert_eq!(forward, backward);
        let emitted: Vec<(&str, &str)> = forward
            .iter()
            .map(|(b, q, _)| (b.as_str(), q.as_str()))
            .collect();
        assert_eq!(
            emitted,
            vec![
                ("alice", "q1"),
                ("alice", "q9"),
                ("bob", "q1"),
                ("carol", "q1"),
                ("carol", "q2"),
            ]
        );
    }

    #[test]
    fn quotes_are_never_negative() {
        let base = LogPrecisionPricing::new(10.0, model());
        let mut pricing = HistoryAwarePricing::new(base, model());
        for _ in 0..50 {
            let q = pricing.purchase("eve", "q", 0.9, 0.01);
            assert!(q >= 0.0);
        }
    }

    #[test]
    fn zero_precision_prices_zero() {
        let base = InverseVariancePricing::new(1e6, model());
        assert_eq!(base.price_of_precision(0.0), 0.0);
        assert_eq!(base.price_of_precision(-1.0), 0.0);
        let sqrt = SqrtPrecisionPricing::new(1e3, model());
        assert_eq!(sqrt.price_of_precision(0.0), 0.0);
        let log = LogPrecisionPricing::new(10.0, model());
        assert_eq!(log.price_of_precision(0.0), 0.0);
    }
}
