//! Pricing function families.
//!
//! All compliant functions factor through the variance (`π = ψ(V)`,
//! Lemma 4.1) and differ in the shape of `ψ`:
//!
//! | function | ψ(v) | Theorem 4.2 (literal) | Definition 2.3 (operational) |
//! |---|---|---|---|
//! | [`InverseVariancePricing`] | `c/v` | ✔ (the unique shape) | ✔ |
//! | [`SqrtPrecisionPricing`] | `c/√v` | ✘ (fails Property 2) | ✔ |
//! | [`LogPrecisionPricing`] | `c·ln(1 + 1/v)` | ✘ (fails Property 2) | ✔ |
//! | [`LinearDeltaPricing`] | — (not a function of V) | ✘ (fails Property 1) | ✘ |
//!
//! Operational safety of the precision families: write `f(w) = ψ(1/w)`
//! over precision `w = 1/v`. `ψ(v)·v` non-decreasing in `v` is equivalent
//! to `f(w)/w` non-increasing in `w`, which makes `f` subadditive; a
//! bundle of answers whose equal-weight average reaches variance `v`
//! then always costs at least `ψ(v)` (the argument behind Theorem 4.2's
//! sufficiency proof, and validated exhaustively by the attack simulator
//! in [`crate::arbitrage`]).

use crate::variance::{assert_accuracy, VarianceModel};
use crate::PricingError;

/// A pricing function `π(α, δ)` for range-counting answers.
pub trait PricingFunction {
    /// Short human-readable name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// The price of one `(α, δ)` answer.
    ///
    /// # Panics
    ///
    /// Panics when `α` or `δ` is outside `(0, 1)`.
    fn price(&self, alpha: f64, delta: f64) -> f64;
}

/// Validates a pricing coefficient.
fn check_coefficient(value: f64) -> Result<f64, PricingError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(PricingError::InvalidParameter {
            name: "coefficient",
            value,
        });
    }
    Ok(value)
}

/// The canonical arbitrage-avoiding price `π = c/V(α, δ)` — the unique
/// shape satisfying Theorem 4.2 as literally stated (Properties 2 and 3
/// jointly pin `π·V` constant).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InverseVariancePricing<M> {
    coefficient: f64,
    model: M,
}

impl<M: VarianceModel> InverseVariancePricing<M> {
    /// Creates the pricing function.
    ///
    /// # Panics
    ///
    /// Panics unless `coefficient` is finite and positive.
    pub fn new(coefficient: f64, model: M) -> Self {
        // prc-lint: allow(P002, reason = "documented panicking convenience; fallible twin is try_new")
        Self::try_new(coefficient, model).expect("invalid pricing coefficient")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PricingError::InvalidParameter`] for a non-positive or
    /// non-finite coefficient.
    pub fn try_new(coefficient: f64, model: M) -> Result<Self, PricingError> {
        Ok(InverseVariancePricing {
            coefficient: check_coefficient(coefficient)?,
            model,
        })
    }

    /// The underlying variance model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The price of an answer with raw variance `v` (the `ψ` view).
    pub fn price_of_variance(&self, v: f64) -> f64 {
        self.coefficient / v
    }
}

impl<M: VarianceModel> PricingFunction for InverseVariancePricing<M> {
    fn name(&self) -> &'static str {
        "InverseVariance"
    }

    fn price(&self, alpha: f64, delta: f64) -> f64 {
        self.price_of_variance(self.model.variance(alpha, delta))
    }
}

/// The square-root-precision price `π = c/√V(α, δ)`.
///
/// Operationally arbitrage-avoiding (its precision form `f(w) = c·√w` is
/// concave, hence subadditive) but **rejected by the literal Theorem 4.2
/// checker**: moving along the δ axis it violates Property 2, because the
/// theorem's printed relative-difference bounds force `π·V` to be
/// simultaneously non-increasing (Property 2) and non-decreasing
/// (Property 3) in `V`. See DESIGN.md §3.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SqrtPrecisionPricing<M> {
    coefficient: f64,
    model: M,
}

impl<M: VarianceModel> SqrtPrecisionPricing<M> {
    /// Creates the pricing function.
    ///
    /// # Panics
    ///
    /// Panics unless `coefficient` is finite and positive.
    pub fn new(coefficient: f64, model: M) -> Self {
        // prc-lint: allow(P002, reason = "documented panicking convenience; fallible twin is try_new")
        Self::try_new(coefficient, model).expect("invalid pricing coefficient")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PricingError::InvalidParameter`] for a non-positive or
    /// non-finite coefficient.
    pub fn try_new(coefficient: f64, model: M) -> Result<Self, PricingError> {
        Ok(SqrtPrecisionPricing {
            coefficient: check_coefficient(coefficient)?,
            model,
        })
    }

    /// The price of an answer with raw variance `v`.
    pub fn price_of_variance(&self, v: f64) -> f64 {
        self.coefficient / v.sqrt()
    }
}

impl<M: VarianceModel> PricingFunction for SqrtPrecisionPricing<M> {
    fn name(&self) -> &'static str {
        "SqrtPrecision"
    }

    fn price(&self, alpha: f64, delta: f64) -> f64 {
        self.price_of_variance(self.model.variance(alpha, delta))
    }
}

/// The log-precision price `π = c·ln(1 + 1/V(α, δ))` — a bounded-revenue
/// family whose precision form `f(w) = c·ln(1 + w)` is concave, hence
/// operationally arbitrage-avoiding.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogPrecisionPricing<M> {
    coefficient: f64,
    model: M,
}

impl<M: VarianceModel> LogPrecisionPricing<M> {
    /// Creates the pricing function.
    ///
    /// # Panics
    ///
    /// Panics unless `coefficient` is finite and positive.
    pub fn new(coefficient: f64, model: M) -> Self {
        // prc-lint: allow(P002, reason = "documented panicking convenience; fallible twin is try_new")
        Self::try_new(coefficient, model).expect("invalid pricing coefficient")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PricingError::InvalidParameter`] for a non-positive or
    /// non-finite coefficient.
    pub fn try_new(coefficient: f64, model: M) -> Result<Self, PricingError> {
        Ok(LogPrecisionPricing {
            coefficient: check_coefficient(coefficient)?,
            model,
        })
    }

    /// The price of an answer with raw variance `v`.
    pub fn price_of_variance(&self, v: f64) -> f64 {
        self.coefficient * (1.0 / v).ln_1p()
    }
}

impl<M: VarianceModel> PricingFunction for LogPrecisionPricing<M> {
    fn name(&self) -> &'static str {
        "LogPrecision"
    }

    fn price(&self, alpha: f64, delta: f64) -> f64 {
        self.price_of_variance(self.model.variance(alpha, delta))
    }
}

/// A deliberately **broken** pricing function, `π = c·δ/α`, used to
/// validate the attack simulator: it is monotone the right way (price
/// rises with δ, falls with α) yet is not a function of the variance, so
/// Example 4.1's averaging attack beats it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearDeltaPricing {
    coefficient: f64,
}

impl LinearDeltaPricing {
    /// Creates the pricing function.
    ///
    /// # Panics
    ///
    /// Panics unless `coefficient` is finite and positive.
    pub fn new(coefficient: f64) -> Self {
        // prc-lint: allow(P002, reason = "documented panicking convenience; fallible twin is try_new")
        Self::try_new(coefficient).expect("invalid pricing coefficient")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PricingError::InvalidParameter`] for a non-positive or
    /// non-finite coefficient.
    pub fn try_new(coefficient: f64) -> Result<Self, PricingError> {
        Ok(LinearDeltaPricing {
            coefficient: check_coefficient(coefficient)?,
        })
    }
}

impl PricingFunction for LinearDeltaPricing {
    fn name(&self) -> &'static str {
        "LinearDelta(broken)"
    }

    fn price(&self, alpha: f64, delta: f64) -> f64 {
        assert_accuracy(alpha, delta);
        self.coefficient * delta / alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::ChebyshevVariance;

    fn model() -> ChebyshevVariance {
        ChebyshevVariance::new(10_000)
    }

    #[test]
    fn inverse_variance_formula() {
        let p = InverseVariancePricing::new(100.0, model());
        let v = model().variance(0.1, 0.5);
        assert_eq!(p.price(0.1, 0.5), 100.0 / v);
        assert_eq!(p.price_of_variance(4.0), 25.0);
        assert_eq!(p.name(), "InverseVariance");
        assert_eq!(p.model().population(), 10_000);
    }

    #[test]
    fn all_functions_are_monotone_the_right_way() {
        let inv = InverseVariancePricing::new(1.0, model());
        let sqrt = SqrtPrecisionPricing::new(1.0, model());
        let log = LogPrecisionPricing::new(1.0, model());
        let lin = LinearDeltaPricing::new(1.0);
        let check = |f: &dyn PricingFunction| {
            // Price decreases as α loosens.
            assert!(
                f.price(0.05, 0.5) > f.price(0.2, 0.5),
                "{}: price must fall with alpha",
                f.name()
            );
            // Price increases with confidence δ.
            assert!(
                f.price(0.1, 0.9) > f.price(0.1, 0.4),
                "{}: price must rise with delta",
                f.name()
            );
            assert!(f.price(0.1, 0.5) > 0.0);
        };
        check(&inv);
        check(&sqrt);
        check(&log);
        check(&lin);
    }

    #[test]
    fn price_times_variance_shapes() {
        // ψ(v)·v: constant for inverse, increasing for sqrt and log.
        let m = model();
        let inv = InverseVariancePricing::new(1.0, m);
        let sqrt = SqrtPrecisionPricing::new(1.0, m);
        let log = LogPrecisionPricing::new(1.0, m);
        let v1 = 10.0;
        let v2 = 1_000.0;
        assert!((inv.price_of_variance(v1) * v1 - inv.price_of_variance(v2) * v2).abs() < 1e-12);
        assert!(sqrt.price_of_variance(v2) * v2 > sqrt.price_of_variance(v1) * v1);
        assert!(log.price_of_variance(v2) * v2 > log.price_of_variance(v1) * v1);
    }

    #[test]
    fn sqrt_precision_is_subadditive_under_duplication() {
        // m copies at variance m·v average to variance v; the bundle must
        // not be cheaper than one answer of variance v.
        let sqrt = SqrtPrecisionPricing::new(7.0, model());
        for m in [2usize, 3, 10, 50] {
            let v = 500.0;
            let bundle = m as f64 * sqrt.price_of_variance(m as f64 * v);
            let single = sqrt.price_of_variance(v);
            assert!(bundle >= single - 1e-9, "m={m}: {bundle} < {single}");
        }
    }

    #[test]
    fn coefficient_validation() {
        assert!(InverseVariancePricing::try_new(0.0, model()).is_err());
        assert!(InverseVariancePricing::try_new(f64::NAN, model()).is_err());
        assert!(InverseVariancePricing::try_new(5.0, model()).is_ok());
        assert!(SqrtPrecisionPricing::try_new(-2.0, model()).is_err());
        assert!(SqrtPrecisionPricing::try_new(2.0, model()).is_ok());
        assert!(LogPrecisionPricing::try_new(f64::INFINITY, model()).is_err());
        assert!(LogPrecisionPricing::try_new(1.0, model()).is_ok());
        assert!(LinearDeltaPricing::try_new(0.0).is_err());
        assert!(LinearDeltaPricing::try_new(3.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "coefficient")]
    fn negative_coefficient_panics() {
        let _ = SqrtPrecisionPricing::new(-1.0, model());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn linear_delta_validates_inputs() {
        LinearDeltaPricing::new(1.0).price(1.5, 0.5);
    }
}
