//! Trade bookkeeping for the broker.

use std::collections::BTreeMap;

/// One recorded sale.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TradeRecord {
    /// Monotone sequence number assigned by the ledger.
    pub sequence: u64,
    /// The purchasing consumer.
    pub buyer: String,
    /// Error bound the answer was sold at.
    pub alpha: f64,
    /// Confidence the answer was sold at.
    pub delta: f64,
    /// Price charged.
    pub price: f64,
    /// Laplace noise variance of the released answer, when the sale was
    /// settled through the broker pipeline (`None` for bare quotes
    /// recorded without a released answer).
    pub noise_variance: Option<f64>,
    /// Rendered perturbation-plan summary of the released answer, when
    /// settled through the broker pipeline.
    pub plan: Option<String>,
}

/// An append-only ledger of sales with revenue accounting.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TradeLedger {
    records: Vec<TradeRecord>,
}

impl TradeLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TradeLedger::default()
    }

    /// Records one sale and returns its sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `price` is negative or not finite.
    pub fn record(&mut self, buyer: &str, alpha: f64, delta: f64, price: f64) -> u64 {
        assert!(
            price.is_finite() && price >= 0.0,
            "price must be finite and non-negative, got {price}"
        );
        let sequence = self.records.len() as u64;
        self.records.push(TradeRecord {
            sequence,
            buyer: buyer.to_owned(),
            alpha,
            delta,
            price,
            noise_variance: None,
            plan: None,
        });
        sequence
    }

    /// Records one pipeline settlement — a sale carrying the released
    /// answer's noise variance and plan summary — and returns its
    /// sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `price` is negative or not finite.
    pub fn record_settlement(
        &mut self,
        buyer: &str,
        alpha: f64,
        delta: f64,
        price: f64,
        noise_variance: f64,
        plan: &str,
    ) -> u64 {
        let sequence = self.record(buyer, alpha, delta, price);
        // `record` pushed the entry; enrich it in place.
        if let Some(entry) = self.records.last_mut() {
            entry.noise_variance = Some(noise_variance);
            entry.plan = Some(plan.to_owned());
        }
        sequence
    }

    /// Number of recorded sales.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no sale has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in recording order.
    pub fn records(&self) -> &[TradeRecord] {
        &self.records
    }

    /// Total revenue across all sales.
    pub fn total_revenue(&self) -> f64 {
        self.records.iter().map(|r| r.price).sum()
    }

    /// Revenue per buyer, in buyer-name order.
    pub fn revenue_by_buyer(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            *out.entry(r.buyer.clone()).or_insert(0.0) += r.price;
        }
        out
    }

    /// Total spend of one buyer.
    pub fn buyer_spend(&self, buyer: &str) -> f64 {
        self.records
            .iter()
            .filter(|r| r.buyer == buyer)
            .map(|r| r.price)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_in_order() {
        let mut ledger = TradeLedger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.record("alice", 0.1, 0.8, 10.0), 0);
        assert_eq!(ledger.record("bob", 0.2, 0.5, 4.0), 1);
        assert_eq!(ledger.record("alice", 0.05, 0.9, 25.0), 2);
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.records()[1].buyer, "bob");
    }

    #[test]
    fn revenue_accounting() {
        let mut ledger = TradeLedger::new();
        ledger.record("alice", 0.1, 0.8, 10.0);
        ledger.record("bob", 0.2, 0.5, 4.0);
        ledger.record("alice", 0.05, 0.9, 25.0);
        assert!((ledger.total_revenue() - 39.0).abs() < 1e-12);
        assert!((ledger.buyer_spend("alice") - 35.0).abs() < 1e-12);
        assert_eq!(ledger.buyer_spend("carol"), 0.0);
        let by_buyer = ledger.revenue_by_buyer();
        assert_eq!(by_buyer.len(), 2);
        assert!((by_buyer["bob"] - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "price must be finite")]
    fn negative_price_panics() {
        TradeLedger::new().record("mallory", 0.1, 0.5, -1.0);
    }

    #[test]
    fn settlements_carry_the_released_answer_metadata() {
        let mut ledger = TradeLedger::new();
        ledger.record("alice", 0.1, 0.8, 10.0);
        let seq = ledger.record_settlement("bob", 0.05, 0.9, 25.0, 3.125, "ε=0.8 b=1.25");
        assert_eq!(seq, 1);
        let bare = &ledger.records()[0];
        assert_eq!(bare.noise_variance, None);
        assert_eq!(bare.plan, None);
        let settled = &ledger.records()[1];
        assert_eq!(settled.noise_variance, Some(3.125));
        assert_eq!(settled.plan.as_deref(), Some("ε=0.8 b=1.25"));
        // Settlements participate in revenue accounting like any sale.
        assert!((ledger.total_revenue() - 35.0).abs() < 1e-12);
    }
}
