//! Arbitrage-consistent reuse of previously sold answers.
//!
//! A broker that caches a released noisy answer and serves it again for a
//! later request saves a sampling round and a privacy-budget charge — but
//! reuse interacts with the posted price curve. The cached answer was
//! produced for some demand `(α_c, δ_c)` and therefore carries variance
//! `V(α_c, δ_c)`; a later buyer paying the posted price `π(α_r, δ_r)` for
//! a (possibly looser) demand would, on reuse, receive an answer whose
//! *actual* variance is the cached one. If
//! `π(α_r, δ_r) < ψ(V(α_c, δ_c))` — the posted price of the precision
//! actually delivered — the buyer obtained information below its posted
//! price, which is exactly the discount that Definition 2.3's averaging
//! attacks monetize.
//!
//! [`PostedPriceReuse`] therefore allows a cache hit only when
//!
//! 1. the cached answer **satisfies** the request: `α_c ≤ α_r` and
//!    `δ_c ≥ δ_r` (the guarantee sold is at least as strict as the one
//!    asked for), and
//! 2. the posted curve is **not undercut**: `π(α_r, δ_r) ≥ ψ(V(α_c, δ_c))`
//!    up to a relative tolerance for floating-point noise.
//!
//! Because every compliant `ψ` is strictly decreasing in `v`, condition 1
//! (which implies `V_c ≤ V_r`) and condition 2 (`ψ(V_r) ≥ ψ(V_c)`, i.e.
//! `V_c ≥ V_r`) jointly force `V(α_r, δ_r) = V(α_c, δ_c)` — and under the
//! per-coordinate order of condition 1 that equality only holds for
//! *identical* demands. The guard still consults the concrete curve
//! rather than hard-coding that conclusion, so families with plateaus or
//! promotional segments get the reuse set their own curve implies.

use std::fmt::Debug;

use crate::functions::PricingFunction;
use crate::history::PrecisionPricing;
use crate::variance::VarianceModel;

/// Relative price tolerance absorbing floating-point noise in the
/// undercut comparison.
const PRICE_TOLERANCE: f64 = 1e-9;

/// An accuracy demand `(α, δ)` as seen by the pricing layer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Demand {
    /// Relative error bound `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Confidence `δ ∈ (0, 1)`.
    pub delta: f64,
}

impl Demand {
    /// Creates a demand.
    pub fn new(alpha: f64, delta: f64) -> Self {
        Demand { alpha, delta }
    }

    /// Whether this demand is at least as strict as `other` (smaller
    /// error bound, at least the confidence).
    pub fn at_least_as_strict_as(&self, other: &Demand) -> bool {
        self.alpha <= other.alpha && self.delta >= other.delta
    }
}

/// Decides whether serving a cached answer for a new request is
/// consistent with the posted price curve.
///
/// Implementations must be conservative: when in doubt, deny reuse (the
/// broker then answers fresh, which is always sound).
pub trait ReuseGuard: Debug + Send + Sync {
    /// Whether an answer sold for `cached` may be re-served to a buyer
    /// paying the posted price of `requested`.
    fn allows_reuse(&self, requested: Demand, cached: Demand) -> bool;

    /// The posted price the new buyer pays, for bookkeeping.
    fn posted_price(&self, requested: Demand) -> f64;
}

/// The posted-curve guard: reuse is allowed iff the cached guarantee
/// covers the request and the request's posted price is no lower than the
/// posted price of the variance actually delivered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostedPriceReuse<F, M> {
    pricing: F,
    model: M,
}

impl<F, M> PostedPriceReuse<F, M>
where
    F: PricingFunction + PrecisionPricing,
    M: VarianceModel,
{
    /// Wraps a posted pricing function and its variance model.
    pub fn new(pricing: F, model: M) -> Self {
        PostedPriceReuse { pricing, model }
    }

    /// The underlying pricing function.
    pub fn pricing(&self) -> &F {
        &self.pricing
    }
}

impl<F, M> ReuseGuard for PostedPriceReuse<F, M>
where
    F: PricingFunction + PrecisionPricing + Debug + Send + Sync,
    M: VarianceModel + Debug + Send + Sync,
{
    fn allows_reuse(&self, requested: Demand, cached: Demand) -> bool {
        if !cached.at_least_as_strict_as(&requested) {
            return false;
        }
        let paid = self.pricing.price(requested.alpha, requested.delta);
        let delivered_variance = self.model.variance(cached.alpha, cached.delta);
        let delivered_precision = 1.0 / delivered_variance;
        let owed = self.pricing.price_of_precision(delivered_precision);
        paid >= owed * (1.0 - PRICE_TOLERANCE)
    }

    fn posted_price(&self, requested: Demand) -> f64 {
        self.pricing.price(requested.alpha, requested.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{InverseVariancePricing, SqrtPrecisionPricing};
    use crate::variance::ChebyshevVariance;

    fn model() -> ChebyshevVariance {
        ChebyshevVariance::new(10_000)
    }

    #[test]
    fn identical_demands_always_reuse() {
        let guard = PostedPriceReuse::new(InverseVariancePricing::new(1e6, model()), model());
        let d = Demand::new(0.1, 0.6);
        assert!(guard.allows_reuse(d, d));
        assert_eq!(guard.posted_price(d), guard.pricing().price(0.1, 0.6));
    }

    #[test]
    fn unsatisfying_cache_entry_is_rejected() {
        let guard = PostedPriceReuse::new(InverseVariancePricing::new(1e6, model()), model());
        // Cached answer is looser than the request in either coordinate.
        assert!(!guard.allows_reuse(Demand::new(0.05, 0.6), Demand::new(0.1, 0.6)));
        assert!(!guard.allows_reuse(Demand::new(0.1, 0.8), Demand::new(0.1, 0.6)));
    }

    #[test]
    fn inverse_variance_blocks_discounted_upgrades() {
        // The cached answer is strictly tighter than the request; under
        // π = c/V the looser request's price undercuts the delivered
        // precision, so the guard must refuse.
        let guard = PostedPriceReuse::new(InverseVariancePricing::new(1e6, model()), model());
        assert!(!guard.allows_reuse(Demand::new(0.2, 0.5), Demand::new(0.05, 0.9)));
    }

    #[test]
    fn reuse_set_is_exactly_identical_demands() {
        // Under a strictly decreasing ψ and the per-coordinate
        // satisfaction order, only the identical demand survives both
        // conditions — for the sqrt family just as for inverse-variance.
        let m = model();
        let guard = PostedPriceReuse::new(SqrtPrecisionPricing::new(1e3, m), m);
        let requested = Demand::new(0.1, 0.5);
        assert!(guard.allows_reuse(requested, requested));
        assert!(!guard.allows_reuse(requested, Demand::new(0.1, 0.502)));
        assert!(!guard.allows_reuse(requested, Demand::new(0.01, 0.99)));
        assert!(!guard.allows_reuse(requested, Demand::new(0.11, 0.5)));
    }
}
