//! Variance models `V(α, δ)`.
//!
//! Lemma 4.1 of the paper shows an arbitrage-avoiding price is a function
//! of the answer's variance alone: `π(α, δ) = ψ(V(α, δ))`. The canonical
//! link between an `(α, δ)` guarantee and a variance is Chebyshev's
//! inequality: a variable with variance `V = (αn)²(1−δ)` satisfies
//! `Pr[|X − truth| ≤ αn] ≥ 1 − V/(αn)² = δ` — so
//! [`ChebyshevVariance`] is the tightest variance a broker can certify
//! for an `(α, δ)` answer without distributional assumptions.

use crate::error::PricingError;

/// Maps an accuracy demand `(α, δ)` to the variance of the answer sold.
pub trait VarianceModel {
    /// The variance `V(α, δ)`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `α` or `δ` is outside `(0, 1)`.
    fn variance(&self, alpha: f64, delta: f64) -> f64;

    /// The confidence `δ` implied by variance `v` at error bound `α` —
    /// the partial inverse used when comparing bundles. Returns values
    /// possibly outside `(0, 1)`; callers must check.
    fn delta_for_variance(&self, alpha: f64, v: f64) -> f64;
}

/// The Chebyshev-tight model `V(α, δ) = (α·n)²·(1 − δ)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChebyshevVariance {
    n: usize,
}

impl ChebyshevVariance {
    /// Creates the model for a population of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "population must be positive");
        ChebyshevVariance { n }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PricingError::InvalidParameter`] if `n == 0`.
    pub fn try_new(n: usize) -> Result<Self, PricingError> {
        if n == 0 {
            return Err(PricingError::InvalidParameter {
                name: "population",
                value: 0.0,
            });
        }
        Ok(ChebyshevVariance { n })
    }

    /// The population size `n`.
    pub fn population(&self) -> usize {
        self.n
    }
}

/// Validates `(α, δ) ∈ (0, 1)²`, panicking otherwise.
pub(crate) fn assert_accuracy(alpha: f64, delta: f64) {
    assert!(
        alpha > 0.0 && alpha < 1.0 && alpha.is_finite(),
        "alpha must be in (0, 1), got {alpha}"
    );
    assert!(
        delta > 0.0 && delta < 1.0 && delta.is_finite(),
        "delta must be in (0, 1), got {delta}"
    );
}

impl VarianceModel for ChebyshevVariance {
    fn variance(&self, alpha: f64, delta: f64) -> f64 {
        assert_accuracy(alpha, delta);
        let t = alpha * self.n as f64;
        t * t * (1.0 - delta)
    }

    fn delta_for_variance(&self, alpha: f64, v: f64) -> f64 {
        let t = alpha * self.n as f64;
        1.0 - v / (t * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_and_monotonicity() {
        let m = ChebyshevVariance::new(1_000);
        assert_eq!(m.population(), 1_000);
        // V = (0.1·1000)²·(1−0.5) = 5000.
        assert_eq!(m.variance(0.1, 0.5), 5_000.0);
        // Increasing δ tightens (lowers) the variance.
        assert!(m.variance(0.1, 0.9) < m.variance(0.1, 0.5));
        // Increasing α loosens (raises) it.
        assert!(m.variance(0.2, 0.5) > m.variance(0.1, 0.5));
    }

    #[test]
    fn chebyshev_self_consistency() {
        // A variable with variance V(α, δ) has Chebyshev confidence
        // exactly δ at tolerance αn.
        let m = ChebyshevVariance::new(17_568);
        let (alpha, delta) = (0.05, 0.8);
        let v = m.variance(alpha, delta);
        let t = alpha * 17_568.0;
        assert!(((1.0 - v / (t * t)) - delta).abs() < 1e-12);
    }

    #[test]
    fn delta_for_variance_inverts() {
        let m = ChebyshevVariance::new(500);
        for (a, d) in [(0.05, 0.5), (0.2, 0.9), (0.8, 0.01)] {
            let v = m.variance(a, d);
            assert!((m.delta_for_variance(a, v) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn constructors_validate() {
        assert!(ChebyshevVariance::try_new(0).is_err());
        assert!(ChebyshevVariance::try_new(5).is_ok());
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zero_population_panics() {
        let _ = ChebyshevVariance::new(0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        ChebyshevVariance::new(10).variance(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn bad_delta_panics() {
        ChebyshevVariance::new(10).variance(0.5, 1.0);
    }
}
