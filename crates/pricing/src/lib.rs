//! # prc-pricing — arbitrage-avoiding pricing for traded aggregates
//!
//! Section IV of *"Trading Private Range Counting over Big IoT Data"*
//! (Cai & He, ICDCS 2019): a data broker sells `(α, δ)`-approximate
//! answers, and a malicious consumer may try to **arbitrage** — buy `m`
//! cheap high-variance answers to the same query and average them
//! (Eq. 4), reaching the variance of an expensive answer at a fraction of
//! its price. A pricing function `π(α, δ)` is *arbitrage-avoiding*
//! (Definition 2.3) when no such bundle is ever cheaper.
//!
//! This crate provides:
//!
//! * [`variance`] — the variance model `V(α, δ)` that links accuracy
//!   demands to answer variance (Lemma 4.1 shows an arbitrage-free price
//!   must factor through `V`);
//! * [`functions`] — a family of pricing functions: the canonical
//!   [`functions::InverseVariancePricing`] (`π = c/V`, the unique shape
//!   satisfying Theorem 4.2 as literally stated), the broader
//!   operationally-safe [`functions::SqrtPrecisionPricing`] and
//!   [`functions::LogPrecisionPricing`] families, and the deliberately
//!   broken [`functions::LinearDeltaPricing`] used to validate the attack
//!   machinery;
//! * [`theorem`] — a grid checker for the three properties of
//!   Theorem 4.2;
//! * [`arbitrage`] — an attack simulator implementing Definition 2.3
//!   operationally (uniform and mixed bundles, equal-weight averaging);
//! * [`reuse`] — the posted-curve guard deciding when a cached answer may
//!   be re-served without undercutting the price curve;
//! * [`ledger`] — trade bookkeeping for the broker;
//! * [`engine`] — the [`engine::PricingEngine`] seam the broker's query
//!   pipeline drives the whole transaction through (quote → release →
//!   settle).
//!
//! ## Quick start
//!
//! ```
//! use prc_pricing::functions::{InverseVariancePricing, PricingFunction};
//! use prc_pricing::variance::{ChebyshevVariance, VarianceModel};
//!
//! let model = ChebyshevVariance::new(17_568);
//! let pricing = InverseVariancePricing::new(1e9, model);
//! // Stricter accuracy costs more.
//! assert!(pricing.price(0.01, 0.9) > pricing.price(0.1, 0.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrage;
pub mod engine;
pub mod error;
pub mod functions;
pub mod history;
pub mod ledger;
pub mod market;
pub mod reuse;
pub mod theorem;
pub mod variance;

pub use arbitrage::{find_arbitrage, ArbitrageAttack, AttackConfig};
pub use engine::{PostedPriceEngine, PricingEngine, Quote, Settlement};
pub use error::PricingError;
pub use functions::{
    InverseVariancePricing, LinearDeltaPricing, LogPrecisionPricing, PricingFunction,
    SqrtPrecisionPricing,
};
pub use history::{HistoryAwarePricing, PrecisionPricing};
pub use ledger::TradeLedger;
pub use reuse::{Demand, PostedPriceReuse, ReuseGuard};
pub use variance::{ChebyshevVariance, VarianceModel};
