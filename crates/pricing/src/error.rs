//! Error types for pricing.

use std::fmt;

/// Errors produced while constructing pricing machinery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PricingError {
    /// A coefficient or population parameter was not finite and positive.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An accuracy pair fell outside `(0, 1) × (0, 1)`.
    InvalidAccuracy {
        /// The α parameter as given.
        alpha: f64,
        /// The δ parameter as given.
        delta: f64,
    },
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be finite and positive, got {value}"
                )
            }
            PricingError::InvalidAccuracy { alpha, delta } => write!(
                f,
                "accuracy parameters must lie in (0, 1), got alpha={alpha}, delta={delta}"
            ),
        }
    }
}

impl std::error::Error for PricingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = PricingError::InvalidParameter {
            name: "coefficient",
            value: -3.0,
        };
        assert!(e.to_string().contains("coefficient"));
        assert!(e.to_string().contains("-3"));
        let e = PricingError::InvalidAccuracy {
            alpha: 2.0,
            delta: 0.5,
        };
        assert!(e.to_string().contains("alpha=2"));
    }
}
