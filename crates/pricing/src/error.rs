//! Error types for pricing.

use std::fmt;

/// Errors produced while constructing pricing machinery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PricingError {
    /// A coefficient or population parameter was not finite and positive.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An accuracy pair fell outside `(0, 1) × (0, 1)`.
    InvalidAccuracy {
        /// The α parameter as given.
        alpha: f64,
        /// The δ parameter as given.
        delta: f64,
    },
    /// The attack simulator found an averaging bundle that undercuts the
    /// posted price of the quoted demand; the engine refuses to sell at
    /// an exploitable point (Definition 2.3).
    ArbitrageDetected {
        /// The α parameter of the refused demand.
        alpha: f64,
        /// The δ parameter of the refused demand.
        delta: f64,
        /// Posted price of the refused demand.
        target_price: f64,
        /// Cost of the cheapest undercut bundle the simulator found.
        bundle_cost: f64,
    },
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be finite and positive, got {value}"
                )
            }
            PricingError::InvalidAccuracy { alpha, delta } => write!(
                f,
                "accuracy parameters must lie in (0, 1), got alpha={alpha}, delta={delta}"
            ),
            PricingError::ArbitrageDetected {
                alpha,
                delta,
                target_price,
                bundle_cost,
            } => write!(
                f,
                "demand (alpha={alpha}, delta={delta}) is arbitrageable: posted price \
                 {target_price} undercut by a bundle costing {bundle_cost}"
            ),
        }
    }
}

impl std::error::Error for PricingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = PricingError::InvalidParameter {
            name: "coefficient",
            value: -3.0,
        };
        assert!(e.to_string().contains("coefficient"));
        assert!(e.to_string().contains("-3"));
        let e = PricingError::InvalidAccuracy {
            alpha: 2.0,
            delta: 0.5,
        };
        assert!(e.to_string().contains("alpha=2"));
    }
}
