//! The arbitrage attack simulator (Definition 2.3, Example 4.1).
//!
//! An adversary who wants a `Λ(α, δ)` answer may instead buy a *bundle*
//! `{Λ(α₁, δ₁), …, Λ(α_m, δ_m)}` of strictly cheaper (higher-variance)
//! answers to the same range and average them with equal weights
//! (Eq. 4); the averaged result has variance `(1/m²)·Σ V(αᵢ, δᵢ)`. The
//! bundle is an **arbitrage** when it reaches the target's variance at a
//! strictly lower total price.
//!
//! [`find_arbitrage`] searches both *uniform* bundles (m identical
//! purchases — the classic attack of Example 4.1) and random
//! *mixed-variance* bundles, and reports every winning attack it finds.
//! An empty result certifies the pricing function against this attack
//! class on the probed targets.

// prc-lint: allow(B003, reason = "seeded attack-simulator randomness; not privacy noise")
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::functions::PricingFunction;
use crate::variance::VarianceModel;

/// One successful arbitrage found by the simulator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArbitrageAttack {
    /// The accuracy the adversary actually wanted.
    pub target: (f64, f64),
    /// Posted price of the target answer.
    pub target_price: f64,
    /// Variance of the target answer.
    pub target_variance: f64,
    /// The accuracies bought instead.
    pub bundle: Vec<(f64, f64)>,
    /// Total price of the bundle.
    pub bundle_cost: f64,
    /// Variance of the equal-weight average of the bundle.
    pub bundle_variance: f64,
}

impl ArbitrageAttack {
    /// The adversary's saving, `target_price − bundle_cost`.
    pub fn saving(&self) -> f64 {
        self.target_price - self.bundle_cost
    }
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttackConfig {
    /// Largest bundle size `m` tried.
    pub max_bundle_size: usize,
    /// Number of candidate accuracies probed per axis for uniform bundles.
    pub candidate_grid: usize,
    /// Number of random mixed bundles tried per (target, m) pair.
    pub mixed_trials: usize,
    /// RNG seed for the mixed-bundle search.
    pub seed: u64,
    /// Required relative saving before a bundle counts as arbitrage
    /// (guards against floating-point ties).
    pub min_relative_saving: f64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            max_bundle_size: 12,
            candidate_grid: 24,
            mixed_trials: 64,
            seed: 0x5eed,
            min_relative_saving: 1e-9,
        }
    }
}

/// Searches for arbitrage against `pricing` on each target accuracy.
///
/// Candidate purchases are drawn from the economically sensible region
/// `αᵢ ≥ α, δᵢ ≤ δ` (strictly cheaper single answers, per
/// Definition 2.3) and a bundle qualifies only if its averaged variance
/// is at most the target's.
///
/// # Examples
///
/// ```
/// use prc_pricing::arbitrage::{find_arbitrage, AttackConfig};
/// use prc_pricing::functions::{InverseVariancePricing, LinearDeltaPricing};
/// use prc_pricing::variance::ChebyshevVariance;
///
/// let model = ChebyshevVariance::new(10_000);
/// let targets = [(0.05, 0.8)];
/// // The canonical price resists the attack…
/// let safe = InverseVariancePricing::new(1e6, model);
/// assert!(find_arbitrage(&safe, &model, &targets, &AttackConfig::default()).is_empty());
/// // …while a price that ignores the variance is exploited.
/// let broken = LinearDeltaPricing::new(10.0);
/// assert!(!find_arbitrage(&broken, &model, &targets, &AttackConfig::default()).is_empty());
/// ```
pub fn find_arbitrage<F, M>(
    pricing: &F,
    model: &M,
    targets: &[(f64, f64)],
    config: &AttackConfig,
) -> Vec<ArbitrageAttack>
where
    F: PricingFunction,
    M: VarianceModel,
{
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut attacks = Vec::new();

    for &(alpha, delta) in targets {
        let target_price = pricing.price(alpha, delta);
        let target_variance = model.variance(alpha, delta);

        // Candidate cheaper accuracies: α′ ∈ [α, α_max], δ′ ∈ (0, δ].
        let candidates = candidate_accuracies(alpha, delta, config.candidate_grid);

        // Uniform bundles: buy the same candidate m times; the average
        // has variance V(candidate)/m.
        for &(ca, cd) in &candidates {
            let cv = model.variance(ca, cd);
            let cp = pricing.price(ca, cd);
            for m in 2..=config.max_bundle_size {
                let combined_variance = cv / m as f64;
                if combined_variance > target_variance {
                    continue;
                }
                let bundle_cost = cp * m as f64;
                if bundle_cost < target_price * (1.0 - config.min_relative_saving) {
                    attacks.push(ArbitrageAttack {
                        target: (alpha, delta),
                        target_price,
                        target_variance,
                        bundle: vec![(ca, cd); m],
                        bundle_cost,
                        bundle_variance: combined_variance,
                    });
                }
            }
        }

        // Mixed bundles: random multisets of candidates.
        if !candidates.is_empty() {
            for m in 2..=config.max_bundle_size {
                for _ in 0..config.mixed_trials {
                    let bundle: Vec<(f64, f64)> = (0..m)
                        .map(|_| candidates[rng.random_range(0..candidates.len())])
                        .collect();
                    let total_variance: f64 =
                        bundle.iter().map(|&(a, d)| model.variance(a, d)).sum();
                    let combined_variance = total_variance / (m * m) as f64;
                    if combined_variance > target_variance {
                        continue;
                    }
                    let bundle_cost: f64 = bundle.iter().map(|&(a, d)| pricing.price(a, d)).sum();
                    if bundle_cost < target_price * (1.0 - config.min_relative_saving) {
                        attacks.push(ArbitrageAttack {
                            target: (alpha, delta),
                            target_price,
                            target_variance,
                            bundle,
                            bundle_cost,
                            bundle_variance: combined_variance,
                        });
                    }
                }
            }
        }
    }

    attacks
}

/// Certifies a pricing function against the simulator's attack class.
///
/// # Errors
///
/// Returns the attacks found, if any.
pub fn certify<F, M>(
    pricing: &F,
    model: &M,
    targets: &[(f64, f64)],
    config: &AttackConfig,
) -> Result<(), Vec<ArbitrageAttack>>
where
    F: PricingFunction,
    M: VarianceModel,
{
    let attacks = find_arbitrage(pricing, model, targets, config);
    if attacks.is_empty() {
        Ok(())
    } else {
        Err(attacks)
    }
}

/// Grid of strictly-cheaper accuracies `(α′ ≥ α, δ′ ≤ δ)` excluding the
/// target itself.
fn candidate_accuracies(alpha: f64, delta: f64, grid: usize) -> Vec<(f64, f64)> {
    let alpha_hi = 0.95_f64.max(alpha + 1e-6).min(0.99);
    let delta_lo = 0.01_f64.min(delta / 2.0).max(1e-4);
    let mut out = Vec::new();
    for i in 0..grid {
        let a = alpha + (alpha_hi - alpha) * i as f64 / grid.max(1) as f64;
        for j in 0..grid {
            let d = delta_lo + (delta - delta_lo) * j as f64 / grid.max(1) as f64;
            if a >= alpha && d <= delta && (a, d) != (alpha, delta) && a < 1.0 && d > 0.0 {
                out.push((a, d));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{
        InverseVariancePricing, LinearDeltaPricing, LogPrecisionPricing, SqrtPrecisionPricing,
    };
    use crate::variance::ChebyshevVariance;

    fn model() -> ChebyshevVariance {
        ChebyshevVariance::new(17_568)
    }

    fn targets() -> Vec<(f64, f64)> {
        vec![(0.02, 0.9), (0.05, 0.8), (0.1, 0.5), (0.3, 0.6)]
    }

    #[test]
    fn inverse_variance_is_attack_free() {
        let pricing = InverseVariancePricing::new(1e9, model());
        assert!(certify(&pricing, &model(), &targets(), &AttackConfig::default()).is_ok());
    }

    #[test]
    fn sqrt_precision_is_attack_free_operationally() {
        // c/√V fails the literal Theorem 4.2 checker but no equal-weight
        // averaging bundle beats it — the operational guarantee holds.
        let pricing = SqrtPrecisionPricing::new(1e5, model());
        assert!(certify(&pricing, &model(), &targets(), &AttackConfig::default()).is_ok());
    }

    #[test]
    fn log_precision_is_attack_free_operationally() {
        let pricing = LogPrecisionPricing::new(100.0, model());
        assert!(certify(&pricing, &model(), &targets(), &AttackConfig::default()).is_ok());
    }

    #[test]
    fn broken_pricing_is_attacked() {
        let pricing = LinearDeltaPricing::new(10.0);
        let attacks = find_arbitrage(&pricing, &model(), &targets(), &AttackConfig::default());
        assert!(
            !attacks.is_empty(),
            "the broken function must be exploitable"
        );
        for attack in &attacks {
            // Every reported attack must really be one.
            assert!(attack.bundle_variance <= attack.target_variance + 1e-9);
            assert!(attack.bundle_cost < attack.target_price);
            assert!(attack.saving() > 0.0);
            assert!(attack.bundle.len() >= 2);
            // All purchases are individually cheaper accuracies.
            for &(a, d) in &attack.bundle {
                assert!(a >= attack.target.0);
                assert!(d <= attack.target.1);
            }
        }
    }

    #[test]
    fn reported_attacks_replay_correctly() {
        // Recompute each attack's numbers from scratch.
        let pricing = LinearDeltaPricing::new(3.0);
        let m = model();
        let attacks = find_arbitrage(&pricing, &m, &[(0.05, 0.9)], &AttackConfig::default());
        assert!(!attacks.is_empty());
        for attack in attacks.iter().take(20) {
            let cost: f64 = attack
                .bundle
                .iter()
                .map(|&(a, d)| pricing.price(a, d))
                .sum();
            assert!((cost - attack.bundle_cost).abs() < 1e-9);
            let var: f64 = attack
                .bundle
                .iter()
                .map(|&(a, d)| m.variance(a, d))
                .sum::<f64>()
                / (attack.bundle.len() * attack.bundle.len()) as f64;
            assert!((var - attack.bundle_variance).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let pricing = LinearDeltaPricing::new(10.0);
        let a = find_arbitrage(&pricing, &model(), &targets(), &AttackConfig::default());
        let b = find_arbitrage(&pricing, &model(), &targets(), &AttackConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn candidates_are_strictly_cheaper_region() {
        let c = candidate_accuracies(0.1, 0.6, 8);
        assert!(!c.is_empty());
        for (a, d) in c {
            assert!((0.1..1.0).contains(&a));
            assert!(d <= 0.6 && d > 0.0);
        }
    }
}
