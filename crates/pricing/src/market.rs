//! Market simulation: demand, revenue, and coefficient tuning.
//!
//! The paper fixes the *shape* of an arbitrage-avoiding pricing function
//! but not its level — a "benefit-concerned data broker" still has to
//! pick the coefficient `c`. This module provides a simple demand model
//! (consumer segments with accuracy demands and willingness to pay) and
//! the revenue machinery to tune `c` without leaving the
//! arbitrage-avoiding family: scaling `ψ(V)` by a positive constant
//! preserves every property of Theorem 4.2.

use crate::functions::PricingFunction;

/// A group of identical consumers.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConsumerSegment {
    /// Number of consumers in the segment.
    pub count: u64,
    /// Error bound they need.
    pub alpha: f64,
    /// Confidence they need.
    pub delta: f64,
    /// The most each will pay for one answer.
    pub willingness_to_pay: f64,
}

impl ConsumerSegment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics unless `α, δ ∈ (0, 1)` and the willingness to pay is finite
    /// and non-negative.
    pub fn new(count: u64, alpha: f64, delta: f64, willingness_to_pay: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        assert!(
            willingness_to_pay.is_finite() && willingness_to_pay >= 0.0,
            "willingness to pay must be finite and non-negative"
        );
        ConsumerSegment {
            count,
            alpha,
            delta,
            willingness_to_pay,
        }
    }
}

/// Outcome of offering one pricing function to a market.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MarketOutcome {
    /// Answers sold.
    pub sales: u64,
    /// Revenue collected.
    pub revenue: f64,
    /// Aggregate consumer surplus (Σ willingness − price over buyers).
    pub consumer_surplus: f64,
    /// Consumers priced out.
    pub priced_out: u64,
}

/// Simulates one market round: every consumer buys exactly one answer at
/// their own `(α, δ)` iff the posted price does not exceed their
/// willingness to pay.
///
/// # Examples
///
/// ```
/// use prc_pricing::functions::InverseVariancePricing;
/// use prc_pricing::market::{simulate_market, ConsumerSegment};
/// use prc_pricing::variance::ChebyshevVariance;
///
/// let pricing = InverseVariancePricing::new(1e6, ChebyshevVariance::new(17_568));
/// let segments = [ConsumerSegment::new(10, 0.1, 0.5, 1.0)];
/// let outcome = simulate_market(&pricing, &segments);
/// assert_eq!(outcome.sales + outcome.priced_out, 10);
/// ```
pub fn simulate_market<F: PricingFunction>(
    pricing: &F,
    segments: &[ConsumerSegment],
) -> MarketOutcome {
    let mut outcome = MarketOutcome {
        sales: 0,
        revenue: 0.0,
        consumer_surplus: 0.0,
        priced_out: 0,
    };
    for segment in segments {
        let price = pricing.price(segment.alpha, segment.delta);
        if price <= segment.willingness_to_pay {
            outcome.sales += segment.count;
            outcome.revenue += price * segment.count as f64;
            outcome.consumer_surplus += (segment.willingness_to_pay - price) * segment.count as f64;
        } else {
            outcome.priced_out += segment.count;
        }
    }
    outcome
}

/// Grid-searches the revenue-maximizing scale factor for a pricing
/// function: evaluates `scale · π(·)` for every candidate and returns
/// `(best_scale, best_outcome)`.
///
/// # Panics
///
/// Panics if `candidates` is empty or contains a non-positive scale.
pub fn tune_scale<F: PricingFunction>(
    pricing: &F,
    segments: &[ConsumerSegment],
    candidates: &[f64],
) -> (f64, MarketOutcome) {
    assert!(!candidates.is_empty(), "need at least one candidate scale");
    assert!(
        candidates.iter().all(|&c| c > 0.0 && c.is_finite()),
        "scales must be positive and finite"
    );
    struct Scaled<'a, F> {
        inner: &'a F,
        scale: f64,
    }
    impl<F: PricingFunction> PricingFunction for Scaled<'_, F> {
        fn name(&self) -> &'static str {
            "scaled"
        }
        fn price(&self, alpha: f64, delta: f64) -> f64 {
            self.scale * self.inner.price(alpha, delta)
        }
    }

    let mut best: Option<(f64, MarketOutcome)> = None;
    for &scale in candidates {
        let outcome = simulate_market(
            &Scaled {
                inner: pricing,
                scale,
            },
            segments,
        );
        let better = match &best {
            Some((_, b)) => outcome.revenue > b.revenue,
            None => true,
        };
        if better {
            best = Some((scale, outcome));
        }
    }
    // prc-lint: allow(P002, reason = "unreachable: the assert above guarantees at least one candidate, so the loop always sets best")
    best.expect("candidates is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::InverseVariancePricing;
    use crate::variance::ChebyshevVariance;

    fn pricing(c: f64) -> InverseVariancePricing<ChebyshevVariance> {
        InverseVariancePricing::new(c, ChebyshevVariance::new(17_568))
    }

    fn market() -> Vec<ConsumerSegment> {
        vec![
            // Hobbyists: loose accuracy, shallow pockets.
            ConsumerSegment::new(100, 0.2, 0.5, 5.0),
            // Analysts: medium demands.
            ConsumerSegment::new(30, 0.08, 0.7, 120.0),
            // An agency: strict demands, deep pockets.
            ConsumerSegment::new(3, 0.02, 0.9, 30_000.0),
        ]
    }

    #[test]
    fn everyone_buys_when_prices_are_tiny() {
        let outcome = simulate_market(&pricing(1.0), &market());
        assert_eq!(outcome.sales, 133);
        assert_eq!(outcome.priced_out, 0);
        assert!(outcome.revenue > 0.0);
        assert!(outcome.consumer_surplus > 0.0);
    }

    #[test]
    fn nobody_buys_when_prices_are_huge() {
        let outcome = simulate_market(&pricing(1e18), &market());
        assert_eq!(outcome.sales, 0);
        assert_eq!(outcome.revenue, 0.0);
        assert_eq!(outcome.priced_out, 133);
    }

    #[test]
    fn sales_are_monotone_in_the_coefficient() {
        let mut prev_sales = u64::MAX;
        for c in [1.0, 1e4, 1e7, 1e9, 1e12] {
            let outcome = simulate_market(&pricing(c), &market());
            assert!(
                outcome.sales <= prev_sales,
                "sales rose with price at c={c}"
            );
            prev_sales = outcome.sales;
        }
    }

    #[test]
    fn tuning_finds_an_interior_optimum() {
        // Revenue at tiny scale ≈ 0 (prices ~0), at huge scale = 0
        // (nobody buys); the optimum is interior.
        let base = pricing(1.0);
        let candidates: Vec<f64> = (0..24).map(|i| 10f64.powi(i - 3)).collect();
        let (best_scale, best) = tune_scale(&base, &market(), &candidates);
        assert!(best.revenue > 0.0);
        // The optimum beats both extremes decisively.
        let low = simulate_market(&pricing(candidates[0]), &market());
        let high = simulate_market(&pricing(*candidates.last().unwrap()), &market());
        assert!(best.revenue > low.revenue * 10.0);
        assert!(best.revenue > high.revenue);
        assert!(best_scale > candidates[0]);
    }

    #[test]
    fn surplus_plus_revenue_equals_willingness_of_buyers() {
        let outcome = simulate_market(&pricing(1e6), &market());
        let buyers_willingness: f64 = market()
            .iter()
            .filter(|s| pricing(1e6).price(s.alpha, s.delta) <= s.willingness_to_pay)
            .map(|s| s.willingness_to_pay * s.count as f64)
            .sum();
        assert!((outcome.revenue + outcome.consumer_surplus - buyers_willingness).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_segment_panics() {
        let _ = ConsumerSegment::new(1, 0.0, 0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        let _ = tune_scale(&pricing(1.0), &market(), &[]);
    }
}
