//! The broker-facing pricing engine: quote → release → settle.
//!
//! The paper's marketplace is one transaction: a consumer's `(α, δ)`
//! demand is priced by the arbitrage-avoiding curve `π = ψ(V)`
//! (Theorem 4.1), the private answer is produced, and the sale is
//! settled in the ledger. [`PricingEngine`] is the seam the broker's
//! query pipeline drives that transaction through:
//!
//! 1. **Admit** calls [`PricingEngine::quote`] — the demand is validated,
//!    certified free of averaging arbitrage (Definition 2.3, via the
//!    [`crate::arbitrage`] simulator), and priced;
//! 2. the broker runs its private pipeline (reserve → collect →
//!    estimate → perturb);
//! 3. **Settle** calls [`PricingEngine::settle`] with the released
//!    answer's noise variance and plan summary, which the ledger records
//!    alongside the sale.
//!
//! [`PostedPriceEngine`] is the canonical implementation: a posted price
//! curve over a variance model, with per-demand arbitrage certification
//! memoized so each distinct demand pays the (deterministic, seeded)
//! simulator cost once.

use std::collections::BTreeSet;
use std::fmt::Debug;

use crate::arbitrage::{find_arbitrage, AttackConfig};
use crate::error::PricingError;
use crate::functions::PricingFunction;
use crate::ledger::TradeLedger;
use crate::reuse::Demand;
use crate::variance::VarianceModel;

/// A priced offer for one demand, returned by [`PricingEngine::quote`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Quote {
    /// The demand quoted.
    pub demand: Demand,
    /// The posted price of the demand.
    pub price: f64,
    /// The variance the model promises an answer at this demand.
    pub variance: f64,
}

/// The broker's report of one released answer, consumed by
/// [`PricingEngine::settle`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Settlement {
    /// The purchasing consumer.
    pub buyer: String,
    /// The demand that was quoted and answered.
    pub demand: Demand,
    /// The price quoted at admission (what the buyer pays).
    pub price: f64,
    /// Laplace noise variance of the released answer.
    pub noise_variance: f64,
    /// Rendered perturbation-plan summary of the released answer.
    pub plan: String,
}

/// A pricing authority the broker's query pipeline can transact with.
///
/// `quote` runs at the pipeline's Admit stage, before any budget is
/// reserved or sample collected; `settle` runs at the Settle stage,
/// after the noisy answer is released. Implementations must be
/// deterministic for a given construction (no wall-clock, no unseeded
/// randomness) so priced answer streams stay reproducible.
pub trait PricingEngine: Debug + Send + Sync {
    /// Validates, certifies, and prices a demand.
    ///
    /// # Errors
    ///
    /// * [`PricingError::InvalidAccuracy`] — the demand is outside
    ///   `(0, 1) × (0, 1)`;
    /// * [`PricingError::ArbitrageDetected`] — the posted curve is
    ///   exploitable at this demand, so the engine refuses to sell.
    fn quote(&mut self, demand: Demand) -> Result<Quote, PricingError>;

    /// Records a completed sale in the ledger and returns its sequence
    /// number.
    fn settle(&mut self, settlement: Settlement) -> u64;

    /// The ledger of settled sales.
    fn ledger(&self) -> &TradeLedger;
}

/// Posted-price engine over a pricing function and its variance model.
///
/// Every distinct demand is certified against the averaging-arbitrage
/// simulator on first quote; the certification (keyed by the exact bit
/// patterns of `(α, δ)`) is memoized, so a workload that re-quotes the
/// same demand pays the simulator once. The simulator is seeded through
/// [`AttackConfig`], keeping quotes deterministic.
///
/// # Examples
///
/// ```
/// use prc_pricing::engine::{PostedPriceEngine, PricingEngine, Settlement};
/// use prc_pricing::functions::InverseVariancePricing;
/// use prc_pricing::reuse::Demand;
/// use prc_pricing::variance::ChebyshevVariance;
///
/// let model = ChebyshevVariance::new(10_000);
/// let mut engine = PostedPriceEngine::new(InverseVariancePricing::new(1e6, model), model);
/// let quote = engine.quote(Demand::new(0.05, 0.8)).unwrap();
/// assert!(quote.price > 0.0);
/// let seq = engine.settle(Settlement {
///     buyer: "alice".into(),
///     demand: quote.demand,
///     price: quote.price,
///     noise_variance: 3.2,
///     plan: "ε=0.9".into(),
/// });
/// assert_eq!(seq, 0);
/// assert_eq!(engine.ledger().len(), 1);
/// ```
#[derive(Debug)]
pub struct PostedPriceEngine<F, M> {
    pricing: F,
    model: M,
    attack_config: AttackConfig,
    certified: BTreeSet<(u64, u64)>,
    ledger: TradeLedger,
}

impl<F, M> PostedPriceEngine<F, M>
where
    F: PricingFunction,
    M: VarianceModel,
{
    /// Wraps a posted pricing function and its variance model, with the
    /// default arbitrage-search configuration.
    pub fn new(pricing: F, model: M) -> Self {
        PostedPriceEngine::with_attack_config(pricing, model, AttackConfig::default())
    }

    /// Same, with an explicit arbitrage-search configuration.
    pub fn with_attack_config(pricing: F, model: M, attack_config: AttackConfig) -> Self {
        PostedPriceEngine {
            pricing,
            model,
            attack_config,
            certified: BTreeSet::new(),
            ledger: TradeLedger::new(),
        }
    }

    /// The underlying pricing function.
    pub fn pricing(&self) -> &F {
        &self.pricing
    }

    /// Number of distinct demands certified arbitrage-free so far.
    pub fn certified_demands(&self) -> usize {
        self.certified.len()
    }
}

impl<F, M> PricingEngine for PostedPriceEngine<F, M>
where
    F: PricingFunction + Debug + Send + Sync,
    M: VarianceModel + Debug + Send + Sync,
{
    fn quote(&mut self, demand: Demand) -> Result<Quote, PricingError> {
        let (alpha, delta) = (demand.alpha, demand.delta);
        if !(alpha > 0.0 && alpha < 1.0 && delta > 0.0 && delta < 1.0) {
            return Err(PricingError::InvalidAccuracy { alpha, delta });
        }
        let key = (alpha.to_bits(), delta.to_bits());
        if !self.certified.contains(&key) {
            let attacks = find_arbitrage(
                &self.pricing,
                &self.model,
                &[(alpha, delta)],
                &self.attack_config,
            );
            if let Some(attack) = attacks.first() {
                return Err(PricingError::ArbitrageDetected {
                    alpha,
                    delta,
                    target_price: attack.target_price,
                    bundle_cost: attack.bundle_cost,
                });
            }
            self.certified.insert(key);
        }
        Ok(Quote {
            demand,
            price: self.pricing.price(alpha, delta),
            variance: self.model.variance(alpha, delta),
        })
    }

    fn settle(&mut self, settlement: Settlement) -> u64 {
        self.ledger.record_settlement(
            &settlement.buyer,
            settlement.demand.alpha,
            settlement.demand.delta,
            settlement.price,
            settlement.noise_variance,
            &settlement.plan,
        )
    }

    fn ledger(&self) -> &TradeLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{InverseVariancePricing, LinearDeltaPricing};
    use crate::variance::ChebyshevVariance;

    fn engine() -> PostedPriceEngine<InverseVariancePricing<ChebyshevVariance>, ChebyshevVariance> {
        let model = ChebyshevVariance::new(10_000);
        PostedPriceEngine::new(InverseVariancePricing::new(1e6, model), model)
    }

    #[test]
    fn quotes_match_the_posted_curve() {
        let mut e = engine();
        let demand = Demand::new(0.05, 0.8);
        let quote = e.quote(demand).unwrap();
        assert_eq!(quote.price, e.pricing().price(0.05, 0.8));
        assert_eq!(
            quote.variance,
            ChebyshevVariance::new(10_000).variance(0.05, 0.8)
        );
        assert_eq!(quote.demand, demand);
    }

    #[test]
    fn certification_is_memoized_per_demand() {
        let mut e = engine();
        assert_eq!(e.certified_demands(), 0);
        e.quote(Demand::new(0.05, 0.8)).unwrap();
        assert_eq!(e.certified_demands(), 1);
        // Re-quoting the same demand does not grow the certified set.
        e.quote(Demand::new(0.05, 0.8)).unwrap();
        assert_eq!(e.certified_demands(), 1);
        e.quote(Demand::new(0.1, 0.5)).unwrap();
        assert_eq!(e.certified_demands(), 2);
    }

    #[test]
    fn invalid_demands_are_rejected() {
        let mut e = engine();
        assert!(matches!(
            e.quote(Demand::new(0.0, 0.8)),
            Err(PricingError::InvalidAccuracy { .. })
        ));
        assert!(matches!(
            e.quote(Demand::new(0.1, 1.0)),
            Err(PricingError::InvalidAccuracy { .. })
        ));
        assert_eq!(e.certified_demands(), 0);
    }

    #[test]
    fn exploitable_curves_are_refused_at_quote_time() {
        let model = ChebyshevVariance::new(10_000);
        let mut e = PostedPriceEngine::new(LinearDeltaPricing::new(10.0), model);
        let err = e.quote(Demand::new(0.05, 0.8)).unwrap_err();
        match err {
            PricingError::ArbitrageDetected {
                target_price,
                bundle_cost,
                ..
            } => assert!(bundle_cost < target_price),
            other => panic!("expected ArbitrageDetected, got {other:?}"),
        }
        assert_eq!(e.certified_demands(), 0);
    }

    #[test]
    fn settlements_land_in_the_ledger() {
        let mut e = engine();
        let quote = e.quote(Demand::new(0.05, 0.8)).unwrap();
        let seq = e.settle(Settlement {
            buyer: "alice".into(),
            demand: quote.demand,
            price: quote.price,
            noise_variance: 2.5,
            plan: "ε=1.0 b=1.1".into(),
        });
        assert_eq!(seq, 0);
        let record = &e.ledger().records()[0];
        assert_eq!(record.buyer, "alice");
        assert_eq!(record.noise_variance, Some(2.5));
        assert!((record.price - quote.price).abs() < 1e-12);
    }

    #[test]
    fn quotes_are_deterministic() {
        let run = || {
            let mut e = engine();
            let q = e.quote(Demand::new(0.07, 0.75)).unwrap();
            q.price.to_bits()
        };
        assert_eq!(run(), run());
    }
}
