//! Property-based tests for the differential-privacy substrate.

use proptest::prelude::*;

use prc_dp::amplification::{amplify, required_base_epsilon};
use prc_dp::budget::{BudgetAccountant, Epsilon};
use prc_dp::composition::{advanced_composition, basic_composition};
use prc_dp::gaussian::ApproxDp;
use prc_dp::laplace::{required_epsilon, Laplace};
use prc_dp::mechanism::{GeometricMechanism, LaplaceMechanism, Mechanism, Sensitivity};
use prc_dp::renyi::laplace_rdp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CDF is monotone and quantile inverts it for arbitrary parameters.
    #[test]
    fn laplace_cdf_quantile_consistency(
        loc in -1e4f64..1e4,
        scale in 1e-3f64..1e3,
        q in 0.001f64..0.999,
        x in -1e5f64..1e5,
        y in -1e5f64..1e5,
    ) {
        let d = Laplace::new(loc, scale).unwrap();
        let (small, large) = (x.min(y), x.max(y));
        prop_assert!(d.cdf(small) <= d.cdf(large) + 1e-15);
        prop_assert!((d.cdf(d.quantile(q)) - q).abs() < 1e-9);
        prop_assert!(d.pdf(x) >= 0.0);
    }

    /// The central probability equals the CDF difference everywhere.
    #[test]
    fn laplace_central_probability_identity(
        scale in 1e-3f64..1e3,
        t in 0.0f64..1e4,
    ) {
        let d = Laplace::centered(scale).unwrap();
        let direct = d.central_probability(t);
        let via_cdf = d.cdf(t) - d.cdf(-t);
        prop_assert!((direct - via_cdf).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&direct));
    }

    /// required_epsilon is the exact inverse of the tail bound.
    #[test]
    fn required_epsilon_is_tight(
        sensitivity in 1e-3f64..1e3,
        t in 1e-3f64..1e4,
        prob in 0.01f64..0.99,
    ) {
        let eps = required_epsilon(sensitivity, t, prob).unwrap();
        let d = Laplace::centered(sensitivity / eps).unwrap();
        prop_assert!((d.central_probability(t) - prob).abs() < 1e-9);
    }

    /// Amplification: identity at p=1, strict tightening below, correct
    /// inverse.
    #[test]
    fn amplification_properties(e in 1e-4f64..10.0, p in 0.001f64..1.0) {
        let eps = Epsilon::new(e).unwrap();
        let amplified = amplify(eps, p).unwrap();
        prop_assert!(amplified.value() <= e + 1e-12);
        let back = amplify(required_base_epsilon(eps, p).unwrap(), p).unwrap();
        prop_assert!((back.value() - e).abs() < 1e-9 * e.max(1.0));
    }

    /// Both mechanisms keep their configured epsilon and positive variance.
    #[test]
    fn mechanisms_report_consistent_metadata(
        e in 0.01f64..5.0,
        s in 0.1f64..10.0,
    ) {
        let eps = Epsilon::new(e).unwrap();
        let sens = Sensitivity::new(s).unwrap();
        let lap = LaplaceMechanism::new(eps, sens).unwrap();
        prop_assert_eq!(lap.epsilon(), eps);
        prop_assert!((lap.noise_variance() - 2.0 * (s / e).powi(2)).abs() < 1e-9);
        let geo = GeometricMechanism::new(eps, sens).unwrap();
        prop_assert_eq!(geo.epsilon(), eps);
        prop_assert!(geo.noise_variance() > 0.0);
        // More budget, less noise — for both.
        let eps2 = Epsilon::new(e * 2.0).unwrap();
        prop_assert!(LaplaceMechanism::new(eps2, sens).unwrap().noise_variance()
            < lap.noise_variance());
        prop_assert!(GeometricMechanism::new(eps2, sens).unwrap().noise_variance()
            < geo.noise_variance());
    }

    /// The budget accountant never over- or under-spends.
    #[test]
    fn accountant_conservation(
        total in 0.1f64..100.0,
        spends in proptest::collection::vec(0.001f64..5.0, 1..40),
    ) {
        let mut acc = BudgetAccountant::new(Epsilon::new(total).unwrap());
        let mut accepted = 0.0;
        for &s in &spends {
            if acc.spend(Epsilon::new(s).unwrap()).is_ok() {
                accepted += s;
            }
        }
        prop_assert!((acc.spent().value() - accepted).abs() < 1e-9);
        prop_assert!(acc.spent().value() <= total + 1e-6);
        prop_assert!((acc.remaining().value() - (total - accepted).max(0.0)).abs() < 1e-6);
    }

    /// Advanced composition always returns a valid guarantee and is
    /// invariant to how the δ budget splits.
    #[test]
    fn advanced_composition_is_well_formed(
        e in 0.0005f64..0.5,
        k in 1u64..5_000,
        slack_exp in 3u32..9,
    ) {
        let slack = 10f64.powi(-(slack_exp as i32));
        let per = ApproxDp::new(e, 0.0).unwrap();
        let advanced = advanced_composition(per, k, slack).unwrap();
        prop_assert!(advanced.epsilon > 0.0);
        prop_assert!((advanced.delta - slack).abs() < 1e-12);
        // Never better than √(2k ln(1/δ))·ε alone (the first term).
        let floor = e * (2.0 * k as f64 * (1.0 / slack).ln()).sqrt();
        prop_assert!(advanced.epsilon >= floor - 1e-9);
        let basic = basic_composition(per, k);
        prop_assert!((basic.epsilon - e * k as f64).abs() < 1e-9);
    }

    /// The Laplace RDP curve is sandwiched between 0 and ε and is
    /// monotone in the order.
    #[test]
    fn rdp_curve_envelope(e in 0.001f64..8.0, a1 in 1.01f64..64.0, a2 in 1.01f64..64.0) {
        let (lo, hi) = (a1.min(a2), a1.max(a2));
        let r_lo = laplace_rdp(e, lo);
        let r_hi = laplace_rdp(e, hi);
        prop_assert!(r_lo >= 0.0 && r_hi <= e + 1e-9);
        prop_assert!(r_lo <= r_hi + 1e-9, "ρ not monotone: {r_lo} > {r_hi}");
    }
}
