//! The Gaussian mechanism and (ε, δ)-differential privacy.
//!
//! An extension beyond the paper's Laplace-only pipeline: the Gaussian
//! mechanism achieves the relaxed *approximate* differential privacy
//! `(ε, δ)`-DP with noise `N(0, σ²)`, `σ = Δ·√(2·ln(1.25/δ))/ε`
//! (Dwork & Roth, *The Algorithmic Foundations of Differential Privacy*,
//! Thm A.1; valid for `ε ∈ (0, 1)`). Its sub-exponential tails make it
//! preferable when many answers are composed, which is exactly the
//! many-queries regime of a data-trading broker.

use rand::{Rng, RngExt};

use crate::budget::Epsilon;
use crate::error::DpError;
use crate::mechanism::Sensitivity;

/// An approximate differential-privacy guarantee `(ε, δ)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ApproxDp {
    /// The multiplicative budget ε.
    pub epsilon: f64,
    /// The additive failure probability δ.
    pub delta: f64,
}

impl ApproxDp {
    /// Creates a guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidEpsilon`] unless `epsilon` is finite and
    /// non-negative, or [`DpError::InvalidProbability`] unless
    /// `delta ∈ [0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, DpError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(DpError::InvalidEpsilon { value: epsilon });
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(DpError::InvalidProbability {
                value: delta,
                expected: "in [0, 1)",
            });
        }
        Ok(ApproxDp { epsilon, delta })
    }

    /// The pure-DP special case `(ε, 0)`.
    pub fn pure(epsilon: Epsilon) -> Self {
        ApproxDp {
            epsilon: epsilon.value(),
            delta: 0.0,
        }
    }

    /// True when `self` is at least as strong as `other` (both parameters
    /// no larger).
    pub fn at_least_as_strong_as(&self, other: &ApproxDp) -> bool {
        self.epsilon <= other.epsilon && self.delta <= other.delta
    }
}

impl std::fmt::Display for ApproxDp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(ε={}, δ={})", self.epsilon, self.delta)
    }
}

/// The Gaussian mechanism: adds `N(0, σ²)` noise with
/// `σ = Δ·√(2·ln(1.25/δ))/ε`.
///
/// # Examples
///
/// ```
/// use prc_dp::gaussian::{ApproxDp, GaussianMechanism};
/// use prc_dp::mechanism::Sensitivity;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), prc_dp::DpError> {
/// let mechanism = GaussianMechanism::new(ApproxDp::new(0.5, 1e-5)?, Sensitivity::new(1.0)?)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let noisy = mechanism.randomize(100.0, &mut rng);
/// assert!((noisy - 100.0).abs() < 10.0 * mechanism.sigma());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaussianMechanism {
    guarantee: ApproxDp,
    sensitivity: Sensitivity,
    sigma: f64,
}

impl GaussianMechanism {
    /// Creates the mechanism for an `(ε, δ)` target with `ε ∈ (0, 1)` and
    /// `δ ∈ (0, 1)` (the classic calibration's validity range).
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidEpsilon`] when `ε ∉ (0, 1)` and
    /// [`DpError::InvalidProbability`] when `δ ∉ (0, 1)`.
    pub fn new(guarantee: ApproxDp, sensitivity: Sensitivity) -> Result<Self, DpError> {
        if !(guarantee.epsilon > 0.0 && guarantee.epsilon < 1.0) {
            return Err(DpError::InvalidEpsilon {
                value: guarantee.epsilon,
            });
        }
        if guarantee.delta <= 0.0 {
            return Err(DpError::InvalidProbability {
                value: guarantee.delta,
                expected: "in (0, 1)",
            });
        }
        let sigma =
            sensitivity.value() * (2.0 * (1.25 / guarantee.delta).ln()).sqrt() / guarantee.epsilon;
        Ok(GaussianMechanism {
            guarantee,
            sensitivity,
            sigma,
        })
    }

    /// The `(ε, δ)` guarantee this mechanism satisfies.
    pub fn guarantee(&self) -> ApproxDp {
        self.guarantee
    }

    /// The configured sensitivity.
    pub fn sensitivity(&self) -> Sensitivity {
        self.sensitivity
    }

    /// The noise standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Variance of the added noise, σ².
    pub fn noise_variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Perturbs `true_value` with Gaussian noise.
    pub fn randomize<R: Rng + ?Sized>(&self, true_value: f64, rng: &mut R) -> f64 {
        true_value + self.sigma * sample_standard_normal(rng)
    }

    /// `Pr[|noise| ≤ t]` under the Gaussian noise distribution.
    pub fn central_probability(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        // erf(t / (σ√2)) via the complementary relation with Φ.
        erf(t / (self.sigma * std::f64::consts::SQRT_2))
    }
}

/// Samples a standard normal deviate (Box–Muller).
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of erf (|error| ≤ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn guarantee(e: f64, d: f64) -> ApproxDp {
        ApproxDp::new(e, d).unwrap()
    }

    fn sens(v: f64) -> Sensitivity {
        Sensitivity::new(v).unwrap()
    }

    #[test]
    fn approx_dp_validation() {
        assert!(ApproxDp::new(0.5, 1e-5).is_ok());
        assert!(ApproxDp::new(-0.1, 1e-5).is_err());
        assert!(ApproxDp::new(0.5, 1.0).is_err());
        assert!(ApproxDp::new(0.5, -0.1).is_err());
        assert!(ApproxDp::new(f64::NAN, 0.1).is_err());
        let p = ApproxDp::pure(Epsilon::new(0.7).unwrap());
        assert_eq!(p.delta, 0.0);
        assert_eq!(p.to_string(), "(ε=0.7, δ=0)");
    }

    #[test]
    fn strength_ordering() {
        let strong = guarantee(0.1, 1e-6);
        let weak = guarantee(0.5, 1e-4);
        assert!(strong.at_least_as_strong_as(&weak));
        assert!(!weak.at_least_as_strong_as(&strong));
        assert!(strong.at_least_as_strong_as(&strong));
    }

    #[test]
    fn sigma_matches_classic_calibration() {
        let m = GaussianMechanism::new(guarantee(0.5, 1e-5), sens(1.0)).unwrap();
        let expected = (2.0 * (1.25f64 / 1e-5).ln()).sqrt() / 0.5;
        assert!((m.sigma() - expected).abs() < 1e-12);
        assert!((m.noise_variance() - expected * expected).abs() < 1e-9);
    }

    #[test]
    fn calibration_rejects_out_of_range_epsilon() {
        assert!(GaussianMechanism::new(guarantee(0.0, 1e-5), sens(1.0)).is_err());
        // ApproxDp::new itself rejects nothing at ε = 1.0 but the
        // mechanism's calibration does.
        assert!(GaussianMechanism::new(guarantee(1.0, 1e-5), sens(1.0)).is_err());
        assert!(
            GaussianMechanism::new(ApproxDp::pure(Epsilon::new(0.5).unwrap()), sens(1.0)).is_err()
        );
    }

    #[test]
    fn noise_moments_match_sigma() {
        let m = GaussianMechanism::new(guarantee(0.3, 1e-4), sens(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let noise: Vec<f64> = (0..n).map(|_| m.randomize(0.0, &mut rng)).collect();
        let mean = noise.iter().sum::<f64>() / n as f64;
        let var = noise.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < m.sigma() * 0.02, "mean {mean}");
        assert!(
            (var - m.noise_variance()).abs() / m.noise_variance() < 0.02,
            "var {var}"
        );
    }

    #[test]
    fn central_probability_matches_empirical() {
        let m = GaussianMechanism::new(guarantee(0.4, 1e-4), sens(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 150_000;
        let noise: Vec<f64> = (0..n).map(|_| m.randomize(0.0, &mut rng)).collect();
        for t_mult in [0.5, 1.0, 2.0] {
            let t = t_mult * m.sigma();
            let empirical = noise.iter().filter(|x| x.abs() <= t).count() as f64 / n as f64;
            let theory = m.central_probability(t);
            assert!(
                (empirical - theory).abs() < 0.006,
                "t={t}: {empirical} vs {theory}"
            );
        }
        assert_eq!(m.central_probability(-1.0), 0.0);
    }

    #[test]
    fn erf_known_values() {
        // erf(1) ≈ 0.8427007929.
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        // The A&S 7.1.26 approximation has |error| ≤ 1.5e-7 everywhere.
        assert!(erf(0.0).abs() < 1.5e-7);
        assert!(erf(5.0) > 0.999_999);
    }

    #[test]
    fn gaussian_beats_laplace_tails_at_matched_variance() {
        // At equal variance, the Gaussian keeps more mass near zero for
        // large deviations — the composition advantage in one number.
        use crate::laplace::Laplace;
        let m = GaussianMechanism::new(guarantee(0.5, 1e-5), sens(1.0)).unwrap();
        let laplace = Laplace::centered((m.noise_variance() / 2.0).sqrt()).unwrap();
        assert!((laplace.variance() - m.noise_variance()).abs() < 1e-9);
        let t = 3.0 * m.sigma();
        assert!(m.central_probability(t) > laplace.central_probability(t));
    }
}
