//! The exponential mechanism (McSherry & Talwar 2007).
//!
//! Selects one candidate from a finite set with probability proportional
//! to `exp(ε·score/(2·Δu))`, where `Δu` is the score function's
//! sensitivity; the selection is `ε`-differentially private. A broker can
//! use it to privately select *which* answer to release — e.g. the most
//! popular queried range, or a private arg-max over histogram buckets
//! (see `prc-core::histogram`).

use rand::{Rng, RngExt};

use crate::budget::Epsilon;
use crate::error::DpError;
use crate::mechanism::Sensitivity;

/// The exponential mechanism over scored candidates.
///
/// # Examples
///
/// ```
/// use prc_dp::budget::Epsilon;
/// use prc_dp::exponential::ExponentialMechanism;
/// use prc_dp::mechanism::Sensitivity;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), prc_dp::DpError> {
/// let mechanism = ExponentialMechanism::new(Epsilon::new(5.0)?, Sensitivity::new(1.0)?)?;
/// let scores = [1.0, 9.0, 2.0];
/// let probabilities = mechanism.probabilities(&scores);
/// // The best-scoring candidate is selected most often.
/// assert!(probabilities[1] > probabilities[0] && probabilities[1] > probabilities[2]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let choice = mechanism.select(&scores, &mut rng);
/// assert!(choice < scores.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExponentialMechanism {
    epsilon: Epsilon,
    score_sensitivity: Sensitivity,
}

impl ExponentialMechanism {
    /// Creates the mechanism with privacy budget `ε` and score
    /// sensitivity `Δu`.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidEpsilon`] when `ε = 0`.
    pub fn new(epsilon: Epsilon, score_sensitivity: Sensitivity) -> Result<Self, DpError> {
        if epsilon.is_zero() {
            return Err(DpError::InvalidEpsilon {
                value: epsilon.value(),
            });
        }
        Ok(ExponentialMechanism {
            epsilon,
            score_sensitivity,
        })
    }

    /// Privacy budget consumed per selection.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The selection probabilities for the given scores (computed with
    /// max-shift for numerical stability).
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty or contains a non-finite score.
    pub fn probabilities(&self, scores: &[f64]) -> Vec<f64> {
        assert!(!scores.is_empty(), "need at least one candidate");
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "scores must be finite"
        );
        let scale = self.epsilon.value() / (2.0 * self.score_sensitivity.value());
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = scores.iter().map(|s| ((s - max) * scale).exp()).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    /// Selects the index of one candidate.
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty or contains a non-finite score.
    pub fn select<R: Rng + ?Sized>(&self, scores: &[f64], rng: &mut R) -> usize {
        let probabilities = self.probabilities(scores);
        let u: f64 = rng.random();
        let mut cumulative = 0.0;
        for (i, p) in probabilities.iter().enumerate() {
            cumulative += p;
            if u < cumulative {
                return i;
            }
        }
        probabilities.len() - 1 // floating-point guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mech(e: f64) -> ExponentialMechanism {
        ExponentialMechanism::new(Epsilon::new(e).unwrap(), Sensitivity::unit()).unwrap()
    }

    #[test]
    fn probabilities_sum_to_one_and_prefer_high_scores() {
        let m = mech(1.0);
        let p = m.probabilities(&[0.0, 1.0, 5.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn probability_ratio_matches_definition() {
        // Pr[a]/Pr[b] = exp(ε(u_a − u_b)/(2Δ)).
        let m = mech(2.0);
        let p = m.probabilities(&[3.0, 1.0]);
        let expected = (2.0f64 * (3.0 - 1.0) / 2.0).exp();
        assert!((p[0] / p[1] - expected).abs() < 1e-9);
    }

    #[test]
    fn large_epsilon_approaches_argmax() {
        let m = mech(200.0);
        let p = m.probabilities(&[0.0, 0.5, 1.0]);
        assert!(p[2] > 0.999);
    }

    #[test]
    fn tiny_epsilon_approaches_uniform() {
        let m = mech(1e-9);
        let p = m.probabilities(&[0.0, 10.0, 20.0]);
        for prob in p {
            assert!((prob - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn selection_frequencies_match_probabilities() {
        let m = mech(1.5);
        let scores = [1.0, 2.0, 4.0, 0.5];
        let probabilities = m.probabilities(&scores);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[m.select(&scores, &mut rng)] += 1;
        }
        for (count, p) in counts.iter().zip(probabilities) {
            let freq = *count as f64 / n as f64;
            assert!((freq - p).abs() < 0.006, "freq {freq} vs p {p}");
        }
    }

    #[test]
    fn numerically_stable_for_huge_scores() {
        let m = mech(1.0);
        let p = m.probabilities(&[1e8, 1e8 + 1.0]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0]);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        mech(1.0).probabilities(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_scores_panic() {
        mech(1.0).probabilities(&[1.0, f64::NAN]);
    }

    #[test]
    fn zero_epsilon_rejected() {
        assert!(
            ExponentialMechanism::new(Epsilon::new(0.0).unwrap(), Sensitivity::unit()).is_err()
        );
    }
}
