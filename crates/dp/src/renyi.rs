//! Rényi differential privacy (RDP) accounting (Mironov, CSF 2017).
//!
//! A mechanism is `(α, ρ)`-RDP when the Rényi divergence of order `α`
//! between its output distributions on neighbouring datasets is at most
//! `ρ`. RDP composes by *addition* at each order, and converts to
//! approximate DP via
//!
//! ```text
//! (ρ(α) + ln(1/δ)/(α − 1),  δ)-DP      for every α > 1,
//! ```
//!
//! so an accountant that tracks a grid of orders and minimizes over it
//! yields much tighter session budgets than basic composition — without
//! the per-query `δ` slack the advanced-composition theorem charges.
//!
//! The Laplace mechanism with scale ratio `t = Δ/b = ε` has the closed
//! form (Mironov, Table II)
//!
//! ```text
//! ρ(α) = (1/(α−1)) · ln[ (α/(2α−1))·e^{t(α−1)} + ((α−1)/(2α−1))·e^{−tα} ]
//! ```
//!
//! with `ρ(1)` (the KL limit) `= t + e^{−t} − 1`.

use crate::budget::Epsilon;
use crate::error::DpError;
use crate::gaussian::ApproxDp;

/// The default grid of Rényi orders tracked by the accountant.
pub const DEFAULT_ORDERS: [f64; 15] = [
    1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
];

/// Rényi divergence of order `alpha` for the Laplace mechanism with
/// privacy parameter `epsilon = Δ/b`.
///
/// # Panics
///
/// Panics unless `alpha > 1` and `epsilon` is finite and non-negative.
pub fn laplace_rdp(epsilon: f64, alpha: f64) -> f64 {
    assert!(alpha > 1.0, "Renyi order must exceed 1, got {alpha}");
    assert!(
        epsilon.is_finite() && epsilon >= 0.0,
        "epsilon must be finite and non-negative"
    );
    if epsilon == 0.0 {
        return 0.0;
    }
    let t = epsilon;
    let a = alpha;
    // ln[(a/(2a−1))·e^{t(a−1)} + ((a−1)/(2a−1))·e^{−ta}] / (a−1), computed
    // in log space to stay stable for large t(a−1).
    let log_term1 = (a / (2.0 * a - 1.0)).ln() + t * (a - 1.0);
    let log_term2 = ((a - 1.0) / (2.0 * a - 1.0)).ln() - t * a;
    let log_sum = log_add_exp(log_term1, log_term2);
    log_sum / (a - 1.0)
}

/// `ln(e^a + e^b)` computed stably.
fn log_add_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// An RDP accountant over a fixed grid of orders.
///
/// Record each Laplace spend with [`RdpAccountant::record_laplace`]; the
/// session's `(ε, δ)` guarantee at any moment is
/// [`RdpAccountant::to_approx_dp`].
///
/// # Examples
///
/// ```
/// use prc_dp::budget::Epsilon;
/// use prc_dp::renyi::RdpAccountant;
///
/// # fn main() -> Result<(), prc_dp::DpError> {
/// let mut accountant = RdpAccountant::default();
/// for _ in 0..1_000 {
///     accountant.record_laplace(Epsilon::new(0.01)?);
/// }
/// let session = accountant.to_approx_dp(1e-6)?;
/// // Far tighter than the naive Σε = 10.
/// assert!(session.epsilon < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RdpAccountant {
    orders: Vec<f64>,
    /// Accumulated divergence at each order.
    rho: Vec<f64>,
    queries: u64,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        RdpAccountant::new(&DEFAULT_ORDERS)
    }
}

impl RdpAccountant {
    /// Creates an accountant over the given Rényi orders.
    ///
    /// # Panics
    ///
    /// Panics when `orders` is empty or any order is ≤ 1.
    pub fn new(orders: &[f64]) -> Self {
        assert!(!orders.is_empty(), "need at least one Renyi order");
        assert!(
            orders.iter().all(|&a| a > 1.0),
            "every Renyi order must exceed 1"
        );
        RdpAccountant {
            orders: orders.to_vec(),
            rho: vec![0.0; orders.len()],
            queries: 0,
        }
    }

    /// The tracked orders.
    pub fn orders(&self) -> &[f64] {
        &self.orders
    }

    /// Number of recorded queries.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Records one Laplace-mechanism release with pure-DP budget `ε = Δ/b`.
    pub fn record_laplace(&mut self, epsilon: Epsilon) {
        for (rho, &alpha) in self.rho.iter_mut().zip(&self.orders) {
            *rho += laplace_rdp(epsilon.value(), alpha);
        }
        self.queries += 1;
    }

    /// Converts the accumulated divergence to an `(ε, δ)` guarantee,
    /// minimizing over the tracked orders.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidProbability`] unless `delta ∈ (0, 1)`.
    pub fn to_approx_dp(&self, delta: f64) -> Result<ApproxDp, DpError> {
        if !(0.0..1.0).contains(&delta) || delta == 0.0 {
            return Err(DpError::InvalidProbability {
                value: delta,
                expected: "in (0, 1)",
            });
        }
        let log_inv_delta = (1.0 / delta).ln();
        let epsilon = self
            .rho
            .iter()
            .zip(&self.orders)
            .map(|(&rho, &alpha)| rho + log_inv_delta / (alpha - 1.0))
            .fold(f64::INFINITY, f64::min);
        ApproxDp::new(epsilon, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::{advanced_composition, basic_composition};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn rdp_curve_is_sane() {
        // ρ(α) is non-negative, zero at ε = 0, and bounded by ε (the
        // α → ∞ / pure-DP limit for the Laplace mechanism... actually the
        // max-divergence bound): ρ(α) ≤ ε always.
        for e in [0.01, 0.1, 1.0, 4.0] {
            for a in DEFAULT_ORDERS {
                let rho = laplace_rdp(e, a);
                assert!(rho >= 0.0, "ρ negative at ε={e}, α={a}");
                assert!(rho <= e + 1e-12, "ρ {rho} exceeds ε {e} at α={a}");
            }
        }
        assert_eq!(laplace_rdp(0.0, 2.0), 0.0);
    }

    #[test]
    fn rdp_is_monotone_in_order_and_epsilon() {
        // ρ(α) is non-decreasing in α and increasing in ε.
        let e = 0.5;
        let mut prev = 0.0;
        for a in [1.5, 2.0, 4.0, 16.0, 128.0] {
            let rho = laplace_rdp(e, a);
            assert!(rho >= prev - 1e-12, "not monotone at α={a}");
            prev = rho;
        }
        assert!(laplace_rdp(1.0, 4.0) > laplace_rdp(0.1, 4.0));
    }

    #[test]
    fn known_value_at_alpha_two() {
        // At α = 2: ρ = ln[(2/3)e^t + (1/3)e^{−2t}].
        let t = 0.7f64;
        let expected = ((2.0 / 3.0) * t.exp() + (1.0 / 3.0) * (-2.0 * t).exp()).ln();
        assert!((laplace_rdp(t, 2.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn single_query_conversion_is_close_to_pure_dp() {
        // One ε-DP Laplace release: the RDP bound at δ should not be much
        // worse than ε itself (and can be better for tiny ε? no — for one
        // query pure DP is ε; RDP conversion adds slack).
        let mut acc = RdpAccountant::default();
        acc.record_laplace(eps(1.0));
        let converted = acc.to_approx_dp(1e-6).unwrap();
        assert!(
            converted.epsilon >= 0.2,
            "suspiciously small: {}",
            converted.epsilon
        );
        assert!(converted.epsilon <= 2.0, "too lossy: {}", converted.epsilon);
    }

    #[test]
    fn rdp_beats_basic_and_advanced_on_long_sessions() {
        let per_query = 0.01;
        let k = 10_000u64;
        let delta = 1e-6;

        let mut acc = RdpAccountant::default();
        for _ in 0..k {
            acc.record_laplace(eps(per_query));
        }
        let rdp = acc.to_approx_dp(delta).unwrap();

        let basic = basic_composition(ApproxDp::new(per_query, 0.0).unwrap(), k);
        let advanced =
            advanced_composition(ApproxDp::new(per_query, 0.0).unwrap(), k, delta).unwrap();

        assert!(
            rdp.epsilon < advanced.epsilon,
            "RDP {} should beat advanced {}",
            rdp.epsilon,
            advanced.epsilon
        );
        assert!(rdp.epsilon < basic.epsilon);
        assert_eq!(acc.queries(), k);
    }

    #[test]
    fn composition_is_additive_per_order() {
        let mut one = RdpAccountant::new(&[2.0, 8.0]);
        one.record_laplace(eps(0.3));
        let mut two = one.clone();
        two.record_laplace(eps(0.3));
        for i in 0..2 {
            assert!((two.rho[i] - 2.0 * one.rho[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn smaller_delta_costs_more_epsilon() {
        let mut acc = RdpAccountant::default();
        for _ in 0..100 {
            acc.record_laplace(eps(0.05));
        }
        let loose = acc.to_approx_dp(1e-3).unwrap();
        let tight = acc.to_approx_dp(1e-9).unwrap();
        assert!(tight.epsilon > loose.epsilon);
    }

    #[test]
    fn conversion_validates_delta() {
        let acc = RdpAccountant::default();
        assert!(acc.to_approx_dp(0.0).is_err());
        assert!(acc.to_approx_dp(1.0).is_err());
        assert!(acc.to_approx_dp(-0.5).is_err());
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn order_one_panics() {
        let _ = laplace_rdp(0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_orders_panic() {
        let _ = RdpAccountant::new(&[]);
    }

    #[test]
    fn log_add_exp_is_stable() {
        // Huge magnitude difference must not overflow.
        assert!((log_add_exp(1000.0, -1000.0) - 1000.0).abs() < 1e-12);
        assert!((log_add_exp(0.0, 0.0) - 2.0f64.ln()).abs() < 1e-12);
    }
}
