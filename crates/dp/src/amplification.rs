//! Privacy amplification by sampling (the paper's Lemma 3.4).
//!
//! If a function `φ(·)` is `ε`-differentially private and `S(·)` draws
//! independent Bernoulli(p) samples, then the composition `φ(S(·))` is
//! `ε′`-differentially private with
//!
//! ```text
//! ε′ = ln(1 − p + p·e^ε)
//! ```
//!
//! (Kasiviswanathan, Lee, Nissim, Raskhodnikova & Smith, *What can we
//! learn privately?*, SICOMP 2011; restated as Lemma 3.4 in the paper.)
//!
//! The paper's optimizer minimizes exactly this effective budget, so this
//! module provides the forward map ([`amplify`]), its inverse
//! ([`required_base_epsilon`]), and the amplification factor diagnostics
//! used by the Fig. 6 experiment.

use crate::budget::Epsilon;
use crate::error::DpError;

/// Effective privacy budget of an `ε`-DP mechanism run on a Bernoulli(p)
/// sample: `ε′ = ln(1 − p + p·e^ε)`.
///
/// # Errors
///
/// Returns [`DpError::InvalidProbability`] unless `p ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use prc_dp::amplification::amplify;
/// use prc_dp::budget::Epsilon;
///
/// # fn main() -> Result<(), prc_dp::DpError> {
/// let base = Epsilon::new(1.0)?;
/// let amplified = amplify(base, 0.1)?;
/// assert!(amplified.value() < base.value());
/// # Ok(())
/// # }
/// ```
pub fn amplify(epsilon: Epsilon, p: f64) -> Result<Epsilon, DpError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(DpError::InvalidProbability {
            value: p,
            expected: "in [0, 1]",
        });
    }
    // ln(1 + p(e^ε − 1)), computed via ln_1p/exp_m1 for numerical stability
    // at small ε.
    let amplified = (p * epsilon.value().exp_m1()).ln_1p();
    Epsilon::new(amplified)
}

/// Inverse of [`amplify`]: the base budget `ε` a mechanism may use on a
/// Bernoulli(p) sample so that the overall pipeline is `ε′`-DP:
/// `ε = ln(1 + (e^(ε′) − 1)/p)`.
///
/// # Errors
///
/// Returns [`DpError::InvalidProbability`] unless `p ∈ (0, 1]`.
pub fn required_base_epsilon(target: Epsilon, p: f64) -> Result<Epsilon, DpError> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 {
        return Err(DpError::InvalidProbability {
            value: p,
            expected: "in (0, 1]",
        });
    }
    let base = (target.value().exp_m1() / p).ln_1p();
    Epsilon::new(base)
}

/// Ratio `ε′/ε` — how much of the base budget survives amplification.
///
/// Approaches `p` as `ε → 0` and `1` as `ε → ∞`.
///
/// # Errors
///
/// Returns [`DpError::InvalidProbability`] unless `p ∈ [0, 1]`, and
/// [`DpError::InvalidEpsilon`] when `ε = 0` (the ratio is defined by its
/// `ε → 0` limit, which callers can take as `p`).
pub fn amplification_ratio(epsilon: Epsilon, p: f64) -> Result<f64, DpError> {
    if epsilon.is_zero() {
        return Err(DpError::InvalidEpsilon { value: 0.0 });
    }
    Ok(amplify(epsilon, p)?.value() / epsilon.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn boundary_probabilities() {
        // p = 1: no sampling, no amplification.
        assert!((amplify(eps(1.5), 1.0).unwrap().value() - 1.5).abs() < 1e-12);
        // p = 0: nothing is ever sampled, perfect privacy.
        assert_eq!(amplify(eps(1.5), 0.0).unwrap().value(), 0.0);
    }

    #[test]
    fn amplification_strictly_tightens_budget() {
        for p in [0.01, 0.1, 0.5, 0.9] {
            for e in [0.1, 0.5, 1.0, 4.0] {
                let amplified = amplify(eps(e), p).unwrap().value();
                assert!(amplified < e, "p={p} ε={e}: {amplified}");
                assert!(amplified > 0.0);
            }
        }
    }

    #[test]
    fn monotone_in_both_arguments() {
        // Increasing p weakens amplification.
        let e = eps(1.0);
        let mut prev = 0.0;
        for p in [0.1, 0.2, 0.4, 0.8, 1.0] {
            let a = amplify(e, p).unwrap().value();
            assert!(a > prev);
            prev = a;
        }
        // Increasing ε increases ε′.
        let mut prev = 0.0;
        for e in [0.1, 0.5, 1.0, 2.0] {
            let a = amplify(eps(e), 0.3).unwrap().value();
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn small_epsilon_limit_is_p_times_epsilon() {
        // For ε → 0, ε′ ≈ p·ε.
        let e = 1e-6;
        let p = 0.37;
        let a = amplify(eps(e), p).unwrap().value();
        assert!((a / e - p).abs() < 1e-4, "ratio {}", a / e);
    }

    #[test]
    fn inverse_round_trips() {
        for p in [0.05, 0.3, 0.9, 1.0] {
            for target in [0.01, 0.2, 1.0, 3.0] {
                let base = required_base_epsilon(eps(target), p).unwrap();
                let back = amplify(base, p).unwrap();
                assert!(
                    (back.value() - target).abs() < 1e-9,
                    "p={p} target={target}: got {}",
                    back.value()
                );
            }
        }
    }

    #[test]
    fn inverse_rejects_zero_probability() {
        assert!(required_base_epsilon(eps(1.0), 0.0).is_err());
        assert!(required_base_epsilon(eps(1.0), -0.5).is_err());
        assert!(required_base_epsilon(eps(1.0), 1.5).is_err());
    }

    #[test]
    fn amplify_rejects_bad_probability() {
        assert!(amplify(eps(1.0), -0.1).is_err());
        assert!(amplify(eps(1.0), 1.1).is_err());
        assert!(amplify(eps(1.0), f64::NAN).is_err());
    }

    #[test]
    fn ratio_behaviour() {
        // Ratio approaches p for small ε and 1 for huge ε.
        let small = amplification_ratio(eps(1e-8), 0.25).unwrap();
        assert!((small - 0.25).abs() < 1e-4);
        let large = amplification_ratio(eps(50.0), 0.25).unwrap();
        assert!(large > 0.95);
        assert!(amplification_ratio(eps(0.0), 0.25).is_err());
    }

    #[test]
    fn amplified_budget_never_below_p_times_epsilon_over_e() {
        // Sanity envelope: p·ε·e^(-ε)·const < ε' ≤ min(ε, p·e^ε). Just check
        // the upper envelope used in the literature: ε' ≤ p·(e^ε − 1).
        for p in [0.1, 0.5] {
            for e in [0.1, 1.0, 3.0] {
                let a = amplify(eps(e), p).unwrap().value();
                assert!(a <= p * (e.exp() - 1.0) + 1e-12);
            }
        }
    }
}
