//! Composition theorems beyond naive summation.
//!
//! The broker answers a *stream* of queries against the same sample, so
//! the privacy cost of a session is governed by composition. The
//! [`crate::budget::BudgetAccountant`] applies basic (sequential)
//! composition — budgets add. This module adds the **advanced
//! composition** theorem (Dwork, Rothblum & Vadhan 2010; as stated in
//! Dwork & Roth, Thm 3.20): `k` adaptive `(ε, δ)`-DP mechanisms are
//! together
//!
//! ```text
//! ( ε·√(2k·ln(1/δ′)) + k·ε·(e^ε − 1),  k·δ + δ′ )-DP
//! ```
//!
//! for any slack `δ′ > 0` — a √k growth instead of the naive k, which is
//! what makes long trading sessions viable.

use crate::budget::Epsilon;
use crate::error::DpError;
use crate::gaussian::ApproxDp;

/// Naive sequential composition of `k` repetitions of an `(ε, δ)`-DP
/// mechanism: `(k·ε, k·δ)`.
pub fn basic_composition(per_query: ApproxDp, k: u64) -> ApproxDp {
    ApproxDp {
        epsilon: per_query.epsilon * k as f64,
        delta: (per_query.delta * k as f64).min(1.0 - f64::EPSILON),
    }
}

/// Advanced composition of `k` repetitions of an `(ε, δ)`-DP mechanism
/// with slack `δ′`.
///
/// # Examples
///
/// ```
/// use prc_dp::composition::{advanced_composition, basic_composition};
/// use prc_dp::gaussian::ApproxDp;
///
/// # fn main() -> Result<(), prc_dp::DpError> {
/// let per_query = ApproxDp::new(0.01, 0.0)?;
/// let basic = basic_composition(per_query, 10_000);
/// let advanced = advanced_composition(per_query, 10_000, 1e-6)?;
/// // √k beats k for long sessions of small queries.
/// assert!(advanced.epsilon < basic.epsilon / 10.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`DpError::InvalidProbability`] unless `delta_slack ∈ (0, 1)`.
pub fn advanced_composition(
    per_query: ApproxDp,
    k: u64,
    delta_slack: f64,
) -> Result<ApproxDp, DpError> {
    if !(0.0..1.0).contains(&delta_slack) || delta_slack == 0.0 {
        return Err(DpError::InvalidProbability {
            value: delta_slack,
            expected: "in (0, 1)",
        });
    }
    let e = per_query.epsilon;
    let k_f = k as f64;
    let epsilon = e * (2.0 * k_f * (1.0 / delta_slack).ln()).sqrt() + k_f * e * (e.exp() - 1.0);
    ApproxDp::new(
        epsilon,
        (per_query.delta * k_f + delta_slack).min(1.0 - f64::EPSILON),
    )
}

/// The tighter of basic and advanced composition for the same `k`-fold
/// repetition (advanced only wins for large `k` and small `ε`).
pub fn best_composition(per_query: ApproxDp, k: u64, delta_slack: f64) -> ApproxDp {
    let basic = basic_composition(per_query, k);
    match advanced_composition(per_query, k, delta_slack) {
        Ok(advanced) if advanced.epsilon < basic.epsilon => advanced,
        _ => basic,
    }
}

/// An accountant tracking a stream of *heterogeneous* pure-DP spends and
/// reporting both the naive total and the advanced-composition bound over
/// the worst per-query budget.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdvancedAccountant {
    spends: Vec<f64>,
}

impl AdvancedAccountant {
    /// An empty accountant.
    pub fn new() -> Self {
        AdvancedAccountant::default()
    }

    /// Records one pure-DP spend.
    pub fn record(&mut self, epsilon: Epsilon) {
        self.spends.push(epsilon.value());
    }

    /// Number of recorded queries.
    pub fn queries(&self) -> u64 {
        self.spends.len() as u64
    }

    /// The naive (basic composition) total: Σ εᵢ, pure DP.
    pub fn basic_total(&self) -> ApproxDp {
        ApproxDp {
            epsilon: self.spends.iter().sum(),
            delta: 0.0,
        }
    }

    /// The advanced-composition bound at slack `δ′`, applying the theorem
    /// with the *largest* recorded per-query budget (sound for
    /// heterogeneous streams because (ε, 0)-DP implies (ε_max, 0)-DP).
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidProbability`] unless `delta_slack ∈ (0, 1)`.
    pub fn advanced_total(&self, delta_slack: f64) -> Result<ApproxDp, DpError> {
        let worst = self.spends.iter().copied().fold(0.0, f64::max);
        advanced_composition(
            ApproxDp {
                epsilon: worst,
                delta: 0.0,
            },
            self.queries(),
            delta_slack,
        )
    }

    /// The tighter of the two bounds at slack `δ′`.
    pub fn best_total(&self, delta_slack: f64) -> ApproxDp {
        let basic = self.basic_total();
        match self.advanced_total(delta_slack) {
            Ok(advanced) if advanced.epsilon < basic.epsilon => advanced,
            _ => basic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn basic_composition_scales_linearly() {
        let per = ApproxDp::new(0.1, 1e-6).unwrap();
        let total = basic_composition(per, 10);
        assert!((total.epsilon - 1.0).abs() < 1e-12);
        assert!((total.delta - 1e-5).abs() < 1e-15);
    }

    #[test]
    fn advanced_composition_beats_basic_for_many_small_queries() {
        let per = ApproxDp::new(0.01, 0.0).unwrap();
        let k = 10_000;
        let basic = basic_composition(per, k);
        let advanced = advanced_composition(per, k, 1e-6).unwrap();
        assert!(
            advanced.epsilon < basic.epsilon,
            "advanced {} should beat basic {}",
            advanced.epsilon,
            basic.epsilon
        );
        // √k scaling: roughly 0.01·√(2·10000·ln 1e6) ≈ 5.3 ≪ 100.
        assert!(advanced.epsilon < 7.0);
        assert!((advanced.delta - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn advanced_composition_loses_for_few_large_queries() {
        let per = ApproxDp::new(1.0, 0.0).unwrap();
        let basic = basic_composition(per, 2);
        let advanced = advanced_composition(per, 2, 1e-6).unwrap();
        assert!(advanced.epsilon > basic.epsilon);
        assert_eq!(best_composition(per, 2, 1e-6), basic);
    }

    #[test]
    fn best_composition_picks_the_winner_both_ways() {
        let small = ApproxDp::new(0.01, 0.0).unwrap();
        let best_small = best_composition(small, 10_000, 1e-6);
        assert!(best_small.epsilon < basic_composition(small, 10_000).epsilon);
        let large = ApproxDp::new(2.0, 0.0).unwrap();
        assert_eq!(
            best_composition(large, 3, 1e-6),
            basic_composition(large, 3)
        );
    }

    #[test]
    fn slack_validation() {
        let per = ApproxDp::new(0.1, 0.0).unwrap();
        assert!(advanced_composition(per, 5, 0.0).is_err());
        assert!(advanced_composition(per, 5, 1.0).is_err());
        assert!(advanced_composition(per, 5, -0.5).is_err());
    }

    #[test]
    fn accountant_tracks_heterogeneous_stream() {
        let mut acc = AdvancedAccountant::new();
        for e in [0.05, 0.02, 0.05, 0.01] {
            acc.record(eps(e));
        }
        assert_eq!(acc.queries(), 4);
        assert!((acc.basic_total().epsilon - 0.13).abs() < 1e-12);
        // Advanced uses the worst per-query budget (0.05) over 4 queries.
        let adv = acc.advanced_total(1e-6).unwrap();
        let by_hand = advanced_composition(ApproxDp::new(0.05, 0.0).unwrap(), 4, 1e-6).unwrap();
        assert!((adv.epsilon - by_hand.epsilon).abs() < 1e-12);
    }

    #[test]
    fn accountant_best_total_crosses_over() {
        // With many tiny spends, advanced eventually wins.
        let mut acc = AdvancedAccountant::new();
        for _ in 0..20_000 {
            acc.record(eps(0.005));
        }
        let best = acc.best_total(1e-6);
        assert!(best.epsilon < acc.basic_total().epsilon);
        assert!(best.delta > 0.0);

        // With a handful of spends, basic wins and stays pure.
        let mut small = AdvancedAccountant::new();
        small.record(eps(0.5));
        small.record(eps(0.5));
        let best = small.best_total(1e-6);
        assert_eq!(best.delta, 0.0);
        assert!((best.epsilon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accountant_is_zero() {
        let acc = AdvancedAccountant::new();
        assert_eq!(acc.queries(), 0);
        assert_eq!(acc.basic_total().epsilon, 0.0);
        assert_eq!(acc.advanced_total(1e-6).unwrap().epsilon, 0.0);
    }
}
