//! # prc-dp — differential-privacy substrate
//!
//! Building blocks for the differentially private range-counting pipeline
//! of *"Trading Private Range Counting over Big IoT Data"* (Cai & He,
//! ICDCS 2019):
//!
//! * [`laplace`] — the Laplace distribution: sampling, pdf/cdf/quantile,
//!   and the tail bound `Pr[|Lap(b)| ≤ t] = 1 − e^(−t/b)` that drives the
//!   paper's perturbation optimizer (§III-B);
//! * [`mechanism`] — the Laplace mechanism of Dwork et al. and a discrete
//!   geometric (two-sided geometric) mechanism for integer counts;
//! * [`budget`] — validated privacy-budget arithmetic and a composition
//!   accountant;
//! * [`amplification`] — privacy amplification by sampling (the paper's
//!   Lemma 3.4, after Kasiviswanathan et al.): a mechanism that is
//!   ε-differentially private on a Bernoulli(p) sample of the data is
//!   `ln(1 − p + p·e^ε)`-differentially private on the full data.
//!
//! ## Quick start
//!
//! ```
//! use prc_dp::budget::Epsilon;
//! use prc_dp::mechanism::{LaplaceMechanism, Mechanism, Sensitivity};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), prc_dp::DpError> {
//! let mechanism = LaplaceMechanism::new(Epsilon::new(1.0)?, Sensitivity::new(1.0)?)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let noisy = mechanism.randomize(42.0, &mut rng);
//! assert!(noisy.is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplification;
pub mod budget;
pub mod composition;
pub mod error;
pub mod exponential;
pub mod gaussian;
pub mod laplace;
pub mod mechanism;
pub mod renyi;

pub use budget::{BudgetAccountant, Epsilon};
pub use composition::AdvancedAccountant;
pub use error::DpError;
pub use exponential::ExponentialMechanism;
pub use gaussian::{ApproxDp, GaussianMechanism};
pub use laplace::Laplace;
pub use mechanism::{GeometricMechanism, LaplaceMechanism, Mechanism, Sensitivity};
