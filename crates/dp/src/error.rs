//! Error types for the differential-privacy substrate.

use std::fmt;

/// Errors produced while constructing or composing privacy primitives.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DpError {
    /// A privacy budget was not a finite non-negative number.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// A query sensitivity was not a finite positive number.
    InvalidSensitivity {
        /// The offending value.
        value: f64,
    },
    /// A distribution scale was not a finite positive number.
    InvalidScale {
        /// The offending value.
        value: f64,
    },
    /// A probability argument fell outside its required interval.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Human-readable description of the required interval.
        expected: &'static str,
    },
    /// A spend request exceeded the remaining privacy budget.
    BudgetExhausted {
        /// Budget requested by the operation.
        requested: f64,
        /// Budget still available.
        remaining: f64,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidEpsilon { value } => {
                write!(
                    f,
                    "privacy budget must be finite and non-negative, got {value}"
                )
            }
            DpError::InvalidSensitivity { value } => {
                write!(f, "sensitivity must be finite and positive, got {value}")
            }
            DpError::InvalidScale { value } => {
                write!(f, "scale must be finite and positive, got {value}")
            }
            DpError::InvalidProbability { value, expected } => {
                write!(f, "probability must be {expected}, got {value}")
            }
            DpError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested {requested} but only {remaining} remains"
            ),
        }
    }
}

impl std::error::Error for DpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_values() {
        let e = DpError::BudgetExhausted {
            requested: 2.0,
            remaining: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains('2'));
        assert!(s.contains("0.5"));

        assert!(DpError::InvalidEpsilon { value: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(DpError::InvalidProbability {
            value: 1.5,
            expected: "in (0, 1]"
        }
        .to_string()
        .contains("(0, 1]"));
    }
}
