//! Privacy budgets and composition accounting.
//!
//! [`Epsilon`] is a validated non-negative privacy budget. The
//! [`BudgetAccountant`] tracks cumulative spend under *sequential
//! composition* (budgets add) and enforces a total cap — the discipline a
//! data broker needs when it answers a stream of queries against the same
//! sample (§II-A of the paper).

use crate::error::DpError;

/// A validated privacy budget: a finite, non-negative `ε`.
///
/// `ε = 0` is allowed and denotes perfect indistinguishability (infinite
/// noise); most mechanism constructors reject it separately because no
/// finite noise scale realizes it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Wraps a raw budget value.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidEpsilon`] unless `value` is finite and
    /// non-negative.
    pub fn new(value: f64) -> Result<Self, DpError> {
        if !value.is_finite() || value < 0.0 {
            return Err(DpError::InvalidEpsilon { value });
        }
        Ok(Epsilon(value))
    }

    /// The raw budget value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when the budget is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Sequential composition: running an `ε₁`-DP and an `ε₂`-DP mechanism
    /// on the same data is `(ε₁+ε₂)`-DP.
    pub fn compose_sequential(self, other: Epsilon) -> Epsilon {
        Epsilon(self.0 + other.0)
    }

    /// Parallel composition: running mechanisms on *disjoint* partitions
    /// of the data is `max(ε₁, ε₂)`-DP.
    pub fn compose_parallel(self, other: Epsilon) -> Epsilon {
        Epsilon(self.0.max(other.0))
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = DpError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Epsilon::new(value)
    }
}

impl From<Epsilon> for f64 {
    fn from(e: Epsilon) -> f64 {
        e.value()
    }
}

/// Tracks privacy-budget spend against a total cap under sequential
/// composition.
///
/// # Examples
///
/// ```
/// use prc_dp::budget::{BudgetAccountant, Epsilon};
///
/// # fn main() -> Result<(), prc_dp::DpError> {
/// let mut accountant = BudgetAccountant::new(Epsilon::new(1.0)?);
/// accountant.spend(Epsilon::new(0.4)?)?;
/// assert!((accountant.remaining().value() - 0.6).abs() < 1e-12);
/// assert!(accountant.spend(Epsilon::new(0.7)?).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BudgetAccountant {
    total: Epsilon,
    spent: f64,
    operations: u64,
}

impl BudgetAccountant {
    /// Creates an accountant with the given total budget.
    pub fn new(total: Epsilon) -> Self {
        BudgetAccountant {
            total,
            spent: 0.0,
            operations: 0,
        }
    }

    /// The total budget cap.
    pub fn total(&self) -> Epsilon {
        self.total
    }

    /// Budget spent so far.
    pub fn spent(&self) -> Epsilon {
        Epsilon(self.spent)
    }

    /// Budget still available.
    pub fn remaining(&self) -> Epsilon {
        Epsilon((self.total.0 - self.spent).max(0.0))
    }

    /// Number of successful spend operations.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Attempts to spend `epsilon` from the remaining budget.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::BudgetExhausted`] (and spends nothing) when the
    /// request exceeds the remaining budget. A tiny tolerance (1e-12 of
    /// the total) absorbs floating-point accumulation error.
    pub fn spend(&mut self, epsilon: Epsilon) -> Result<(), DpError> {
        let tolerance = 1e-12 * self.total.0.max(1.0);
        if self.spent + epsilon.0 > self.total.0 + tolerance {
            return Err(DpError::BudgetExhausted {
                requested: epsilon.0,
                remaining: self.remaining().0,
            });
        }
        self.spent += epsilon.0;
        self.operations += 1;
        Ok(())
    }

    /// True when any further non-zero spend would fail.
    pub fn is_exhausted(&self) -> bool {
        self.remaining().0 <= 1e-12 * self.total.0.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(0.0).is_ok());
        assert!(Epsilon::new(3.5).is_ok());
        assert!(Epsilon::new(-0.1).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::new(0.0).unwrap().is_zero());
        assert!(!Epsilon::new(0.1).unwrap().is_zero());
    }

    #[test]
    fn conversions() {
        let e = Epsilon::try_from(0.7).unwrap();
        assert_eq!(f64::from(e), 0.7);
        assert_eq!(e.to_string(), "ε=0.7");
        assert!(Epsilon::try_from(-1.0).is_err());
    }

    #[test]
    fn composition_rules() {
        let a = Epsilon::new(0.3).unwrap();
        let b = Epsilon::new(0.5).unwrap();
        assert!((a.compose_sequential(b).value() - 0.8).abs() < 1e-15);
        assert_eq!(a.compose_parallel(b).value(), 0.5);
    }

    #[test]
    fn accountant_tracks_spend() {
        let mut acc = BudgetAccountant::new(Epsilon::new(2.0).unwrap());
        assert_eq!(acc.operations(), 0);
        acc.spend(Epsilon::new(0.5).unwrap()).unwrap();
        acc.spend(Epsilon::new(1.0).unwrap()).unwrap();
        assert_eq!(acc.operations(), 2);
        assert!((acc.spent().value() - 1.5).abs() < 1e-12);
        assert!((acc.remaining().value() - 0.5).abs() < 1e-12);
        assert!(!acc.is_exhausted());
    }

    #[test]
    fn accountant_rejects_overspend_without_mutating() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        acc.spend(Epsilon::new(0.9).unwrap()).unwrap();
        let err = acc.spend(Epsilon::new(0.2).unwrap()).unwrap_err();
        assert!(matches!(err, DpError::BudgetExhausted { .. }));
        // A failed spend leaves the accountant untouched.
        assert!((acc.spent().value() - 0.9).abs() < 1e-12);
        assert_eq!(acc.operations(), 1);
        // A fitting spend still succeeds.
        acc.spend(Epsilon::new(0.1).unwrap()).unwrap();
        assert!(acc.is_exhausted());
    }

    #[test]
    fn accountant_tolerates_float_accumulation() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        let step = Epsilon::new(0.1).unwrap();
        for _ in 0..10 {
            acc.spend(step).unwrap();
        }
        assert!(acc.is_exhausted());
        assert!(acc.spend(Epsilon::new(0.01).unwrap()).is_err());
    }

    #[test]
    fn zero_spend_always_succeeds() {
        let mut acc = BudgetAccountant::new(Epsilon::new(0.0).unwrap());
        acc.spend(Epsilon::new(0.0).unwrap()).unwrap();
        assert!(acc.is_exhausted());
    }
}
