//! Privacy budgets and composition accounting.
//!
//! [`Epsilon`] is a validated non-negative privacy budget. The
//! [`BudgetAccountant`] tracks cumulative spend under *sequential
//! composition* (budgets add) and enforces a total cap — the discipline a
//! data broker needs when it answers a stream of queries against the same
//! sample (§II-A of the paper).

use crate::error::DpError;

/// A validated privacy budget: a finite, non-negative `ε`.
///
/// `ε = 0` is allowed and denotes perfect indistinguishability (infinite
/// noise); most mechanism constructors reject it separately because no
/// finite noise scale realizes it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Wraps a raw budget value.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidEpsilon`] unless `value` is finite and
    /// non-negative.
    pub fn new(value: f64) -> Result<Self, DpError> {
        if !value.is_finite() || value < 0.0 {
            return Err(DpError::InvalidEpsilon { value });
        }
        Ok(Epsilon(value))
    }

    /// The raw budget value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when the budget is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Sequential composition: running an `ε₁`-DP and an `ε₂`-DP mechanism
    /// on the same data is `(ε₁+ε₂)`-DP.
    pub fn compose_sequential(self, other: Epsilon) -> Epsilon {
        Epsilon(self.0 + other.0)
    }

    /// Parallel composition: running mechanisms on *disjoint* partitions
    /// of the data is `max(ε₁, ε₂)`-DP.
    pub fn compose_parallel(self, other: Epsilon) -> Epsilon {
        Epsilon(self.0.max(other.0))
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = DpError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Epsilon::new(value)
    }
}

impl From<Epsilon> for f64 {
    fn from(e: Epsilon) -> f64 {
        e.value()
    }
}

/// A two-phase hold on privacy budget, issued by
/// [`BudgetAccountant::reserve`].
///
/// The held amount is excluded from [`BudgetAccountant::remaining`] until
/// the reservation is resolved, either by
/// [`BudgetAccountant::commit`] (the answer released — the hold becomes
/// real spend) or [`BudgetAccountant::rollback`] (the answer failed — the
/// hold is released and no ε is consumed). The token is deliberately
/// neither `Copy` nor `Clone`, so each hold resolves exactly once.
#[derive(Debug, PartialEq)]
#[must_use = "an unresolved reservation holds budget forever; commit or roll it back"]
pub struct Reservation {
    amount: Epsilon,
}

impl Reservation {
    /// The reserved budget.
    pub fn amount(&self) -> Epsilon {
        self.amount
    }
}

/// Tracks privacy-budget spend against a total cap under sequential
/// composition.
///
/// Spending is two-phase: [`BudgetAccountant::reserve`] places a hold
/// that [`BudgetAccountant::commit`] converts into spend or
/// [`BudgetAccountant::rollback`] releases. The one-shot
/// [`BudgetAccountant::spend`] is reserve-then-commit in one call, for
/// callers with no failure window between charging and releasing.
///
/// # Examples
///
/// ```
/// use prc_dp::budget::{BudgetAccountant, Epsilon};
///
/// # fn main() -> Result<(), prc_dp::DpError> {
/// let mut accountant = BudgetAccountant::new(Epsilon::new(1.0)?);
/// accountant.spend(Epsilon::new(0.4)?)?;
/// assert!((accountant.remaining().value() - 0.6).abs() < 1e-12);
/// assert!(accountant.spend(Epsilon::new(0.7)?).is_err());
///
/// // Two-phase: a rolled-back hold costs nothing.
/// let hold = accountant.reserve(Epsilon::new(0.5)?)?;
/// assert!((accountant.remaining().value() - 0.1).abs() < 1e-12);
/// accountant.rollback(hold);
/// assert!((accountant.remaining().value() - 0.6).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BudgetAccountant {
    total: Epsilon,
    spent: f64,
    reserved: f64,
    operations: u64,
}

impl BudgetAccountant {
    /// Creates an accountant with the given total budget.
    pub fn new(total: Epsilon) -> Self {
        BudgetAccountant {
            total,
            spent: 0.0,
            reserved: 0.0,
            operations: 0,
        }
    }

    /// The total budget cap.
    pub fn total(&self) -> Epsilon {
        self.total
    }

    /// Budget spent so far (committed only; outstanding holds excluded).
    pub fn spent(&self) -> Epsilon {
        Epsilon(self.spent)
    }

    /// Budget held by outstanding reservations.
    pub fn reserved(&self) -> Epsilon {
        Epsilon(self.reserved)
    }

    /// Budget still available: the cap minus committed spend and
    /// outstanding holds.
    pub fn remaining(&self) -> Epsilon {
        Epsilon((self.total.0 - self.spent - self.reserved).max(0.0))
    }

    /// Number of successful spend operations (commits count; rollbacks
    /// don't).
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Places a hold on `epsilon` of the remaining budget.
    ///
    /// The hold counts against [`BudgetAccountant::remaining`] at once,
    /// so concurrent-in-flight answers cannot jointly oversubscribe the
    /// cap, but nothing is spent until [`BudgetAccountant::commit`].
    ///
    /// # Errors
    ///
    /// Returns [`DpError::BudgetExhausted`] (and holds nothing) when the
    /// request exceeds the remaining budget. A tiny tolerance (1e-12 of
    /// the total) absorbs floating-point accumulation error.
    pub fn reserve(&mut self, epsilon: Epsilon) -> Result<Reservation, DpError> {
        let tolerance = 1e-12 * self.total.0.max(1.0);
        if self.spent + self.reserved + epsilon.0 > self.total.0 + tolerance {
            return Err(DpError::BudgetExhausted {
                requested: epsilon.0,
                remaining: self.remaining().0,
            });
        }
        self.reserved += epsilon.0;
        Ok(Reservation { amount: epsilon })
    }

    /// Converts a hold into committed spend. Infallible: the budget check
    /// already happened at [`BudgetAccountant::reserve`] time.
    pub fn commit(&mut self, reservation: Reservation) {
        self.reserved = (self.reserved - reservation.amount.0).max(0.0);
        self.spent += reservation.amount.0;
        self.operations += 1;
    }

    /// Releases a hold without spending: the failed answer costs no ε.
    pub fn rollback(&mut self, reservation: Reservation) {
        self.reserved = (self.reserved - reservation.amount.0).max(0.0);
    }

    /// Attempts to spend `epsilon` from the remaining budget
    /// (reserve-then-commit in one step).
    ///
    /// # Errors
    ///
    /// Returns [`DpError::BudgetExhausted`] (and spends nothing) when the
    /// request exceeds the remaining budget. A tiny tolerance (1e-12 of
    /// the total) absorbs floating-point accumulation error.
    pub fn spend(&mut self, epsilon: Epsilon) -> Result<(), DpError> {
        let reservation = self.reserve(epsilon)?;
        self.commit(reservation);
        Ok(())
    }

    /// True when any further non-zero spend would fail.
    pub fn is_exhausted(&self) -> bool {
        self.remaining().0 <= 1e-12 * self.total.0.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(0.0).is_ok());
        assert!(Epsilon::new(3.5).is_ok());
        assert!(Epsilon::new(-0.1).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::new(0.0).unwrap().is_zero());
        assert!(!Epsilon::new(0.1).unwrap().is_zero());
    }

    #[test]
    fn conversions() {
        let e = Epsilon::try_from(0.7).unwrap();
        assert_eq!(f64::from(e), 0.7);
        assert_eq!(e.to_string(), "ε=0.7");
        assert!(Epsilon::try_from(-1.0).is_err());
    }

    #[test]
    fn composition_rules() {
        let a = Epsilon::new(0.3).unwrap();
        let b = Epsilon::new(0.5).unwrap();
        assert!((a.compose_sequential(b).value() - 0.8).abs() < 1e-15);
        assert_eq!(a.compose_parallel(b).value(), 0.5);
    }

    #[test]
    fn accountant_tracks_spend() {
        let mut acc = BudgetAccountant::new(Epsilon::new(2.0).unwrap());
        assert_eq!(acc.operations(), 0);
        acc.spend(Epsilon::new(0.5).unwrap()).unwrap();
        acc.spend(Epsilon::new(1.0).unwrap()).unwrap();
        assert_eq!(acc.operations(), 2);
        assert!((acc.spent().value() - 1.5).abs() < 1e-12);
        assert!((acc.remaining().value() - 0.5).abs() < 1e-12);
        assert!(!acc.is_exhausted());
    }

    #[test]
    fn accountant_rejects_overspend_without_mutating() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        acc.spend(Epsilon::new(0.9).unwrap()).unwrap();
        let err = acc.spend(Epsilon::new(0.2).unwrap()).unwrap_err();
        assert!(matches!(err, DpError::BudgetExhausted { .. }));
        // A failed spend leaves the accountant untouched.
        assert!((acc.spent().value() - 0.9).abs() < 1e-12);
        assert_eq!(acc.operations(), 1);
        // A fitting spend still succeeds.
        acc.spend(Epsilon::new(0.1).unwrap()).unwrap();
        assert!(acc.is_exhausted());
    }

    #[test]
    fn accountant_tolerates_float_accumulation() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        let step = Epsilon::new(0.1).unwrap();
        for _ in 0..10 {
            acc.spend(step).unwrap();
        }
        assert!(acc.is_exhausted());
        assert!(acc.spend(Epsilon::new(0.01).unwrap()).is_err());
    }

    #[test]
    fn zero_spend_always_succeeds() {
        let mut acc = BudgetAccountant::new(Epsilon::new(0.0).unwrap());
        acc.spend(Epsilon::new(0.0).unwrap()).unwrap();
        assert!(acc.is_exhausted());
    }

    #[test]
    fn reserve_holds_budget_until_resolved() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        let hold = acc.reserve(Epsilon::new(0.6).unwrap()).unwrap();
        assert!((acc.reserved().value() - 0.6).abs() < 1e-12);
        assert!((acc.remaining().value() - 0.4).abs() < 1e-12);
        // Nothing is spent yet, and no operation is recorded.
        assert_eq!(acc.spent().value(), 0.0);
        assert_eq!(acc.operations(), 0);
        // The hold counts against further reservations.
        assert!(acc.reserve(Epsilon::new(0.5).unwrap()).is_err());
        acc.commit(hold);
        assert_eq!(acc.reserved().value(), 0.0);
        assert!((acc.spent().value() - 0.6).abs() < 1e-12);
        assert_eq!(acc.operations(), 1);
    }

    #[test]
    fn rollback_restores_the_full_hold() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        acc.spend(Epsilon::new(0.3).unwrap()).unwrap();
        let hold = acc.reserve(Epsilon::new(0.5).unwrap()).unwrap();
        assert!((acc.remaining().value() - 0.2).abs() < 1e-12);
        acc.rollback(hold);
        assert!((acc.remaining().value() - 0.7).abs() < 1e-12);
        assert!((acc.spent().value() - 0.3).abs() < 1e-12);
        assert_eq!(acc.operations(), 1, "rollbacks are not operations");
        // The released budget is spendable again.
        acc.spend(Epsilon::new(0.7).unwrap()).unwrap();
        assert!(acc.is_exhausted());
    }

    #[test]
    fn multiple_outstanding_reservations_compose() {
        let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
        let a = acc.reserve(Epsilon::new(0.4).unwrap()).unwrap();
        let b = acc.reserve(Epsilon::new(0.4).unwrap()).unwrap();
        assert!(acc.reserve(Epsilon::new(0.4).unwrap()).is_err());
        acc.commit(a);
        acc.rollback(b);
        assert!((acc.spent().value() - 0.4).abs() < 1e-12);
        assert!((acc.remaining().value() - 0.6).abs() < 1e-12);
        assert_eq!(acc.reserved().value(), 0.0);
    }

    #[test]
    fn spend_is_reserve_then_commit() {
        let mut one_shot = BudgetAccountant::new(Epsilon::new(2.0).unwrap());
        one_shot.spend(Epsilon::new(0.7).unwrap()).unwrap();
        let mut two_phase = BudgetAccountant::new(Epsilon::new(2.0).unwrap());
        let hold = two_phase.reserve(Epsilon::new(0.7).unwrap()).unwrap();
        two_phase.commit(hold);
        assert_eq!(one_shot, two_phase);
    }
}
