//! Noise-adding mechanisms.
//!
//! [`LaplaceMechanism`] is the standard calibrated-noise mechanism of
//! Dwork, McSherry, Nissim & Smith ("Calibrating noise to sensitivity in
//! private data analysis", TCC 2006), used by the paper as `G(D) = γ(D) +
//! Lap(Δγ/ε)`. [`GeometricMechanism`] is its discrete twin (the two-sided
//! geometric mechanism), a natural extension for integer-valued counts.

use rand::{Rng, RngExt};

use crate::budget::Epsilon;
use crate::error::DpError;
use crate::laplace::Laplace;

/// A validated query sensitivity: a finite, positive `Δγ`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct Sensitivity(f64);

impl Sensitivity {
    /// Wraps a raw sensitivity.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidSensitivity`] unless `value` is finite
    /// and positive.
    pub fn new(value: f64) -> Result<Self, DpError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(DpError::InvalidSensitivity { value });
        }
        Ok(Sensitivity(value))
    }

    /// The raw sensitivity value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Sensitivity of an exact counting query (one record changes the
    /// count by at most one).
    pub fn unit() -> Self {
        Sensitivity(1.0)
    }
}

impl std::fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Δ={}", self.0)
    }
}

/// A randomized mechanism that perturbs a real-valued query answer to
/// achieve `ε`-differential privacy.
pub trait Mechanism {
    /// Perturbs `true_value`.
    fn randomize<R: Rng + ?Sized>(&self, true_value: f64, rng: &mut R) -> f64;

    /// Variance of the added noise.
    fn noise_variance(&self) -> f64;

    /// Privacy budget consumed by one invocation.
    fn epsilon(&self) -> Epsilon;

    /// `Pr[|noise| ≤ t]` for the mechanism's noise distribution.
    fn central_probability(&self, t: f64) -> f64;
}

/// The Laplace mechanism: adds `Lap(Δ/ε)` noise.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LaplaceMechanism {
    epsilon: Epsilon,
    sensitivity: Sensitivity,
    noise: Laplace,
}

impl LaplaceMechanism {
    /// Creates a Laplace mechanism with privacy budget `ε` and query
    /// sensitivity `Δ`; the noise scale is `Δ/ε`.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidEpsilon`] when `ε = 0` (no finite noise
    /// scale achieves 0-DP).
    pub fn new(epsilon: Epsilon, sensitivity: Sensitivity) -> Result<Self, DpError> {
        if epsilon.is_zero() {
            return Err(DpError::InvalidEpsilon {
                value: epsilon.value(),
            });
        }
        let noise = Laplace::centered(sensitivity.value() / epsilon.value())?;
        Ok(LaplaceMechanism {
            epsilon,
            sensitivity,
            noise,
        })
    }

    /// The noise scale `b = Δ/ε`.
    pub fn scale(&self) -> f64 {
        self.noise.scale()
    }

    /// The configured sensitivity.
    pub fn sensitivity(&self) -> Sensitivity {
        self.sensitivity
    }

    /// The underlying noise distribution.
    pub fn noise_distribution(&self) -> Laplace {
        self.noise
    }
}

impl Mechanism for LaplaceMechanism {
    fn randomize<R: Rng + ?Sized>(&self, true_value: f64, rng: &mut R) -> f64 {
        true_value + self.noise.sample(rng)
    }

    fn noise_variance(&self) -> f64 {
        self.noise.variance()
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn central_probability(&self, t: f64) -> f64 {
        self.noise.central_probability(t)
    }
}

/// The geometric mechanism: adds two-sided geometric noise, the discrete
/// analogue of the Laplace mechanism for integer-valued queries.
///
/// With `α = exp(−ε/Δ)`, the noise takes value `z ∈ ℤ` with probability
/// `(1−α)/(1+α) · α^|z|`; its variance is `2α/(1−α)²`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GeometricMechanism {
    epsilon: Epsilon,
    sensitivity: Sensitivity,
    alpha: f64,
}

impl GeometricMechanism {
    /// Creates a geometric mechanism with budget `ε` and sensitivity `Δ`.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidEpsilon`] when `ε = 0`.
    pub fn new(epsilon: Epsilon, sensitivity: Sensitivity) -> Result<Self, DpError> {
        if epsilon.is_zero() {
            return Err(DpError::InvalidEpsilon {
                value: epsilon.value(),
            });
        }
        Ok(GeometricMechanism {
            epsilon,
            sensitivity,
            alpha: (-epsilon.value() / sensitivity.value()).exp(),
        })
    }

    /// The noise parameter `α = exp(−ε/Δ)`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one integer noise value.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        // Difference of two iid geometric(1-α) variables is two-sided
        // geometric with parameter α.
        let g1 = sample_geometric(self.alpha, rng);
        let g2 = sample_geometric(self.alpha, rng);
        g1 - g2
    }
}

/// Samples `G ∈ {0, 1, 2, …}` with `Pr[G = g] = (1−α)·α^g` by inversion.
fn sample_geometric<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> i64 {
    debug_assert!((0.0..1.0).contains(&alpha));
    if alpha == 0.0 {
        return 0;
    }
    let u: f64 = rng.random();
    // Smallest g with CDF(g) = 1 - α^(g+1) >= u.
    ((1.0 - u).ln() / alpha.ln()).ceil() as i64 - 1
}

impl Mechanism for GeometricMechanism {
    fn randomize<R: Rng + ?Sized>(&self, true_value: f64, rng: &mut R) -> f64 {
        true_value + self.sample_noise(rng) as f64
    }

    fn noise_variance(&self) -> f64 {
        2.0 * self.alpha / (1.0 - self.alpha).powi(2)
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn central_probability(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        // Pr[|Z| <= t] = 1 - 2·Pr[Z > t] with Pr[Z > t] = α^(⌊t⌋+1)/(1+α).
        let tail = self.alpha.powi(t.floor() as i32 + 1) / (1.0 + self.alpha);
        1.0 - 2.0 * tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn sens(v: f64) -> Sensitivity {
        Sensitivity::new(v).unwrap()
    }

    #[test]
    fn sensitivity_validation() {
        assert!(Sensitivity::new(1.0).is_ok());
        assert!(Sensitivity::new(0.0).is_err());
        assert!(Sensitivity::new(-2.0).is_err());
        assert!(Sensitivity::new(f64::NAN).is_err());
        assert_eq!(Sensitivity::unit().value(), 1.0);
        assert_eq!(sens(2.0).to_string(), "Δ=2");
    }

    #[test]
    fn laplace_mechanism_scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(eps(0.5), sens(2.0)).unwrap();
        assert!((m.scale() - 4.0).abs() < 1e-12);
        assert_eq!(m.epsilon(), eps(0.5));
        assert_eq!(m.sensitivity(), sens(2.0));
        assert!((m.noise_variance() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn zero_epsilon_is_rejected() {
        assert!(LaplaceMechanism::new(eps(0.0), sens(1.0)).is_err());
        assert!(GeometricMechanism::new(eps(0.0), sens(1.0)).is_err());
    }

    #[test]
    fn laplace_mechanism_is_unbiased_empirically() {
        let m = LaplaceMechanism::new(eps(1.0), sens(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| m.randomize(10.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn laplace_dp_inequality_holds_empirically() {
        // Check the DP likelihood-ratio bound directly on the noise pdf:
        // for neighbouring counts differing by Δ, pdf ratio ≤ e^ε.
        let e = 0.8;
        let m = LaplaceMechanism::new(eps(e), sens(1.0)).unwrap();
        let d = m.noise_distribution();
        for x in [-10.0, -1.0, 0.0, 0.3, 2.0, 25.0] {
            let ratio = d.pdf(x) / d.pdf(x - 1.0);
            assert!(
                ratio <= e.exp() + 1e-9 && ratio >= (-e).exp() - 1e-9,
                "x={x}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn geometric_noise_is_integer_and_symmetric() {
        let m = GeometricMechanism::new(eps(1.0), sens(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let noise: Vec<i64> = (0..n).map(|_| m.sample_noise(&mut rng)).collect();
        let mean = noise.iter().sum::<i64>() as f64 / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // randomize() of an integer stays integer-valued.
        let v = m.randomize(100.0, &mut rng);
        assert_eq!(v, v.round());
    }

    #[test]
    fn geometric_variance_matches_theory() {
        let m = GeometricMechanism::new(eps(0.7), sens(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 300_000;
        let noise: Vec<f64> = (0..n).map(|_| m.sample_noise(&mut rng) as f64).collect();
        let mean = noise.iter().sum::<f64>() / n as f64;
        let var = noise.iter().map(|z| (z - mean).powi(2)).sum::<f64>() / n as f64;
        let theory = m.noise_variance();
        assert!(
            (var - theory).abs() / theory < 0.03,
            "var {var} vs theory {theory}"
        );
    }

    #[test]
    fn geometric_pmf_ratio_respects_epsilon() {
        let e = 1.2;
        let m = GeometricMechanism::new(eps(e), sens(1.0)).unwrap();
        // Pr[Z=z] ∝ α^|z|; the ratio between neighbours is α^(±1) = e^(∓ε).
        let alpha = m.alpha();
        assert!((alpha - (-e).exp()).abs() < 1e-12);
    }

    #[test]
    fn geometric_central_probability_matches_empirical() {
        let m = GeometricMechanism::new(eps(0.5), sens(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let noise: Vec<i64> = (0..n).map(|_| m.sample_noise(&mut rng)).collect();
        for t in [0.0, 1.0, 3.0, 8.0] {
            let empirical =
                noise.iter().filter(|z| (z.abs() as f64) <= t).count() as f64 / n as f64;
            let theory = m.central_probability(t);
            assert!(
                (empirical - theory).abs() < 0.006,
                "t={t}: empirical {empirical} vs theory {theory}"
            );
        }
        assert_eq!(m.central_probability(-1.0), 0.0);
    }

    #[test]
    fn mechanisms_with_larger_epsilon_add_less_noise() {
        let tight = LaplaceMechanism::new(eps(2.0), sens(1.0)).unwrap();
        let loose = LaplaceMechanism::new(eps(0.1), sens(1.0)).unwrap();
        assert!(tight.noise_variance() < loose.noise_variance());
        let tight_g = GeometricMechanism::new(eps(2.0), sens(1.0)).unwrap();
        let loose_g = GeometricMechanism::new(eps(0.1), sens(1.0)).unwrap();
        assert!(tight_g.noise_variance() < loose_g.noise_variance());
    }
}
