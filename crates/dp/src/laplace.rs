//! The Laplace (double-exponential) distribution.
//!
//! The paper's perturbation step adds `Lap(Δγ̂/ε)` noise to the sampled
//! range count (§III-B). The optimizer additionally needs the tail bound
//! `Pr[|Lap(b)| ≤ t] = 1 − e^(−t/b)` and its inverses, which are exposed
//! here as [`Laplace::central_probability`], [`Laplace::scale_for_tail`],
//! and [`required_epsilon`].

use rand::{Rng, RngExt};

use crate::error::DpError;

/// A Laplace distribution with location `μ` and scale `b > 0`.
///
/// Density: `f(x) = exp(−|x − μ|/b) / (2b)`; variance `2b²`.
///
/// # Examples
///
/// ```
/// use prc_dp::laplace::Laplace;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), prc_dp::DpError> {
/// let noise = Laplace::centered(2.0)?;
/// assert_eq!(noise.variance(), 8.0);
/// // Pr[|Lap(2)| ≤ 4] = 1 − e^(−2).
/// assert!((noise.central_probability(4.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sample = noise.sample(&mut rng);
/// assert!(sample.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Laplace {
    location: f64,
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidScale`] unless `scale` is finite and positive.
    pub fn new(location: f64, scale: f64) -> Result<Self, DpError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(DpError::InvalidScale { value: scale });
        }
        if !location.is_finite() {
            return Err(DpError::InvalidScale { value: location });
        }
        Ok(Laplace { location, scale })
    }

    /// A zero-centred Laplace distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidScale`] unless `scale` is finite and positive.
    pub fn centered(scale: f64) -> Result<Self, DpError> {
        Laplace::new(0.0, scale)
    }

    /// The location parameter `μ`.
    pub fn location(&self) -> f64 {
        self.location
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x - self.location).abs() / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution `Pr[X ≤ x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.scale;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Quantile (inverse CDF) at probability `q ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            q > 0.0 && q < 1.0,
            "quantile probability must be in (0,1), got {q}"
        );
        if q < 0.5 {
            self.location + self.scale * (2.0 * q).ln()
        } else {
            self.location - self.scale * (2.0 - 2.0 * q).ln()
        }
    }

    /// `Pr[|X − μ| ≤ t] = 1 − e^(−t/b)` — the central (two-sided) mass.
    ///
    /// Returns `0` for negative `t`.
    pub fn central_probability(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        1.0 - (-t / self.scale).exp()
    }

    /// The scale `b` for which `Pr[|Lap(b)| ≤ t] = prob`.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidProbability`] unless `prob ∈ (0, 1)`, and
    /// [`DpError::InvalidScale`] unless `t` is finite and positive.
    pub fn scale_for_tail(t: f64, prob: f64) -> Result<f64, DpError> {
        if !(0.0..1.0).contains(&prob) || prob == 0.0 {
            return Err(DpError::InvalidProbability {
                value: prob,
                expected: "in (0, 1)",
            });
        }
        if !t.is_finite() || t <= 0.0 {
            return Err(DpError::InvalidScale { value: t });
        }
        Ok(-t / (1.0 - prob).ln())
    }

    /// Draws one sample using inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in (-0.5, 0.5]; sign(u) * ln(1 - 2|u|) inverts the CDF.
        let u: f64 = rng.random::<f64>() - 0.5;
        let magnitude = -(1.0 - 2.0 * u.abs()).ln() * self.scale;
        if u < 0.0 {
            self.location - magnitude
        } else {
            self.location + magnitude
        }
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draws one zero-centred `Lap(scale)` noise value.
///
/// This is the workspace's sanctioned noise-draw entry point: callers
/// outside `prc-dp` must route every Laplace draw through it (enforced
/// by `prc-lint` rules B001/B002) so the draw site stays adjacent to the
/// budget accounting that justifies it. Identical in distribution — and
/// in the consumed RNG stream — to `Laplace::centered(scale)?.sample(rng)`.
///
/// # Errors
///
/// Returns [`DpError::InvalidScale`] unless `scale` is finite and positive.
pub fn draw_centered<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> Result<f64, DpError> {
    Ok(Laplace::centered(scale)?.sample(rng))
}

/// `Pr[|Lap(scale)| ≤ t]` without constructing a distribution at the
/// call site.
///
/// Companion to [`draw_centered`] for callers (the plan auditor) that
/// only need the tail bound of a centred Laplace; keeps `Laplace`
/// construction inside `prc-dp` (rule B002).
///
/// # Errors
///
/// Returns [`DpError::InvalidScale`] unless `scale` is finite and positive.
pub fn central_probability(scale: f64, t: f64) -> Result<f64, DpError> {
    Ok(Laplace::centered(scale)?.central_probability(t))
}

/// Minimum `ε` such that `Lap(sensitivity/ε)` satisfies
/// `Pr[|noise| ≤ t] ≥ prob`.
///
/// This is the closed form used by the paper's optimizer:
/// `ε ≥ (Δ/t) · ln(1/(1 − prob))`.
///
/// # Errors
///
/// Returns [`DpError::InvalidProbability`] unless `prob ∈ [0, 1)`;
/// [`DpError::InvalidScale`] unless `t` is finite and positive;
/// [`DpError::InvalidSensitivity`] unless `sensitivity` is finite and positive.
pub fn required_epsilon(sensitivity: f64, t: f64, prob: f64) -> Result<f64, DpError> {
    if !(0.0..1.0).contains(&prob) {
        return Err(DpError::InvalidProbability {
            value: prob,
            expected: "in [0, 1)",
        });
    }
    if !t.is_finite() || t <= 0.0 {
        return Err(DpError::InvalidScale { value: t });
    }
    if !sensitivity.is_finite() || sensitivity <= 0.0 {
        return Err(DpError::InvalidSensitivity { value: sensitivity });
    }
    Ok(sensitivity / t * (1.0 / (1.0 - prob)).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_scale() {
        assert!(Laplace::new(0.0, 1.0).is_ok());
        assert!(matches!(
            Laplace::new(0.0, 0.0),
            Err(DpError::InvalidScale { .. })
        ));
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(0.0, f64::NAN).is_err());
        assert!(Laplace::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let d = Laplace::new(1.0, 2.0).unwrap();
        let mut total = 0.0;
        let step = 0.01;
        let mut x = -60.0;
        while x < 60.0 {
            total += d.pdf(x) * step;
            x += step;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral {total}");
    }

    #[test]
    fn cdf_properties() {
        let d = Laplace::new(0.0, 1.0).unwrap();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(d.cdf(-30.0) < 1e-12);
        assert!(d.cdf(30.0) > 1.0 - 1e-12);
        // CDF is monotone.
        let mut prev = 0.0;
        let mut x = -10.0;
        while x <= 10.0 {
            let c = d.cdf(x);
            assert!(c >= prev);
            prev = c;
            x += 0.1;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Laplace::new(3.0, 0.7).unwrap();
        for q in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let x = d.quantile(q);
            assert!((d.cdf(x) - q).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn quantile_rejects_out_of_range() {
        Laplace::new(0.0, 1.0).unwrap().quantile(1.0);
    }

    #[test]
    fn central_probability_matches_cdf_difference() {
        let d = Laplace::new(0.0, 2.0).unwrap();
        for t in [0.1, 0.5, 1.0, 4.0, 10.0] {
            let direct = d.central_probability(t);
            let via_cdf = d.cdf(t) - d.cdf(-t);
            assert!((direct - via_cdf).abs() < 1e-12, "t={t}");
        }
        assert_eq!(d.central_probability(-1.0), 0.0);
    }

    #[test]
    fn scale_for_tail_round_trips() {
        let t = 5.0;
        let prob = 0.8;
        let b = Laplace::scale_for_tail(t, prob).unwrap();
        let d = Laplace::centered(b).unwrap();
        assert!((d.central_probability(t) - prob).abs() < 1e-12);
    }

    #[test]
    fn scale_for_tail_validates() {
        assert!(Laplace::scale_for_tail(1.0, 0.0).is_err());
        assert!(Laplace::scale_for_tail(1.0, 1.0).is_err());
        assert!(Laplace::scale_for_tail(0.0, 0.5).is_err());
        assert!(Laplace::scale_for_tail(-2.0, 0.5).is_err());
    }

    #[test]
    fn required_epsilon_satisfies_tail_bound() {
        // The minimal epsilon must achieve exactly the requested central mass.
        let sensitivity = 2.5;
        let t = 40.0;
        let prob = 0.9;
        let eps = required_epsilon(sensitivity, t, prob).unwrap();
        let d = Laplace::centered(sensitivity / eps).unwrap();
        assert!((d.central_probability(t) - prob).abs() < 1e-12);
        // A smaller epsilon (more noise) must fail the bound.
        let d_less = Laplace::centered(sensitivity / (eps * 0.9)).unwrap();
        assert!(d_less.central_probability(t) < prob);
    }

    #[test]
    fn required_epsilon_zero_prob_is_zero() {
        // prob = 0 needs no noise control at all.
        assert_eq!(required_epsilon(1.0, 1.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn required_epsilon_validates() {
        assert!(required_epsilon(1.0, 1.0, 1.0).is_err());
        assert!(required_epsilon(1.0, 1.0, -0.1).is_err());
        assert!(required_epsilon(1.0, 0.0, 0.5).is_err());
        assert!(required_epsilon(0.0, 1.0, 0.5).is_err());
        assert!(required_epsilon(f64::NAN, 1.0, 0.5).is_err());
    }

    #[test]
    fn sampler_moments_match_theory() {
        let d = Laplace::new(5.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 400_000;
        let samples = d.sample_n(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.02,
            "var {var}"
        );
    }

    #[test]
    fn sampler_matches_cdf_empirically() {
        // Kolmogorov–Smirnov style check at a few fixed points.
        let d = Laplace::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples = d.sample_n(&mut rng, n);
        for x in [-3.0, -1.0, 0.0, 0.5, 2.0] {
            let empirical = samples.iter().filter(|&&s| s <= x).count() as f64 / n as f64;
            assert!(
                (empirical - d.cdf(x)).abs() < 0.005,
                "x={x}: empirical {empirical} vs {}",
                d.cdf(x)
            );
        }
    }

    #[test]
    fn sampler_tail_matches_central_probability() {
        let d = Laplace::centered(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let samples = d.sample_n(&mut rng, n);
        for t in [0.5, 1.0, 3.0] {
            let empirical = samples.iter().filter(|&&s| s.abs() <= t).count() as f64 / n as f64;
            assert!(
                (empirical - d.central_probability(t)).abs() < 0.005,
                "t={t}"
            );
        }
    }

    #[test]
    fn variance_formula() {
        assert_eq!(Laplace::centered(3.0).unwrap().variance(), 18.0);
    }

    #[test]
    fn draw_centered_matches_construct_then_sample_bit_for_bit() {
        // The sanctioned entry point must consume the RNG stream exactly
        // like the two-step form, so routing call sites through it never
        // moves released bits.
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let d = Laplace::centered(1.75).unwrap();
        for _ in 0..1_000 {
            let a = draw_centered(1.75, &mut rng_a).unwrap();
            let b = d.sample(&mut rng_b);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn draw_centered_rejects_bad_scales() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw_centered(0.0, &mut rng).is_err());
        assert!(draw_centered(-1.0, &mut rng).is_err());
        assert!(draw_centered(f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn free_central_probability_matches_method() {
        let d = Laplace::centered(2.0).unwrap();
        for t in [0.0, 0.5, 4.0] {
            assert_eq!(
                central_probability(2.0, t).unwrap(),
                d.central_probability(t)
            );
        }
        assert!(central_probability(0.0, 1.0).is_err());
    }
}
