//! `prc-runtime` — the workspace's deterministic structured-concurrency
//! executor (DESIGN.md §15).
//!
//! Every parallel site in the workspace — the index k-way merge, the
//! optimizer grid sweep, the batch pipeline's estimate fan-out, the
//! threaded network driver — runs on one persistent [`Runtime`] pool
//! through two order-stable entry points, [`Runtime::map_chunked`] and
//! [`Runtime::reduce_ordered`] (plus [`Runtime::map_chunked_mut`] for
//! disjoint in-place work). The contract has four clauses:
//!
//! * **Determinism** — inputs are split into contiguous chunks and
//!   results are assembled in submission order, so the output is a pure
//!   function of the input, bit-identical for any worker count
//!   (including the sequential one-chunk fallback) and any scheduling.
//! * **One panic path** — each chunk runs under `catch_unwind`; the
//!   first panic payload is captured and re-raised via
//!   [`std::panic::resume_unwind`] on the calling thread *after every
//!   sibling chunk has finished*, so no borrowed data is left in use and
//!   no worker is leaked. Workers survive task panics.
//! * **One cutoff policy** — [`CutoffPolicy`] subsumes the per-site
//!   constants that used to gate each fan-out; below threshold the call
//!   runs as a single chunk on the calling thread, with identical
//!   results.
//! * **Observability** — [`RuntimeCounters`] report tasks run, chunks
//!   executed, sequential fallbacks, and captured worker panics.
//!
//! Worker count resolves, in order: [`Builder::workers`] override, the
//! `PRC_THREADS` environment variable, then
//! [`std::thread::available_parallelism`] clamped to 1..=8 (the historic
//! per-site behavior). Most callers share the process-wide
//! [`Runtime::global`] pool; tests build private pools to sweep worker
//! counts.

mod counters;
mod cutoff;
mod pool;

pub use counters::RuntimeCounters;
pub use cutoff::CutoffPolicy;

use std::sync::OnceLock;

use pool::{lock, Pool, ScopedTask};

/// One contiguous chunk of a parallel map, in input order.
#[derive(Debug)]
pub struct Chunk<'a, T> {
    /// The chunk's items, a contiguous subslice of the input.
    pub items: &'a [T],
    /// Index of `items[0]` within the full input slice.
    pub offset: usize,
    /// Chunk ordinal (0-based, ascending with `offset`).
    pub index: usize,
}

/// The mutable counterpart of [`Chunk`]: a disjoint contiguous subslice.
#[derive(Debug)]
pub struct ChunkMut<'a, T> {
    /// The chunk's items, a contiguous subslice of the input.
    pub items: &'a mut [T],
    /// Index of `items[0]` within the full input slice.
    pub offset: usize,
    /// Chunk ordinal (0-based, ascending with `offset`).
    pub index: usize,
}

/// Configures a [`Runtime`] before construction.
#[derive(Debug, Default)]
pub struct Builder {
    workers: Option<usize>,
}

impl Builder {
    /// Overrides the worker count (clamped to at least 1), taking
    /// precedence over `PRC_THREADS` and the hardware default.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Builder {
        self.workers = Some(workers.max(1));
        self
    }

    /// Builds the runtime, spawning its worker threads.
    #[must_use]
    pub fn build(self) -> Runtime {
        let workers = self.workers.unwrap_or_else(default_workers);
        Runtime {
            pool: Pool::new(workers),
        }
    }
}

/// `PRC_THREADS` if set to a positive integer (clamped to 1..=128).
fn env_workers() -> Option<usize> {
    let raw = std::env::var("PRC_THREADS").ok()?;
    let parsed = raw.trim().parse::<usize>().ok()?;
    if parsed == 0 {
        None
    } else {
        Some(parsed.min(128))
    }
}

/// Worker-count default: `PRC_THREADS`, else available parallelism
/// clamped to 1..=8 (the clamp every refactored site used).
fn default_workers() -> usize {
    env_workers().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(1, 8)
    })
}

/// A persistent, deterministic worker pool.
///
/// See the crate docs for the contract. Dropping a `Runtime` drains its
/// queue and joins its workers; the shared [`Runtime::global`] pool
/// lives for the process.
pub struct Runtime {
    pool: Pool,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.worker_count())
            .finish()
    }
}

impl Runtime {
    /// Starts configuring a private pool (tests, benches).
    #[must_use]
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// The process-wide shared pool, built on first use from
    /// `PRC_THREADS` / available parallelism.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| Runtime::builder().build())
    }

    /// Number of pool worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.pool.worker_count()
    }

    /// Chunk lanes a parallel call over `len` items would use: one per
    /// worker, never more than the items, never less than one. This is
    /// what the broker reports as its fan-out width.
    #[must_use]
    pub fn lanes_for(&self, len: usize) -> usize {
        self.worker_count().min(len).max(1)
    }

    /// A snapshot of this pool's activity counters.
    #[must_use]
    pub fn counters(&self) -> RuntimeCounters {
        self.pool.counters().snapshot()
    }

    /// Maps contiguous chunks of `items` in parallel, returning the
    /// per-chunk results in submission (= input) order.
    ///
    /// `work` declares the call's total work in the caller's own units;
    /// `cutoff` decides whether that is worth a fan-out. Below the
    /// cutoff — or on a single-worker pool, or a single-item input — the
    /// whole input runs as one chunk on the calling thread. Either way
    /// the result is a pure function of `items` and `f`; callers whose
    /// `f` uses [`Chunk::offset`] / [`Chunk::index`] only for
    /// position-dependent labeling (dense indices, global offsets)
    /// remain bit-identical across worker counts.
    ///
    /// # Panics
    ///
    /// Re-raises (via [`std::panic::resume_unwind`]) the first panic
    /// captured from a chunk, after every sibling chunk has finished —
    /// the runtime's single panic path. The dispatch itself does not
    /// panic.
    pub fn map_chunked<T, R, F>(
        &self,
        items: &[T],
        work: usize,
        cutoff: CutoffPolicy,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(Chunk<'_, T>) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let lanes = self.lanes_for(items.len());
        if lanes <= 1 || cutoff.is_sequential(work) {
            self.pool.counters().record_sequential();
            return vec![f(Chunk {
                items,
                offset: 0,
                index: 0,
            })];
        }
        let chunk_len = items.len().div_ceil(lanes);
        let slots: Vec<std::sync::Mutex<Option<R>>> = items
            .chunks(chunk_len)
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(slots.len());
        for ((index, part), slot) in items.chunks(chunk_len).enumerate().zip(&slots) {
            let f = &f;
            tasks.push(Box::new(move || {
                let result = f(Chunk {
                    items: part,
                    offset: index * chunk_len,
                    index,
                });
                *lock(slot) = Some(result);
            }));
        }
        self.pool.counters().record_parallel(tasks.len() as u64);
        self.pool.run_batch(tasks);
        collect_slots(slots)
    }

    /// [`Runtime::map_chunked`] over disjoint mutable chunks, for sites
    /// that mutate items in place (the threaded network driver's
    /// per-node sampling). Same order, cutoff, and panic contract.
    ///
    /// # Panics
    ///
    /// Re-raises the first captured chunk panic after every sibling
    /// finishes, exactly like [`Runtime::map_chunked`].
    pub fn map_chunked_mut<T, R, F>(
        &self,
        items: &mut [T],
        work: usize,
        cutoff: CutoffPolicy,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(ChunkMut<'_, T>) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let lanes = self.lanes_for(items.len());
        if lanes <= 1 || cutoff.is_sequential(work) {
            self.pool.counters().record_sequential();
            return vec![f(ChunkMut {
                items,
                offset: 0,
                index: 0,
            })];
        }
        let chunk_len = items.len().div_ceil(lanes);
        let parts: Vec<&mut [T]> = items.chunks_mut(chunk_len).collect();
        let slots: Vec<std::sync::Mutex<Option<R>>> =
            parts.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(slots.len());
        for ((index, part), slot) in parts.into_iter().enumerate().zip(&slots) {
            let f = &f;
            tasks.push(Box::new(move || {
                let result = f(ChunkMut {
                    items: part,
                    offset: index * chunk_len,
                    index,
                });
                *lock(slot) = Some(result);
            }));
        }
        self.pool.counters().record_parallel(tasks.len() as u64);
        self.pool.run_batch(tasks);
        collect_slots(slots)
    }

    /// Maps chunks in parallel, then folds the per-chunk results on the
    /// calling thread in submission order: the parallel shape of every
    /// ordered reduction (argmin sweeps, first-error propagation).
    /// Because the fold runs sequentially over in-order results, any
    /// left-fold the caller could write over a sequential scan gives the
    /// same answer here, bit for bit.
    ///
    /// # Panics
    ///
    /// Re-raises the first captured chunk panic, exactly like
    /// [`Runtime::map_chunked`]; the fold runs only when no chunk
    /// panicked.
    pub fn reduce_ordered<T, R, A, F, G>(
        &self,
        items: &[T],
        work: usize,
        cutoff: CutoffPolicy,
        map: F,
        init: A,
        fold: G,
    ) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(Chunk<'_, T>) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.map_chunked(items, work, cutoff, map)
            .into_iter()
            .fold(init, fold)
    }
}

/// Unwraps the per-chunk result slots after a completed batch.
fn collect_slots<R>(slots: Vec<std::sync::Mutex<Option<R>>>) -> Vec<R> {
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // prc-lint: allow(P002, reason = "loud invariant: run_batch returns normally only after every chunk stored its result; a panicking chunk re-raised before this point")
                .expect("chunk result missing after batch completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunked_preserves_input_order() {
        let rt = Runtime::builder().workers(4).build();
        let items: Vec<usize> = (0..103).collect();
        let chunks = rt.map_chunked(&items, usize::MAX, CutoffPolicy::always_parallel(), |c| {
            (c.index, c.offset, c.items.to_vec())
        });
        let mut flat = Vec::new();
        for (i, (index, offset, part)) in chunks.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*offset, flat.len());
            flat.extend_from_slice(part);
        }
        assert_eq!(flat, items);
    }

    #[test]
    fn sequential_cutoff_is_bit_identical() {
        let rt = Runtime::builder().workers(4).build();
        let items: Vec<u64> = (0..1_000).map(|i| i * 7 + 3).collect();
        let sum = |c: Chunk<'_, u64>| c.items.iter().sum::<u64>();
        let parallel: u64 = rt
            .map_chunked(&items, items.len(), CutoffPolicy::min_work(1), sum)
            .into_iter()
            .sum();
        let sequential: u64 = rt
            .map_chunked(&items, items.len(), CutoffPolicy::min_work(usize::MAX), sum)
            .into_iter()
            .sum();
        assert_eq!(parallel, sequential);
        let counters = rt.counters();
        assert_eq!(counters.sequential_fallbacks, 1);
        assert_eq!(counters.tasks_run, 2);
        assert!(counters.chunks >= 2);
    }

    #[test]
    fn map_chunked_mut_sees_every_item_once() {
        let rt = Runtime::builder().workers(3).build();
        let mut items: Vec<u64> = (0..57).collect();
        let touched: usize = rt
            .map_chunked_mut(
                &mut items,
                usize::MAX,
                CutoffPolicy::always_parallel(),
                |c| {
                    for v in c.items.iter_mut() {
                        *v += 1_000;
                    }
                    c.items.len()
                },
            )
            .into_iter()
            .sum();
        assert_eq!(touched, 57);
        assert!(items
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u64 + 1_000));
    }

    #[test]
    fn reduce_ordered_folds_in_submission_order() {
        let rt = Runtime::builder().workers(5).build();
        let items: Vec<usize> = (0..41).collect();
        let folded = rt.reduce_ordered(
            &items,
            usize::MAX,
            CutoffPolicy::always_parallel(),
            |c| c.items.to_vec(),
            Vec::new(),
            |mut acc: Vec<usize>, part| {
                acc.extend(part);
                acc
            },
        );
        assert_eq!(folded, items);
    }

    #[test]
    fn first_panic_payload_is_preserved_and_workers_survive() {
        let rt = Runtime::builder().workers(2).build();
        let items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.map_chunked(&items, usize::MAX, CutoffPolicy::always_parallel(), |c| {
                if c.items.contains(&3) {
                    panic!("boom at chunk {}", c.index);
                }
                c.items.len()
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("payload is the original panic message");
        assert!(message.starts_with("boom at chunk"), "got {message:?}");
        assert!(rt.counters().worker_panics >= 1);
        // The pool is still alive and correct after the panic.
        let total: usize = rt
            .map_chunked(&items, usize::MAX, CutoffPolicy::always_parallel(), |c| {
                c.items.len()
            })
            .into_iter()
            .sum();
        assert_eq!(total, items.len());
    }

    #[test]
    fn empty_input_returns_no_chunks() {
        let rt = Runtime::builder().workers(2).build();
        let items: Vec<u8> = Vec::new();
        let out = rt.map_chunked(&items, usize::MAX, CutoffPolicy::always_parallel(), |c| {
            c.items.len()
        });
        assert!(out.is_empty());
        assert_eq!(rt.counters().tasks_run, 0);
    }

    #[test]
    fn builder_worker_override_wins() {
        let rt = Runtime::builder().workers(3).build();
        assert_eq!(rt.worker_count(), 3);
        assert_eq!(rt.lanes_for(0), 1);
        assert_eq!(rt.lanes_for(2), 2);
        assert_eq!(rt.lanes_for(100), 3);
    }
}
