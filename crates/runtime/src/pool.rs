//! The persistent worker pool: shared task queue, per-batch completion
//! latch, and the scoped-task lifetime erasure that makes pool reuse
//! possible.
//!
//! # Why an unsafe core exists
//!
//! A spawn-per-call executor (`std::thread::scope`) can run tasks that
//! borrow the caller's stack because the scope's join happens inside the
//! borrowed region. A *persistent* pool cannot express that in safe
//! Rust: its queue outlives every call, so queued closures must be
//! `'static`. [`Pool::run_batch`] therefore erases each task's lifetime
//! (`Box<dyn FnOnce() + Send + 'scope>` → `… + 'static`) and restores
//! the scope discipline manually.
//!
//! # Safety argument
//!
//! The erasure is sound because an erased task can never be observed —
//! run *or* dropped — after `run_batch` returns:
//!
//! 1. Every erased task is wrapped so that its last action is
//!    [`Batch::finish`]; by that point the caller's closure (and every
//!    `'scope` borrow it held) has already been consumed and dropped,
//!    and only the wrapper's owned `Arc<Batch>` survives.
//! 2. `run_batch` blocks — helping drain the queue, then waiting on the
//!    latch — until `finish` has been called once per task, so the
//!    borrows outlive every execution.
//! 3. Tasks leave the queue only by being executed: workers drain the
//!    queue before honoring shutdown, and [`Pool::drop`] joins every
//!    worker, so a queued task is never dropped unrun by a thread that
//!    could outlive the borrow.
//!
//! The calling thread *helps* execute queued tasks while it waits. That
//! keeps a single-worker pool live (the caller is the second lane), and
//! makes nested `run_batch` calls from inside a task deadlock-free: any
//! thread that would block first empties the queue, so queued work
//! always progresses.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::counters::AtomicCounters;

/// A queued unit of work after lifetime erasure.
type RawTask = Box<dyn FnOnce() + Send + 'static>;

/// A not-yet-erased unit of work borrowing the caller's scope.
pub(crate) type ScopedTask<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Locks a mutex, ignoring poison: every guarded value here (queue,
/// latch state) is valid after any interruption, and panics are already
/// routed through the batch latch — propagating poison would turn one
/// captured worker panic into a second, payload-less one.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<VecDeque<RawTask>>,
    /// Signalled when work is pushed or shutdown begins.
    work_ready: Condvar,
    shutdown: AtomicBool,
    counters: AtomicCounters,
}

/// Completion latch for one `run_batch` call.
struct Batch {
    state: Mutex<BatchState>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    /// First captured panic payload, re-raised by the submitter after
    /// all siblings finish — the runtime's single panic path.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

impl Batch {
    fn new(tasks: usize) -> Batch {
        Batch {
            state: Mutex::new(BatchState {
                remaining: tasks,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Marks one task finished, keeping the first panic payload. This is
    /// the last point a wrapped task touches any state; see the module
    /// safety argument.
    fn finish(&self, panic: Option<Box<dyn std::any::Any + Send + 'static>>) {
        let mut state = lock(&self.state);
        if let Some(payload) = panic {
            state.panic.get_or_insert(payload);
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// The persistent worker pool behind a [`crate::Runtime`].
pub(crate) struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads (at least one), parked on the queue.
    pub(crate) fn new(workers: usize) -> Pool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: AtomicCounters::default(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool { shared, workers }
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }

    pub(crate) fn counters(&self) -> &AtomicCounters {
        &self.shared.counters
    }

    /// Runs `tasks` to completion — the calling thread helps drain the
    /// queue — then re-raises the first captured panic payload via
    /// [`std::panic::resume_unwind`].
    ///
    /// This is the erasure boundary (see the module docs): the `'scope`
    /// borrows inside `tasks` stay alive for the whole call because this
    /// function does not return until the latch has counted every task
    /// finished.
    pub(crate) fn run_batch(&self, tasks: Vec<ScopedTask<'_>>) {
        if tasks.is_empty() {
            return;
        }
        let batch = Arc::new(Batch::new(tasks.len()));
        {
            let mut queue = lock(&self.shared.queue);
            for task in tasks {
                let latch = Arc::clone(&batch);
                let shared = Arc::clone(&self.shared);
                let wrapped: ScopedTask<'_> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    let panic = match result {
                        Ok(()) => None,
                        Err(payload) => {
                            shared.counters.record_panic();
                            Some(payload)
                        }
                    };
                    // `task` and its `'scope` borrows are dropped by now;
                    // only the owned `latch`/`shared` Arcs survive.
                    latch.finish(panic);
                });
                // SAFETY: the erased box borrows data that outlives this
                // call. It is executed to completion before `run_batch`
                // returns (the latch below blocks until every task called
                // `finish`, and `finish` is the wrapper's final touch of
                // the environment), and it cannot be dropped unrun
                // (workers drain the queue before exiting; `Pool::drop`
                // joins them). See the module-level safety argument.
                let erased: RawTask =
                    unsafe { std::mem::transmute::<ScopedTask<'_>, RawTask>(wrapped) };
                queue.push_back(erased);
            }
        }
        self.shared.work_ready.notify_all();
        self.help_until_done(&batch);
        let payload = lock(&batch.state).panic.take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Executes queued tasks until `batch` completes, waiting on the
    /// latch only while the queue is empty.
    fn help_until_done(&self, batch: &Batch) {
        loop {
            let task = lock(&self.shared.queue).pop_front();
            if let Some(task) = task {
                task();
                continue;
            }
            let state = lock(&batch.state);
            if state.remaining == 0 {
                return;
            }
            // The queue was empty a moment ago, so every task of this
            // batch is already claimed by a worker (or done) — `done` is
            // the only signal that matters for us. The timeout bounds
            // how long a helping opportunity (another batch refilling
            // the queue, e.g. a nested fan-out) goes unnoticed.
            drop(
                batch
                    .done
                    .wait_timeout(state, std::time::Duration::from_millis(1)),
            );
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            // A worker panic has already been captured and re-raised by
            // its batch; teardown join errors carry nothing new.
            drop(handle.join());
        }
    }
}

/// A worker: drain the queue, park on `work_ready`, exit on shutdown
/// only once the queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Wrapped tasks never unwind (they `catch_unwind` internally),
        // so one batch's panic cannot kill the lane another batch needs.
        task();
    }
}
