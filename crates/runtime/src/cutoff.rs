//! The unified sequential-cutoff policy.

/// Decides when a fan-out is worth its dispatch overhead.
///
/// Every parallel site used to carry its own ad-hoc constant — the index
/// merge's `1 << 15` entries, the optimizer's `PARALLEL_GRID_MIN` grid
/// points — with its own comment re-deriving the same argument. A
/// `CutoffPolicy` names that constant and gives it one semantics: a call
/// whose declared total `work` is below [`CutoffPolicy::threshold`] runs
/// as a single chunk on the calling thread. The cutoff never changes
/// results — every runtime entry point is bit-identical for any chunking,
/// including the one-chunk sequential fallback — it only decides who
/// computes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutoffPolicy {
    min_work: usize,
}

impl CutoffPolicy {
    /// Fans out only when the call declares at least `min_work` units of
    /// work (the unit is the caller's: merged entries, grid points,
    /// pending queries, nodes — whatever the per-item cost is measured
    /// in).
    #[must_use]
    pub const fn min_work(min_work: usize) -> CutoffPolicy {
        CutoffPolicy { min_work }
    }

    /// Always fans out (subject to pool size and item count) — for sites
    /// whose per-item work always dwarfs dispatch, like a network round.
    #[must_use]
    pub const fn always_parallel() -> CutoffPolicy {
        CutoffPolicy { min_work: 0 }
    }

    /// Whether a call declaring `work` units stays on the calling thread.
    #[must_use]
    pub const fn is_sequential(self, work: usize) -> bool {
        work < self.min_work
    }

    /// The declared minimum work for a fan-out.
    #[must_use]
    pub const fn threshold(self) -> usize {
        self.min_work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_work_gates_strictly_below_threshold() {
        let policy = CutoffPolicy::min_work(512);
        assert!(policy.is_sequential(0));
        assert!(policy.is_sequential(511));
        assert!(!policy.is_sequential(512));
        assert!(!policy.is_sequential(usize::MAX));
        assert_eq!(policy.threshold(), 512);
    }

    #[test]
    fn always_parallel_never_gates() {
        let policy = CutoffPolicy::always_parallel();
        assert!(!policy.is_sequential(0));
        assert!(!policy.is_sequential(1));
        assert_eq!(policy.threshold(), 0);
    }
}
