//! Pool observability counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone snapshot of one pool's activity, taken with
/// [`crate::Runtime::counters`].
///
/// Counters are diagnostics only: they are updated with relaxed atomics
/// and never feed back into scheduling or results, so reading them cannot
/// perturb the determinism contract. Consumers (the broker's stage
/// reporting, the bench harness) difference two snapshots the same way
/// they difference a cost-meter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Map/reduce calls dispatched through the pool (parallel and
    /// sequential-fallback alike).
    pub tasks_run: u64,
    /// Chunks executed by pool workers (the sequential fallback's single
    /// caller-side chunk is not counted here).
    pub chunks: u64,
    /// Calls that stayed on the calling thread — cutoff below threshold,
    /// a single-worker pool, or a single-item input.
    pub sequential_fallbacks: u64,
    /// Worker panics captured and re-raised through the single panic
    /// path (every sibling's panic is counted, not just the first).
    pub worker_panics: u64,
}

/// The pool-side atomic counterpart of [`RuntimeCounters`].
#[derive(Debug, Default)]
pub(crate) struct AtomicCounters {
    tasks_run: AtomicU64,
    chunks: AtomicU64,
    sequential_fallbacks: AtomicU64,
    worker_panics: AtomicU64,
}

impl AtomicCounters {
    pub(crate) fn record_parallel(&self, chunks: u64) {
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
        self.chunks.fetch_add(chunks, Ordering::Relaxed);
    }

    pub(crate) fn record_sequential(&self) {
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
        self.sequential_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> RuntimeCounters {
        RuntimeCounters {
            tasks_run: self.tasks_run.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            sequential_fallbacks: self.sequential_fallbacks.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
        }
    }
}
