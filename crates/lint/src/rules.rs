//! The invariant catalog: rule definitions, path scoping, allow
//! directives, and the per-file checking pass.
//!
//! # Rule catalog
//!
//! | id | invariant |
//! |---|---|
//! | B001 | `.sample(` call sites only inside `prc-dp` or test code |
//! | B002 | raw `Laplace::` / `Geometric::` distribution construction only inside `prc-dp` or test code |
//! | B003 | `rand::` dependency outside `prc-dp` needs a reasoned allow |
//! | D001 | no `HashMap` / `HashSet` in deterministic answer paths |
//! | D002 | no `Instant::now` / `SystemTime` in deterministic answer paths |
//! | D003 | no `thread_rng` / `from_entropy` / `rand::random` in production code |
//! | P001 | no `.unwrap()` in library code |
//! | P002 | no `.expect(` in library code |
//! | P003 | no `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library code |
//! | P004 | no indexing by integer literal (`xs[0]`) in library code |
//! | R001 | no ad-hoc threads (`thread::spawn` / scoped threads) outside `crates/runtime` |
//! | F001 | budget-flow: sampling reachable only under a reservation holder |
//! | F002 | determinism scope propagates through calls from pipeline roots |
//! | F003 | public API reaching a sanctioned panic documents `# Panics` |
//! | L001 | every allow directive needs a non-empty `reason` |
//! | L002 | per-file allow directives must suppress something |
//! | L003 | flow-rule allows (F001–F003) must suppress something |
//!
//! B/D/P rules are per-file and live here; F rules are interprocedural
//! and live in [`crate::flow`] (semantics in DESIGN.md §14). L002 covers
//! per-file rules only — whether an F-rule allow earned its keep is only
//! decidable after the workspace passes, which is L003's job.
//!
//! # Allow directives
//!
//! `// prc-lint: allow(RULE, reason = "…")` suppresses matching findings
//! on its own line and the line immediately below; for F001/F003 it is
//! attached to the function whose header block it sits in. The reason is
//! mandatory (L001) and the directive must actually suppress a finding
//! (L002/L003), so stale escapes can't accumulate.

use crate::scanner::{scan, ScannedFile};

/// One diagnostic emitted by the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `P001`.
    pub rule: &'static str,
    /// Workspace-relative path (or the fixture's declared virtual path).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

/// Every rule identifier the checker can emit, in catalog order.
pub const RULE_IDS: [&str; 17] = [
    "B001", "B002", "B003", "D001", "D002", "D003", "P001", "P002", "P003", "P004", "R001", "F001",
    "F002", "F003", "L001", "L002", "L003",
];

/// One-line summaries per rule, for SARIF `rules` metadata.
pub const RULE_SUMMARIES: [(&str, &str); 17] = [
    ("B001", "noise sampling only inside prc-dp"),
    ("B002", "raw distribution construction only inside prc-dp"),
    (
        "B003",
        "rand dependency outside prc-dp needs a reasoned allow",
    ),
    ("D001", "no unordered maps in deterministic answer paths"),
    ("D002", "no wall-clock reads in deterministic answer paths"),
    ("D003", "no unseeded RNGs in production code"),
    ("P001", "no .unwrap() in library code"),
    ("P002", "no .expect( in library code"),
    ("P003", "no panicking macros in library code"),
    ("P004", "no indexing by integer literal in library code"),
    (
        "R001",
        "ad-hoc thread creation only inside the prc-runtime executor",
    ),
    (
        "F001",
        "sampling reachable only under a budget reservation holder",
    ),
    (
        "F002",
        "determinism scope propagates through the call graph",
    ),
    (
        "F003",
        "public API reaching a sanctioned panic documents # Panics",
    ),
    ("L001", "allow directives carry a non-empty reason"),
    ("L002", "per-file allow directives suppress something"),
    ("L003", "flow-rule allow directives suppress something"),
];

/// The header a fixture uses to claim a virtual workspace path.
pub const FIXTURE_PATH_HEADER: &str = "// prc-lint-fixture: path =";

/// One parsed `prc-lint: allow(...)` directive.
#[derive(Debug)]
pub(crate) struct Allow {
    /// 1-based line the directive sits on.
    pub line: usize,
    /// The rule it names.
    pub rule: String,
    /// Whether a non-empty `reason = "…"` was given.
    pub has_reason: bool,
    /// Whether the directive suppressed any finding.
    pub used: bool,
    /// Whether the directive sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One file's analysis state: the substrate the per-file pass produces
/// and the interprocedural passes in [`crate::flow`] extend.
pub struct FileAnalysis {
    /// `/`-normalized workspace-relative (or fixture-declared) path.
    pub path: String,
    /// The scanned source.
    pub scanned: ScannedFile,
    /// Parsed allow directives with usage state.
    pub(crate) allows: Vec<Allow>,
    /// Per-line B/D/P findings, already filtered through the allows.
    pub findings: Vec<Finding>,
    /// 1-based lines where a P-rule finding was suppressed by a
    /// *reasoned* allow — the sanctioned panic sites F003 tracks.
    pub sanctioned: Vec<usize>,
}

/// Path classification, all over `/`-normalized workspace-relative
/// paths, compared component-wise so sibling directories can't spoof a
/// scope (`crates/core2/…` is not `crates/core/…`).
pub(crate) mod scope {
    /// Whether `path`'s leading components are exactly `prefix`.
    fn starts_with_components(path: &str, prefix: &[&str]) -> bool {
        let mut components = path.split('/');
        prefix
            .iter()
            .all(|want| components.next().is_some_and(|got| got == *want))
    }

    /// Test scope: fixtures, integration tests, benches, examples, and
    /// the whole benchmark crate are exempt from every production rule.
    pub fn is_test_path(path: &str) -> bool {
        starts_with_components(path, &["crates", "bench"])
            || path
                .split('/')
                .any(|c| c == "tests" || c == "benches" || c == "examples" || c == "fixtures")
    }

    /// The privacy substrate, where sampling primitives are sanctioned.
    pub fn is_dp_crate(path: &str) -> bool {
        starts_with_components(path, &["crates", "dp"])
    }

    /// The structured-concurrency executor, the one crate allowed to
    /// create threads (R001).
    pub fn is_runtime_crate(path: &str) -> bool {
        starts_with_components(path, &["crates", "runtime"])
    }

    /// The staged pipeline, where budget reservations are held.
    pub fn is_pipeline_path(path: &str) -> bool {
        starts_with_components(path, &["crates", "core", "src", "pipeline"])
    }

    /// Deterministic answer paths: code whose emitted bytes must be a
    /// pure function of (inputs, seed). See DESIGN.md §10.
    pub fn is_deterministic_path(path: &str) -> bool {
        path == "crates/core/src/broker.rs"
            || path == "crates/core/src/optimizer.rs"
            || starts_with_components(path, &["crates", "core", "src", "estimator"])
            || is_pipeline_path(path)
            || path == "crates/net/src/base_station.rs"
            || path == "crates/net/src/tree.rs"
    }

    /// Library code subject to panic-hygiene rules: crate `src/` trees,
    /// excluding binary targets (a CLI may die loudly).
    pub fn is_library_path(path: &str) -> bool {
        if is_test_path(path) {
            return false;
        }
        let components: Vec<&str> = path.split('/').collect();
        let in_src = components.contains(&"src");
        in_src && !components.contains(&"bin") && components.last().is_none_or(|f| *f != "main.rs")
    }
}

/// Runs the per-file pass over one file, leaving allow bookkeeping open
/// for the interprocedural passes.
pub fn analyze_file(path: &str, source: &str) -> FileAnalysis {
    let path = virtual_path(source).unwrap_or_else(|| path.replace('\\', "/"));
    let scanned = scan(source);
    let mut allows = collect_allows(&scanned);
    let mut findings = Vec::new();
    let mut sanctioned = Vec::new();

    for (idx, code) in scanned.code.iter().enumerate() {
        if scanned.in_test[idx] {
            continue;
        }
        for (rule, message) in line_violations(&path, code) {
            let line = idx + 1;
            if suppress_line(&mut allows, line, rule) {
                if rule.starts_with('P') && reasoned_allow_covers(&allows, line, rule) {
                    sanctioned.push(line);
                }
                continue;
            }
            findings.push(Finding {
                rule,
                path: path.clone(),
                line,
                snippet: snippet_at(&scanned, idx),
                message,
            });
        }
    }

    FileAnalysis {
        path,
        scanned,
        allows,
        findings,
        sanctioned,
    }
}

/// Emits the allow-hygiene findings (L001 always; L002 for per-file
/// rules; L003 is [`crate::flow`]'s job and needs the flow passes to
/// have run first).
pub fn allow_findings(analysis: &FileAnalysis) -> Vec<Finding> {
    let mut findings = Vec::new();
    for allow in &analysis.allows {
        if allow.in_test {
            continue;
        }
        if !allow.has_reason {
            findings.push(Finding {
                rule: "L001",
                path: analysis.path.clone(),
                line: allow.line,
                snippet: snippet_at(&analysis.scanned, allow.line - 1),
                message: format!(
                    "allow({}) must carry a non-empty reason: \
                     `prc-lint: allow({}, reason = \"…\")`",
                    allow.rule, allow.rule
                ),
            });
        }
        let flow_rule = matches!(allow.rule.as_str(), "F001" | "F002" | "F003");
        if !allow.used && !flow_rule {
            findings.push(Finding {
                rule: "L002",
                path: analysis.path.clone(),
                line: allow.line,
                snippet: snippet_at(&analysis.scanned, allow.line - 1),
                message: format!(
                    "allow({}) suppresses nothing on this line or the next — remove it",
                    allow.rule
                ),
            });
        }
    }
    findings
}

/// Lints one file's source under its workspace-relative `path`,
/// per-file rules only (no call-graph passes; F-rule allows are left to
/// the workspace pass and not audited here).
///
/// When the first line carries a [`FIXTURE_PATH_HEADER`], the declared
/// virtual path replaces `path` for scoping decisions, so the fixture
/// corpus can exercise path-dependent rules from anywhere on disk.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let analysis = analyze_file(path, source);
    let mut findings = analysis.findings.clone();
    findings.extend(allow_findings(&analysis));
    findings.sort_by(|a, b| (a.line, a.rule, &a.path).cmp(&(b.line, b.rule, &b.path)));
    findings
}

/// Reads a fixture's declared virtual path, if any.
pub fn virtual_path(source: &str) -> Option<String> {
    let first = source.lines().next()?;
    let rest = first.trim().strip_prefix(FIXTURE_PATH_HEADER)?;
    let p = rest.trim();
    if p.is_empty() {
        None
    } else {
        Some(p.replace('\\', "/"))
    }
}

/// All (rule, message) violations present on one blanked code line.
fn line_violations(path: &str, code: &str) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    if scope::is_test_path(path) {
        return out;
    }
    let dp = scope::is_dp_crate(path);
    let det = scope::is_deterministic_path(path);
    let lib = scope::is_library_path(path);

    if !dp {
        if code.contains(".sample(") {
            out.push((
                "B001",
                "noise may only be sampled inside prc-dp; route draws through \
                 prc_dp::laplace::draw_centered or a mechanism type"
                    .to_owned(),
            ));
        }
        for ctor in ["Laplace::", "Geometric::"] {
            if contains_token(code, ctor) {
                out.push((
                    "B002",
                    format!(
                        "raw `{ctor}` distribution construction belongs inside prc-dp; \
                         use the mechanism API or prc_dp::laplace free functions"
                    ),
                ));
            }
        }
        if contains_token(code, "rand::") || code.trim_start().starts_with("use rand;") {
            out.push((
                "B003",
                "a `rand` dependency outside prc-dp needs a reasoned allow \
                 documenting that it is simulation randomness, not privacy noise"
                    .to_owned(),
            ));
        }
    }
    if det {
        for token in ["HashMap", "HashSet"] {
            if contains_token(code, token) {
                out.push((
                    "D001",
                    format!(
                        "`{token}` iteration order is nondeterministic; deterministic \
                         answer paths must use BTreeMap/BTreeSet or sort before iterating"
                    ),
                ));
            }
        }
        for token in ["Instant::now", "SystemTime"] {
            if contains_token(code, token) {
                out.push((
                    "D002",
                    format!(
                        "`{token}` makes answers depend on wall-clock time; deterministic \
                         answer paths must be pure functions of (inputs, seed)"
                    ),
                ));
            }
        }
    }
    for token in ["thread_rng", "from_entropy", "rand::random"] {
        if contains_token(code, token) {
            out.push((
                "D003",
                format!("`{token}` is unseeded; production code must thread a seeded RNG"),
            ));
        }
    }
    if lib {
        if code.contains(".unwrap()") {
            out.push((
                "P001",
                "library code must not `.unwrap()`; return the error or restructure \
                 so the failure case is unrepresentable"
                    .to_owned(),
            ));
        }
        if code.contains(".expect(") {
            out.push((
                "P002",
                "library code must not `.expect(`; return a typed error (or carry a \
                 reasoned allow for a re-raised worker panic)"
                    .to_owned(),
            ));
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            if contains_token(code, mac) {
                out.push((
                    "P003",
                    format!("library code must not `{mac}`; return a typed error instead"),
                ));
            }
        }
        if has_literal_index(code) {
            out.push((
                "P004",
                "indexing by integer literal panics on short input; use `.first()`, \
                 `.get(n)`, destructuring, or iterators"
                    .to_owned(),
            ));
        }
        if !scope::is_runtime_crate(path) {
            for token in [
                "thread::spawn",
                "thread::scope",
                "thread::Builder",
                "crossbeam::thread",
            ] {
                if contains_token(code, token) {
                    out.push((
                        "R001",
                        format!(
                            "`{token}` creates ad-hoc threads; outside crates/runtime all \
                             parallelism must go through the shared prc_runtime::Runtime pool"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Substring match with an identifier boundary on the left.
pub(crate) fn contains_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let abs = start + pos;
        let boundary = abs == 0
            || code[..abs]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        start = abs + token.len();
    }
    false
}

/// Detects `ident[123]` — indexing an identifier by an integer literal.
fn has_literal_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' && i > 0 {
            let prev = bytes[i - 1] as char;
            if prev.is_alphanumeric() || prev == '_' {
                let mut j = i + 1;
                let mut digits = 0;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    digits += 1;
                    j += 1;
                }
                if digits > 0 && j < bytes.len() && bytes[j] == b']' {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

fn collect_allows(scanned: &ScannedFile) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, comment) in scanned.comments.iter().enumerate() {
        // Only a comment that IS the directive counts; prose that merely
        // mentions the syntax (docs, this file) is not an allow.
        let Some(body) = comment.trim().strip_prefix("prc-lint: allow(") else {
            continue;
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let inner = &body[..close];
        let (rule, rest) = match inner.split_once(',') {
            Some((r, rest)) => (r.trim(), rest.trim()),
            None => (inner.trim(), ""),
        };
        let has_reason = rest
            .strip_prefix("reason")
            .map(|r| r.trim_start())
            .and_then(|r| r.strip_prefix('='))
            .map(|r| r.trim().trim_matches('"').trim())
            .is_some_and(|r| !r.is_empty());
        allows.push(Allow {
            line: idx + 1,
            rule: rule.to_owned(),
            has_reason,
            used: false,
            in_test: scanned.in_test[idx],
        });
    }
    allows
}

/// Marks and reports whether an allow covers (`line`, `rule`).
pub(crate) fn suppress_line(allows: &mut [Allow], line: usize, rule: &str) -> bool {
    let mut hit = false;
    for allow in allows.iter_mut() {
        if allow.rule == rule && (allow.line == line || allow.line + 1 == line) {
            allow.used = true;
            hit = true;
        }
    }
    hit
}

/// Whether a *reasoned* allow covers (`line`, `rule`) — read-only twin
/// of [`suppress_line`] for sanctioned-panic bookkeeping.
fn reasoned_allow_covers(allows: &[Allow], line: usize, rule: &str) -> bool {
    allows.iter().any(|allow| {
        allow.rule == rule && allow.has_reason && (allow.line == line || allow.line + 1 == line)
    })
}

pub(crate) fn snippet_at(scanned: &ScannedFile, idx: usize) -> String {
    let raw = scanned.raw.get(idx).map(String::as_str).unwrap_or("");
    let trimmed = raw.trim();
    if trimmed.chars().count() > 120 {
        let cut: String = trimmed.chars().take(117).collect();
        format!("{cut}...")
    } else {
        trimmed.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn sample_outside_dp_is_b001() {
        let f = lint_source(
            "crates/core/src/x.rs",
            "fn f() { let v = d.sample(rng); }\n",
        );
        assert_eq!(rules_of(&f), vec!["B001"]);
        let f = lint_source("crates/dp/src/x.rs", "fn f() { let v = d.sample(rng); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn mechanism_types_do_not_trip_b002() {
        let src = "fn f() { let m = LaplaceMechanism::new(eps, sens); }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
        let src = "fn f() { let d = Laplace::centered(s); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            vec!["B002"]
        );
    }

    #[test]
    fn hashmap_only_flagged_on_deterministic_paths() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/broker.rs", src)),
            vec!["D001"]
        );
        assert!(lint_source("crates/pricing/src/x.rs", src).is_empty());
    }

    #[test]
    fn pipeline_modules_are_deterministic_paths() {
        let src = "use std::collections::HashMap;\n";
        for file in ["mod.rs", "stages.rs", "batch.rs"] {
            let path = format!("crates/core/src/pipeline/{file}");
            assert_eq!(rules_of(&lint_source(&path, src)), vec!["D001"], "{path}");
        }
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/pipeline/stages.rs", clock)),
            vec!["D002"]
        );
    }

    #[test]
    fn tree_driver_is_a_deterministic_path() {
        // The tree driver replays the flat round protocol and must stay
        // byte-identical to it; unordered maps or wall-clock reads there
        // would break the conformance kit's cross-driver guarantee.
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source("crates/net/src/tree.rs", src)),
            vec!["D001"]
        );
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/net/src/tree.rs", clock)),
            vec!["D002"]
        );
        assert!(lint_source("crates/net/src/network.rs", src).is_empty());
    }

    #[test]
    fn query_engine_is_a_deterministic_path() {
        // The engine owns boundary resolution for every estimator path;
        // a clock read or unordered map there would let resolved
        // positions drift between runs and break the bit-identity
        // contract the batched sweep is proven against.
        for file in ["mod.rs", "sweep.rs", "eytzinger.rs", "plan_cache.rs"] {
            let path = format!("crates/core/src/estimator/engine/{file}");
            assert!(scope::is_deterministic_path(&path), "{path}");
        }
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source(
                "crates/core/src/estimator/engine/sweep.rs",
                clock
            )),
            vec!["D002"]
        );
        let hash = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source(
                "crates/core/src/estimator/engine/plan_cache.rs",
                hash
            )),
            vec!["D001"]
        );
    }

    #[test]
    fn sibling_directories_cannot_spoof_scopes() {
        // Component-wise comparison: `crates/core2` / `crates/dp2` /
        // `crates/bench2` are ordinary paths, not scope members.
        let sample = "fn f() { let v = d.sample(rng); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/dp2/src/x.rs", sample)),
            vec!["B001"]
        );
        let hash = "use std::collections::HashMap;\n";
        assert!(lint_source("crates/core2/src/pipeline/stages.rs", hash).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/bench2/src/x.rs", unwrap)),
            vec!["P001"]
        );
        assert!(scope::is_test_path("crates/bench/src/x.rs"));
        assert!(!scope::is_test_path("crates/bench2/src/x.rs"));
        assert!(scope::is_pipeline_path("crates/core/src/pipeline/mod.rs"));
        assert!(!scope::is_pipeline_path("crates/core/src/pipeline2/mod.rs"));
        assert!(!scope::is_deterministic_path(
            "crates/core/src/estimator2/x.rs"
        ));
    }

    #[test]
    fn panic_rules_skip_bins_and_tests() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/net/src/x.rs", src)),
            vec!["P001"]
        );
        assert!(lint_source("crates/net/src/bin/tool.rs", src).is_empty());
        assert!(lint_source("crates/net/tests/x.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
        assert!(lint_source("crates/net/src/x.rs", in_test).is_empty());
    }

    #[test]
    fn ad_hoc_threads_are_r001_outside_the_runtime_crate() {
        for src in [
            "fn f() { std::thread::spawn(|| {}); }\n",
            "fn f() { thread::scope(|s| {}); }\n",
            "fn f() { thread::Builder::new(); }\n",
            "fn f() { crossbeam::thread::scope(|s| {}).unwrap(); }\n",
        ] {
            let f = lint_source("crates/core/src/x.rs", src);
            assert!(rules_of(&f).contains(&"R001"), "{src}");
        }
        // The executor itself is the sanctioned home for thread creation.
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert!(lint_source("crates/runtime/src/pool.rs", spawn).is_empty());
        // Test code stays exempt, like every per-file production rule.
        assert!(lint_source("crates/core/tests/x.rs", spawn).is_empty());
        assert!(lint_source("crates/bench/src/x.rs", spawn).is_empty());
        // Sibling directories cannot spoof the runtime scope.
        assert_eq!(
            rules_of(&lint_source("crates/runtime2/src/x.rs", spawn)),
            vec!["R001"]
        );
    }

    #[test]
    fn literal_index_detection() {
        assert!(has_literal_index("let a = xs[0];"));
        assert!(has_literal_index("pair[17] + 1"));
        assert!(!has_literal_index("let a = xs[i];"));
        assert!(!has_literal_index("let a = [0u8; 4];"));
        assert!(!has_literal_index("xs[i + 1]"));
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_used() {
        let src = "// prc-lint: allow(P001, reason = \"checked above\")\nfn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_l001() {
        let src = "// prc-lint: allow(P001)\nfn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/net/src/x.rs", src)),
            vec!["L001"]
        );
    }

    #[test]
    fn unused_allow_is_l002() {
        let src = "// prc-lint: allow(P001, reason = \"stale\")\nfn f() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/net/src/x.rs", src)),
            vec!["L002"]
        );
    }

    #[test]
    fn flow_rule_allows_are_not_audited_per_file() {
        // Whether an F-rule allow is stale is only decidable after the
        // interprocedural passes; lint_source leaves them alone (L003
        // covers them in the workspace pass).
        let src = "// prc-lint: allow(F002, reason = \"pure helper\")\nfn f() {}\n";
        assert!(lint_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn sanctioned_panic_lines_are_recorded() {
        let src = "pub fn f() {\n    // prc-lint: allow(P001, reason = \"caller checked\")\n    x.unwrap();\n}\n";
        let analysis = analyze_file("crates/net/src/x.rs", src);
        assert_eq!(analysis.sanctioned, vec![3]);
        // A reasonless allow suppresses nothing sanctioned.
        let src = "pub fn f() {\n    // prc-lint: allow(P001)\n    x.unwrap();\n}\n";
        let analysis = analyze_file("crates/net/src/x.rs", src);
        assert!(analysis.sanctioned.is_empty());
    }

    #[test]
    fn virtual_path_header_rescopes_the_file() {
        let src = "// prc-lint-fixture: path = crates/core/src/broker.rs\nuse std::collections::HashMap;\n";
        let f = lint_source("crates/lint/fixtures/fail/d001.rs", src);
        assert_eq!(rules_of(&f), vec!["D001"]);
        assert_eq!(f[0].path, "crates/core/src/broker.rs");
    }

    #[test]
    fn string_contents_never_trip_rules() {
        let src = "fn f() { let m = \"please .unwrap() and panic! now\"; }\n";
        assert!(lint_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn unseeded_rng_is_d003_even_inside_dp() {
        let src = "fn f() { let mut rng = thread_rng(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/dp/src/x.rs", src)),
            vec!["D003"]
        );
    }

    #[test]
    fn findings_are_sorted_by_line() {
        let src = "fn g() { y.expect(\"m\"); }\nfn f() { x.unwrap(); }\n";
        let f = lint_source("crates/net/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["P002", "P001"]);
        assert!(f[0].line < f[1].line);
    }
}
