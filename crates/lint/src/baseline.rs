//! Baseline files for gradual adoption.
//!
//! A baseline is a plain-text inventory of accepted findings, one per
//! line as `RULE<TAB>path<TAB>snippet` (`#` starts a comment). Matching
//! deliberately ignores line numbers: refactors that move an accepted
//! finding within its file don't churn the baseline, while changing the
//! offending line's text (or fixing it) does. `--write-baseline` emits
//! the current findings in this format; `--baseline` filters them.

use crate::rules::Finding;

/// One accepted finding.
#[derive(Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id, e.g. `F003`.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// The offending line's trimmed text.
    pub snippet: String,
}

/// Parses a baseline document. Malformed lines (fewer than three
/// tab-separated fields) are reported by 1-based line number.
///
/// # Errors
///
/// Returns every malformed line in one message.
pub fn parse(content: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = line.splitn(3, '\t');
        match (fields.next(), fields.next(), fields.next()) {
            (Some(rule), Some(path), Some(snippet)) if !rule.trim().is_empty() => {
                entries.push(BaselineEntry {
                    rule: rule.trim().to_owned(),
                    path: path.trim().to_owned(),
                    snippet: snippet.trim().to_owned(),
                });
            }
            _ => bad.push(idx + 1),
        }
    }
    if bad.is_empty() {
        Ok(entries)
    } else {
        Err(format!(
            "malformed baseline line{} {:?}: expected RULE<TAB>path<TAB>snippet",
            if bad.len() == 1 { "" } else { "s" },
            bad
        ))
    }
}

/// Renders findings in baseline format.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# prc-lint baseline: accepted findings, one per line as RULE<TAB>path<TAB>snippet.\n\
         # Regenerate with `prc-lint --write-baseline <file>`.\n",
    );
    for f in findings {
        out.push_str(&format!("{}\t{}\t{}\n", f.rule, f.path, f.snippet));
    }
    out
}

/// Splits findings into (new, baselined). A baseline entry matches a
/// finding when rule, path, and trimmed snippet agree.
pub fn partition(findings: Vec<Finding>, baseline: &[BaselineEntry]) -> (Vec<Finding>, usize) {
    let mut fresh = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let known = baseline
            .iter()
            .any(|b| b.rule == f.rule && b.path == f.path && b.snippet == f.snippet.trim());
        if known {
            suppressed += 1;
        } else {
            fresh.push(f);
        }
    }
    (fresh, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line: 7,
            snippet: snippet.to_owned(),
            message: String::new(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let findings = vec![
            finding("F003", "crates/core/src/x.rs", "pub fn f() {"),
            finding("P001", "crates/net/src/y.rs", "x.unwrap();"),
        ];
        let entries = parse(&render(&findings)).unwrap_or_default();
        assert_eq!(entries.len(), 2);
        let (fresh, suppressed) = partition(findings, &entries);
        assert!(fresh.is_empty());
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn matching_ignores_line_numbers_but_not_text() {
        let entries = parse("F001\tcrates/core/src/x.rs\tpub fn f() {\n").unwrap_or_default();
        let mut moved = finding("F001", "crates/core/src/x.rs", "pub fn f() {");
        moved.line = 99;
        let (fresh, suppressed) = partition(vec![moved], &entries);
        assert!(fresh.is_empty());
        assert_eq!(suppressed, 1);

        let edited = finding("F001", "crates/core/src/x.rs", "pub fn g() {");
        let (fresh, _) = partition(vec![edited], &entries);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn comments_and_blanks_are_skipped_and_bad_lines_reported() {
        let ok = parse("# header\n\nF002\tcrates/a/src/b.rs\tsnippet text\n");
        assert_eq!(ok.map(|e| e.len()), Ok(1));
        let err = parse("not a baseline line\n");
        assert!(err.is_err());
    }
}
