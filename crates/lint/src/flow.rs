//! The interprocedural passes: budget-flow (F001), determinism
//! reachability (F002), panic reachability (F003), and the workspace
//! allow audit (L003).
//!
//! All three passes run over the call graph from [`crate::graph`]; see
//! DESIGN.md §14 for the invariant catalog and the soundness trade-offs
//! of the underlying name resolution.
//!
//! - **F001** — every function from which a `prc-dp` sampling primitive
//!   is reachable without crossing a *reservation holder* (a pipeline
//!   function that visibly binds or acquires a [`Reservation`]) is
//!   budget-unprotected. Library entry points of unprotected chains are
//!   findings, as is any function that acquires a reservation and lets
//!   it go out of scope without `commit`/`rollback`/`abort`/`settle`.
//! - **F002** — the deterministic scope (D001/D002) propagates through
//!   calls: a helper defined outside the deterministic directories but
//!   reachable from them must not touch unordered maps or wall clocks.
//! - **F003** — a *sanctioned* panic site (a P-rule finding suppressed
//!   by a reasoned allow) taints its function; taint propagates to
//!   callers until absorbed by a `# Panics` doc section or an
//!   `allow(F003)`. Tainted unrestricted-`pub` library functions without
//!   either are findings.
//! - **L003** — a reasoned `allow(F001|F002|F003)` that suppresses
//!   nothing is stale and must be removed.
//!
//! [`Reservation`]: https://docs.rs/..

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::graph::{CallGraph, FileUnit, FnId};
use crate::items::{extract, FnItem};
use crate::rules::{scope, suppress_line, FileAnalysis, Finding};

/// Identifier tokens whose presence marks a function as visibly holding
/// or routing a budget reservation.
const RESERVATION_TOKENS: [&str; 3] = ["Reservation", "Reserved", "reservation"];

/// Identifier tokens that resolve a held reservation.
const RESOLUTION_TOKENS: [&str; 5] = ["commit", "rollback", "abort", "settle", "Settle"];

/// Runs every interprocedural pass over the analyzed files, marking
/// allow usage as it goes, and returns the combined findings.
pub fn interprocedural(analyses: &mut [FileAnalysis]) -> Vec<Finding> {
    let units: Vec<FileUnit> = analyses
        .iter()
        .map(|a| FileUnit {
            path: a.path.clone(),
            items: if scope::is_test_path(&a.path) {
                Vec::new()
            } else {
                extract(&a.scanned)
            },
        })
        .collect();
    let graph = CallGraph::build(&units);

    let mut findings = Vec::new();
    findings.extend(budget_flow(analyses, &units, &graph));
    findings.extend(determinism_reachability(analyses, &units, &graph));
    findings.extend(panic_reachability(analyses, &units, &graph));
    findings.extend(stale_flow_allows(analyses));
    findings
}

/// F001: budget-flow.
fn budget_flow(
    analyses: &mut [FileAnalysis],
    units: &[FileUnit],
    graph: &CallGraph,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Sampling primitives: prc-dp functions whose body textually draws.
    let mut primitives: BTreeSet<FnId> = BTreeSet::new();
    for (fi, unit) in units.iter().enumerate() {
        if !scope::is_dp_crate(&unit.path) {
            continue;
        }
        for (ii, item) in unit.items.iter().enumerate() {
            if item.in_test {
                continue;
            }
            let span = body_lines(item);
            let draws = span.clone().any(|idx| {
                analyses[fi]
                    .scanned
                    .code
                    .get(idx)
                    .is_some_and(|l| l.contains(".sample("))
            });
            if draws {
                primitives.insert((fi, ii));
            }
        }
    }

    // Reservation holders: pipeline functions that visibly bind or
    // acquire a reservation. They dominate everything they call.
    let is_holder = |id: FnId| -> bool {
        let (fi, ii) = id;
        let unit = &units[fi];
        if !scope::is_pipeline_path(&unit.path) {
            return false;
        }
        let item = &unit.items[ii];
        RESERVATION_TOKENS.iter().any(|t| item.idents.contains(*t))
            || item
                .calls
                .iter()
                .any(|c| c.name == "reserve" || c.name == "reserve_effective")
    };

    // An allow(F001) on a function sanctions the whole chain beneath
    // it, exactly like a holder would — the escape carries the budget
    // argument for everything it dominates.
    let mut sanctioners: BTreeSet<FnId> = BTreeSet::new();
    for (fi, unit) in units.iter().enumerate() {
        for (ii, item) in unit.items.iter().enumerate() {
            if !item.in_test && has_def_allow(&analyses[fi], item, "F001") {
                sanctioners.insert((fi, ii));
            }
        }
    }

    // Unprotected set: reverse closure of the primitives that never
    // crosses a blocker. `via` records the callee that admitted each
    // member, for witness chains.
    let closure = |blocks: &dyn Fn(FnId) -> bool| -> (BTreeSet<FnId>, BTreeMap<FnId, FnId>) {
        let mut unprotected: BTreeSet<FnId> = BTreeSet::new();
        let mut via: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> =
            primitives.iter().copied().filter(|&p| !blocks(p)).collect();
        unprotected.extend(queue.iter().copied());
        while let Some(f) = queue.pop_front() {
            if let Some(callers) = graph.callers.get(&f) {
                for &c in callers {
                    if !blocks(c) && unprotected.insert(c) {
                        via.insert(c, f);
                        queue.push_back(c);
                    }
                }
            }
        }
        (unprotected, via)
    };

    // The allow-free closure decides which allow(F001) directives earn
    // their keep; the sanctioned closure decides the findings.
    let (unprotected_pre, _) = closure(&is_holder);
    for &id in &sanctioners {
        if unprotected_pre.contains(&id) {
            let (fi, ii) = id;
            let item = &units[fi].items[ii];
            mark_def_allow(&mut analyses[fi], item, "F001");
        }
    }
    let (unprotected, via) = closure(&|id: FnId| is_holder(id) || sanctioners.contains(&id));

    // Library entry points of unprotected chains: functions in the set
    // whose callers (if any) are all outside library code, defined in a
    // library file outside prc-dp.
    for &id in &unprotected {
        let (fi, ii) = id;
        let unit = &units[fi];
        let item = &unit.items[ii];
        if scope::is_dp_crate(&unit.path) || !scope::is_library_path(&unit.path) {
            continue;
        }
        let entry = graph.callers.get(&id).is_none_or(|callers| {
            callers
                .iter()
                .all(|&(cf, _)| !scope::is_library_path(&units[cf].path))
        });
        if !entry {
            continue;
        }
        let chain = witness_chain(units, &via, id, &primitives);
        findings.push(finding_at(
            &analyses[fi],
            "F001",
            item.line,
            format!(
                "`{}` reaches a prc-dp sampling primitive with no reservation \
                 holder on the path ({chain}); route it through the pipeline \
                 stages or carry allow(F001) with the budget argument",
                display_name(item)
            ),
        ));
    }

    // Leaked reservations: a function that acquires a hold but neither
    // resolves it nor hands it on (no reservation token in its
    // signature/body reaches a caller).
    for (fi, unit) in units.iter().enumerate() {
        if !scope::is_library_path(&unit.path) {
            continue;
        }
        for item in &unit.items {
            if item.in_test {
                continue;
            }
            let acquires = item
                .calls
                .iter()
                .any(|c| c.name == "reserve" || c.name == "reserve_effective");
            if !acquires {
                continue;
            }
            let resolves = RESOLUTION_TOKENS.iter().any(|t| item.idents.contains(*t));
            let hands_on = RESERVATION_TOKENS.iter().any(|t| item.idents.contains(*t));
            if resolves || hands_on {
                continue;
            }
            if mark_def_allow(&mut analyses[fi], item, "F001") {
                continue;
            }
            findings.push(finding_at(
                &analyses[fi],
                "F001",
                item.line,
                format!(
                    "`{}` acquires a budget reservation but neither resolves it \
                     (commit/rollback/abort/settle) nor returns it to a caller — \
                     the hold leaks when it goes out of scope",
                    display_name(item)
                ),
            ));
        }
    }

    findings
}

/// F002: determinism reachability.
fn determinism_reachability(
    analyses: &mut [FileAnalysis],
    units: &[FileUnit],
    graph: &CallGraph,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Forward closure from every function defined in the deterministic
    // directories; `pred` records each function's discoverer.
    let mut reached: BTreeSet<FnId> = BTreeSet::new();
    let mut pred: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (fi, unit) in units.iter().enumerate() {
        if !scope::is_deterministic_path(&unit.path) {
            continue;
        }
        for (ii, item) in unit.items.iter().enumerate() {
            if !item.in_test {
                reached.insert((fi, ii));
                queue.push_back((fi, ii));
            }
        }
    }
    while let Some(f) = queue.pop_front() {
        if let Some(callees) = graph.callees.get(&f) {
            for &g in callees {
                if reached.insert(g) {
                    pred.insert(g, f);
                    queue.push_back(g);
                }
            }
        }
    }

    const D_TOKENS: [(&str, &str); 4] = [
        ("HashMap", "iteration order is nondeterministic"),
        ("HashSet", "iteration order is nondeterministic"),
        ("Instant::now", "reads the wall clock"),
        ("SystemTime", "reads the wall clock"),
    ];

    for &id in &reached {
        let (fi, ii) = id;
        let unit = &units[fi];
        if scope::is_deterministic_path(&unit.path)
            || scope::is_test_path(&unit.path)
            || !scope::is_library_path(&unit.path)
        {
            continue;
        }
        let item = &unit.items[ii];
        let chain = root_chain(units, &pred, id);
        for idx in body_lines(item) {
            let Some(code) = analyses[fi].scanned.code.get(idx) else {
                continue;
            };
            if analyses[fi]
                .scanned
                .in_test
                .get(idx)
                .copied()
                .unwrap_or(false)
            {
                continue;
            }
            for (token, why) in D_TOKENS {
                if !crate::rules::contains_token(code, token) {
                    continue;
                }
                let line = idx + 1;
                if suppress_line(&mut analyses[fi].allows, line, "F002") {
                    continue;
                }
                findings.push(finding_at(
                    &analyses[fi],
                    "F002",
                    line,
                    format!(
                        "`{token}` {why}, and `{}` is reachable from the \
                         deterministic answer path ({chain}); use ordered \
                         containers / pass time in, or carry allow(F002)",
                        display_name(item)
                    ),
                ));
            }
        }
    }

    findings
}

/// F003: panic reachability.
fn panic_reachability(
    analyses: &mut [FileAnalysis],
    units: &[FileUnit],
    graph: &CallGraph,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Sources: functions containing a sanctioned panic site.
    let mut sources: BTreeSet<FnId> = BTreeSet::new();
    for (fi, unit) in units.iter().enumerate() {
        for line in analyses[fi].sanctioned.clone() {
            if let Some(ii) = enclosing_fn(&unit.items, line) {
                if !unit.items[ii].in_test {
                    sources.insert((fi, ii));
                }
            }
        }
    }

    let mut documented: BTreeSet<FnId> = BTreeSet::new();
    for (fi, unit) in units.iter().enumerate() {
        for (ii, item) in unit.items.iter().enumerate() {
            if has_panics_doc(&analyses[fi], item) {
                documented.insert((fi, ii));
            }
        }
    }

    // First taint computation ignores allows, to decide which
    // allow(F003) directives actually earn their keep.
    let taint = |stops_at: &dyn Fn(FnId) -> bool| -> (BTreeSet<FnId>, BTreeMap<FnId, FnId>) {
        let mut tainted: BTreeSet<FnId> = BTreeSet::new();
        let mut via: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = sources.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            if !tainted.insert(f) || stops_at(f) {
                continue;
            }
            if let Some(callers) = graph.callers.get(&f) {
                for &c in callers {
                    if !tainted.contains(&c) {
                        via.entry(c).or_insert(f);
                        queue.push_back(c);
                    }
                }
            }
        }
        (tainted, via)
    };

    let (tainted_pre, _) = taint(&|id| documented.contains(&id));
    let mut allowed: BTreeSet<FnId> = BTreeSet::new();
    for &id in &tainted_pre {
        let (fi, ii) = id;
        // Splitting the borrow: mark_def_allow needs &mut analyses[fi].
        let item_line_ok = {
            let item = &units[fi].items[ii];
            mark_def_allow(&mut analyses[fi], item, "F003")
        };
        if item_line_ok {
            allowed.insert(id);
        }
    }

    let stops = |id: FnId| -> bool { documented.contains(&id) || allowed.contains(&id) };
    let (tainted, via) = taint(&stops);

    for &id in &tainted {
        let (fi, ii) = id;
        let unit = &units[fi];
        let item = &unit.items[ii];
        if !item.is_pub || item.in_test || stops(id) || !scope::is_library_path(&unit.path) {
            continue;
        }
        let chain = witness_chain(units, &via, id, &sources);
        findings.push(finding_at(
            &analyses[fi],
            "F003",
            item.line,
            format!(
                "public `{}` can reach a sanctioned panic site ({chain}); \
                 document the contract with a `# Panics` section or carry \
                 allow(F003)",
                display_name(item)
            ),
        ));
    }

    findings
}

/// L003: reasoned flow-rule allows that suppressed nothing.
fn stale_flow_allows(analyses: &mut [FileAnalysis]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for analysis in analyses.iter() {
        for allow in &analysis.allows {
            let flow_rule = matches!(allow.rule.as_str(), "F001" | "F002" | "F003");
            if !flow_rule || allow.in_test || allow.used || !allow.has_reason {
                continue;
            }
            findings.push(finding_at(
                analysis,
                "L003",
                allow.line,
                format!(
                    "allow({}) suppresses no interprocedural finding — the \
                     invariant now holds here; remove the stale escape",
                    allow.rule
                ),
            ));
        }
    }
    findings
}

/// 0-based line indices of an item's signature-plus-body span.
fn body_lines(item: &FnItem) -> std::ops::Range<usize> {
    match item.body {
        Some((_, end)) => item.line - 1..end,
        None => item.line - 1..item.line,
    }
}

/// The innermost function whose span contains 1-based `line`.
fn enclosing_fn(items: &[FnItem], line: usize) -> Option<usize> {
    items
        .iter()
        .enumerate()
        .filter(|(_, item)| {
            let end = item.body.map_or(item.line, |(_, e)| e);
            item.line <= line && line <= end
        })
        .max_by_key(|(_, item)| item.line)
        .map(|(ii, _)| ii)
}

/// 0-based indices of the contiguous header block (doc comments,
/// attributes, allow directives) directly above an item's `fn` line.
fn header_block(analysis: &FileAnalysis, item: &FnItem) -> std::ops::Range<usize> {
    let fn_idx = item.line - 1;
    let mut start = fn_idx;
    while start > 0 {
        let prev = start - 1;
        let code_blank = analysis
            .scanned
            .code
            .get(prev)
            .is_none_or(|l| l.trim().is_empty());
        let is_attr = analysis
            .scanned
            .code
            .get(prev)
            .is_some_and(|l| l.trim_start().starts_with('#'));
        // A comment-only line — including a bare `///` paragraph break,
        // whose captured comment text is empty.
        let raw_nonblank = analysis
            .scanned
            .raw
            .get(prev)
            .is_some_and(|l| !l.trim().is_empty());
        if is_attr || (code_blank && raw_nonblank) {
            start = prev;
        } else {
            break;
        }
    }
    start..fn_idx
}

/// Whether the item's doc block carries a `# Panics` section.
fn has_panics_doc(analysis: &FileAnalysis, item: &FnItem) -> bool {
    header_block(analysis, item).any(|idx| {
        analysis
            .scanned
            .comments
            .get(idx)
            .is_some_and(|c| c.contains("# Panics"))
    })
}

/// Whether a reasoned `allow(rule)` directive sits on the item's `fn`
/// line or in its header block, without marking it used.
fn has_def_allow(analysis: &FileAnalysis, item: &FnItem, rule: &str) -> bool {
    let header = header_block(analysis, item);
    analysis.allows.iter().any(|allow| {
        allow.rule == rule
            && allow.has_reason
            && (allow.line == item.line || (allow.line > header.start && allow.line <= header.end))
    })
}

/// Finds an `allow(rule)` directive on the item's `fn` line or in its
/// header block; marks it used and reports whether one was found.
fn mark_def_allow(analysis: &mut FileAnalysis, item: &FnItem, rule: &str) -> bool {
    let header = header_block(analysis, item);
    let mut hit = false;
    for allow in analysis.allows.iter_mut() {
        if allow.rule != rule || !allow.has_reason {
            continue;
        }
        let idx = allow.line - 1;
        if idx == item.line - 1 || (idx >= header.start && idx < header.end) {
            allow.used = true;
            hit = true;
        }
    }
    hit
}

/// `Type::name` or `name` for messages.
fn display_name(item: &FnItem) -> String {
    match &item.impl_type {
        Some(ty) => format!("{ty}::{}", item.name),
        None => item.name.clone(),
    }
}

/// Walks `via` pointers from `id` down to a terminal set, rendering
/// `a -> b -> c` for witness messages.
fn witness_chain(
    units: &[FileUnit],
    via: &BTreeMap<FnId, FnId>,
    id: FnId,
    terminals: &BTreeSet<FnId>,
) -> String {
    let mut names = vec![display_name(&units[id.0].items[id.1])];
    let mut cur = id;
    let mut hops = 0;
    while !terminals.contains(&cur) && hops < 12 {
        match via.get(&cur) {
            Some(&next) => {
                names.push(display_name(&units[next.0].items[next.1]));
                cur = next;
                hops += 1;
            }
            None => break,
        }
    }
    names.join(" -> ")
}

/// Walks `pred` pointers from `id` back up to a root, rendering the
/// call chain root-first.
fn root_chain(units: &[FileUnit], pred: &BTreeMap<FnId, FnId>, id: FnId) -> String {
    let mut names = vec![display_name(&units[id.0].items[id.1])];
    let mut cur = id;
    let mut hops = 0;
    while hops < 12 {
        match pred.get(&cur) {
            Some(&prev) => {
                names.push(display_name(&units[prev.0].items[prev.1]));
                cur = prev;
                hops += 1;
            }
            None => break,
        }
    }
    names.reverse();
    names.join(" -> ")
}

fn finding_at(
    analysis: &FileAnalysis,
    rule: &'static str,
    line: usize,
    message: String,
) -> Finding {
    Finding {
        rule,
        path: analysis.path.clone(),
        line,
        snippet: crate::rules::snippet_at(&analysis.scanned, line.saturating_sub(1)),
        message,
    }
}
