//! SARIF 2.1.0 output, so CI can upload findings as code-scanning
//! annotations.
//!
//! The document is built by hand (the vendor tree has no JSON
//! dependency) and validated structurally by a unit test through
//! [`crate::json`]. One run, one driver (`prc-lint`), one result per
//! finding with a `physicalLocation` at the finding's line.

use crate::rules::{Finding, RULE_SUMMARIES};

/// Renders findings as a SARIF 2.1.0 document.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(2048 + findings.len() * 256);
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"prc-lint\",\n");
    out.push_str(
        "          \"informationUri\": \"https://github.com/prc/prc\",\n          \"rules\": [\n",
    );
    for (i, (id, summary)) in RULE_SUMMARIES.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            escape(id),
            escape(summary)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \"region\": {{\"startLine\": {}}}\n              }}\n            }}\n          ]\n        }}",
            escape(f.rule),
            escape(&f.message),
            escape(&f.path),
            f.line
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::rules::RULE_IDS;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "F003",
            path: "crates/core/src/x.rs".to_owned(),
            line: 7,
            snippet: "pub fn f()".to_owned(),
            message: "a \"quoted\" message\nwith a newline".to_owned(),
        }]
    }

    #[test]
    fn output_is_valid_sarif_2_1_0() {
        let doc = parse(&render_sarif(&sample())).unwrap_or(Value::Null);
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert!(doc
            .get("$schema")
            .and_then(Value::as_str)
            .is_some_and(|s| s.contains("sarif-2.1.0")));
        let runs = doc.get("runs").map(Value::items).unwrap_or_default();
        assert_eq!(runs.len(), 1);
        let driver = runs
            .first()
            .and_then(|r| r.get("tool"))
            .and_then(|t| t.get("driver"));
        assert_eq!(
            driver.and_then(|d| d.get("name")).and_then(Value::as_str),
            Some("prc-lint")
        );
        let rules = driver
            .and_then(|d| d.get("rules"))
            .map(Value::items)
            .unwrap_or_default();
        assert_eq!(rules.len(), RULE_IDS.len());
    }

    #[test]
    fn results_carry_rule_location_and_escaped_message() {
        let doc = parse(&render_sarif(&sample())).unwrap_or(Value::Null);
        let results = doc
            .get("runs")
            .map(Value::items)
            .unwrap_or_default()
            .first()
            .and_then(|r| r.get("results"))
            .map(Value::items)
            .unwrap_or_default()
            .to_vec();
        assert_eq!(results.len(), 1);
        let result = results.first().cloned().unwrap_or(Value::Null);
        assert_eq!(result.get("ruleId").and_then(Value::as_str), Some("F003"));
        assert_eq!(
            result
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Value::as_str),
            Some("a \"quoted\" message\nwith a newline")
        );
        let location = result
            .get("locations")
            .map(Value::items)
            .unwrap_or_default()
            .first()
            .and_then(|l| l.get("physicalLocation"))
            .cloned()
            .unwrap_or(Value::Null);
        assert_eq!(
            location
                .get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str),
            Some("crates/core/src/x.rs")
        );
        assert_eq!(
            location
                .get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn empty_report_is_still_valid() {
        let doc = parse(&render_sarif(&[])).unwrap_or(Value::Null);
        let results = doc
            .get("runs")
            .map(Value::items)
            .unwrap_or_default()
            .first()
            .and_then(|r| r.get("results"))
            .map(Value::items)
            .unwrap_or_default()
            .len();
        assert_eq!(results, 0);
    }
}
