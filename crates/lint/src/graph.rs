//! Workspace call-graph construction over the extracted items.
//!
//! # Resolution and ambiguity policy
//!
//! The graph is resolved by name with syntactic hints, never by types,
//! so it **over-approximates**: an edge means "may call", and a missing
//! edge means the callee is external to the workspace (std, vendored
//! crates) or test-only. Concretely:
//!
//! - **Path calls** `a::b::f(...)` resolve to workspace functions named
//!   `f` whose impl type, file stem, module, or crate matches the last
//!   meaningful qualifier segment (`crate`/`super`/`self` are skipped;
//!   `prc_dp` matches the `dp` crate). No match → external, no edge.
//! - **Method calls** `recv.m(...)` resolve to impl methods named `m` on
//!   the inferred receiver type when the extractor inferred one and that
//!   type defines `m` somewhere in the workspace; otherwise — the
//!   ambiguity policy — to **every** workspace impl method named `m`.
//!   Unknown receivers widen rather than drop, because a missed edge
//!   would silently weaken F001/F003.
//! - **Bare calls** `f(...)` resolve to free functions named `f` in the
//!   same file when one exists, else to every workspace free function
//!   named `f`.
//!
//! Test functions and test-path files are outside the graph entirely:
//! interprocedural invariants govern production reachability.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{Call, CallKind, FnItem};

/// A function's identity: (file index, item index) into the workspace's
/// extracted units.
pub type FnId = (usize, usize);

/// One file's extracted items under its workspace-relative path.
pub struct FileUnit {
    /// `/`-normalized workspace-relative path.
    pub path: String,
    /// Extracted `fn` items.
    pub items: Vec<FnItem>,
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// Forward edges: caller → callees.
    pub callees: BTreeMap<FnId, BTreeSet<FnId>>,
    /// Reverse edges: callee → callers.
    pub callers: BTreeMap<FnId, BTreeSet<FnId>>,
}

impl CallGraph {
    /// Builds the graph over every non-test function in `units`.
    pub fn build(units: &[FileUnit]) -> CallGraph {
        let index = NameIndex::build(units);
        let mut callees: BTreeMap<FnId, BTreeSet<FnId>> = BTreeMap::new();
        let mut callers: BTreeMap<FnId, BTreeSet<FnId>> = BTreeMap::new();

        for (file_idx, unit) in units.iter().enumerate() {
            for (item_idx, item) in unit.items.iter().enumerate() {
                if item.in_test {
                    continue;
                }
                let caller: FnId = (file_idx, item_idx);
                for call in &item.calls {
                    for target in index.resolve(units, file_idx, call) {
                        if target == caller {
                            continue;
                        }
                        callees.entry(caller).or_default().insert(target);
                        callers.entry(target).or_default().insert(caller);
                    }
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions with no workspace callers.
    pub fn is_root(&self, id: FnId) -> bool {
        !self.callers.contains_key(&id)
    }
}

/// Name-keyed candidate sets for resolution.
struct NameIndex {
    /// Method name → impl methods with that name.
    methods: BTreeMap<String, Vec<FnId>>,
    /// (impl type, method name) → methods.
    typed_methods: BTreeMap<(String, String), Vec<FnId>>,
    /// Free-function name → free functions with that name.
    free: BTreeMap<String, Vec<FnId>>,
    /// Any-function name → all functions with that name.
    any: BTreeMap<String, Vec<FnId>>,
}

impl NameIndex {
    fn build(units: &[FileUnit]) -> NameIndex {
        let mut methods: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut typed_methods: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut any: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (file_idx, unit) in units.iter().enumerate() {
            for (item_idx, item) in unit.items.iter().enumerate() {
                if item.in_test {
                    continue;
                }
                let id: FnId = (file_idx, item_idx);
                any.entry(item.name.clone()).or_default().push(id);
                match &item.impl_type {
                    Some(ty) => {
                        methods.entry(item.name.clone()).or_default().push(id);
                        typed_methods
                            .entry((ty.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => free.entry(item.name.clone()).or_default().push(id),
                }
            }
        }
        NameIndex {
            methods,
            typed_methods,
            free,
            any,
        }
    }

    fn resolve(&self, units: &[FileUnit], caller_file: usize, call: &Call) -> Vec<FnId> {
        match &call.kind {
            CallKind::Bare => {
                let candidates = match self.free.get(&call.name) {
                    Some(c) => c,
                    None => return Vec::new(),
                };
                let local: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|(f, _)| *f == caller_file)
                    .collect();
                if local.is_empty() {
                    candidates.clone()
                } else {
                    local
                }
            }
            CallKind::Method { recv } => {
                if let Some(ty) = recv {
                    if let Some(c) = self.typed_methods.get(&(ty.clone(), call.name.clone())) {
                        return c.clone();
                    }
                    // The inferred type defines no such method anywhere:
                    // the call is external (e.g. `handle.join()`), unless
                    // the name exists on other workspace types — then the
                    // inference was likely wrong, so widen.
                }
                self.methods.get(&call.name).cloned().unwrap_or_default()
            }
            CallKind::Path { qualifier } => {
                let seg = qualifier
                    .iter()
                    .rev()
                    .find(|s| !matches!(s.as_str(), "crate" | "super" | "self"));
                let candidates = match self.any.get(&call.name) {
                    Some(c) => c,
                    None => return Vec::new(),
                };
                match seg {
                    Some(seg) => candidates
                        .iter()
                        .copied()
                        .filter(|&id| qualifier_matches(units, id, seg))
                        .collect(),
                    // `crate::f(...)` / `self::f(...)`: any free fn name.
                    None => candidates
                        .iter()
                        .copied()
                        .filter(|&(f, i)| units[f].items[i].impl_type.is_none())
                        .collect(),
                }
            }
        }
    }
}

/// Whether a path qualifier segment plausibly names the unit holding
/// `id`: its impl type, its file stem, an enclosing inline module, or
/// its crate (`prc_dp` ↔ `crates/dp/`).
fn qualifier_matches(units: &[FileUnit], id: FnId, seg: &str) -> bool {
    let (file_idx, item_idx) = id;
    let unit = &units[file_idx];
    let item = &unit.items[item_idx];
    if item.impl_type.as_deref() == Some(seg) {
        return true;
    }
    if item.modules.iter().any(|m| m == seg) {
        return true;
    }
    let components: Vec<&str> = unit.path.split('/').collect();
    let stem = components
        .last()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if stem == seg
        || (stem == "mod" && components.len() >= 2 && components[components.len() - 2] == seg)
    {
        return true;
    }
    let crate_name = match (components.first(), components.get(1)) {
        (Some(&"crates"), Some(name)) => *name,
        (Some(&"src"), _) => "prc",
        _ => "",
    };
    let normalized = seg.strip_prefix("prc_").unwrap_or(seg);
    !crate_name.is_empty() && normalized == crate_name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scanner::scan;

    fn units(files: &[(&str, &str)]) -> Vec<FileUnit> {
        files
            .iter()
            .map(|(path, src)| FileUnit {
                path: (*path).to_owned(),
                items: extract(&scan(src)),
            })
            .collect()
    }

    fn names(units: &[FileUnit], ids: &BTreeSet<FnId>) -> Vec<String> {
        ids.iter()
            .map(|&(f, i)| units[f].items[i].name.clone())
            .collect()
    }

    #[test]
    fn bare_calls_prefer_same_file() {
        let u = units(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&u);
        let callees = g.callees.get(&(0, 0)).cloned().unwrap_or_default();
        assert_eq!(callees, BTreeSet::from([(0, 1)]));
    }

    #[test]
    fn path_calls_match_crate_and_file_qualifiers() {
        let u = units(&[
            (
                "crates/core/src/pipeline/stages.rs",
                "fn perturb() { prc_dp::laplace::draw_centered(1.0); }\n",
            ),
            (
                "crates/dp/src/laplace.rs",
                "pub fn draw_centered(s: f64) {}\n",
            ),
            ("crates/net/src/laplace.rs", "pub fn other() {}\n"),
        ]);
        let g = CallGraph::build(&u);
        let callees = g.callees.get(&(0, 0)).cloned().unwrap_or_default();
        assert_eq!(names(&u, &callees), vec!["draw_centered"]);
    }

    #[test]
    fn typed_method_calls_do_not_widen() {
        let u = units(&[(
            "crates/core/src/pipeline/mod.rs",
            "struct A; struct B;\nimpl A { fn run(&self) {} }\nimpl B { fn run(&self) {} }\nfn drive() { A { }.run(); }\n",
        )]);
        let g = CallGraph::build(&u);
        let callees = g.callees.get(&(0, 2)).cloned().unwrap_or_default();
        assert_eq!(callees.len(), 1);
        let (_, i) = callees.iter().next().copied().unwrap_or((0, 0));
        assert_eq!(u[0].items[i].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn unknown_receiver_widens_to_all_candidates() {
        let u = units(&[(
            "crates/core/src/x.rs",
            "struct A; struct B;\nimpl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn drive(x: &dyn G) { x.go(); }\n",
        )]);
        let g = CallGraph::build(&u);
        let callees = g.callees.get(&(0, 2)).cloned().unwrap_or_default();
        assert_eq!(callees.len(), 2);
    }

    #[test]
    fn external_calls_produce_no_edges() {
        let u = units(&[(
            "crates/core/src/x.rs",
            "fn f(h: Handle) { h.join(); std::mem::drop(h); }\n",
        )]);
        let g = CallGraph::build(&u);
        assert!(g.callees.is_empty());
    }

    #[test]
    fn test_functions_are_outside_the_graph() {
        let u = units(&[(
            "crates/core/src/x.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { prod(); }\n}\n",
        )]);
        let g = CallGraph::build(&u);
        assert!(g.callees.is_empty());
        assert!(g.is_root((0, 0)));
    }
}
