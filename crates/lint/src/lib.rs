//! `prc-lint`: a dependency-free static invariant checker for the prc
//! workspace.
//!
//! The workspace carries invariant families that the type system cannot
//! express and that `cargo test` only catches by accident:
//!
//! - **Budget hygiene (B)** — every bit of privacy noise is drawn inside
//!   `prc-dp`, where the budget accountant can see it. Sampling call
//!   sites, raw distribution construction, and `rand` dependencies
//!   outside the substrate are findings.
//! - **Determinism hygiene (D)** — the broker, estimators, optimizer,
//!   and base station release answers that must be bit-reproducible from
//!   (inputs, seed). Unordered-map iteration, wall-clock reads, and
//!   unseeded RNGs in those paths are findings.
//! - **Panic hygiene (P)** — library crates return typed errors;
//!   `.unwrap()`, `.expect(`, panicking macros, and indexing by integer
//!   literal are findings.
//! - **Flow invariants (F)** — the interprocedural half: budget flow
//!   must pass through a reservation holder before any sampling
//!   primitive (F001), the deterministic scope propagates through calls
//!   (F002), and public API that can reach a sanctioned panic documents
//!   the contract (F003). These run on a workspace call graph built by
//!   [`lexer`] → [`items`] → [`graph`] and checked in [`flow`].
//!
//! The checker is textual — a comment/string-aware scanner plus
//! path-scoped token rules and a heuristic call graph — because the
//! vendor tree is offline and a full parser dependency (`syn`) is
//! unavailable. The trade-offs are documented per rule in [`rules`] and
//! per pass in DESIGN.md §14; escape hatches are spelled
//! `// prc-lint: allow(RULE, reason = "…")` and are themselves linted
//! (missing reason → L001, suppressing nothing → L002/L003).

pub mod baseline;
pub mod flow;
pub mod graph;
pub mod items;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod scanner;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{lint_source, Finding, FIXTURE_PATH_HEADER, RULE_IDS};
pub use sarif::render_sarif;

/// Directory names never descended into when walking a tree.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

/// Lints a set of files as one workspace: the per-file pass over each,
/// then the interprocedural passes over the whole set, then the allow
/// audit. `files` holds `(workspace-relative path, source)` pairs; a
/// [`FIXTURE_PATH_HEADER`] on a source's first line overrides its path.
///
/// Findings come back sorted by (path, line, rule).
pub fn lint_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let mut analyses: Vec<rules::FileAnalysis> = files
        .iter()
        .map(|(path, source)| rules::analyze_file(path, source))
        .collect();
    let mut findings: Vec<Finding> = analyses.iter().flat_map(|a| a.findings.clone()).collect();
    findings.extend(flow::interprocedural(&mut analyses));
    for analysis in &analyses {
        findings.extend(rules::allow_findings(analysis));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Lints every `.rs` file under `root` as one workspace, returning
/// findings sorted by (path, line, rule).
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let source = fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, source));
    }
    Ok(lint_workspace(&sources))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders findings as human-readable text, one per line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}: {}:{}: {}\n    {}\n",
            f.rule, f.path, f.line, f.message, f.snippet
        ));
    }
    out.push_str(&format!(
        "{} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Renders findings as a machine-readable JSON document.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One fixture's outcome in a self-test run.
#[derive(Debug)]
pub struct FixtureResult {
    /// Fixture file name.
    pub name: String,
    /// What went wrong; `None` when the fixture behaved as expected.
    pub problem: Option<String>,
}

/// Splits a fixture source into its virtual files: each
/// [`FIXTURE_PATH_HEADER`] line starts a new unit claiming the declared
/// path (the header stays as the unit's first line). A fixture without
/// headers is one unit under its own file name.
fn fixture_units(name: &str, source: &str) -> Vec<(String, String)> {
    let mut units: Vec<(String, String)> = Vec::new();
    for line in source.lines() {
        let is_header = line.trim().starts_with(FIXTURE_PATH_HEADER);
        if is_header || units.is_empty() {
            let path = rules::virtual_path(&format!("{line}\n")).unwrap_or_else(|| name.to_owned());
            units.push((path, String::new()));
        }
        if let Some((_, body)) = units.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    if units.is_empty() {
        units.push((name.to_owned(), source.to_owned()));
    }
    units
}

/// Runs the linter over its fixture corpus:
///
/// - every file under `fixtures/pass/` must produce **zero** findings;
/// - every file under `fixtures/fail/` must produce **at least one**
///   finding, and every finding's rule must match the rule id encoded
///   in the file-name prefix (`b001_…` → `B001`).
///
/// A fixture may declare several virtual files (one
/// [`FIXTURE_PATH_HEADER`] each); they are linted together as one
/// mini-workspace, so the interprocedural rules see real call graphs.
///
/// # Errors
///
/// Returns `Err` on I/O failures or a malformed corpus layout.
pub fn self_test(fixtures: &Path) -> io::Result<Vec<FixtureResult>> {
    let mut results = Vec::new();
    for (sub, expect_clean) in [("pass", true), ("fail", false)] {
        let dir = fixtures.join(sub);
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        entries.sort();
        if entries.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no fixtures under {}", dir.display()),
            ));
        }
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let source = fs::read_to_string(&path)?;
            let findings = lint_workspace(&fixture_units(&name, &source));
            let problem = if expect_clean {
                if findings.is_empty() {
                    None
                } else {
                    Some(format!(
                        "expected a clean pass but got {:?}",
                        findings.iter().map(|f| f.rule).collect::<Vec<_>>()
                    ))
                }
            } else {
                check_fail_fixture(&name, &findings)
            };
            results.push(FixtureResult { name, problem });
        }
    }
    Ok(results)
}

fn check_fail_fixture(name: &str, findings: &[Finding]) -> Option<String> {
    let expected = name
        .split('_')
        .next()
        .map(str::to_uppercase)
        .unwrap_or_default();
    if !RULE_IDS.contains(&expected.as_str()) {
        return Some(format!(
            "fail fixture name `{name}` does not start with a rule id prefix"
        ));
    }
    if findings.is_empty() {
        return Some(format!(
            "expected at least one {expected} finding, got none"
        ));
    }
    let stray: Vec<&str> = findings
        .iter()
        .map(|f| f.rule)
        .filter(|r| *r != expected)
        .collect();
    if stray.is_empty() {
        None
    } else {
        Some(format!(
            "expected only {expected} findings, also got {stray:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let f = vec![Finding {
            rule: "P001",
            path: "crates/x/src/y.rs".to_owned(),
            line: 3,
            snippet: "x.unwrap()".to_owned(),
            message: "no \"unwrap\"".to_owned(),
        }];
        let json = render_json(&f);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\\\"unwrap\\\""));
    }

    #[test]
    fn empty_report_renders() {
        assert!(render_json(&[]).contains("\"count\": 0"));
        assert!(render_text(&[]).contains("0 findings"));
    }

    #[test]
    fn fixture_units_split_on_headers() {
        let src = "// prc-lint-fixture: path = crates/a/src/x.rs\nfn a() {}\n// prc-lint-fixture: path = crates/b/src/y.rs\nfn b() {}\n";
        let units = fixture_units("multi.rs", src);
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].0, "crates/a/src/x.rs");
        assert!(units[0].1.contains("fn a"));
        assert_eq!(units[1].0, "crates/b/src/y.rs");
        assert!(units[1].1.contains("fn b"));
        // No headers: one unit under the fixture's own name.
        let units = fixture_units("plain.rs", "fn c() {}\n");
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].0, "plain.rs");
    }

    #[test]
    fn workspace_pass_spans_files() {
        // A deterministic root in one file calling a wall-clock helper
        // in another: only the interprocedural pass can see it.
        let files = vec![
            (
                "crates/core/src/broker.rs".to_owned(),
                "pub fn answer() -> u64 { crate::util::stamp() }\n".to_owned(),
            ),
            (
                "crates/core/src/util.rs".to_owned(),
                "pub fn stamp() -> u64 { secs(SystemTime::now()) }\n".to_owned(),
            ),
        ];
        let findings = lint_workspace(&files);
        assert_eq!(
            findings.iter().map(|f| f.rule).collect::<Vec<_>>(),
            vec!["F002"]
        );
        assert_eq!(findings[0].path, "crates/core/src/util.rs");
    }
}
