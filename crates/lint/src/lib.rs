//! `prc-lint`: a dependency-free static invariant checker for the prc
//! workspace.
//!
//! The workspace carries three families of invariants that the type
//! system cannot express and that `cargo test` only catches by accident:
//!
//! - **Budget hygiene (B)** — every bit of privacy noise is drawn inside
//!   `prc-dp`, where the budget accountant can see it. Sampling call
//!   sites, raw distribution construction, and `rand` dependencies
//!   outside the substrate are findings.
//! - **Determinism hygiene (D)** — the broker, estimators, optimizer,
//!   and base station release answers that must be bit-reproducible from
//!   (inputs, seed). Unordered-map iteration, wall-clock reads, and
//!   unseeded RNGs in those paths are findings.
//! - **Panic hygiene (P)** — library crates return typed errors;
//!   `.unwrap()`, `.expect(`, panicking macros, and indexing by integer
//!   literal are findings.
//!
//! The checker is textual — a comment/string-aware scanner plus
//! path-scoped token rules — because the vendor tree is offline and a
//! full parser dependency (`syn`) is unavailable. The trade-off is
//! documented per rule in [`rules`]; escape hatches are spelled
//! `// prc-lint: allow(RULE, reason = "…")` and are themselves linted
//! (missing reason → L001, suppressing nothing → L002).

pub mod rules;
pub mod scanner;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{lint_source, Finding, FIXTURE_PATH_HEADER, RULE_IDS};

/// Directory names never descended into when walking a tree.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

/// Lints every `.rs` file under `root`, returning findings sorted by
/// (path, line, rule).
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let source = fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders findings as human-readable text, one per line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}: {}:{}: {}\n    {}\n",
            f.rule, f.path, f.line, f.message, f.snippet
        ));
    }
    out.push_str(&format!(
        "{} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Renders findings as a machine-readable JSON document.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One fixture's outcome in a self-test run.
#[derive(Debug)]
pub struct FixtureResult {
    /// Fixture file name.
    pub name: String,
    /// What went wrong; `None` when the fixture behaved as expected.
    pub problem: Option<String>,
}

/// Runs the linter over its fixture corpus:
///
/// - every file under `fixtures/pass/` must produce **zero** findings;
/// - every file under `fixtures/fail/` must produce **at least one**
///   finding, and every finding's rule must match the rule id encoded
///   in the file-name prefix (`b001_…` → `B001`).
///
/// # Errors
///
/// Returns `Err` on I/O failures or a malformed corpus layout.
pub fn self_test(fixtures: &Path) -> io::Result<Vec<FixtureResult>> {
    let mut results = Vec::new();
    for (sub, expect_clean) in [("pass", true), ("fail", false)] {
        let dir = fixtures.join(sub);
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        entries.sort();
        if entries.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no fixtures under {}", dir.display()),
            ));
        }
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let source = fs::read_to_string(&path)?;
            let findings = lint_source(&name, &source);
            let problem = if expect_clean {
                if findings.is_empty() {
                    None
                } else {
                    Some(format!(
                        "expected a clean pass but got {:?}",
                        findings.iter().map(|f| f.rule).collect::<Vec<_>>()
                    ))
                }
            } else {
                check_fail_fixture(&name, &findings)
            };
            results.push(FixtureResult { name, problem });
        }
    }
    Ok(results)
}

fn check_fail_fixture(name: &str, findings: &[Finding]) -> Option<String> {
    let expected = name
        .split('_')
        .next()
        .map(str::to_uppercase)
        .unwrap_or_default();
    if !RULE_IDS.contains(&expected.as_str()) {
        return Some(format!(
            "fail fixture name `{name}` does not start with a rule id prefix"
        ));
    }
    if findings.is_empty() {
        return Some(format!(
            "expected at least one {expected} finding, got none"
        ));
    }
    let stray: Vec<&str> = findings
        .iter()
        .map(|f| f.rule)
        .filter(|r| *r != expected)
        .collect();
    if stray.is_empty() {
        None
    } else {
        Some(format!(
            "expected only {expected} findings, also got {stray:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let f = vec![Finding {
            rule: "P001",
            path: "crates/x/src/y.rs".to_owned(),
            line: 3,
            snippet: "x.unwrap()".to_owned(),
            message: "no \"unwrap\"".to_owned(),
        }];
        let json = render_json(&f);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\\\"unwrap\\\""));
    }

    #[test]
    fn empty_report_renders() {
        assert!(render_json(&[]).contains("\"count\": 0"));
        assert!(render_text(&[]).contains("0 findings"));
    }
}
