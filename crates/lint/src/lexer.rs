//! A token-level lexer over the scanner's blanked code lines.
//!
//! The scanner ([`crate::scanner::scan`]) already removed everything
//! that is not code — comments and literal contents are spaces — so the
//! lexer's job is purely structural: turn each line into identifiers
//! and punctuation with line numbers attached, the alphabet the item
//! extractor ([`crate::items`]) parses `mod`/`impl`/`fn`/call shapes
//! from. Numeric literals and lifetimes carry no structure the
//! interprocedural passes need, so they are consumed and dropped.

use crate::scanner::ScannedFile;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: usize,
    /// The token's shape.
    pub kind: Kind,
}

/// Token kinds, at the granularity the item extractor needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`fn`, `DataBroker`, `run`, …).
    Ident(String),
    /// The path separator `::`.
    PathSep,
    /// Any single punctuation character (`{`, `(`, `.`, `<`, …).
    Punct(char),
}

impl Token {
    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        matches!(&self.kind, Kind::Ident(w) if w == word)
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }

    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Kind::Ident(w) => Some(w),
            _ => None,
        }
    }
}

/// Lexes every blanked code line of a scanned file into one flat token
/// stream. Item boundaries never depend on line breaks, so downstream
/// parsing treats the stream as continuous.
pub fn lex(scanned: &ScannedFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in scanned.code.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while let Some(&c) = chars.get(i) {
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while chars
                    .get(i)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                {
                    i += 1;
                }
                let word: String = chars.get(start..i).unwrap_or_default().iter().collect();
                out.push(Token {
                    line: lineno,
                    kind: Kind::Ident(word),
                });
                continue;
            }
            if c.is_ascii_digit() {
                i += consume_number(chars.get(i..).unwrap_or_default());
                continue;
            }
            if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Token {
                    line: lineno,
                    kind: Kind::PathSep,
                });
                i += 2;
                continue;
            }
            if c == '\'' {
                // A lifetime tick or the shell of a blanked char literal;
                // either way the quote itself is structure-free.
                i += 1;
                continue;
            }
            out.push(Token {
                line: lineno,
                kind: Kind::Punct(c),
            });
            i += 1;
        }
    }
    out
}

/// Consumes a numeric literal starting at `chars[0]`, returning its
/// length. A trailing `.` only joins the literal when a digit follows
/// (so `x.0.method()` and `1..n` keep their dots), and type suffixes
/// (`0u32`, `1e9f64`) are swallowed.
fn consume_number(chars: &[char]) -> usize {
    let mut i = 0usize;
    while chars
        .get(i)
        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
    {
        i += 1;
    }
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
        i += 1;
        while chars
            .get(i)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
        {
            i += 1;
        }
    }
    // Exponent sign: `1e-3` / `2.5E+10`.
    if chars
        .get(i.wrapping_sub(1))
        .is_some_and(|c| *c == 'e' || *c == 'E')
        && chars.get(i).is_some_and(|c| *c == '+' || *c == '-')
        && chars.get(i + 1).is_some_and(char::is_ascii_digit)
    {
        i += 1;
        while chars.get(i).is_some_and(char::is_ascii_digit) {
            i += 1;
        }
    }
    i.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn kinds(src: &str) -> Vec<Kind> {
        lex(&scan(src)).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_paths_and_puncts() {
        let toks = kinds("prc_dp::laplace::draw_centered(scale)");
        assert_eq!(
            toks,
            vec![
                Kind::Ident("prc_dp".into()),
                Kind::PathSep,
                Kind::Ident("laplace".into()),
                Kind::PathSep,
                Kind::Ident("draw_centered".into()),
                Kind::Punct('('),
                Kind::Ident("scale".into()),
                Kind::Punct(')'),
            ]
        );
    }

    #[test]
    fn numbers_are_consumed_not_tokenized() {
        assert_eq!(
            kinds("let x = 1.5e-3 + 0u32;"),
            vec![
                Kind::Ident("let".into()),
                Kind::Ident("x".into()),
                Kind::Punct('='),
                Kind::Punct('+'),
                Kind::Punct(';'),
            ]
        );
    }

    #[test]
    fn tuple_field_method_calls_survive() {
        // `x.0.sample(rng)` must keep the `.sample` tokens: the literal
        // `0` ends before the second dot.
        let toks = kinds("x.0.sample(rng)");
        assert!(toks.windows(2).any(|w| matches!(
            w,
            [Kind::Punct('.'), Kind::Ident(n)] if n == "sample"
        )));
    }

    #[test]
    fn lifetimes_and_char_shells_vanish() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'z'; }");
        assert!(!toks.iter().any(|k| matches!(k, Kind::Punct('\''))));
        assert!(toks.contains(&Kind::Ident("str".into())));
    }

    #[test]
    fn lines_are_attached() {
        let toks = lex(&scan("a\nb\nc\n"));
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn comments_and_strings_produce_no_tokens() {
        let toks = kinds("// panic!()\nlet m = \"thread_rng()\";\n");
        assert_eq!(
            toks,
            vec![
                Kind::Ident("let".into()),
                Kind::Ident("m".into()),
                Kind::Punct('='),
                Kind::Punct('"'),
                Kind::Punct('"'),
                Kind::Punct(';'),
            ]
        );
    }
}
