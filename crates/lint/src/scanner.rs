//! A comment/string-aware line scanner for Rust source.
//!
//! The linter's rules are textual, so the scanner's job is to make the
//! text trustworthy: it blanks out everything that is not code (line
//! comments, nested block comments, string / raw-string / char-literal
//! contents) while preserving the byte layout of each line, captures the
//! comment text separately (allow directives live there), and marks the
//! lines covered by `#[cfg(test)]` item regions so test-only code can be
//! exempted from production-only rules.

/// The scanner's per-file output.
#[derive(Debug)]
pub struct ScannedFile {
    /// Original source lines, verbatim (for diagnostics).
    pub raw: Vec<String>,
    /// Source lines with comments and literal contents blanked to spaces.
    pub code: Vec<String>,
    /// Comment text found on each line (without the `//` / `/*` markers).
    pub comments: Vec<String>,
    /// Whether each line falls inside a `#[cfg(test)]` item region.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scans one file's source text.
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut raw_lines = Vec::new();
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();

    let mut raw = String::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {
            raw_lines.push(std::mem::take(&mut raw));
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
        };
    }

    while i < chars.len() {
        let c = chars[i];
        raw.push(c);
        if c == '\n' {
            // A newline ends line comments; other states carry over.
            if state == State::LineComment {
                state = State::Code;
            }
            raw.pop();
            flush_line!();
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push(' ');
                    code.push(' ');
                    raw.push('/');
                    i += 2;
                    // Skip doc-comment markers so `///` text reads cleanly.
                    if chars.get(i) == Some(&'/') || chars.get(i) == Some(&'!') {
                        raw.push(chars[i]);
                        code.push(' ');
                        i += 1;
                    }
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    raw.push('*');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                // Raw strings: r"…", r#"…"#, br#"…"# etc.
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some(hashes) = raw_string_open(&chars, i) {
                        // Emit the prefix chars as-is up to the opening quote.
                        let mut j = i;
                        while chars.get(j) != Some(&'"') {
                            if j > i {
                                raw.push(chars[j]);
                            }
                            code.push(chars[j]);
                            j += 1;
                        }
                        raw.push('"');
                        code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Distinguish a char literal from a lifetime: a char
                    // literal is `'x'` or `'\…'`; a lifetime never closes
                    // with a quote one or two characters later.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        state = State::Char;
                        code.push('\'');
                        i += 1;
                        continue;
                    }
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    code.push(' ');
                    code.push(' ');
                    raw.push('*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth <= 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    if depth > 1 {
                        comment.push_str("*/");
                    }
                    code.push(' ');
                    code.push(' ');
                    raw.push('/');
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if let Some(n) = next {
                        if n != '\n' {
                            raw.push(n);
                            code.push(' ');
                        } else {
                            // Escaped newline: flush and continue the string.
                            flush_line!();
                        }
                        i += 2;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                if c == '"' {
                    state = State::Code;
                    code.push('"');
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        raw.push('#');
                        code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    code.push(' ');
                    if let Some(n) = next {
                        if n != '\n' {
                            raw.push(n);
                            code.push(' ');
                        }
                        i += 2;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    state = State::Code;
                    code.push('\'');
                } else {
                    code.push(' ');
                }
                i += 1;
            }
        }
    }
    if !raw.is_empty() || !code.is_empty() || raw_lines.is_empty() {
        flush_line!();
    }

    let in_test = mark_test_regions(&code_lines);
    ScannedFile {
        raw: raw_lines,
        code: code_lines,
        comments: comment_lines,
        in_test,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0
        && chars
            .get(i - 1)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// If `chars[i..]` opens a raw string (`r`, `br`, `r#`, …), returns the
/// hash count; `None` otherwise.
fn raw_string_open(chars: &[char], i: usize) -> Option<u32> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks the lines covered by `#[cfg(test)]` item regions.
///
/// After a `#[cfg(test)]` attribute, the region runs to the matching
/// closing brace of the item's body (or to a terminating `;` for
/// brace-less items such as `mod tests;`).
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_floor: Option<i64> = None;

    for (idx, line) in code_lines.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            pending = true;
        }
        let mut line_is_test = pending || region_floor.is_some();
        for c in line.chars() {
            match c {
                '{' => {
                    if pending {
                        region_floor = Some(depth);
                        pending = false;
                        line_is_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(floor) = region_floor {
                        if depth <= floor {
                            region_floor = None;
                            line_is_test = true;
                        }
                    }
                }
                // `#[cfg(test)] mod tests;` — single-line region.
                ';' if pending => {
                    pending = false;
                    line_is_test = true;
                }
                _ => {}
            }
        }
        in_test[idx] = line_is_test || region_floor.is_some();
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_doc_comments() {
        let s = scan("let x = 1; // trailing .unwrap()\n/// doc .expect(\nlet y = 2;\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.comments[0].contains("unwrap"));
        assert!(!s.code[1].contains("expect"));
        assert!(s.code[2].contains("let y"));
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = scan("a /* one /* two */ still */ b\n");
        assert!(s.code[0].contains('a'));
        assert!(s.code[0].contains('b'));
        assert!(!s.code[0].contains("one"));
        assert!(!s.code[0].contains("still"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let s = scan("let m = \"call .unwrap() now\"; foo();\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.code[0].contains("foo()"));
        assert_eq!(s.code[0].matches('"').count(), 2);
    }

    #[test]
    fn handles_raw_strings_and_escapes() {
        let s = scan("let r = r#\"panic! \"quoted\" inside\"#; bar();\n");
        assert!(!s.code[0].contains("panic"));
        assert!(s.code[0].contains("bar()"));
        let s = scan("let e = \"esc \\\" .expect( more\"; baz();\n");
        assert!(!s.code[0].contains("expect"));
        assert!(s.code[0].contains("baz()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { let q = '\\''; let n = 'z'; g(); }\n");
        assert!(s.code[0].contains("fn f<'a>"));
        assert!(s.code[0].contains("g();"));
    }

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        assert_eq!(s.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let s = scan(src);
        assert!(s.in_test[0]);
        assert!(s.in_test[1]);
        assert!(!s.in_test[2]);
    }

    #[test]
    fn byte_strings_are_blanked() {
        let s = scan("let b = b\".unwrap() inside\"; ok();\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.code[0].contains("ok();"));
        let s = scan("let rb = br#\"panic! \"x\" more\"#; ok();\n");
        assert!(!s.code[0].contains("panic"));
        assert!(s.code[0].contains("ok();"));
    }

    #[test]
    fn char_literals_holding_quote_and_slashes() {
        // A `'"'` char must not open a string, and `'/'` twice must not
        // open a comment.
        let s = scan("let q = '\"'; let a = '/'; let b = '/'; x.unwrap();\n");
        assert!(s.code[0].contains("unwrap"));
        assert!(s.comments[0].is_empty());
        let s = scan("let esc = '\\\"'; y.expect(\"m\");\n");
        assert!(s.code[0].contains(".expect("));
        assert!(!s.code[0].contains('m'));
    }

    #[test]
    fn cfg_test_spans_nested_modules() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod outer {\n    mod inner {\n        fn t() { x.unwrap(); }\n    }\n}\nfn after() {}\n";
        let s = scan(src);
        assert_eq!(
            s.in_test,
            vec![false, true, true, true, true, true, true, false]
        );
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        let s = scan("let r = r##\"one \"# not closed\"##; done();\n");
        assert!(!s.code[0].contains("not closed"));
        assert!(s.code[0].contains("done();"));
    }

    #[test]
    fn preserves_line_count_and_raw_text() {
        let src = "a\nb /* c\nd */ e\nf";
        let s = scan(src);
        assert_eq!(s.raw.len(), 4);
        assert_eq!(s.raw[1], "b /* c");
        assert_eq!(s.code.len(), 4);
        assert_eq!(s.comments.len(), 4);
    }
}
