//! Command-line entry point for `prc-lint`.
//!
//! ```text
//! prc-lint [--root DIR] [--format text|json|sarif]       lint a source tree
//!          [--baseline FILE] [--write-baseline FILE]
//! prc-lint --self-test [--fixtures DIR] [--min-fixtures N]
//!                                                        verify the fixture corpus
//! ```
//!
//! Exit codes: `0` clean (all findings baselined counts as clean), `1`
//! findings (or failed self-test), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use prc_lint::{baseline, lint_tree, render_json, render_sarif, render_text, self_test};

struct Options {
    root: PathBuf,
    fixtures: Option<PathBuf>,
    format: Format,
    self_test: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    min_fixtures: Option<usize>,
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

const USAGE: &str = "usage: prc-lint [--root DIR] [--format text|json|sarif] \
                     [--baseline FILE] [--write-baseline FILE] \
                     [--self-test [--fixtures DIR] [--min-fixtures N]]";

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        fixtures: None,
        format: Format::Text,
        self_test: false,
        baseline: None,
        write_baseline: None,
        min_fixtures: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                options.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a value".to_owned())?,
                );
            }
            "--fixtures" => {
                options.fixtures = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--fixtures needs a value".to_owned())?,
                ));
            }
            "--format" => {
                options.format = match args
                    .next()
                    .ok_or_else(|| "--format needs a value".to_owned())?
                    .as_str()
                {
                    "json" => Format::Json,
                    "text" => Format::Text,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--baseline" => {
                options.baseline = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--baseline needs a value".to_owned())?,
                ));
            }
            "--write-baseline" => {
                options.write_baseline =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        "--write-baseline needs a value".to_owned()
                    })?));
            }
            "--min-fixtures" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--min-fixtures needs a value".to_owned())?;
                options.min_fixtures = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("--min-fixtures needs a number, got `{value}`"))?,
                );
            }
            "--self-test" => options.self_test = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn default_fixtures(root: &std::path::Path) -> PathBuf {
    let in_tree = root.join("crates/lint/fixtures");
    if in_tree.is_dir() {
        in_tree
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if options.self_test {
        let fixtures = options
            .fixtures
            .unwrap_or_else(|| default_fixtures(&options.root));
        let results = match self_test(&fixtures) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("self-test failed to run: {e}");
                return ExitCode::from(2);
            }
        };
        let mut failed = 0usize;
        for r in &results {
            match &r.problem {
                None => println!("ok   {}", r.name),
                Some(p) => {
                    failed += 1;
                    println!("FAIL {}: {}", r.name, p);
                }
            }
        }
        println!("{} fixtures, {} failed", results.len(), failed);
        if let Some(min) = options.min_fixtures {
            if results.len() < min {
                println!("fixture gate: {} < required {min}", results.len());
                return ExitCode::from(1);
            }
        }
        return if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let findings = match lint_tree(&options.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("failed to lint {}: {e}", options.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &options.write_baseline {
        if let Err(e) = std::fs::write(path, baseline::render(&findings)) {
            eprintln!("failed to write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} finding{} to {}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            path.display()
        );
    }

    let (findings, baselined) = match &options.baseline {
        Some(path) => {
            let content = match std::fs::read_to_string(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("failed to read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let entries = match baseline::parse(&content) {
                Ok(e) => e,
                Err(msg) => {
                    eprintln!("{}: {msg}", path.display());
                    return ExitCode::from(2);
                }
            };
            baseline::partition(findings, &entries)
        }
        None => (findings, 0),
    };

    match options.format {
        Format::Json => print!("{}", render_json(&findings)),
        Format::Sarif => print!("{}", render_sarif(&findings)),
        Format::Text => {
            print!("{}", render_text(&findings));
            if baselined > 0 {
                println!(
                    "({baselined} baselined finding{} hidden)",
                    if baselined == 1 { "" } else { "s" }
                );
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
