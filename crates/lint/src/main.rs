//! Command-line entry point for `prc-lint`.
//!
//! ```text
//! prc-lint [--root DIR] [--format text|json]   lint a source tree
//! prc-lint --self-test [--fixtures DIR]        verify the fixture corpus
//! ```
//!
//! Exit codes: `0` clean, `1` findings (or failed self-test), `2` usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use prc_lint::{lint_tree, render_json, render_text, self_test};

struct Options {
    root: PathBuf,
    fixtures: Option<PathBuf>,
    json: bool,
    self_test: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        fixtures: None,
        json: false,
        self_test: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                options.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a value".to_owned())?,
                );
            }
            "--fixtures" => {
                options.fixtures = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--fixtures needs a value".to_owned())?,
                ));
            }
            "--format" => {
                match args
                    .next()
                    .ok_or_else(|| "--format needs a value".to_owned())?
                    .as_str()
                {
                    "json" => options.json = true,
                    "text" => options.json = false,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--self-test" => options.self_test = true,
            "--help" | "-h" => return Err(
                "usage: prc-lint [--root DIR] [--format text|json] [--self-test [--fixtures DIR]]"
                    .to_owned(),
            ),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn default_fixtures(root: &std::path::Path) -> PathBuf {
    let in_tree = root.join("crates/lint/fixtures");
    if in_tree.is_dir() {
        in_tree
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if options.self_test {
        let fixtures = options
            .fixtures
            .unwrap_or_else(|| default_fixtures(&options.root));
        let results = match self_test(&fixtures) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("self-test failed to run: {e}");
                return ExitCode::from(2);
            }
        };
        let mut failed = 0usize;
        for r in &results {
            match &r.problem {
                None => println!("ok   {}", r.name),
                Some(p) => {
                    failed += 1;
                    println!("FAIL {}: {}", r.name, p);
                }
            }
        }
        println!("{} fixtures, {} failed", results.len(), failed);
        return if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let findings = match lint_tree(&options.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("failed to lint {}: {e}", options.root.display());
            return ExitCode::from(2);
        }
    };
    if options.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
