//! A minimal JSON reader, used to validate the linter's own SARIF and
//! JSON output in tests.
//!
//! The vendor tree carries no JSON dependency, so this is a small
//! recursive-descent parser over the subset the linter emits: objects,
//! arrays, strings with the standard escapes, numbers, booleans, and
//! null. Like everything else in this crate it is panic-free — parse
//! errors are values, not aborts.

use std::collections::BTreeMap;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is normalized.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup, when this value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, when this value is an array.
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Array(items) => items,
            _ => &[],
        }
    }

    /// The text, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this value is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error,
/// including trailing garbage after the top-level value.
pub fn parse(input: &str) -> Result<Value, String> {
    let chars: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_object(chars, pos),
        Some('[') => parse_array(chars, pos),
        Some('"') => parse_string(chars, pos).map(Value::String),
        Some('t') => parse_literal(chars, pos, "true", Value::Bool(true)),
        Some('f') => parse_literal(chars, pos, "false", Value::Bool(false)),
        Some('n') => parse_literal(chars, pos, "null", Value::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars, pos),
        Some(c) => Err(format!("unexpected `{c}` at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(
    chars: &[char],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, String> {
    for want in word.chars() {
        if chars.get(*pos) != Some(&want) {
            return Err(format!("malformed literal at offset {pos}", pos = *pos));
        }
        *pos += 1;
    }
    Ok(value)
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if chars.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    while chars
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        *pos += 1;
    }
    let text: String = chars.get(start..*pos).unwrap_or_default().iter().collect();
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("malformed number `{text}` at offset {start}"))
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000c}'),
                    Some('u') => {
                        let hex: String = chars
                            .get(*pos + 1..*pos + 5)
                            .unwrap_or_default()
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| {
                            format!("malformed \\u escape at offset {pos}", pos = *pos)
                        })?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("malformed escape at offset {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
            None => return Err("unterminated string".to_owned()),
        }
    }
}

fn parse_array(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => {
                *pos += 1;
            }
            Some(']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_string(chars, pos)?;
        skip_ws(chars, pos);
        if chars.get(*pos) != Some(&':') {
            return Err(format!("expected `:` at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(chars, pos)?;
        map.insert(key, value);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => {
                *pos += 1;
            }
            Some('}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .unwrap_or(Value::Null);
        assert_eq!(v.get("a").map(|a| a.items().len()), Some(3));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\ny")
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("d")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse("\"\\u0041\\u00e9\"").unwrap_or(Value::Null);
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
