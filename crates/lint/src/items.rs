//! Per-file item extraction: modules, `impl` blocks, `fn` items, and
//! the call expressions inside them.
//!
//! The extractor walks the token stream from [`crate::lexer`] with an
//! explicit context stack (module / impl / fn / other-brace), so every
//! call site is attributed to its innermost enclosing function and every
//! function knows its impl type and module path. It is a heuristic
//! parser — no type checking, no name resolution — but the shapes it
//! recognizes (path-qualified calls, method calls with a literal or
//! constructor receiver, struct-literal stage invocations) cover the
//! idioms this workspace actually uses; [`crate::graph`] documents the
//! ambiguity policy for everything else.

use std::collections::BTreeSet;

use crate::lexer::{lex, Kind, Token};
use crate::scanner::ScannedFile;

/// One `fn` item extracted from a file.
#[derive(Debug)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// The `impl` (or `trait`) type the function is defined on, if any.
    pub impl_type: Option<String>,
    /// Names of the inline modules enclosing the definition.
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive line span of the body, when the item has one.
    pub body: Option<(usize, usize)>,
    /// Unrestricted `pub` (not `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// Defined inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Every identifier appearing in the signature or body.
    pub idents: BTreeSet<String>,
    /// Call expressions inside the body, in source order.
    pub calls: Vec<Call>,
}

/// One call expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// 1-based line of the callee name.
    pub line: usize,
    /// The callee's bare name.
    pub name: String,
    /// How the call was spelled, for resolution.
    pub kind: CallKind,
}

/// The syntactic shape of a call, driving resolution in [`crate::graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — a free-function call (or tuple-struct literal).
    Bare,
    /// `recv.name(...)` — a method call; `recv` is the inferred receiver
    /// type name when the receiver is `self`, a struct literal, or a
    /// `Type::ctor(...)` chain, else `None`.
    Method { recv: Option<String> },
    /// `a::b::name(...)` — a path-qualified call with its qualifier
    /// segments (`crate`/`super`/`self` kept verbatim).
    Path { qualifier: Vec<String> },
}

/// Context-stack entry: what the innermost unmatched `{` opened.
enum Ctx {
    Mod(String),
    Impl(String),
    Fn(usize),
    Other,
}

/// Words that look like `ident(` but never name a workspace function.
const NON_CALL_WORDS: [&str; 24] = [
    "fn", "if", "while", "for", "match", "return", "loop", "in", "as", "let", "mut", "ref", "move",
    "impl", "pub", "where", "unsafe", "else", "break", "continue", "use", "dyn", "box", "yield",
];

/// Extracts every `fn` item (with its calls) from a scanned file.
pub fn extract(scanned: &ScannedFile) -> Vec<FnItem> {
    let tokens = lex(scanned);
    let mut items: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];

        // Attributes carry call-shaped tokens (`#[cfg(test)]`); skip them.
        if t.is_punct('#') {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
                i = skip_balanced(&tokens, j, '[', ']');
                continue;
            }
        }

        if t.is_ident("mod") {
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                let mut j = i + 2;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                    stack.push(Ctx::Mod(name.to_owned()));
                }
                i = j + 1;
                continue;
            }
        }

        if t.is_ident("impl") || t.is_ident("trait") {
            if let Some((ty, after)) = parse_impl_header(&tokens, i) {
                if tokens.get(after).is_some_and(|t| t.is_punct('{')) {
                    stack.push(Ctx::Impl(ty));
                    i = after + 1;
                    continue;
                }
                i = after + 1;
                continue;
            }
        }

        if t.is_ident("fn") {
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                let def_line = t.line;
                let impl_type = stack.iter().rev().find_map(|c| match c {
                    Ctx::Impl(ty) => Some(ty.clone()),
                    _ => None,
                });
                let modules = stack
                    .iter()
                    .filter_map(|c| match c {
                        Ctx::Mod(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let mut idents = BTreeSet::new();
                // Signature: everything up to the body `{` (or `;` for a
                // body-less declaration) at parenthesis depth 0.
                let mut j = i + 2;
                let mut paren = 0i32;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        Kind::Punct('(') => paren += 1,
                        Kind::Punct(')') => paren -= 1,
                        Kind::Punct('{') if paren == 0 => break,
                        Kind::Punct(';') if paren == 0 => break,
                        Kind::Ident(w) => {
                            idents.insert(w.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let has_body = tokens.get(j).is_some_and(|t| t.is_punct('{'));
                let body_start = tokens.get(j).map_or(def_line, |t| t.line);
                items.push(FnItem {
                    name: name.to_owned(),
                    impl_type,
                    modules,
                    line: def_line,
                    body: has_body.then_some((body_start, body_start)),
                    is_pub: is_pub_at(&tokens, i),
                    in_test: scanned.in_test.get(def_line - 1).copied().unwrap_or(false),
                    idents,
                    calls: Vec::new(),
                });
                if has_body {
                    stack.push(Ctx::Fn(items.len() - 1));
                }
                i = j + 1;
                continue;
            }
        }

        if t.is_punct('{') {
            stack.push(Ctx::Other);
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if let Some(Ctx::Fn(idx)) = stack.pop() {
                if let Some(item) = items.get_mut(idx) {
                    if let Some((start, _)) = item.body {
                        item.body = Some((start, t.line));
                    }
                }
            }
            i += 1;
            continue;
        }

        // Inside a function: record identifiers and call expressions.
        if let Some(fn_idx) = innermost_fn(&stack) {
            if let Kind::Ident(word) = &t.kind {
                let record = |items: &mut Vec<FnItem>, call: Option<Call>| {
                    if let Some(item) = items.get_mut(fn_idx) {
                        item.idents.insert(word.clone());
                        if let Some(call) = call {
                            item.calls.push(call);
                        }
                    }
                };
                let is_call = tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !NON_CALL_WORDS.contains(&word.as_str());
                if is_call {
                    let kind = classify_call(&tokens, i, &stack);
                    record(
                        &mut items,
                        Some(Call {
                            line: t.line,
                            name: word.clone(),
                            kind,
                        }),
                    );
                } else {
                    record(&mut items, None);
                }
            }
        }
        i += 1;
    }
    items
}

fn innermost_fn(stack: &[Ctx]) -> Option<usize> {
    stack.iter().rev().find_map(|c| match c {
        Ctx::Fn(idx) => Some(*idx),
        _ => None,
    })
}

/// Skips from the opening bracket at `open_idx` past its matching close,
/// returning the index just after it.
fn skip_balanced(tokens: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j < tokens.len() {
        if tokens[j].is_punct(open) {
            depth += 1;
        } else if tokens[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Walks back from the bracket at `close_idx` to its matching opener.
fn matching_open(tokens: &[Token], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close_idx;
    loop {
        if tokens.get(j).is_some_and(|t| t.is_punct(close)) {
            depth += 1;
        } else if tokens.get(j).is_some_and(|t| t.is_punct(open)) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Parses an `impl`/`trait` header starting at `idx`, returning the
/// subject type name and the index of the token that ended the header
/// (`{` or `;`). The subject is the **last** path segment before the
/// body, taken after `for` when one is present (`impl Trait for Type`).
fn parse_impl_header(tokens: &[Token], idx: usize) -> Option<(String, usize)> {
    let mut j = idx + 1;
    let mut subject: Option<String> = None;
    let mut angle = 0i32;
    while j < tokens.len() {
        match &tokens[j].kind {
            Kind::Punct('{') | Kind::Punct(';') if angle == 0 => {
                return subject.map(|s| (s, j));
            }
            Kind::Punct('<') => angle += 1,
            Kind::Punct('>') => {
                // `->` inside generic bounds (`Fn() -> R`) is an arrow,
                // not a close-angle.
                let arrow = j > 0 && tokens[j - 1].is_punct('-');
                if !arrow {
                    angle -= 1;
                }
            }
            Kind::Ident(w) if angle == 0 => {
                if w == "for" {
                    subject = None;
                } else if w == "where" {
                    // The subject is fixed once the where-clause starts.
                    let mut k = j;
                    while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                        k += 1;
                    }
                    return subject.map(|s| (s, k));
                } else {
                    subject = Some(w.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Visibility of the `fn` at `fn_idx`: walks back over `const` / `async`
/// / `unsafe` / `extern "C"` qualifiers looking for an unrestricted
/// `pub`. `pub(crate)` and friends are not public API.
fn is_pub_at(tokens: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match &tokens[j].kind {
            Kind::Ident(w) if ["const", "async", "unsafe", "extern"].contains(&w.as_str()) => {}
            // The blanked shell of an ABI string: `extern "C"`.
            Kind::Punct('"') => {}
            Kind::Punct(')') => {
                // `pub(crate) fn` — restricted visibility.
                let open = matching_open(tokens, j, '(', ')');
                return match open {
                    Some(o) if o > 0 && tokens[o - 1].is_ident("pub") => false,
                    _ => false,
                };
            }
            Kind::Ident(w) if w == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Classifies the call whose name sits at `name_idx` (followed by `(`).
fn classify_call(tokens: &[Token], name_idx: usize, stack: &[Ctx]) -> CallKind {
    if name_idx == 0 {
        return CallKind::Bare;
    }
    let before = &tokens[name_idx - 1];
    if before.is_punct('.') {
        return CallKind::Method {
            recv: infer_receiver(tokens, name_idx - 1, stack),
        };
    }
    if before.kind == Kind::PathSep {
        let mut qualifier = Vec::new();
        let mut j = name_idx - 1;
        while tokens.get(j).is_some_and(|t| t.kind == Kind::PathSep) && j > 0 {
            match tokens[j - 1].kind {
                Kind::Ident(ref seg) => {
                    qualifier.push(resolve_self_segment(seg, stack));
                    if j < 2 {
                        break;
                    }
                    j -= 2;
                }
                _ => break,
            }
        }
        qualifier.reverse();
        return CallKind::Path { qualifier };
    }
    CallKind::Bare
}

/// `Self` in a qualifier means the enclosing impl type.
fn resolve_self_segment(seg: &str, stack: &[Ctx]) -> String {
    if seg == "Self" {
        if let Some(ty) = stack.iter().rev().find_map(|c| match c {
            Ctx::Impl(ty) => Some(ty.clone()),
            _ => None,
        }) {
            return ty;
        }
    }
    seg.to_owned()
}

/// Infers a method receiver's type name from the tokens before the `.`
/// at `dot_idx`. Handles the workspace's stage-invocation idioms:
///
/// - `self.m(...)` → the enclosing impl type;
/// - `Type { … }.m(...)` / `(Type { … }).m(...)` → `Type`;
/// - `Type::ctor(...).m(...)` → `Type`;
/// - a capitalized bare identifier → itself (unit-struct receiver).
///
/// Everything else returns `None`; the graph's ambiguity policy decides
/// what an unknown receiver may resolve to.
fn infer_receiver(tokens: &[Token], dot_idx: usize, stack: &[Ctx]) -> Option<String> {
    if dot_idx == 0 {
        return None;
    }
    let prev = &tokens[dot_idx - 1];
    match &prev.kind {
        Kind::Ident(w) if w == "self" => stack.iter().rev().find_map(|c| match c {
            Ctx::Impl(ty) => Some(ty.clone()),
            _ => None,
        }),
        Kind::Ident(w) if starts_upper(w) => Some(w.clone()),
        Kind::Punct('}') => {
            // `Type { … }.m(...)`: the ident before the matching `{`.
            let open = matching_open(tokens, dot_idx - 1, '{', '}')?;
            match open.checked_sub(1).map(|k| &tokens[k].kind) {
                Some(Kind::Ident(w)) if starts_upper(w) => Some(w.clone()),
                _ => None,
            }
        }
        Kind::Punct(')') => {
            let open = matching_open(tokens, dot_idx - 1, '(', ')')?;
            // `Type::ctor(...).m(...)`: the path before the call's `(`.
            if let Some(k) = open.checked_sub(1) {
                if tokens[k].ident().is_some()
                    && k >= 2
                    && tokens[k - 1].kind == Kind::PathSep
                    && tokens[k - 2].ident().is_some_and(starts_upper)
                {
                    return tokens[k - 2].ident().map(str::to_owned);
                }
            }
            // `(Type { … }).m(...)`: the first ident inside the parens.
            match tokens.get(open + 1).map(|t| &t.kind) {
                Some(Kind::Ident(w)) if starts_upper(w) => Some(w.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

fn starts_upper(w: &str) -> bool {
    w.chars().next().is_some_and(char::is_uppercase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn extract_src(src: &str) -> Vec<FnItem> {
        extract(&scan(src))
    }

    #[test]
    fn free_fn_with_bare_and_path_calls() {
        let items = extract_src(
            "pub fn top(x: u64) -> u64 {\n    helper(x);\n    crate::pipeline::batch::run_batch(x)\n}\nfn helper(x: u64) -> u64 { x }\n",
        );
        assert_eq!(items.len(), 2);
        let top = &items[0];
        assert_eq!(top.name, "top");
        assert!(top.is_pub);
        assert_eq!(top.body, Some((1, 4)));
        assert_eq!(top.calls.len(), 2);
        assert_eq!(top.calls[0].kind, CallKind::Bare);
        assert_eq!(
            top.calls[1].kind,
            CallKind::Path {
                qualifier: vec!["crate".into(), "pipeline".into(), "batch".into()]
            }
        );
        assert!(!items[1].is_pub);
    }

    #[test]
    fn impl_methods_carry_their_type_and_self_receiver() {
        let items = extract_src(
            "impl<E: Clone> QuerySession<'_, E> {\n    pub fn run(&mut self) {\n        self.step();\n        Self::finish();\n    }\n    fn step(&self) {}\n}\n",
        );
        assert_eq!(items[0].impl_type.as_deref(), Some("QuerySession"));
        assert_eq!(
            items[0].calls[0].kind,
            CallKind::Method {
                recv: Some("QuerySession".into())
            }
        );
        assert_eq!(
            items[0].calls[1].kind,
            CallKind::Path {
                qualifier: vec!["QuerySession".into()]
            }
        );
    }

    #[test]
    fn trait_impl_subject_is_the_for_type() {
        let items = extract_src(
            "impl RangeCountEstimator for CentralizedEstimator {\n    fn estimate(&self) -> f64 { 0.0 }\n}\n",
        );
        assert_eq!(items[0].impl_type.as_deref(), Some("CentralizedEstimator"));
    }

    #[test]
    fn struct_literal_stage_receivers_are_inferred() {
        let items = extract_src(
            "fn drive(b: &mut B) {\n    Collect { p: 0.5 }.run(b);\n    (Admit { q }).run(b)?;\n    QuerySession::new(b).run(q);\n}\n",
        );
        let recvs: Vec<Option<String>> = items[0]
            .calls
            .iter()
            .filter_map(|c| match &c.kind {
                CallKind::Method { recv } if c.name == "run" => Some(recv.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            recvs,
            vec![
                Some("Collect".into()),
                Some("Admit".into()),
                Some("QuerySession".into())
            ]
        );
        // `QuerySession::new` itself is also a path call.
        assert!(items[0].calls.iter().any(|c| c.name == "new"
            && c.kind
                == CallKind::Path {
                    qualifier: vec!["QuerySession".into()]
                }));
    }

    #[test]
    fn attributes_and_macros_do_not_become_calls() {
        let items = extract_src(
            "#[cfg(feature = \"x\")]\npub fn f() {\n    assert_eq!(1, 1);\n    vec![1, 2];\n}\n",
        );
        assert!(items[0].calls.is_empty());
    }

    #[test]
    fn nested_modules_and_restricted_visibility() {
        let items = extract_src(
            "mod outer {\n    mod inner {\n        pub(crate) fn g() {}\n        pub fn h() {}\n    }\n}\n",
        );
        assert_eq!(items[0].modules, vec!["outer", "inner"]);
        assert!(!items[0].is_pub);
        assert!(items[1].is_pub);
    }

    #[test]
    fn test_region_functions_are_marked() {
        let items =
            extract_src("fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { prod(); }\n}\n");
        assert!(!items[0].in_test);
        assert!(items[1].in_test);
    }

    #[test]
    fn idents_cover_signature_and_body() {
        let items = extract_src(
            "fn settle(r: Reservation) -> Result<(), E> {\n    accountant.commit(r)\n}\n",
        );
        assert!(items[0].idents.contains("Reservation"));
        assert!(items[0].idents.contains("commit"));
    }

    #[test]
    fn bodyless_declarations_have_no_span() {
        let items = extract_src("trait T {\n    fn required(&self) -> u64;\n}\n");
        assert_eq!(items[0].body, None);
        assert_eq!(items[0].impl_type.as_deref(), Some("T"));
    }
}
