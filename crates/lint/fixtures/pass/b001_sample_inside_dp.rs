// prc-lint-fixture: path = crates/dp/src/laplace.rs
//! Sampling is sanctioned inside the privacy substrate.

pub fn draw_centered(scale: f64, rng: &mut Rng) -> f64 {
    Laplace::centered(scale).sample(rng)
}
