// prc-lint-fixture: path = crates/net/src/link.rs
//! Destructuring makes the short-input case explicit.

pub fn bounds(pair: &[f64]) -> Option<(f64, f64)> {
    match pair {
        [lo, hi] => Some((*lo, *hi)),
        _ => None,
    }
}
