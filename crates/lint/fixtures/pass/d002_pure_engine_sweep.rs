// prc-lint-fixture: path = crates/core/src/estimator/engine/sweep.rs
//! The engine sweep as it must be written: boundary resolution is a
//! pure function of the sorted values and the query batch — no clock,
//! no randomness — so every driver resolves identical positions.

pub fn advance(values: &[f64], start: usize, x: f64) -> usize {
    start + values[start..].partition_point(|&v| v < x)
}
