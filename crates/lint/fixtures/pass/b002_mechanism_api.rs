// prc-lint-fixture: path = crates/core/src/selection.rs
//! Mechanism types are the sanctioned prc-dp interface.

pub fn pick(eps: Epsilon, scores: &[f64], rng: &mut Rng) -> usize {
    ExponentialMechanism::new(eps, 1.0).select(scores, rng)
}
