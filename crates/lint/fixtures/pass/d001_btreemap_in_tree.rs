// prc-lint-fixture: path = crates/net/src/tree.rs
//! Ordered maps keep the tree driver byte-identical to flat.

use std::collections::BTreeMap;

pub fn routes() -> BTreeMap<u32, Vec<u32>> {
    BTreeMap::new()
}
