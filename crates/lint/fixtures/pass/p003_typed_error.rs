// prc-lint-fixture: path = crates/net/src/link.rs
//! Library code returns typed errors instead of panicking.

pub fn checked(n: usize) -> Result<usize, LinkError> {
    if n > 10 {
        Err(LinkError::TooBig { n })
    } else {
        Ok(n)
    }
}
