// prc-lint-fixture: path = crates/core/src/broker.rs
//! A helper reachable from the deterministic path is fine as long as
//! it sticks to ordered containers and takes no wall-clock reads.

pub fn answer(values: &[u64]) -> u64 {
    crate::util::checksum(values)
}

// prc-lint-fixture: path = crates/core/src/util.rs

pub fn checksum(values: &[u64]) -> u64 {
    let mut ordered = BTreeSet::new();
    for v in values {
        ordered.insert(*v);
    }
    ordered.into_iter().sum()
}
