// prc-lint-fixture: path = crates/core/src/broker.rs
//! Ordered maps keep deterministic paths reproducible.

use std::collections::BTreeMap;

pub fn ledger() -> BTreeMap<u64, f64> {
    BTreeMap::new()
}
