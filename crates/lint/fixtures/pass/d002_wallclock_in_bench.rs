// prc-lint-fixture: path = crates/bench/src/bin/bench_batch.rs
//! Wall-clock timing is fine in the benchmark harness.

pub fn timed() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
