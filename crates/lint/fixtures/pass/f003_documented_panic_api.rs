// prc-lint-fixture: path = crates/core/src/util.rs
//! The public boundary documents the panic contract, which absorbs
//! the taint from the sanctioned site below it.

fn join_worker(handle: Handle) -> u64 {
    // prc-lint: allow(P002, reason = "re-raises a worker panic; no sound recovery exists")
    handle.join().expect("worker panicked")
}

/// Joins the worker and merges its result.
///
/// # Panics
///
/// Propagates a panic from the worker thread.
pub fn merge_all(handle: Handle) -> u64 {
    join_worker(handle)
}
