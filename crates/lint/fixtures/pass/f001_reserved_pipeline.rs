// prc-lint-fixture: path = crates/dp/src/laplace.rs
//! A sampling primitive, sanctioned inside the substrate.

pub fn draw_centered<R>(dist: &Laplace, rng: &mut R) -> f64 {
    dist.sample(rng)
}

// prc-lint-fixture: path = crates/core/src/pipeline/stages.rs
//! The pipeline stage holds a reservation across the draw and
//! resolves it, so the chain below it is budget-protected.

pub fn perturb<R>(ledger: &mut Ledger, dist: &Laplace, rng: &mut R) -> f64 {
    let reservation: Reservation = ledger.reserve(1.0);
    let noise = prc_dp::laplace::draw_centered(dist, rng);
    reservation.commit();
    noise
}
