// prc-lint-fixture: path = crates/core/src/broker.rs
//! A flow-rule allow that suppresses a real interprocedural finding
//! is live, not stale.

pub fn answer() -> u64 {
    crate::util::stamp()
}

// prc-lint-fixture: path = crates/core/src/util.rs

pub fn stamp() -> u64 {
    // prc-lint: allow(F002, reason = "epoch stamp is advisory metadata, not part of the released answer bytes")
    secs(SystemTime::now())
}
