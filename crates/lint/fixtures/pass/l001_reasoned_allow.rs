// prc-lint-fixture: path = crates/net/src/pool.rs
//! A reasoned allow documents the one sound panic.

/// Joins the worker and returns its result.
///
/// # Panics
///
/// Propagates a panic from the worker thread.
pub fn join(handle: Handle) -> u64 {
    // prc-lint: allow(P002, reason = "re-raises a worker panic; no sound recovery exists")
    handle.join().expect("worker panicked")
}
