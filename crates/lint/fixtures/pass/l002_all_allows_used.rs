// prc-lint-fixture: path = crates/net/src/pool.rs
//! No allow directives, nothing stale to flag.

pub fn add(a: u64, b: u64) -> u64 {
    a.saturating_add(b)
}
