// prc-lint-fixture: path = crates/net/src/link.rs
//! Library code surfaces the absence instead of unwrapping.

pub fn head(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}
