// prc-lint-fixture: path = crates/runtime/src/pool.rs
//! Thread creation inside the executor crate: the one sanctioned home
//! for `thread::spawn` (R001 scopes it out).

pub fn spawn_worker() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
