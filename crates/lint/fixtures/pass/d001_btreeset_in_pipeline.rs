// prc-lint-fixture: path = crates/core/src/pipeline/stages.rs
//! Ordered sets keep the staged query pipeline reproducible.

use std::collections::BTreeSet;

pub fn seen_queries() -> BTreeSet<u64> {
    BTreeSet::new()
}
