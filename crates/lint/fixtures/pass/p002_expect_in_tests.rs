// prc-lint-fixture: path = crates/net/src/link.rs
//! Expect is fine inside #[cfg(test)] regions.

pub fn double(n: u64) -> u64 {
    n * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn doubles() {
        assert_eq!(super::double(2), "4".parse::<u64>().expect("parses"));
    }
}
