// prc-lint-fixture: path = crates/core/src/estimator/index/compaction.rs
//! The compaction policy as it must be written: the next step is a pure
//! function of segment statistics — no clock, no randomness, no I/O —
//! so identical station histories compact identically everywhere.

pub fn should_merge(prev_live: usize, tail_live: usize, fanout: usize) -> bool {
    prev_live <= fanout.saturating_mul(tail_live)
}
