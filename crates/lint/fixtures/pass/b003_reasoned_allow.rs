// prc-lint-fixture: path = crates/data/src/generator.rs
//! Simulation randomness carries a reasoned allow.

// prc-lint: allow(B003, reason = "synthetic-dataset randomness, not privacy noise")
use rand::rngs::StdRng;
