// prc-lint-fixture: path = crates/net/src/node.rs
//! Seeded RNGs keep simulations reproducible.

// prc-lint: allow(B003, reason = "seeded simulation randomness, not privacy noise")
use rand::{rngs::StdRng, SeedableRng};

pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
