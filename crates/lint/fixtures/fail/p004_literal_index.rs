// prc-lint-fixture: path = crates/net/src/link.rs
//! Indexing by integer literal in library code: P004.

pub fn first(xs: &[u64]) -> u64 {
    xs[0]
}
