// prc-lint-fixture: path = crates/pricing/src/sim.rs
//! An undocumented rand dependency outside prc-dp: B003.

use rand::rngs::StdRng;
