// prc-lint-fixture: path = crates/core/src/util.rs
//! A reasoned flow-rule allow that suppresses nothing is stale.

pub fn checksum(values: &[u64]) -> u64 {
    // prc-lint: allow(F002, reason = "ordered iteration is deterministic")
    values.iter().sum()
}
