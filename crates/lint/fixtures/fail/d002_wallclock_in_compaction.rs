// prc-lint-fixture: path = crates/core/src/estimator/index/compaction.rs
//! A wall-clock tiebreak inside the compaction policy: D002. The plan
//! must be a pure function of segment sizes, or two runs over the same
//! station history compact differently and the index layout (and its
//! counters) stop reproducing across drivers and machines.

pub fn should_merge(prev_live: usize, tail_live: usize) -> bool {
    let jitter = std::time::Instant::now().elapsed().as_nanos() % 2 == 0;
    prev_live <= 2 * tail_live && jitter
}
