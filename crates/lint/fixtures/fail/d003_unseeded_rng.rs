// prc-lint-fixture: path = crates/dp/src/noise.rs
//! An unseeded RNG (even inside prc-dp): D003.

pub fn fresh_rng() -> ThreadRng {
    thread_rng()
}
