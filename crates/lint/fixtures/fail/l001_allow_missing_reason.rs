// prc-lint-fixture: path = crates/net/src/link.rs
//! An allow directive without a reason: L001.

pub fn head(xs: &[u64]) -> u64 {
    // prc-lint: allow(P001)
    xs.first().copied().unwrap()
}
