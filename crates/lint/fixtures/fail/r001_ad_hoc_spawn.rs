// prc-lint-fixture: path = crates/core/src/worker.rs
//! Ad-hoc thread creation outside the executor crate: R001. All
//! parallel fan-out must go through the shared prc-runtime pool.

pub fn fan_out() {
    let handle = std::thread::spawn(|| {});
    let _ = handle.join();
}
