// prc-lint-fixture: path = crates/net/src/link.rs
//! An unwrap in library code: P001.

pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
