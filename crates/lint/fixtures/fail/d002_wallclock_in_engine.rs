// prc-lint-fixture: path = crates/core/src/estimator/engine/sweep.rs
//! A wall-clock read inside the batched query engine: D002. The sweep's
//! resolved positions must be a pure function of (values, queries).

pub fn resolve_deadline() -> std::time::Instant {
    std::time::Instant::now()
}
