// prc-lint-fixture: path = crates/core/src/pipeline/stages.rs
//! An unordered set in the staged query pipeline: D001. The pipeline
//! path set is deterministic — every stage's iteration order feeds the
//! released bits.

use std::collections::HashSet;

pub fn seen_queries() -> HashSet<u64> {
    HashSet::new()
}
