// prc-lint-fixture: path = crates/core/src/util.rs
//! The private helper's panic is sanctioned by a reasoned allow, but
//! the public function that can reach it documents nothing.

fn join_worker(handle: Handle) -> u64 {
    // prc-lint: allow(P002, reason = "re-raises a worker panic; no sound recovery exists")
    handle.join().expect("worker panicked")
}

pub fn merge_all(handle: Handle) -> u64 {
    join_worker(handle)
}
