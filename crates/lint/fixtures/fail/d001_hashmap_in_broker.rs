// prc-lint-fixture: path = crates/core/src/broker.rs
//! An unordered map in a deterministic answer path: D001.

use std::collections::HashMap;
