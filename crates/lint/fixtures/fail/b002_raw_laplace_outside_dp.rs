// prc-lint-fixture: path = crates/core/src/noise.rs
//! Raw distribution construction outside the substrate: B002.

pub fn make(scale: f64) -> Laplace {
    Laplace::centered(scale)
}
