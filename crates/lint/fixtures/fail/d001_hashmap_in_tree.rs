// prc-lint-fixture: path = crates/net/src/tree.rs
//! An unordered map in the tree driver: D001. Aggregation order would
//! depend on hashing, breaking byte-identity with the flat driver.

use std::collections::HashMap;
