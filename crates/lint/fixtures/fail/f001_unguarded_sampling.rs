// prc-lint-fixture: path = crates/dp/src/laplace.rs
//! A sampling primitive, sanctioned inside the substrate.

pub fn draw_centered<R>(dist: &Laplace, rng: &mut R) -> f64 {
    dist.sample(rng)
}

// prc-lint-fixture: path = crates/core/src/release.rs
//! A library entry point that reaches the primitive with no
//! reservation holder anywhere on the path (F001), and a function
//! that acquires a hold and lets it leak (also F001).

pub fn leak_noise<R>(dist: &Laplace, rng: &mut R) -> f64 {
    prc_dp::laplace::draw_centered(dist, rng)
}

pub fn grab_budget(ledger: &mut Ledger) {
    ledger.reserve(1.0);
}
