// prc-lint-fixture: path = crates/core/src/estimator/scan.rs
//! A wall-clock read in a deterministic answer path: D002.

pub fn stamp() -> u64 {
    elapsed_nanos(std::time::Instant::now())
}
