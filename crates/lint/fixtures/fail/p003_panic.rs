// prc-lint-fixture: path = crates/net/src/link.rs
//! A panic in library code: P003.

pub fn checked(n: usize) -> usize {
    if n > 10 {
        panic!("too big")
    } else {
        n
    }
}
