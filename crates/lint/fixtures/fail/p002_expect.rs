// prc-lint-fixture: path = crates/net/src/link.rs
//! An expect in library code: P002.

pub fn parse(s: &str) -> u64 {
    s.parse().expect("not a number")
}
