// prc-lint-fixture: path = crates/core/src/broker.rs
//! The broker is a deterministic-path root; the helper it calls lives
//! outside the scope, where the per-file D002 pass cannot see it.

pub fn answer() -> u64 {
    crate::util::stamp()
}

// prc-lint-fixture: path = crates/core/src/util.rs

pub fn stamp() -> u64 {
    secs(SystemTime::now())
}
