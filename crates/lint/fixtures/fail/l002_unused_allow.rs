// prc-lint-fixture: path = crates/net/src/link.rs
//! An allow directive that suppresses nothing: L002.

// prc-lint: allow(P002, reason = "stale: the expect below was removed long ago")
pub fn fine() -> u64 {
    7
}
