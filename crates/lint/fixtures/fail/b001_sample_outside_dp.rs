// prc-lint-fixture: path = crates/core/src/noise.rs
//! A broker-side module drawing noise directly: B001.

pub fn add_noise(dist: &Dist, rng: &mut Rng) -> f64 {
    dist.sample(rng)
}
