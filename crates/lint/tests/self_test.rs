//! The fixture corpus must behave exactly as labelled: pass fixtures
//! lint clean, fail fixtures trip precisely their named rule.

use std::path::PathBuf;

use prc_lint::{self_test, RULE_IDS};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

#[test]
fn every_fixture_behaves_as_labelled() {
    let results = self_test(&fixtures_dir()).expect("fixture corpus must be readable");
    let failures: Vec<String> = results
        .iter()
        .filter_map(|r| r.problem.as_ref().map(|p| format!("{}: {p}", r.name)))
        .collect();
    assert!(
        failures.is_empty(),
        "fixture failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_covers_every_rule() {
    let results = self_test(&fixtures_dir()).expect("fixture corpus must be readable");
    // One pair per rule, plus the extra D001 pairs pinning the pipeline
    // modules and the tree driver into the deterministic scope, plus the
    // D002 pair pinning the segmented index's compaction policy.
    assert_eq!(results.len(), 2 * RULE_IDS.len() + 6);
    for rule in RULE_IDS {
        let prefix = rule.to_lowercase();
        assert!(
            results.iter().any(|r| r.name.starts_with(&prefix)),
            "no fail fixture for rule {rule}"
        );
    }
}

#[test]
fn self_test_errors_on_missing_corpus() {
    let missing = fixtures_dir().join("no-such-dir");
    assert!(self_test(&missing).is_err());
}
