//! The real source tree must lint clean: every invariant in the catalog
//! holds across the workspace, and every escape hatch carries a reason
//! and suppresses something. A finding here means newly added code broke
//! an invariant (fix it, or add a `prc-lint: allow` with a reason).

use std::path::PathBuf;

use prc_lint::{lint_tree, render_text};

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn workspace_has_no_findings() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected the workspace root at {}",
        root.display()
    );
    let findings = lint_tree(&root).expect("workspace tree must be readable");
    assert!(
        findings.is_empty(),
        "prc-lint found invariant violations in the workspace:\n{}",
        render_text(&findings)
    );
}
