//! Criterion micro-benchmarks: the end-to-end broker pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prc_bench::{build_network, standard_workload};
use prc_core::broker::DataBroker;
use prc_core::query::{Accuracy, QueryRequest};
use prc_data::generator::CityPulseGenerator;
use prc_data::record::AirQualityIndex;

fn bench_pipeline(c: &mut Criterion) {
    let dataset = CityPulseGenerator::new(7).generate();
    let values = dataset.values(AirQualityIndex::Ozone);
    let workload = standard_workload(&values);
    let request = QueryRequest::new(workload[2], Accuracy::new(0.08, 0.6).unwrap());

    let mut group = c.benchmark_group("broker");
    group.sample_size(20);

    // Warm path: samples already collected, answer() only plans + perturbs.
    let network = build_network(&dataset, AirQualityIndex::Ozone, 7);
    let mut broker = DataBroker::new(network, 7);
    broker.answer(&request).unwrap();
    group.bench_function("answer_warm", |b| {
        b.iter(|| black_box(broker.answer(black_box(&request)).unwrap()));
    });

    // Cold path: includes the initial sample collection.
    group.bench_function("answer_cold", |b| {
        b.iter(|| {
            let network = build_network(&dataset, AirQualityIndex::Ozone, 7);
            let mut broker = DataBroker::new(network, 7);
            black_box(broker.answer(black_box(&request)).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
