//! Criterion micro-benchmarks: pricing evaluation and arbitrage search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prc_pricing::arbitrage::{find_arbitrage, AttackConfig};
use prc_pricing::functions::{InverseVariancePricing, PricingFunction};
use prc_pricing::theorem::{check_theorem_4_2, TheoremCheckConfig};
use prc_pricing::variance::ChebyshevVariance;

fn bench_pricing(c: &mut Criterion) {
    let model = ChebyshevVariance::new(17_568);
    let pricing = InverseVariancePricing::new(1e9, model);

    c.bench_function("price_single", |b| {
        b.iter(|| black_box(pricing.price(black_box(0.05), black_box(0.8))));
    });

    let mut group = c.benchmark_group("certification");
    group.sample_size(10);
    group.bench_function("theorem_check", |b| {
        b.iter(|| {
            black_box(check_theorem_4_2(
                &pricing,
                &model,
                &TheoremCheckConfig::default(),
            ))
        });
    });
    let targets = [(0.05, 0.8), (0.1, 0.5)];
    let config = AttackConfig {
        max_bundle_size: 6,
        candidate_grid: 12,
        mixed_trials: 16,
        ..AttackConfig::default()
    };
    group.bench_function("arbitrage_search", |b| {
        b.iter(|| black_box(find_arbitrage(&pricing, &model, &targets, &config)));
    });
    group.finish();
}

criterion_group!(benches, bench_pricing);
criterion_main!(benches);
