//! Criterion micro-benchmarks: estimator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prc_bench::{build_network, standard_workload};
use prc_core::estimator::{BasicCounting, RangeCountEstimator, RankCounting};
use prc_data::generator::CityPulseGenerator;
use prc_data::record::AirQualityIndex;

fn bench_estimators(c: &mut Criterion) {
    let dataset = CityPulseGenerator::new(7).generate();
    let values = dataset.values(AirQualityIndex::Ozone);
    let workload = standard_workload(&values);
    let query = workload[2];

    let mut group = c.benchmark_group("estimate_global");
    group.sample_size(20);
    for &p in &[0.05, 0.2, 0.5] {
        let mut network = build_network(&dataset, AirQualityIndex::Ozone, 7);
        network.collect_samples(p);
        let station = network.station().clone();
        group.bench_with_input(BenchmarkId::new("RankCounting", p), &p, |b, _| {
            b.iter(|| black_box(RankCounting.estimate(&station, black_box(query))));
        });
        group.bench_with_input(BenchmarkId::new("BasicCounting", p), &p, |b, _| {
            b.iter(|| black_box(BasicCounting.estimate(&station, black_box(query))));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let dataset = CityPulseGenerator::new(7).generate();
    let mut group = c.benchmark_group("collect_samples");
    group.sample_size(10);
    for &p in &[0.05, 0.4] {
        group.bench_with_input(BenchmarkId::new("flat_k50", p), &p, |b, &p| {
            b.iter(|| {
                let mut network = build_network(&dataset, AirQualityIndex::Ozone, 7);
                black_box(network.collect_samples(p))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_sampling);
criterion_main!(benches);
