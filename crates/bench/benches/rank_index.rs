//! Criterion micro-benchmarks: the merged prefix-rank query index.
//!
//! Measures the two sides of the index trade-off separately — the
//! one-off `O(S log S)` build and the `O(log S)` per-query estimate —
//! against the `O(k log s)` per-node scan, so regressions in either
//! stage are visible locally. The identity self-check at the top keeps
//! the bench honest: both paths must produce the same bits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prc_core::estimator::{RangeCountEstimator, RankCounting, RankIndex};
use prc_core::query::RangeQuery;
use prc_net::base_station::BaseStation;
use prc_net::network::FlatNetwork;

const PER_NODE: usize = 128;
const PROBABILITY: f64 = 0.25;

fn station(k: usize) -> BaseStation {
    let partitions: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..PER_NODE).map(|j| (i * PER_NODE + j) as f64).collect())
        .collect();
    let mut network = FlatNetwork::from_partitions(partitions, 2014);
    network.collect_samples(PROBABILITY);
    network.station().clone()
}

fn queries(k: usize) -> Vec<RangeQuery> {
    let n = (k * PER_NODE) as f64;
    (0..32)
        .map(|i| {
            let lower = n * (i as f64) / 64.0;
            RangeQuery::new(lower, lower + n / 4.0).unwrap()
        })
        .collect()
}

fn assert_identity(station: &BaseStation, index: &RankIndex, queries: &[RangeQuery]) {
    for &query in queries {
        let indexed = index.estimate(query);
        let scanned = RankCounting.estimate(station, query);
        assert_eq!(
            indexed.to_bits(),
            scanned.to_bits(),
            "index diverged from scan on {query:?}: {indexed} vs {scanned}"
        );
    }
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_index_build");
    group.sample_size(10);
    for &k in &[64usize, 1_024] {
        let station = station(k);
        group.bench_with_input(BenchmarkId::new("build", k), &k, |b, _| {
            b.iter(|| black_box(RankIndex::build(black_box(&station)).unwrap()));
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_index_query");
    group.sample_size(20);
    for &k in &[64usize, 1_024] {
        let station = station(k);
        let index = RankIndex::build(&station).unwrap();
        let workload = queries(k);
        assert_identity(&station, &index, &workload);
        group.bench_with_input(BenchmarkId::new("indexed", k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for &query in &workload {
                    acc += index.estimate(black_box(query));
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("scan", k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for &query in &workload {
                    acc += RankCounting.estimate(black_box(&station), black_box(query));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
