//! Criterion micro-benchmarks: the perturbation optimizer (problem 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prc_core::optimizer::{optimize, NetworkShape, OptimizerConfig};
use prc_core::query::Accuracy;

fn bench_optimizer(c: &mut Criterion) {
    let shape = NetworkShape::new(50, 17_568);
    let accuracy = Accuracy::new(0.08, 0.6).unwrap();

    let mut group = c.benchmark_group("optimize");
    group.sample_size(30);
    for &grid in &[50usize, 200, 1_000] {
        let config = OptimizerConfig {
            grid_points: grid,
            ..OptimizerConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("grid", grid), &grid, |b, _| {
            b.iter(|| {
                black_box(optimize(black_box(accuracy), black_box(0.4), shape, &config).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
