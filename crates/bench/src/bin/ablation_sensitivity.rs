//! Ablation A2: sensitivity policy — expected (1/p) vs worst case (n_i).
//!
//! §III-B argues that using the worst-case sensitivity `n_i` "will
//! totally destroy the aggregation utility" and adopts the expectation
//! `1/p`. This ablation quantifies that choice: for the same accuracy
//! demands, it compares the Laplace budget ε, the noise scale, and the
//! measured error under both policies.
//!
//! Run with `cargo run -p prc-bench --release --bin ablation_sensitivity`.

use prc_bench::{build_network, print_table, standard_dataset, standard_workload, SEED};
use prc_core::broker::DataBroker;
use prc_core::exact::range_count;
use prc_core::optimizer::{OptimizerConfig, SensitivityPolicy};
use prc_core::query::{Accuracy, QueryRequest};
use prc_data::record::AirQualityIndex;

fn main() {
    let dataset = standard_dataset();
    let index = AirQualityIndex::Ozone;
    let values = dataset.values(index);
    let workload = standard_workload(&values);

    let demands = [(0.05, 0.8), (0.08, 0.6), (0.15, 0.5), (0.3, 0.5)];
    let mut rows = Vec::new();
    for &(alpha, delta) in &demands {
        let accuracy = Accuracy::new(alpha, delta).expect("valid demand");
        for (label, policy) in [
            ("expected 1/p", SensitivityPolicy::Expected),
            ("worst-case n_i", SensitivityPolicy::WorstCase),
        ] {
            let network = build_network(&dataset, index, SEED + 7);
            let mut broker = DataBroker::new(network, SEED + 7);
            broker.set_optimizer_config(OptimizerConfig {
                sensitivity: policy,
                ..OptimizerConfig::default()
            });
            let query = workload[2]; // the interquartile range
            let truth = range_count(&values, query) as f64;
            match broker.answer(&QueryRequest::new(query, accuracy)) {
                Ok(answer) => {
                    rows.push(vec![
                        format!("({alpha}, {delta})"),
                        label.to_string(),
                        format!("{:.4}", answer.plan.epsilon.value()),
                        format!("{:.4}", answer.plan.effective_epsilon.value()),
                        format!("{:.1}", answer.plan.noise_scale),
                        format!("{:.2}%", (answer.value - truth).abs() / truth * 100.0),
                    ]);
                }
                Err(e) => {
                    rows.push(vec![
                        format!("({alpha}, {delta})"),
                        label.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{e}"),
                    ]);
                }
            }
        }
    }
    print_table(
        "Ablation A2 — sensitivity policy impact (ozone, k=50, interquartile query)",
        &[
            "demand (α, δ)",
            "policy",
            "ε",
            "effective ε′",
            "noise scale b",
            "rel err",
        ],
        &rows,
    );
    println!("\nexpected shape: worst-case sensitivity inflates ε (weaker privacy) for the same accuracy —\nthe paper's 1/p choice dominates on both axes");
}
