//! Fig. 3 reproduction: querying accuracy vs the accuracy demand (α, δ).
//!
//! The paper sweeps α = δ from 0.08 to 0.8, sampling at the Theorem 3.3
//! probability for each point, and reports the maximum relative error:
//! erratic for δ < 0.3, stable and small for δ > 0.3.
//!
//! The natural unit for a sweep where α itself changes is the
//! Definition 2.2 allowance `α·n`; we report `max |err|/(αn)` (theory:
//! the estimator's standard deviation at the Theorem 3.3 probability is
//! exactly `αn·√(1−δ)`, so the curve should decay like `√(1−δ)` once the
//! sample is large enough to be stable), alongside the raw `|err|/n`.
//!
//! Run with `cargo run -p prc-bench --release --bin fig3`.

use prc_bench::{
    build_network, linear_grid, max_relative_error, print_table, standard_dataset,
    standard_workload, ErrorScale, NODES, SEED,
};
use prc_core::accuracy::required_probability_clamped;
use prc_core::estimator::RankCounting;
use prc_core::query::Accuracy;
use prc_data::record::AirQualityIndex;

fn main() {
    let dataset = standard_dataset();
    let index = AirQualityIndex::Ozone;
    let values = dataset.values(index);
    let workload = standard_workload(&values);
    let n = values.len();

    let grid = linear_grid(0.08, 0.8, 16);
    let mut rows = Vec::new();
    for (i, &level) in grid.iter().enumerate() {
        let accuracy = Accuracy::new(level, level).expect("grid stays in (0,1)");
        let p = required_probability_clamped(accuracy, NODES, n).expect("valid shape");
        let mut network = build_network(&dataset, index, SEED + 31 * i as u64);
        network.collect_samples(p);
        let err_allow = max_relative_error(
            &RankCounting,
            &network,
            &values,
            &workload,
            ErrorScale::RelativeToAllowance { alpha: level },
        );
        let err_pop = max_relative_error(
            &RankCounting,
            &network,
            &values,
            &workload,
            ErrorScale::RelativeToPopulation,
        );
        rows.push(vec![
            format!("{level:.2}"),
            format!("{p:.5}"),
            format!("{:.3}", err_allow),
            format!("{:.4}", err_pop),
            format!("{:.3}", (1.0 - level).sqrt()),
        ]);
    }
    let headers = [
        "alpha=delta",
        "p (Thm 3.3)",
        "max err/(alpha n)",
        "max err/n",
        "theory sqrt(1-delta)",
    ];
    print_table(
        "Fig. 3 — max relative error vs accuracy demand α = δ (Thm 3.3 sampling, ozone, k=50)",
        &headers,
        &rows,
    );
    if let Ok(path) = prc_bench::export_csv("fig3", &headers, &rows) {
        println!("csv: {}", path.display());
    }
    println!("\npaper shape: erratic for δ < 0.3, stable and small for δ > 0.3");
}
