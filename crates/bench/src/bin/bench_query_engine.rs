//! Batched query-engine benchmark: the cache-conscious resolvers against
//! the two-`partition_point` baseline they replaced.
//!
//! For each cell of a node-count × query-count grid the same query
//! workload is answered three ways over one [`RankIndex`]:
//!
//! * **baseline** — per query, two `partition_point` binary searches
//!   over the sorted values (the pre-engine indexed path);
//! * **eytzinger** — per query, the branchless BFS-layout descent;
//! * **batch** — the whole workload in one call, its `2q` boundaries
//!   sorted once and resolved in a single galloping forward sweep.
//!
//! Every path is timed as the minimum of `REPS` runs, and every run's
//! released bits must be identical across reps *and* across paths
//! before any timing is trusted (`all_identical`). A final section runs
//! the full batched broker pipeline with repeated accuracy classes over
//! distinct ranges and asserts the engine and optimizer plan-cache
//! counters actually moved — proof the wired paths, not fallbacks,
//! answered the batch.
//!
//! Run with `cargo run -p prc-bench --release --bin bench_query_engine`.
//! Set `PRC_BENCH_SMOKE=1` to shrink every dimension to CI-smoke sizes
//! (identity and counter self-checks still run and must pass; the
//! wall-clock speedup bar is skipped). Writes `BENCH_query_engine.json`
//! at the repository root.

use std::time::Instant;

use prc_core::broker::DataBroker;
use prc_core::estimator::RankIndex;
use prc_core::query::{Accuracy, QueryRequest, RangeQuery};
use prc_net::base_station::BaseStation;
use prc_net::network::FlatNetwork;

const SEED: u64 = 2014;
const REPS: usize = 3;

/// True when `PRC_BENCH_SMOKE` asks for CI-smoke sizes.
fn smoke() -> bool {
    std::env::var("PRC_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn queries_per_sec(requests: usize, seconds: f64) -> f64 {
    requests as f64 / seconds.max(1e-12)
}

/// Collects one epoch's station: `k` nodes of `per_node` contiguous
/// values each, sampled at `p` (the `bench_batch` trajectory geometry,
/// so cells are comparable across the two benchmarks).
fn trajectory_station(k: usize, per_node: usize, p: f64) -> BaseStation {
    let partitions: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
        .collect();
    let mut network = FlatNetwork::from_partitions(partitions, SEED);
    network.collect_samples(p);
    network.station().clone()
}

/// A deterministic splitmix64 stream — the workload generator below
/// needs `count` *distinct* bounds, not a short periodic pattern that
/// would leave every baseline search path resident in cache.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic mixed-width query workload over support `[0, n)`
/// with per-query distinct bounds (seeded, reproducible).
fn trajectory_queries(count: usize, n: f64) -> Vec<RangeQuery> {
    let mut state = SEED;
    (0..count)
        .map(|_| {
            let unit = |s: &mut u64| (splitmix64(s) >> 11) as f64 / (1u64 << 53) as f64;
            let lower = n * 0.9 * unit(&mut state);
            let width = n * (0.05 + 0.3 * unit(&mut state));
            RangeQuery::new(lower, (lower + width).min(n)).expect("valid range")
        })
        .collect()
}

/// Minimum-of-`REPS` timing of one resolver path. Every rep must release
/// the same bits; the first rep's bits are returned for the cross-path
/// identity check.
fn time_path(label: &str, mut run: impl FnMut() -> Vec<u64>) -> (f64, Vec<u64>) {
    let mut best = f64::INFINITY;
    let mut bits: Option<Vec<u64>> = None;
    for rep in 0..REPS {
        let start = Instant::now();
        let released = run();
        let seconds = start.elapsed().as_secs_f64();
        best = best.min(seconds);
        match &bits {
            None => bits = Some(released),
            Some(first) => assert_eq!(
                first, &released,
                "{label} released different bits on rep {rep}"
            ),
        }
    }
    (best, bits.unwrap_or_default())
}

/// One grid cell: the same workload through all three resolver paths.
struct EngineCell {
    nodes: usize,
    queries: usize,
    merged_entries: usize,
    baseline_seconds: f64,
    eytzinger_seconds: f64,
    batch_seconds: f64,
    gallop_steps: u64,
    identical: bool,
}

impl EngineCell {
    /// Per-query speedup of the single-query Eytzinger descent over the
    /// `partition_point` baseline.
    fn speedup_eytzinger(&self) -> f64 {
        self.baseline_seconds / self.eytzinger_seconds.max(1e-12)
    }

    /// Per-query speedup of the sorted-batch sweep over the baseline —
    /// the bar this engine is accountable to.
    fn speedup_batch(&self) -> f64 {
        self.baseline_seconds / self.batch_seconds.max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "    {{\"nodes\": {}, \"queries\": {}, \"merged_entries\": {}, \"baseline_seconds\": {:.6}, \"eytzinger_seconds\": {:.6}, \"batch_seconds\": {:.6}, \"baseline_qps\": {:.2}, \"eytzinger_qps\": {:.2}, \"batch_qps\": {:.2}, \"speedup_eytzinger\": {:.2}, \"speedup_batch\": {:.2}, \"gallop_steps\": {}, \"identical\": {}}}",
            self.nodes,
            self.queries,
            self.merged_entries,
            self.baseline_seconds,
            self.eytzinger_seconds,
            self.batch_seconds,
            queries_per_sec(self.queries, self.baseline_seconds),
            queries_per_sec(self.queries, self.eytzinger_seconds),
            queries_per_sec(self.queries, self.batch_seconds),
            self.speedup_eytzinger(),
            self.speedup_batch(),
            self.gallop_steps,
            self.identical,
        )
    }
}

/// Benchmarks the three resolver paths across node and query counts.
fn engine_trajectory() -> Vec<EngineCell> {
    let (node_counts, query_counts, per_node): (&[usize], &[usize], usize) = if smoke() {
        (&[16, 64], &[4, 16], 64)
    } else {
        (&[64, 1_024, 16_384], &[16, 256, 4_096], 128)
    };
    let p = 0.25;
    let mut cells = Vec::new();
    for &k in node_counts {
        let station = trajectory_station(k, per_node, p);
        let index = RankIndex::build(&station).expect("uniform station builds");
        for &count in query_counts {
            let queries = trajectory_queries(count, (k * per_node) as f64);

            let (baseline_seconds, baseline_bits) = time_path("baseline", || {
                queries
                    .iter()
                    .map(|&q| index.estimate_baseline(q).to_bits())
                    .collect()
            });
            let (eytzinger_seconds, eytzinger_bits) = time_path("eytzinger", || {
                queries
                    .iter()
                    .map(|&q| index.estimate(q).to_bits())
                    .collect()
            });
            let mut gallop_steps = 0;
            let (batch_seconds, batch_bits) = time_path("batch", || {
                let batch = index.estimate_batch(&queries);
                gallop_steps = batch.gallop_steps;
                batch.estimates.iter().map(|e| e.to_bits()).collect()
            });

            cells.push(EngineCell {
                nodes: k,
                queries: count,
                merged_entries: index.merged_entries(),
                baseline_seconds,
                eytzinger_seconds,
                batch_seconds,
                gallop_steps,
                identical: baseline_bits == eytzinger_bits && baseline_bits == batch_bits,
            });
        }
    }
    cells
}

/// The end-to-end section: a batched broker run whose workload repeats
/// a few accuracy classes over *distinct* ranges, so the optimizer plan
/// cache (keyed by accuracy and rate tier, not by range) must hit while
/// the answer cache cannot.
struct PipelineSection {
    requests: usize,
    engine_hits: u64,
    plan_cache_hits: u64,
    gallop_steps: u64,
    indexed_estimates: u64,
    deterministic: bool,
}

impl PipelineSection {
    fn json(&self) -> String {
        format!(
            "  {{\"requests\": {}, \"engine_hits\": {}, \"plan_cache_hits\": {}, \"gallop_steps\": {}, \"indexed_estimates\": {}, \"deterministic\": {}}}",
            self.requests,
            self.engine_hits,
            self.plan_cache_hits,
            self.gallop_steps,
            self.indexed_estimates,
            self.deterministic,
        )
    }
}

fn pipeline_section() -> PipelineSection {
    let (k, per_node, count) = if smoke() {
        (8, 256, 16)
    } else {
        (32, 4_096, 128)
    };
    let n = (k * per_node) as f64;
    let partitions: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..per_node).map(|j| (i + k * j) as f64).collect())
        .collect();
    // Two accuracy classes over distinct, non-repeating ranges.
    let accuracies = [
        Accuracy::new(0.1, 0.5).expect("valid"),
        Accuracy::new(0.15, 0.6).expect("valid"),
    ];
    let requests: Vec<QueryRequest> = (0..count)
        .map(|i| {
            let lower = n * 0.8 * (i as f64) / count as f64;
            let width = n * (0.1 + 0.2 * ((i * 13) % 8) as f64 / 8.0);
            QueryRequest::new(
                RangeQuery::new(lower, (lower + width).min(n)).expect("valid range"),
                accuracies[i % accuracies.len()],
            )
        })
        .collect();

    let run = || {
        let mut broker =
            DataBroker::new(FlatNetwork::from_partitions(partitions.clone(), SEED), SEED);
        broker.set_index_threshold(0); // force the engine path
        broker.answer_batch(&requests)
    };
    let report = run();
    let rerun = run();
    let bits = |r: &prc_core::broker::BatchReport| -> Vec<u64> {
        r.answers
            .iter()
            .map(|a| a.as_ref().expect("batch answer").value.to_bits())
            .collect()
    };
    PipelineSection {
        requests: requests.len(),
        engine_hits: report.stats.engine_hits,
        plan_cache_hits: report.stats.plan_cache_hits,
        gallop_steps: report.stats.gallop_steps,
        indexed_estimates: report.stats.indexed_estimates,
        deterministic: bits(&report) == bits(&rerun),
    }
}

fn main() {
    let cells = engine_trajectory();
    let all_identical = cells.iter().all(|c| c.identical);
    let pipeline = pipeline_section();

    let cell_json = cells
        .iter()
        .map(EngineCell::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"query_engine\",\n  \"smoke\": {},\n  \"seed\": {SEED},\n  \"probability\": 0.25,\n  \"reps\": {REPS},\n  \"cells\": [\n{cell_json}\n  ],\n  \"all_identical\": {all_identical},\n  \"pipeline\":\n{}\n}}",
        smoke(),
        pipeline.json(),
    );
    println!("{json}");

    // The trajectory lands at the repository root so successive PRs can
    // diff it; fall back to CWD when the manifest-relative path is absent.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let target = if root.is_dir() {
        root.join("BENCH_query_engine.json")
    } else {
        std::path::PathBuf::from("BENCH_query_engine.json")
    };
    match std::fs::write(&target, &json) {
        Ok(()) => eprintln!("json: {}", target.display()),
        Err(e) => eprintln!("could not write {}: {e}", target.display()),
    }

    assert!(
        all_identical,
        "engine paths diverged from the partition_point baseline"
    );
    assert!(
        pipeline.deterministic,
        "batched engine runs must release bit-identical answers"
    );
    assert!(
        pipeline.engine_hits > 0,
        "the batch pipeline never touched the engine (engine_hits = 0)"
    );
    assert!(
        pipeline.plan_cache_hits > 0,
        "repeated accuracy classes produced no plan-cache hits"
    );
    assert_eq!(
        pipeline.engine_hits, pipeline.indexed_estimates,
        "every indexed estimate must route through the engine"
    );
    for cell in &cells {
        let batch = cell.speedup_batch();
        assert!(
            batch.is_finite() && batch > 0.0,
            "batch speedup degenerated at k={} q={} (got {batch})",
            cell.nodes,
            cell.queries,
        );
    }

    if !smoke() {
        // The headline bar: at the largest cell the sorted-batch sweep
        // must beat the pre-engine indexed path per query by ≥ 1.3×.
        for cell in &cells {
            if cell.nodes >= 16_384 && cell.queries >= 4_096 {
                let speedup = cell.speedup_batch();
                assert!(
                    speedup >= 1.3,
                    "batch resolver must be ≥1.3× the partition_point baseline at k={} q={} (got {speedup:.2}×)",
                    cell.nodes,
                    cell.queries,
                );
            }
        }
    }
}
