//! Incremental-index epoch benchmark: the perf record for the
//! segmented [`SegmentedRankIndex`] against a per-epoch monolithic
//! rebuild and the raw per-node scan.
//!
//! The simulated deployment is the regime the continuous-marketplace
//! papers assume: many collection epochs, each changing only a slice of
//! the network, with a query workload answered between rounds. The
//! epoch schedule uses the two delta sources that keep a station's
//! sampling probability uniform (so every strategy stays on the exact
//! RankCounting path):
//!
//! 1. *revival catch-up* — the tree's leaf nodes start dead and come
//!    back a few per epoch, catching up to the constant target, so each
//!    round's delta is exactly the revived nodes (leaves only, so the
//!    flat, threaded, and tree drivers hold byte-identical stations);
//! 2. a final *global top-up* to a higher target — a full delta that
//!    mass-tombstones the old segments and lets compaction collapse the
//!    index back to a single segment (the steady state the q=4096
//!    throughput bar is measured at). A full delta is rebuild-equivalent
//!    for every strategy (every node changes), so its maintenance cost
//!    is reported separately (`topup_maintain_seconds`) and the
//!    amortized speedups are totalled over the incremental epochs only.
//!
//! Three strategies answer the identical per-epoch workload:
//!
//! * `scan` — no index; every query pays the O(k log s) per-node scan;
//! * `monolithic` — a fresh [`RankIndex`] built every epoch (what the
//!   broker did before this change);
//! * `segmented` — one [`SegmentedRankIndex`] built at epoch 0 and fed
//!   each round's [`RoundDelta`] via `absorb_delta`.
//!
//! Every cell checks all three strategies release bit-identical
//! estimates, on every driver; the summary asserts the cross-driver
//! bits match too. Results land in `BENCH_incremental_index.json` at
//! the repository root.
//!
//! Run with `cargo run -p prc-bench --release --bin bench_incremental`.
//! Set `PRC_BENCH_SMOKE=1` for CI-smoke sizes: the bit-identity checks
//! and the deterministic maintenance-entries regression bar still run;
//! the wall-clock speedup bars (amortized ≥ 1× at q=16, steady-state
//! per-query ≥ 0.9× of monolithic at q=4096) are full-mode only.

use std::time::Instant;

use prc_core::estimator::{RangeCountEstimator, RankCounting, RankIndex, SegmentedRankIndex};
use prc_core::query::RangeQuery;
use prc_net::failure::FailurePlan;
use prc_net::message::NodeId;
use prc_net::network::{FlatNetwork, Network, ThreadedNetwork};
use prc_net::tree::TreeNetwork;

const SEED: u64 = 4019;
/// Constant revival target: every incremental epoch collects at `P0`.
const P0: f64 = 0.25;
/// Final global top-up target (the full-delta epoch).
const P1: f64 = 0.5;
const TREE_BRANCHING: usize = 2;

fn smoke() -> bool {
    std::env::var("PRC_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The epoch grid's fixed dimensions.
struct Shape {
    nodes: usize,
    per_node: usize,
    /// Node ids that are leaves of the binary aggregation tree (heap
    /// layout: children of `i` are `2i+1, 2i+2`, so ids `>= nodes/2`
    /// have none). Only leaves are ever killed, which keeps the tree
    /// driver's delivered set equal to the flat driver's.
    leaves: std::ops::Range<u32>,
    revive_per_epoch: usize,
}

fn shape() -> Shape {
    if smoke() {
        Shape {
            nodes: 16,
            per_node: 60,
            leaves: 8..16,
            revive_per_epoch: 2,
        }
    } else {
        Shape {
            nodes: 256,
            per_node: 200,
            leaves: 128..256,
            revive_per_epoch: 4,
        }
    }
}

fn query_counts() -> &'static [usize] {
    if smoke() {
        &[8, 64]
    } else {
        &[16, 4_096]
    }
}

fn partitions(shape: &Shape) -> Vec<Vec<f64>> {
    (0..shape.nodes)
        .map(|i| {
            (0..shape.per_node)
                .map(|j| (i * shape.per_node + j) as f64)
                .collect()
        })
        .collect()
}

/// The epoch schedule: `(failure plan, collection target)` per round.
///
/// Epoch `e` keeps leaves `[e * revive_per_epoch ..]` dead; once every
/// leaf is alive, one final round raises the global target to `P1`.
fn schedule(shape: &Shape) -> Vec<(FailurePlan, f64)> {
    let leaf_count = shape.leaves.len();
    let mut rounds = Vec::new();
    let mut revived = 0;
    loop {
        let mut plan = FailurePlan::none();
        for leaf in shape.leaves.clone().skip(revived) {
            plan.kill_node(NodeId(leaf));
        }
        rounds.push((plan, P0));
        if revived >= leaf_count {
            break;
        }
        revived = (revived + shape.revive_per_epoch).min(leaf_count);
    }
    rounds.push((FailurePlan::none(), P1));
    rounds
}

/// Deterministic mixed-width workload over support `[0, n)`, varied per
/// epoch so the bit-identity check covers fresh ranges every round.
fn epoch_queries(count: usize, n: f64, epoch: usize) -> Vec<RangeQuery> {
    (0..count)
        .map(|i| {
            let lower = n * 0.9 * (((i * 61 + epoch * 17) % 128) as f64) / 128.0;
            let width = n * (0.05 + 0.3 * (((i * 37 + epoch * 29) % 16) as f64) / 16.0);
            RangeQuery::new(lower, (lower + width).min(n)).expect("valid range")
        })
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    Scan,
    Monolithic,
    Segmented,
}

/// One strategy's full run over the epoch schedule.
///
/// The incremental phase (all revival epochs, initial build included)
/// and the final global top-up are totalled separately: a full delta is
/// a rebuild-equivalent event by construction — every node changes, so
/// *any* strategy pays `O(S log S)` for it — and folding that one-off
/// into the per-epoch amortization would measure the top-up, not the
/// incremental maintenance this benchmark exists to track.
struct StrategyRun {
    bits: Vec<u64>,
    /// Maintenance seconds across the incremental (revival) epochs.
    incr_maintain_seconds: f64,
    /// Query seconds across the incremental epochs.
    incr_query_seconds: f64,
    /// Maintenance seconds for the final full top-up epoch.
    topup_maintain_seconds: f64,
    /// Best-of-5 single-pass time for the final (post-compaction) epoch.
    final_query_seconds: f64,
    /// Entries the strategy's maintenance touched across all epochs
    /// (merged for a rebuild; appended + tombstoned for an absorb) — a
    /// deterministic, noise-free measure of incrementality.
    maintenance_entries: usize,
    max_segments: usize,
    final_segments: usize,
    delta_appends: u64,
    compactions: u64,
}

/// Whole-run repetitions per strategy: timings are the element-wise
/// minimum across repetitions (the threaded and tree drivers spawn
/// collection threads right before each maintenance window, so a single
/// pass is noise-prone), bits must be identical across repetitions.
const REPS: usize = 3;

fn run_strategy<N: Network>(
    build: impl Fn() -> N,
    shape: &Shape,
    q: usize,
    strategy: Strategy,
) -> StrategyRun {
    let mut best: Option<StrategyRun> = None;
    for _ in 0..REPS {
        let rep = run_once(build(), shape, q, strategy);
        best = Some(match best {
            None => rep,
            Some(mut acc) => {
                assert_eq!(acc.bits, rep.bits, "a repetition changed the released bits");
                acc.incr_maintain_seconds =
                    acc.incr_maintain_seconds.min(rep.incr_maintain_seconds);
                acc.incr_query_seconds = acc.incr_query_seconds.min(rep.incr_query_seconds);
                acc.topup_maintain_seconds =
                    acc.topup_maintain_seconds.min(rep.topup_maintain_seconds);
                acc.final_query_seconds = acc.final_query_seconds.min(rep.final_query_seconds);
                acc
            }
        });
    }
    best.expect("REPS >= 1")
}

fn run_once<N: Network>(
    mut network: N,
    shape: &Shape,
    q: usize,
    strategy: Strategy,
) -> StrategyRun {
    let n = (shape.nodes * shape.per_node) as f64;
    let rounds = schedule(shape);
    let last_epoch = rounds.len() - 1;

    let mut segmented: Option<SegmentedRankIndex> = None;
    let mut monolithic: Option<RankIndex> = None;
    let mut run = StrategyRun {
        bits: Vec::new(),
        incr_maintain_seconds: 0.0,
        incr_query_seconds: 0.0,
        topup_maintain_seconds: 0.0,
        final_query_seconds: f64::INFINITY,
        maintenance_entries: 0,
        max_segments: 0,
        final_segments: 0,
        delta_appends: 0,
        compactions: 0,
    };

    for (epoch, (plan, target)) in rounds.into_iter().enumerate() {
        network.set_failure_plan(plan);
        let delta = network.collect_delta(target);
        let station = network.station();

        let maintain_start = Instant::now();
        match strategy {
            Strategy::Scan => {}
            Strategy::Monolithic => {
                let index = RankIndex::build(station).expect("uniform station builds");
                run.maintenance_entries += index.merged_entries();
                monolithic = Some(index);
            }
            Strategy::Segmented => match segmented.as_mut() {
                None => {
                    let index = SegmentedRankIndex::build(station).expect("uniform station builds");
                    run.maintenance_entries += index.merged_entries();
                    segmented = Some(index);
                }
                Some(index) => {
                    let outcome = index
                        .absorb_delta(station, &delta.changed)
                        .expect("revival epochs keep the station uniform");
                    run.maintenance_entries +=
                        outcome.appended_entries + outcome.tombstoned_entries;
                }
            },
        }
        let maintain_elapsed = maintain_start.elapsed().as_secs_f64();
        if epoch == last_epoch {
            run.topup_maintain_seconds += maintain_elapsed;
        } else {
            run.incr_maintain_seconds += maintain_elapsed;
        }
        if let Some(index) = &segmented {
            run.max_segments = run.max_segments.max(index.segments());
            run.final_segments = index.segments();
            run.delta_appends = index.delta_appends();
            run.compactions = index.compactions();
        }

        let queries = epoch_queries(q, n, epoch);
        let answer = |query: RangeQuery| -> u64 {
            match strategy {
                Strategy::Scan => RankCounting.estimate(station, query).to_bits(),
                Strategy::Monolithic => monolithic
                    .as_ref()
                    .map(|i| i.estimate(query).to_bits())
                    .unwrap_or(0),
                Strategy::Segmented => segmented
                    .as_ref()
                    .map(|i| i.estimate(query).to_bits())
                    .unwrap_or(0),
            }
        };

        let query_start = Instant::now();
        for &query in &queries {
            run.bits.push(answer(query));
        }
        if epoch != last_epoch {
            run.incr_query_seconds += query_start.elapsed().as_secs_f64();
        }

        if epoch == last_epoch {
            // Steady-state per-query throughput: best of 5 extra passes
            // over the final epoch's workload, minimizing timer noise.
            for _ in 0..5 {
                let pass = Instant::now();
                let mut sink = 0u64;
                for &query in &queries {
                    sink ^= answer(query);
                }
                std::hint::black_box(sink);
                run.final_query_seconds = run.final_query_seconds.min(pass.elapsed().as_secs_f64());
            }
        }
    }
    run
}

/// One (driver × queries-per-epoch) cell: all three strategies.
struct Cell {
    driver: &'static str,
    queries_per_epoch: usize,
    epochs: usize,
    scan: StrategyRun,
    monolithic: StrategyRun,
    segmented: StrategyRun,
}

impl Cell {
    fn identical(&self) -> bool {
        self.scan.bits == self.monolithic.bits && self.scan.bits == self.segmented.bits
    }

    /// Build-inclusive speedup of the segmented index over the scan,
    /// totalled across the incremental (revival) epochs — the final
    /// global top-up is rebuild-equivalent for every strategy and is
    /// reported separately as `topup_maintain_seconds`.
    fn amortized_vs_scan(&self) -> f64 {
        self.scan.incr_query_seconds
            / (self.segmented.incr_maintain_seconds + self.segmented.incr_query_seconds).max(1e-12)
    }

    /// Build-inclusive speedup of the segmented index over rebuilding
    /// the monolithic index every incremental epoch.
    fn amortized_vs_monolithic(&self) -> f64 {
        (self.monolithic.incr_maintain_seconds + self.monolithic.incr_query_seconds)
            / (self.segmented.incr_maintain_seconds + self.segmented.incr_query_seconds).max(1e-12)
    }

    /// Steady-state (final, fully-compacted epoch) per-query throughput
    /// of the segmented index relative to the monolithic one.
    fn steady_ratio_vs_monolithic(&self) -> f64 {
        self.monolithic.final_query_seconds / self.segmented.final_query_seconds.max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "    {{\"driver\": \"{}\", \"queries_per_epoch\": {}, \"epochs\": {}, \
\"scan\": {{\"incr_query_seconds\": {:.6}}}, \
\"monolithic\": {{\"incr_maintain_seconds\": {:.6}, \"incr_query_seconds\": {:.6}, \"topup_maintain_seconds\": {:.6}, \"final_pass_seconds\": {:.6}, \"maintenance_entries\": {}}}, \
\"segmented\": {{\"incr_maintain_seconds\": {:.6}, \"incr_query_seconds\": {:.6}, \"topup_maintain_seconds\": {:.6}, \"final_pass_seconds\": {:.6}, \"maintenance_entries\": {}, \"max_segments\": {}, \"final_segments\": {}, \"delta_appends\": {}, \"compactions\": {}}}, \
\"amortized_speedup_vs_scan\": {:.2}, \"amortized_speedup_vs_monolithic\": {:.2}, \"steady_per_query_ratio_vs_monolithic\": {:.2}, \"identical\": {}}}",
            self.driver,
            self.queries_per_epoch,
            self.epochs,
            self.scan.incr_query_seconds,
            self.monolithic.incr_maintain_seconds,
            self.monolithic.incr_query_seconds,
            self.monolithic.topup_maintain_seconds,
            self.monolithic.final_query_seconds,
            self.monolithic.maintenance_entries,
            self.segmented.incr_maintain_seconds,
            self.segmented.incr_query_seconds,
            self.segmented.topup_maintain_seconds,
            self.segmented.final_query_seconds,
            self.segmented.maintenance_entries,
            self.segmented.max_segments,
            self.segmented.final_segments,
            self.segmented.delta_appends,
            self.segmented.compactions,
            self.amortized_vs_scan(),
            self.amortized_vs_monolithic(),
            self.steady_ratio_vs_monolithic(),
            self.identical(),
        )
    }
}

fn run_cell(driver: &'static str, shape: &Shape, q: usize) -> Cell {
    let build_flat = || FlatNetwork::from_partitions(partitions(shape), SEED);
    let build_threaded = || ThreadedNetwork::from_partitions(partitions(shape), SEED);
    let build_tree = || TreeNetwork::from_partitions(partitions(shape), TREE_BRANCHING, SEED);
    let run = |strategy: Strategy| match driver {
        "flat" => run_strategy(build_flat, shape, q, strategy),
        "threaded" => run_strategy(build_threaded, shape, q, strategy),
        _ => run_strategy(build_tree, shape, q, strategy),
    };
    Cell {
        driver,
        queries_per_epoch: q,
        epochs: schedule(shape).len(),
        scan: run(Strategy::Scan),
        monolithic: run(Strategy::Monolithic),
        segmented: run(Strategy::Segmented),
    }
}

fn main() {
    let shape = shape();
    let mut cells: Vec<Cell> = Vec::new();
    for &q in query_counts() {
        for driver in ["flat", "threaded", "tree"] {
            cells.push(run_cell(driver, &shape, q));
        }
    }

    // Bit-identity: every strategy agrees within a cell, and the three
    // drivers release identical bits for the same workload.
    let all_identical = cells.iter().all(Cell::identical)
        && query_counts().iter().all(|&q| {
            let mut per_driver = cells
                .iter()
                .filter(|c| c.queries_per_epoch == q)
                .map(|c| &c.segmented.bits);
            match per_driver.next() {
                Some(first) => per_driver.all(|bits| bits == first),
                None => true,
            }
        });

    let cell_json = cells.iter().map(Cell::json).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"incremental_index\",\n  \"smoke\": {},\n  \"seed\": {SEED},\n  \"shape\": {{\"nodes\": {}, \"per_node\": {}, \"leaves\": [{}, {}], \"revive_per_epoch\": {}, \"p0\": {P0}, \"p1\": {P1}}},\n  \"cells\": [\n{cell_json}\n  ],\n  \"all_identical\": {all_identical}\n}}",
        smoke(),
        shape.nodes,
        shape.per_node,
        shape.leaves.start,
        shape.leaves.end,
        shape.revive_per_epoch,
    );
    println!("{json}");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let target = if root.is_dir() {
        root.join("BENCH_incremental_index.json")
    } else {
        std::path::PathBuf::from("BENCH_incremental_index.json")
    };
    match std::fs::write(&target, &json) {
        Ok(()) => eprintln!("json: {}", target.display()),
        Err(e) => eprintln!("could not write {}: {e}", target.display()),
    }

    assert!(
        all_identical,
        "segmented/monolithic/scan or cross-driver bits diverged"
    );

    // Deterministic incrementality bar (runs in smoke too — no wall
    // clock): across the whole schedule the segmented index must touch
    // far fewer entries than rebuild-per-epoch.
    for cell in &cells {
        assert!(
            cell.segmented.maintenance_entries < cell.monolithic.maintenance_entries,
            "{} q={}: segmented maintenance touched {} entries vs {} for rebuilds — deltas are not incremental",
            cell.driver,
            cell.queries_per_epoch,
            cell.segmented.maintenance_entries,
            cell.monolithic.maintenance_entries,
        );
        assert_eq!(
            cell.segmented.final_segments, 1,
            "{} q={}: the full top-up must compact back to one segment",
            cell.driver, cell.queries_per_epoch,
        );
        assert!(cell.segmented.compactions > 0);
    }

    // Wall-clock bars, full mode only (smoke sizes are noise-dominated).
    if !smoke() {
        let (low_q, high_q) = match *query_counts() {
            [low_q, high_q] => (low_q, high_q),
            _ => unreachable!("query grid is two-valued"),
        };
        for cell in &cells {
            if cell.queries_per_epoch == low_q {
                let vs_scan = cell.amortized_vs_scan();
                let vs_mono = cell.amortized_vs_monolithic();
                assert!(
                    vs_scan >= 1.0,
                    "{} q={}: amortized speedup vs scan {vs_scan:.2}× < 1×",
                    cell.driver,
                    cell.queries_per_epoch,
                );
                assert!(
                    vs_mono >= 1.0,
                    "{} q={}: amortized speedup vs monolithic rebuilds {vs_mono:.2}× < 1×",
                    cell.driver,
                    cell.queries_per_epoch,
                );
            }
            if cell.queries_per_epoch == high_q {
                let ratio = cell.steady_ratio_vs_monolithic();
                assert!(
                    ratio >= 0.9,
                    "{} q={}: steady-state per-query throughput {ratio:.2}× of monolithic < 0.9×",
                    cell.driver,
                    cell.queries_per_epoch,
                );
            }
        }
    }
}
