//! Fig. 6 reproduction: querying accuracy vs sampling probability under
//! different privacy budgets.
//!
//! The paper sweeps `p` from 0.0173 to 0.25 for several fixed ε values.
//! Because the estimator's sensitivity scales as `1/p`, a larger `p`
//! shrinks both the sampling error *and* the Laplace noise — accuracy
//! improves on both axes, and the curves for different ε converge as `p`
//! grows.
//!
//! Run with `cargo run -p prc-bench --release --bin fig6`.

use prc_bench::{
    build_network, geometric_grid, max_scaled_error, print_table, standard_dataset,
    standard_workload, ErrorScale, SEED,
};
use prc_core::broker::DataBroker;
use prc_core::exact::range_count;
use prc_data::record::AirQualityIndex;
use prc_dp::budget::Epsilon;

fn main() {
    let dataset = standard_dataset();
    let index = AirQualityIndex::Ozone;
    let values = dataset.values(index);
    let workload = standard_workload(&values);
    let epsilons = [0.1, 0.5, 1.0, 2.0];

    let grid = geometric_grid(0.0173, 0.25, 12);
    let mut rows = Vec::new();
    for (i, &p) in grid.iter().enumerate() {
        // One network per p row, shared by every ε column, so the columns
        // differ only in the Laplace noise they add.
        let network_seed = SEED + 17 * i as u64;
        let mut broker =
            DataBroker::new(build_network(&dataset, index, network_seed), network_seed);
        let mut row = vec![format!("{p:.4}")];
        for &eps in &epsilons {
            let epsilon = Epsilon::new(eps).expect("positive epsilon");
            let reps = 15;
            let mut pairs = Vec::new();
            for &q in &workload {
                let truth = range_count(&values, q) as f64;
                let mut err_sum = 0.0;
                for _ in 0..reps {
                    let answer = broker
                        .answer_with_epsilon(q, epsilon, p)
                        .expect("pipeline answers");
                    err_sum += (answer.value - truth).abs();
                }
                pairs.push((truth + err_sum / reps as f64, truth));
            }
            let err = max_scaled_error(&pairs, values.len(), ErrorScale::RelativeToTruth);
            row.push(format!("{:.2}", err * 100.0));
        }
        rows.push(row);
    }
    let headers = ["p", "eps=0.1", "eps=0.5", "eps=1", "eps=2"];
    print_table(
        "Fig. 6 — max relative error % vs sampling probability p, per privacy budget (ozone, k=50)",
        &headers,
        &rows,
    );
    if let Ok(path) = prc_bench::export_csv("fig6", &headers, &rows) {
        println!("csv: {}", path.display());
    }
    println!("\npaper shape: error falls with p for every ε (sensitivity ∝ 1/p); curves converge as p grows");
}
