//! Fig. 5 reproduction: querying accuracy vs privacy budget ε (p = 0.4).
//!
//! The paper sweeps ε from 0.01 to 8 at sampling probability 0.4 and
//! plots the relative error of the *private* answer for each of the five
//! air-quality datasets. Accuracy improves as ε grows (less privacy ⇒
//! less noise) and flattens at the sampling-error floor; even at ε = 0.1
//! the relative error stays bounded (the paper reports under 8% across
//! all five indexes).
//!
//! Run with `cargo run -p prc-bench --release --bin fig5`.

use prc_bench::{
    build_network, geometric_grid, max_scaled_error, print_table, standard_dataset,
    standard_workload, ErrorScale, SEED,
};
use prc_core::broker::DataBroker;
use prc_core::exact::range_count;
use prc_data::record::AirQualityIndex;
use prc_dp::budget::Epsilon;

fn main() {
    let dataset = standard_dataset();
    let p = 0.4;
    let grid = geometric_grid(0.01, 8.0, 13);

    // One broker (hence one fixed sample set) per index: along the ε axis
    // only the Laplace noise varies, exactly as in the paper's sweep.
    let mut brokers: Vec<DataBroker> = AirQualityIndex::ALL
        .iter()
        .map(|&index| DataBroker::new(build_network(&dataset, index, SEED), SEED))
        .collect();

    let mut rows = Vec::new();
    for &eps in &grid {
        let mut row = vec![format!("{eps:.3}")];
        for (broker, index) in brokers.iter_mut().zip(AirQualityIndex::ALL) {
            let values = dataset.values(index);
            let workload = standard_workload(&values);
            let epsilon = Epsilon::new(eps).expect("grid is positive");
            // Average the noisy error over repetitions per query so the
            // series is readable (the Laplace draw dominates at small ε).
            let reps = 15;
            let mut pairs = Vec::new();
            for &q in &workload {
                let truth = range_count(&values, q) as f64;
                let mut err_sum = 0.0;
                for _ in 0..reps {
                    let answer = broker
                        .answer_with_epsilon(q, epsilon, p)
                        .expect("pipeline answers");
                    err_sum += (answer.value - truth).abs();
                }
                pairs.push((truth + err_sum / reps as f64, truth));
            }
            let err = max_scaled_error(&pairs, values.len(), ErrorScale::RelativeToTruth);
            row.push(format!("{:.2}", err * 100.0));
        }
        rows.push(row);
    }
    let headers = ["epsilon", "ozone", "PM", "CO", "SO2", "NO2"];
    print_table(
        "Fig. 5 — max relative error % vs privacy budget ε (p=0.4, k=50, 5 indexes)",
        &headers,
        &rows,
    );
    if let Ok(path) = prc_bench::export_csv("fig5", &headers, &rows) {
        println!("csv: {}", path.display());
    }
    println!("\npaper shape: error falls as ε grows, flattens at the sampling floor;\nbounded (≲8%) at ε = 0.1 for all five indexes");
}
