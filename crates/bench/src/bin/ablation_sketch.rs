//! Ablation A4: sampling (RankCounting) vs deterministic sketching
//! (q-digest / Greenwald–Khanna) for distributed range counting.
//!
//! Two very different bargains with the same goal:
//!
//! * sampling ships `n·p` random elements once and answers with a
//!   *probabilistic* guarantee (variance `8k/p²`);
//! * sketches ship a fixed-size summary per node and answer with a
//!   *certified* interval (deterministic error).
//!
//! This ablation matches them on communication (bytes on the wire) and
//! compares the error actually delivered on the standard workload.
//!
//! Run with `cargo run -p prc-bench --release --bin ablation_sketch`.

use prc_bench::{build_network, print_table, standard_dataset, standard_workload, NODES, SEED};
use prc_core::estimator::{RangeCountEstimator, RankCounting};
use prc_core::exact::range_count;
use prc_data::partition::{partition_values, PartitionStrategy};
use prc_data::record::AirQualityIndex;
use prc_sketch::distributed::{digest_partitions, gk_partitions, Quantizer, SketchStation};

fn main() {
    let dataset = standard_dataset();
    let index = AirQualityIndex::Ozone;
    let values = dataset.values(index);
    let workload = standard_workload(&values);
    let parts = partition_values(&values, NODES, PartitionStrategy::RoundRobin);
    let quantizer = Quantizer::new(0.0, 200.0, 12);

    let mut rows = Vec::new();

    // --- Sampling at several probabilities --------------------------------
    for &p in &[0.02, 0.05, 0.15, 0.4] {
        let mut network = build_network(&dataset, index, SEED + (p * 1e4) as u64);
        network.collect_samples(p);
        let bytes = network.meter().snapshot().bytes;
        let max_err = workload
            .iter()
            .map(|&q| {
                let truth = range_count(&values, q) as f64;
                let est = RankCounting.estimate(network.station(), q);
                (est - truth).abs() / truth.max(1.0)
            })
            .fold(0.0, f64::max);
        rows.push(vec![
            format!("sampling p={p}"),
            format!("{bytes}"),
            format!("{:.2}%", max_err * 100.0),
            "probabilistic (Chebyshev)".into(),
        ]);
    }

    // --- q-digest at several compressions ----------------------------------
    for &k in &[8u64, 32, 128, 512] {
        let mut station = SketchStation::new();
        for sketch in digest_partitions(&parts, &quantizer, k) {
            station.ingest(sketch);
        }
        let (max_err, max_certified) = sketch_errors(&station, &quantizer, &values, &workload);
        rows.push(vec![
            format!("q-digest k={k}"),
            format!("{}", station.bytes_received()),
            format!("{:.2}%", max_err * 100.0),
            format!("certified ±{:.2}%", max_certified * 100.0),
        ]);
    }

    // --- GK summaries at several epsilons ----------------------------------
    for &eps in &[0.05f64, 0.01, 0.002] {
        let mut station = SketchStation::new();
        for sketch in gk_partitions(&parts, eps) {
            station.ingest(sketch);
        }
        let (max_err, max_certified) = sketch_errors(&station, &quantizer, &values, &workload);
        rows.push(vec![
            format!("GK ε={eps}"),
            format!("{}", station.bytes_received()),
            format!("{:.2}%", max_err * 100.0),
            format!("certified ±{:.2}%", max_certified * 100.0),
        ]);
    }

    print_table(
        "Ablation A4 — sampling vs sketching (ozone, k=50 nodes, standard workload)",
        &["method", "bytes shipped", "max rel err", "guarantee"],
        &rows,
    );
    println!("\nexpected: sketches deliver certified (worst-case) bounds; sampling reaches similar\naccuracy with fewer bytes at moderate p but only in probability. Sampling additionally\nfeeds the DP perturbation stage with a known sensitivity (Δγ̂ = 1/p), which is why the\npaper builds on it.");
}

/// Max relative error of the midpoint estimate, and max certified
/// half-width, over the workload.
fn sketch_errors(
    station: &SketchStation,
    quantizer: &Quantizer,
    values: &[f64],
    workload: &[prc_core::query::RangeQuery],
) -> (f64, f64) {
    let mut max_err = 0.0f64;
    let mut max_certified = 0.0f64;
    for &q in workload {
        let a = quantizer.quantize(q.lower());
        let b = quantizer.quantize(q.upper());
        // Grid-aligned truth: count of values whose code falls in [a, b].
        let truth = values
            .iter()
            .filter(|&&v| {
                let code = quantizer.quantize(v);
                code >= a && code <= b
            })
            .count() as f64;
        let bounds = station.range_count_bounds(quantizer, a, b);
        max_err = max_err.max((bounds.estimate() - truth).abs() / truth.max(1.0));
        max_certified = max_certified.max(bounds.half_width() / truth.max(1.0));
    }
    (max_err, max_certified)
}
