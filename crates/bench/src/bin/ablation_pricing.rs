//! Ablation A3: pricing families under the literal Theorem 4.2 checker
//! and the operational Definition 2.3 attack simulator.
//!
//! Run with `cargo run -p prc-bench --release --bin ablation_pricing`.

use prc_bench::print_table;
use prc_pricing::arbitrage::{find_arbitrage, AttackConfig};
use prc_pricing::functions::{
    InverseVariancePricing, LinearDeltaPricing, LogPrecisionPricing, PricingFunction,
    SqrtPrecisionPricing,
};
use prc_pricing::theorem::{check_theorem_4_2, TheoremCheckConfig};
use prc_pricing::variance::ChebyshevVariance;

fn main() {
    let model = ChebyshevVariance::new(17_568);
    let targets = [(0.02, 0.9), (0.05, 0.8), (0.1, 0.5), (0.2, 0.7), (0.3, 0.6)];
    let theorem_config = TheoremCheckConfig::default();
    let attack_config = AttackConfig::default();

    let inv = InverseVariancePricing::new(1e9, model);
    let sqrt = SqrtPrecisionPricing::new(1e5, model);
    let log = LogPrecisionPricing::new(100.0, model);
    let broken = LinearDeltaPricing::new(10.0);

    let mut rows = Vec::new();
    let mut evaluate = |f: &dyn PricingFunction, price_fn: &dyn Fn(f64, f64) -> f64| {
        let violations = {
            // The checker is generic; adapt through a tiny shim.
            struct Shim<'a>(&'a dyn Fn(f64, f64) -> f64, &'static str);
            impl PricingFunction for Shim<'_> {
                fn name(&self) -> &'static str {
                    self.1
                }
                fn price(&self, alpha: f64, delta: f64) -> f64 {
                    (self.0)(alpha, delta)
                }
            }
            let shim = Shim(price_fn, "shim");
            check_theorem_4_2(&shim, &model, &theorem_config)
        };
        let attacks = {
            struct Shim<'a>(&'a dyn Fn(f64, f64) -> f64);
            impl PricingFunction for Shim<'_> {
                fn name(&self) -> &'static str {
                    "shim"
                }
                fn price(&self, alpha: f64, delta: f64) -> f64 {
                    (self.0)(alpha, delta)
                }
            }
            find_arbitrage(&Shim(price_fn), &model, &targets, &attack_config)
        };
        let best_saving = attacks
            .iter()
            .map(|a| a.saving() / a.target_price)
            .fold(0.0_f64, f64::max);
        rows.push(vec![
            f.name().to_string(),
            format!("{}", violations.len()),
            if violations.is_empty() {
                "PASS"
            } else {
                "FAIL"
            }
            .into(),
            format!("{}", attacks.len()),
            if attacks.is_empty() {
                "SAFE"
            } else {
                "EXPLOITED"
            }
            .into(),
            if attacks.is_empty() {
                "-".into()
            } else {
                format!("{:.1}%", best_saving * 100.0)
            },
        ]);
    };

    evaluate(&inv, &|a, d| inv.price(a, d));
    evaluate(&sqrt, &|a, d| sqrt.price(a, d));
    evaluate(&log, &|a, d| log.price(a, d));
    evaluate(&broken, &|a, d| broken.price(a, d));

    print_table(
        "Ablation A3 — pricing families: literal Theorem 4.2 vs operational Definition 2.3",
        &[
            "pricing",
            "thm 4.2 violations",
            "thm 4.2",
            "attacks found",
            "operational",
            "best adversary saving",
        ],
        &rows,
    );
    println!("\nexpected: c/V passes both; c/√V and log-precision pass operationally but fail the\nliteral theorem (its Properties 2+3 pin π·V constant); the broken linear-δ price is exploited");
}
