//! Fig. 4 reproduction: required sampling probability vs data size.
//!
//! The paper fixes α = 0.055 and δ = 0.5 and grows the dataset from 10%
//! to 100% of the original 17,568 records, plotting the sampling
//! probability Theorem 3.3 requires. Because `p ∝ 1/n`, the probability
//! decays and converges — the algorithm gets *cheaper per record* as the
//! data grows. The expected number of samples shipped (`n·p`) stays
//! constant, which is the paper's "suitable for big data" argument.
//!
//! Run with `cargo run -p prc-bench --release --bin fig4`.

use prc_bench::{build_network, print_table, standard_dataset, NODES, SEED};
use prc_core::accuracy::{expected_sample_count, required_probability_clamped};
use prc_core::query::Accuracy;
use prc_data::record::AirQualityIndex;

fn main() {
    let dataset = standard_dataset();
    let accuracy = Accuracy::new(0.055, 0.5).expect("paper parameters");

    let mut rows = Vec::new();
    for percent in (10..=100).step_by(10) {
        let size = dataset.len() * percent / 100;
        let slice = dataset.prefix(size);
        let p = required_probability_clamped(accuracy, NODES, size).expect("valid shape");

        // Measure the actual communication produced at that probability.
        let mut network = build_network(&slice, AirQualityIndex::Ozone, SEED + percent as u64);
        network.collect_samples(p);
        let cost = network.meter().snapshot();

        rows.push(vec![
            format!("{percent}%"),
            format!("{size}"),
            format!("{p:.5}"),
            format!("{:.1}", expected_sample_count(size, p)),
            format!("{}", cost.samples),
        ]);
    }
    let headers = [
        "data size",
        "records",
        "required p",
        "expected samples n*p",
        "measured samples",
    ];
    print_table(
        "Fig. 4 — sampling probability vs data size (α=0.055, δ=0.5, k=50)",
        &headers,
        &rows,
    );
    if let Ok(path) = prc_bench::export_csv("fig4", &headers, &rows) {
        println!("csv: {}", path.display());
    }
    println!("\npaper shape: p decays ∝ 1/n and converges; sample volume stays flat");
}
