//! Ablation A6: the energy–accuracy trade-off (the paper's motivation,
//! refs \[16\]/\[17\]).
//!
//! Sweeps the sampling probability and reports, per collection round:
//! the estimator's error, the total radio energy, the hottest node's
//! drain, and the classic network-lifetime metric (rounds until the
//! first battery dies, 10 J batteries, CC2420-class radio).
//!
//! Run with `cargo run -p prc-bench --release --bin ablation_energy`.

use prc_bench::{
    build_network, geometric_grid, max_relative_error, print_table, standard_dataset,
    standard_workload, ErrorScale, SEED,
};
use prc_core::estimator::RankCounting;
use prc_data::record::AirQualityIndex;
use prc_net::energy::{EnergyModel, EnergyReport};

fn main() {
    let dataset = standard_dataset();
    let index = AirQualityIndex::Ozone;
    let values = dataset.values(index);
    let workload = standard_workload(&values);
    let model = EnergyModel::low_power_radio();
    let battery_nj = 10e9; // 10 J

    let mut rows = Vec::new();
    for (i, &p) in geometric_grid(0.01, 0.6, 10).iter().enumerate() {
        let mut network = build_network(&dataset, index, SEED + 7 * i as u64);
        network.collect_samples(p);
        let err = max_relative_error(
            &RankCounting,
            &network,
            &values,
            &workload,
            ErrorScale::RelativeToTruth,
        );
        let report = EnergyReport::from_meter(network.meter(), &model);
        let (_, hottest) = report.hottest_node().expect("nodes transmitted");
        rows.push(vec![
            format!("{p:.3}"),
            format!("{:.2}%", err * 100.0),
            format!("{:.1}", report.total_nj() / 1e6), // mJ
            format!("{:.1}", hottest / 1e3),           // µJ
            format!("{}", report.lifetime_rounds(battery_nj).unwrap()),
        ]);
    }
    print_table(
        "Ablation A6 — energy vs accuracy per collection round (k=50, CC2420-class radio, 10 J batteries)",
        &["p", "max rel err", "total energy (mJ)", "hottest node (µJ)", "lifetime (rounds)"],
        &rows,
    );
    println!("\nexpected: error falls and energy rises with p — the trade-off the paper's sampling\ndesign navigates; lifetime scales inversely with the hottest node's per-round drain.\nRemember the one-sample/many-queries design pays this cost once per sample, not per query.");
}
