//! Fig. 2 reproduction: querying accuracy vs sampling probability `p`.
//!
//! The paper sweeps `p` from 0.0173 to 0.4048 and reports the maximum
//! relative error of the sampling algorithm: ~27% at the low end, noisy
//! below p ≈ 0.12, and stable small error (≈3% or less) once ≥ 15% of the
//! data is sampled.
//!
//! Run with `cargo run -p prc-bench --release --bin fig2`.

use prc_bench::{
    build_network, geometric_grid, max_relative_error, print_table, standard_dataset,
    standard_workload, ErrorScale, SEED,
};
use prc_core::estimator::RankCounting;
use prc_data::record::AirQualityIndex;

fn main() {
    let dataset = standard_dataset();
    let index = AirQualityIndex::Ozone;
    let values = dataset.values(index);
    let workload = standard_workload(&values);

    let grid = geometric_grid(0.0173, 0.4048, 16);
    let mut rows = Vec::new();
    for (i, &p) in grid.iter().enumerate() {
        // A fresh network per point: the paper redraws the sample at each
        // probability rather than topping up one sample set.
        let mut network = build_network(&dataset, index, SEED + i as u64);
        network.collect_samples(p);
        let err = max_relative_error(
            &RankCounting,
            &network,
            &values,
            &workload,
            ErrorScale::RelativeToTruth,
        );
        let cost = network.meter().snapshot();
        rows.push(vec![
            format!("{p:.4}"),
            format!("{:.2}", err * 100.0),
            format!("{}", cost.samples),
            format!("{}", cost.bytes),
        ]);
    }
    let headers = ["p", "max rel err %", "samples", "bytes"];
    print_table(
        "Fig. 2 — max relative error vs sampling probability (RankCounting, ozone, k=50)",
        &headers,
        &rows,
    );
    if let Ok(path) = prc_bench::export_csv("fig2", &headers, &rows) {
        println!("csv: {}", path.display());
    }
    println!(
        "\npaper shape: error ~27% at p≈0.017, noisy below p≈0.12, ≲3% and stable for p ≥ 0.15"
    );
}
