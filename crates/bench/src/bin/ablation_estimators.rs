//! Ablation A1: RankCounting vs BasicCounting across range widths.
//!
//! §III-A's design argument: BasicCounting's variance grows with the true
//! count of the queried range (up to `|D|(1−p)/p`) while RankCounting's
//! is bounded by `8k/p²` regardless. The crossover predicted by theory
//! sits where `γ·(1−p)/p = 8k/p²`, i.e. `γ* = 8k/(p(1−p))` — BasicCounting
//! wins on very narrow ranges, RankCounting on everything wider.
//!
//! Run with `cargo run -p prc-bench --release --bin ablation_estimators`.

use prc_bench::{build_network, print_table, standard_dataset, NODES, SEED};
use prc_core::estimator::{BasicCounting, RangeCountEstimator, RankCounting};
use prc_core::exact::range_count;
use prc_core::query::RangeQuery;
use prc_data::record::AirQualityIndex;
use prc_data::stats;

fn main() {
    let dataset = standard_dataset();
    let index = AirQualityIndex::Ozone;
    let values = dataset.values(index);
    let p = 0.05;
    let trials = 60;

    // Ranges centred on the median with increasing quantile width.
    let widths = [0.002, 0.01, 0.05, 0.15, 0.3, 0.5, 0.7, 0.9];
    let mut rows = Vec::new();
    for &w in &widths {
        let l = stats::quantile(&values, 0.5 - w / 2.0).expect("non-empty");
        let u = stats::quantile(&values, 0.5 + w / 2.0).expect("non-empty");
        let query = RangeQuery::new(l, u).expect("ordered quantiles");
        let truth = range_count(&values, query) as f64;

        let mse = |estimator: &dyn Fn(&prc_net::network::FlatNetwork) -> f64| {
            let mut sum_sq = 0.0;
            for t in 0..trials {
                let mut network = build_network(&dataset, index, SEED + 997 * t as u64);
                network.collect_samples(p);
                let e = estimator(&network);
                sum_sq += (e - truth).powi(2);
            }
            sum_sq / trials as f64
        };
        let rank_mse = mse(&|net| RankCounting.estimate(net.station(), query));
        let basic_mse = mse(&|net| BasicCounting.estimate(net.station(), query));

        rows.push(vec![
            format!("{:.1}%", w * 100.0),
            format!("{truth:.0}"),
            format!("{:.0}", rank_mse),
            format!("{:.0}", basic_mse),
            format!("{:.2}x", basic_mse / rank_mse.max(1e-9)),
            format!("{:.0}", RankCounting.variance_bound(NODES, values.len(), p)),
            format!("{:.0}", truth * (1.0 - p) / p),
        ]);
    }
    print_table(
        "Ablation A1 — estimator MSE vs range width (p=0.05, k=50, ozone, 60 trials)",
        &[
            "width",
            "truth γ",
            "Rank MSE",
            "Basic MSE",
            "Basic/Rank",
            "Rank bound 8k/p²",
            "Basic theory γ(1−p)/p",
        ],
        &rows,
    );
    let crossover = 8.0 * NODES as f64 / (p * (1.0 - p));
    println!(
        "\ntheory crossover: BasicCounting wins only when γ < 8k/(p(1−p)) ≈ {crossover:.0} records"
    );
}
