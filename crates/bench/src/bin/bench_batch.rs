//! Batched-broker throughput benchmark.
//!
//! Answers the same 64-query mixed-accuracy workload three ways —
//! sequential `answer()` calls over a `FlatNetwork`, `answer_batch` over
//! a `FlatNetwork`, and `answer_batch` over a `ThreadedNetwork` — and
//! emits a JSON report with queries/sec for each mode, the speedups over
//! the sequential baseline, the batch's per-stage counters, and a
//! determinism check (two batched flat runs with the same seed must
//! release bit-identical answers).
//!
//! The workload repeats each of 16 distinct `(range, α, δ)` requests four
//! times: repeats are what the batched engine's arbitrage-consistent
//! answer cache exists for, and what a real marketplace sees when many
//! buyers ask the popular queries.
//!
//! Run with `cargo run -p prc-bench --release --bin bench_batch`.

use std::time::Instant;

use prc_core::broker::{BatchStats, DataBroker};
use prc_core::optimizer::OptimizerConfig;
use prc_core::query::{Accuracy, QueryRequest, RangeQuery};
use prc_net::network::{FlatNetwork, Network, ThreadedNetwork};
use prc_pricing::functions::InverseVariancePricing;
use prc_pricing::reuse::{PostedPriceReuse, ReuseGuard};
use prc_pricing::variance::ChebyshevVariance;

const SEED: u64 = 2014;
const NODES: usize = 16;
const PER_NODE: usize = 25_000;
const DISTINCT_QUERIES: usize = 16;
const REPEATS: usize = 4;
/// High-resolution perturbation planning, identical in every mode: the
/// finer the `α′` grid, the closer each plan is to the true optimum of
/// problem (3) — and the more a repeated request benefits from the cache.
const GRID_POINTS: usize = 10_000;

fn optimizer() -> OptimizerConfig {
    OptimizerConfig {
        grid_points: GRID_POINTS,
        ..OptimizerConfig::default()
    }
}

fn partitions() -> Vec<Vec<f64>> {
    // Round-robin global values 0..n so every range spans every node.
    (0..NODES)
        .map(|i| (0..PER_NODE).map(|j| (i + NODES * j) as f64).collect())
        .collect()
}

fn workload() -> Vec<QueryRequest> {
    let n = (NODES * PER_NODE) as f64;
    let alphas = [0.05, 0.08, 0.1, 0.15];
    let deltas = [0.5, 0.6, 0.7, 0.8];
    let mut distinct = Vec::with_capacity(DISTINCT_QUERIES);
    for i in 0..DISTINCT_QUERIES {
        let lo = n * 0.05 * (i % 8) as f64;
        let hi = lo + n * (0.2 + 0.04 * (i % 5) as f64);
        let query = RangeQuery::new(lo, hi.min(n)).expect("valid range");
        let accuracy =
            Accuracy::new(alphas[i % alphas.len()], deltas[i % deltas.len()]).expect("valid");
        distinct.push(QueryRequest::new(query, accuracy));
    }
    // Interleave the repeats so duplicates are spread across the batch.
    let mut requests = Vec::with_capacity(DISTINCT_QUERIES * REPEATS);
    for _ in 0..REPEATS {
        requests.extend(distinct.iter().copied());
    }
    requests
}

fn reuse_guard() -> Box<dyn ReuseGuard> {
    let model = ChebyshevVariance::new(NODES * PER_NODE);
    Box::new(PostedPriceReuse::new(
        InverseVariancePricing::new(1e9, model),
        model,
    ))
}

struct ModeResult {
    label: &'static str,
    seconds: f64,
    answered: usize,
    values: Vec<u64>,
    stats: Option<BatchStats>,
}

fn queries_per_sec(requests: usize, seconds: f64) -> f64 {
    requests as f64 / seconds.max(1e-12)
}

fn run_sequential(requests: &[QueryRequest]) -> ModeResult {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(), SEED), SEED);
    broker.set_optimizer_config(optimizer());
    let start = Instant::now();
    let mut values = Vec::with_capacity(requests.len());
    for request in requests {
        let answer = broker.answer(request).expect("sequential answer");
        values.push(answer.value.to_bits());
    }
    ModeResult {
        label: "sequential_flat",
        seconds: start.elapsed().as_secs_f64(),
        answered: values.len(),
        values,
        stats: None,
    }
}

fn run_batched<N: Network>(
    label: &'static str,
    network: N,
    requests: &[QueryRequest],
) -> ModeResult {
    let mut broker = DataBroker::new(network, SEED);
    broker.set_optimizer_config(optimizer());
    broker.enable_answer_cache(reuse_guard());
    let start = Instant::now();
    let report = broker.answer_batch(requests);
    let seconds = start.elapsed().as_secs_f64();
    let values: Vec<u64> = report
        .answers
        .iter()
        .map(|r| r.as_ref().expect("batched answer").value.to_bits())
        .collect();
    ModeResult {
        label,
        seconds,
        answered: values.len(),
        values,
        stats: Some(report.stats),
    }
}

fn mode_json(mode: &ModeResult, total_requests: usize) -> String {
    let mut fields = vec![
        format!("\"mode\": \"{}\"", mode.label),
        format!("\"seconds\": {:.6}", mode.seconds),
        format!(
            "\"queries_per_sec\": {:.2}",
            queries_per_sec(total_requests, mode.seconds)
        ),
        format!("\"answered\": {}", mode.answered),
    ];
    if let Some(stats) = &mode.stats {
        fields.push(format!(
            "\"stats\": {{\"rate_tiers\": {}, \"collection_rounds\": {}, \"samples_collected\": {}, \"cache_hits\": {}, \"chargeable_messages\": {}, \"fan_out_threads\": {}}}",
            stats.rate_tiers,
            stats.collection_rounds,
            stats.samples_collected,
            stats.cache_hits,
            stats.chargeable_messages,
            stats.fan_out_threads,
        ));
    }
    format!("    {{{}}}", fields.join(", "))
}

fn main() {
    let requests = workload();
    let total = requests.len();

    let sequential = run_sequential(&requests);
    let batched_flat = run_batched(
        "batched_flat",
        FlatNetwork::from_partitions(partitions(), SEED),
        &requests,
    );
    // Determinism: a second batched flat run with the same seed must
    // release bit-identical answers.
    let batched_flat_again = run_batched(
        "batched_flat_rerun",
        FlatNetwork::from_partitions(partitions(), SEED),
        &requests,
    );
    let batched_threaded = run_batched(
        "batched_threaded",
        ThreadedNetwork::from_partitions(partitions(), SEED),
        &requests,
    );

    let deterministic = batched_flat.values == batched_flat_again.values;
    let drivers_agree = batched_flat.values == batched_threaded.values;
    let seq_qps = queries_per_sec(total, sequential.seconds);
    let speedup_flat = queries_per_sec(total, batched_flat.seconds) / seq_qps;
    let speedup_threaded = queries_per_sec(total, batched_threaded.seconds) / seq_qps;

    let modes = [&sequential, &batched_flat, &batched_threaded]
        .iter()
        .map(|m| mode_json(m, total))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"workload\": {{\"requests\": {total}, \"distinct\": {DISTINCT_QUERIES}, \"nodes\": {NODES}, \"population\": {}, \"seed\": {SEED}}},\n  \"modes\": [\n{modes}\n  ],\n  \"speedup_vs_sequential\": {{\"batched_flat\": {speedup_flat:.2}, \"batched_threaded\": {speedup_threaded:.2}}},\n  \"deterministic_flat\": {deterministic},\n  \"flat_threaded_identical\": {drivers_agree}\n}}",
        NODES * PER_NODE,
    );
    println!("{json}");

    let dir = std::path::Path::new("target/bench");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("bench_batch.json");
        if std::fs::write(&path, &json).is_ok() {
            eprintln!("json: {}", path.display());
        }
    }

    assert!(deterministic, "batched flat runs must be bit-identical");
    assert!(
        drivers_agree,
        "flat and threaded drivers must release identical answers"
    );
}
