//! Batched-broker throughput benchmark.
//!
//! Answers the same 64-query mixed-accuracy workload three ways —
//! sequential `answer()` calls over a `FlatNetwork`, `answer_batch` over
//! a `FlatNetwork`, and `answer_batch` over a `ThreadedNetwork` — and
//! emits a JSON report with queries/sec for each mode, the speedups over
//! the sequential baseline, the batch's per-stage counters, and a
//! determinism check (two batched flat runs with the same seed must
//! release bit-identical answers).
//!
//! The workload repeats each of 16 distinct `(range, α, δ)` requests four
//! times: repeats are what the batched engine's arbitrage-consistent
//! answer cache exists for, and what a real marketplace sees when many
//! buyers ask the popular queries.
//!
//! A second section benchmarks the merged prefix-rank query index
//! ([`RankIndex`]) against the per-node scan across a grid of node
//! counts and per-epoch query counts, checks both paths release the
//! same bits, and writes the trajectory to `BENCH_rank_index.json` at
//! the repository root.
//!
//! A third section times the shared `prc-runtime` pool against the
//! spawn-per-call pattern it replaced (fresh scoped threads on every
//! fan-out), asserts both strategies compute identical results, and
//! writes the comparison to `BENCH_runtime_pool.json` at the repository
//! root.
//!
//! Run with `cargo run -p prc-bench --release --bin bench_batch`. Set
//! `PRC_BENCH_SMOKE=1` to shrink every dimension to CI-smoke sizes
//! (the determinism and identity self-checks still run and must pass;
//! the absolute-speedup assertion is skipped).

use std::time::Instant;

use prc_core::broker::{BatchStats, DataBroker};
use prc_core::estimator::{BuildAccrual, CostModel, RangeCountEstimator, RankCounting, RankIndex};
use prc_core::optimizer::OptimizerConfig;
use prc_core::query::{Accuracy, QueryRequest, RangeQuery};
use prc_net::base_station::BaseStation;
use prc_net::network::{FlatNetwork, Network, ThreadedNetwork};
use prc_pricing::functions::InverseVariancePricing;
use prc_pricing::reuse::{PostedPriceReuse, ReuseGuard};
use prc_pricing::variance::ChebyshevVariance;
use prc_runtime::{CutoffPolicy, Runtime};

const SEED: u64 = 2014;
const NODES: usize = 16;
const DISTINCT_QUERIES: usize = 16;
const REPEATS: usize = 4;

/// True when `PRC_BENCH_SMOKE` asks for CI-smoke sizes.
fn smoke() -> bool {
    std::env::var("PRC_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Values per node in the batch workload's network.
fn per_node() -> usize {
    if smoke() {
        1_500
    } else {
        25_000
    }
}

/// High-resolution perturbation planning, identical in every mode: the
/// finer the `α′` grid, the closer each plan is to the true optimum of
/// problem (3) — and the more a repeated request benefits from the cache.
fn grid_points() -> usize {
    if smoke() {
        400
    } else {
        10_000
    }
}

fn optimizer() -> OptimizerConfig {
    OptimizerConfig {
        grid_points: grid_points(),
        ..OptimizerConfig::default()
    }
}

fn partitions() -> Vec<Vec<f64>> {
    // Round-robin global values 0..n so every range spans every node.
    (0..NODES)
        .map(|i| (0..per_node()).map(|j| (i + NODES * j) as f64).collect())
        .collect()
}

fn workload() -> Vec<QueryRequest> {
    let n = (NODES * per_node()) as f64;
    let alphas = [0.05, 0.08, 0.1, 0.15];
    let deltas = [0.5, 0.6, 0.7, 0.8];
    let mut distinct = Vec::with_capacity(DISTINCT_QUERIES);
    for i in 0..DISTINCT_QUERIES {
        let lo = n * 0.05 * (i % 8) as f64;
        let hi = lo + n * (0.2 + 0.04 * (i % 5) as f64);
        let query = RangeQuery::new(lo, hi.min(n)).expect("valid range");
        let accuracy =
            Accuracy::new(alphas[i % alphas.len()], deltas[i % deltas.len()]).expect("valid");
        distinct.push(QueryRequest::new(query, accuracy));
    }
    // Interleave the repeats so duplicates are spread across the batch.
    let mut requests = Vec::with_capacity(DISTINCT_QUERIES * REPEATS);
    for _ in 0..REPEATS {
        requests.extend(distinct.iter().copied());
    }
    requests
}

fn reuse_guard() -> Box<dyn ReuseGuard> {
    let model = ChebyshevVariance::new(NODES * per_node());
    Box::new(PostedPriceReuse::new(
        InverseVariancePricing::new(1e9, model),
        model,
    ))
}

struct ModeResult {
    label: &'static str,
    seconds: f64,
    answered: usize,
    values: Vec<u64>,
    stats: Option<BatchStats>,
}

fn queries_per_sec(requests: usize, seconds: f64) -> f64 {
    requests as f64 / seconds.max(1e-12)
}

fn run_sequential(requests: &[QueryRequest]) -> ModeResult {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(), SEED), SEED);
    broker.set_optimizer_config(optimizer());
    let start = Instant::now();
    let mut values = Vec::with_capacity(requests.len());
    for request in requests {
        let answer = broker.answer(request).expect("sequential answer");
        values.push(answer.value.to_bits());
    }
    ModeResult {
        label: "sequential_flat",
        seconds: start.elapsed().as_secs_f64(),
        answered: values.len(),
        values,
        stats: None,
    }
}

fn run_batched<N: Network>(
    label: &'static str,
    network: N,
    requests: &[QueryRequest],
) -> ModeResult {
    let mut broker = DataBroker::new(network, SEED);
    broker.set_optimizer_config(optimizer());
    broker.enable_answer_cache(reuse_guard());
    let start = Instant::now();
    let report = broker.answer_batch(requests);
    let seconds = start.elapsed().as_secs_f64();
    let values: Vec<u64> = report
        .answers
        .iter()
        .map(|r| r.as_ref().expect("batched answer").value.to_bits())
        .collect();
    ModeResult {
        label,
        seconds,
        answered: values.len(),
        values,
        stats: Some(report.stats),
    }
}

fn mode_json(mode: &ModeResult, total_requests: usize) -> String {
    let mut fields = vec![
        format!("\"mode\": \"{}\"", mode.label),
        format!("\"seconds\": {:.6}", mode.seconds),
        format!(
            "\"queries_per_sec\": {:.2}",
            queries_per_sec(total_requests, mode.seconds)
        ),
        format!("\"answered\": {}", mode.answered),
    ];
    if let Some(stats) = &mode.stats {
        fields.push(format!(
            "\"stats\": {{\"rate_tiers\": {}, \"collection_rounds\": {}, \"samples_collected\": {}, \"cache_hits\": {}, \"chargeable_messages\": {}, \"fan_out_threads\": {}}}",
            stats.rate_tiers,
            stats.collection_rounds,
            stats.samples_collected,
            stats.cache_hits,
            stats.chargeable_messages,
            stats.fan_out_threads,
        ));
    }
    format!("    {{{}}}", fields.join(", "))
}

/// One cell of the scan-vs-indexed trajectory: `queries` range queries
/// answered over a `nodes`-node epoch through both estimator paths.
struct IndexCell {
    nodes: usize,
    queries: usize,
    merged_entries: usize,
    build_seconds: f64,
    scan_seconds: f64,
    indexed_seconds: f64,
    identical: bool,
    /// What the broker's adaptive ski-rental policy would decide for
    /// this cell: accrue the cell's query count and ask whether the
    /// foregone scanning cost has bought the build. Emitted next to the
    /// measured amortized speedup so the cost model stays honest — a
    /// cell the model would build must measure amortized ≥ 1×, and a
    /// declined cell must measure < 1×.
    adaptive_build: bool,
}

impl IndexCell {
    /// Per-query speedup of the indexed path, ignoring the build.
    fn speedup_per_query(&self) -> f64 {
        self.scan_seconds / self.indexed_seconds.max(1e-12)
    }

    /// Epoch speedup with the one-off build amortized over the cell's
    /// queries.
    fn speedup_amortized(&self) -> f64 {
        self.scan_seconds / (self.build_seconds + self.indexed_seconds).max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "    {{\"nodes\": {}, \"queries\": {}, \"merged_entries\": {}, \"build_seconds\": {:.6}, \"scan_seconds\": {:.6}, \"indexed_seconds\": {:.6}, \"scan_qps\": {:.2}, \"indexed_qps\": {:.2}, \"speedup_per_query\": {:.2}, \"speedup_amortized\": {:.2}, \"adaptive_build\": {}, \"identical\": {}}}",
            self.nodes,
            self.queries,
            self.merged_entries,
            self.build_seconds,
            self.scan_seconds,
            self.indexed_seconds,
            queries_per_sec(self.queries, self.scan_seconds),
            queries_per_sec(self.queries, self.indexed_seconds),
            self.speedup_per_query(),
            self.speedup_amortized(),
            self.adaptive_build,
            self.identical,
        )
    }
}

/// Collects one epoch's station for the index trajectory: `k` nodes with
/// `per_node` contiguous values each, sampled at `p`.
fn trajectory_station(k: usize, per_node: usize, p: f64) -> BaseStation {
    let partitions: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
        .collect();
    let mut network = FlatNetwork::from_partitions(partitions, SEED);
    network.collect_samples(p);
    network.station().clone()
}

/// A deterministic mixed-width query workload over support `[0, n)`.
fn trajectory_queries(count: usize, n: f64) -> Vec<RangeQuery> {
    (0..count)
        .map(|i| {
            let lower = n * 0.9 * ((i * 61) % 128) as f64 / 128.0;
            let width = n * (0.05 + 0.3 * ((i * 37) % 16) as f64 / 16.0);
            RangeQuery::new(lower, (lower + width).min(n)).expect("valid range")
        })
        .collect()
}

/// Benchmarks scan vs indexed estimation across node and query counts.
///
/// Every cell verifies bit-identity between the two paths before its
/// timings are trusted; the caller asserts on the `identical` flags.
fn index_trajectory() -> Vec<IndexCell> {
    let (node_counts, query_counts, per_node): (&[usize], &[usize], usize) = if smoke() {
        (&[16, 64], &[4, 16], 64)
    } else {
        (&[64, 1_024, 16_384], &[16, 256, 4_096], 128)
    };
    let p = 0.25;
    let mut cells = Vec::new();
    for &k in node_counts {
        let station = trajectory_station(k, per_node, p);
        let build_start = Instant::now();
        let index = RankIndex::build(&station).expect("uniform station builds");
        let build_seconds = build_start.elapsed().as_secs_f64();
        for &count in query_counts {
            let queries = trajectory_queries(count, (k * per_node) as f64);

            let scan_start = Instant::now();
            let scanned: Vec<u64> = queries
                .iter()
                .map(|&q| RankCounting.estimate(&station, q).to_bits())
                .collect();
            let scan_seconds = scan_start.elapsed().as_secs_f64();

            let indexed_start = Instant::now();
            let indexed: Vec<u64> = queries
                .iter()
                .map(|&q| index.estimate(q).to_bits())
                .collect();
            let indexed_seconds = indexed_start.elapsed().as_secs_f64();

            // The decision the adaptive policy would reach seeing this
            // cell's whole workload in one epoch.
            let model = CostModel::default();
            let mut accrual = BuildAccrual::default();
            accrual.observe(&model, index.merged_entries(), k, count as u64);
            let adaptive_build = accrual.should_build(&model, index.merged_entries());

            cells.push(IndexCell {
                nodes: k,
                queries: count,
                merged_entries: index.merged_entries(),
                build_seconds,
                scan_seconds,
                indexed_seconds,
                identical: scanned == indexed,
                adaptive_build,
            });
        }
    }
    cells
}

/// The pool-vs-spawn comparison: many small fan-outs, where dispatch
/// overhead (not per-item work) dominates.
struct PoolComparison {
    rounds: usize,
    len: usize,
    lanes: usize,
    pool_seconds: f64,
    spawn_seconds: f64,
    identical: bool,
}

impl PoolComparison {
    /// How much faster reusing the persistent pool is than spawning
    /// fresh threads on every call.
    fn speedup(&self) -> f64 {
        self.spawn_seconds / self.pool_seconds.max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"runtime_pool\",\n  \"smoke\": {},\n  \"rounds\": {},\n  \"items_per_round\": {},\n  \"lanes\": {},\n  \"pool_seconds\": {:.6},\n  \"spawn_seconds\": {:.6},\n  \"pool_calls_per_sec\": {:.2},\n  \"spawn_calls_per_sec\": {:.2},\n  \"pool_reuse_speedup\": {:.2},\n  \"identical\": {}\n}}",
            smoke(),
            self.rounds,
            self.len,
            self.lanes,
            self.pool_seconds,
            self.spawn_seconds,
            queries_per_sec(self.rounds, self.pool_seconds),
            queries_per_sec(self.rounds, self.spawn_seconds),
            self.speedup(),
            self.identical,
        )
    }
}

/// Times `rounds` chunked sum fan-outs through the persistent pool and
/// through freshly spawned scoped threads (the pre-runtime pattern that
/// paid thread creation on every call).
fn pool_vs_spawn() -> PoolComparison {
    let (rounds, len) = if smoke() { (64, 4_096) } else { (512, 16_384) };
    let runtime = Runtime::global();
    let lanes = runtime.lanes_for(len);
    let data: Vec<u64> = (0..len as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9))
        .collect();

    let pool_start = Instant::now();
    let mut pool_total = 0u64;
    for _ in 0..rounds {
        pool_total = pool_total.wrapping_add(
            runtime
                .map_chunked(&data, len, CutoffPolicy::always_parallel(), |chunk| {
                    chunk.items.iter().fold(0u64, |a, &v| a.wrapping_add(v))
                })
                .into_iter()
                .fold(0u64, u64::wrapping_add),
        );
    }
    let pool_seconds = pool_start.elapsed().as_secs_f64();

    // The replaced idiom: fresh scoped threads per call, same chunking.
    let spawn_start = Instant::now();
    let mut spawn_total = 0u64;
    let chunk_len = len.div_ceil(lanes);
    for _ in 0..rounds {
        let partials = std::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || chunk.iter().fold(0u64, |a, &v| a.wrapping_add(v)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("spawned summer"))
                .collect::<Vec<u64>>()
        });
        spawn_total = spawn_total.wrapping_add(partials.into_iter().fold(0u64, u64::wrapping_add));
    }
    let spawn_seconds = spawn_start.elapsed().as_secs_f64();

    PoolComparison {
        rounds,
        len,
        lanes,
        pool_seconds,
        spawn_seconds,
        identical: pool_total == spawn_total,
    }
}

fn main() {
    let requests = workload();
    let total = requests.len();

    let sequential = run_sequential(&requests);
    let batched_flat = run_batched(
        "batched_flat",
        FlatNetwork::from_partitions(partitions(), SEED),
        &requests,
    );
    // Determinism: a second batched flat run with the same seed must
    // release bit-identical answers.
    let batched_flat_again = run_batched(
        "batched_flat_rerun",
        FlatNetwork::from_partitions(partitions(), SEED),
        &requests,
    );
    let batched_threaded = run_batched(
        "batched_threaded",
        ThreadedNetwork::from_partitions(partitions(), SEED),
        &requests,
    );

    let deterministic = batched_flat.values == batched_flat_again.values;
    let drivers_agree = batched_flat.values == batched_threaded.values;
    let seq_qps = queries_per_sec(total, sequential.seconds);
    let speedup_flat = queries_per_sec(total, batched_flat.seconds) / seq_qps;
    let speedup_threaded = queries_per_sec(total, batched_threaded.seconds) / seq_qps;

    let modes = [&sequential, &batched_flat, &batched_threaded]
        .iter()
        .map(|m| mode_json(m, total))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"workload\": {{\"requests\": {total}, \"distinct\": {DISTINCT_QUERIES}, \"nodes\": {NODES}, \"population\": {}, \"seed\": {SEED}}},\n  \"modes\": [\n{modes}\n  ],\n  \"speedup_vs_sequential\": {{\"batched_flat\": {speedup_flat:.2}, \"batched_threaded\": {speedup_threaded:.2}}},\n  \"deterministic_flat\": {deterministic},\n  \"flat_threaded_identical\": {drivers_agree}\n}}",
        NODES * per_node(),
    );
    println!("{json}");

    let dir = std::path::Path::new("target/bench");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("bench_batch.json");
        if std::fs::write(&path, &json).is_ok() {
            eprintln!("json: {}", path.display());
        }
    }

    assert!(deterministic, "batched flat runs must be bit-identical");
    assert!(
        drivers_agree,
        "flat and threaded drivers must release identical answers"
    );

    // Scan-vs-indexed trajectory: the perf record this PR sequence tracks.
    let cells = index_trajectory();
    let all_identical = cells.iter().all(|c| c.identical);
    let cell_json = cells
        .iter()
        .map(IndexCell::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let index_json = format!(
        "{{\n  \"bench\": \"rank_index\",\n  \"smoke\": {},\n  \"seed\": {SEED},\n  \"probability\": 0.25,\n  \"cells\": [\n{cell_json}\n  ],\n  \"all_identical\": {all_identical}\n}}",
        smoke(),
    );
    println!("{index_json}");

    // The trajectory lands at the repository root so successive PRs can
    // diff it; fall back to CWD when the manifest-relative path is absent.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let target = if root.is_dir() {
        root.join("BENCH_rank_index.json")
    } else {
        std::path::PathBuf::from("BENCH_rank_index.json")
    };
    match std::fs::write(&target, &index_json) {
        Ok(()) => eprintln!("json: {}", target.display()),
        Err(e) => eprintln!("could not write {}: {e}", target.display()),
    }

    assert!(
        all_identical,
        "indexed estimates diverged from the scan path"
    );
    // The amortized column must always be a usable number — the smoke CI
    // job gates on this, so the field can never silently degenerate.
    for cell in &cells {
        let amortized = cell.speedup_amortized();
        assert!(
            amortized.is_finite() && amortized > 0.0,
            "amortized speedup degenerated at k={} q={} (got {amortized})",
            cell.nodes,
            cell.queries,
        );
    }
    // Pool-reuse vs spawn-per-call: the dispatch-overhead bar the
    // runtime extraction is accountable to.
    let pool = pool_vs_spawn();
    let pool_json = pool.json();
    println!("{pool_json}");
    let pool_target = if root.is_dir() {
        root.join("BENCH_runtime_pool.json")
    } else {
        std::path::PathBuf::from("BENCH_runtime_pool.json")
    };
    match std::fs::write(&pool_target, &pool_json) {
        Ok(()) => eprintln!("json: {}", pool_target.display()),
        Err(e) => eprintln!("could not write {}: {e}", pool_target.display()),
    }
    assert!(
        pool.identical,
        "pool and spawn-per-call strategies must compute identical sums"
    );
    let pool_speedup = pool.speedup();
    assert!(
        pool_speedup.is_finite() && pool_speedup > 0.0,
        "pool-reuse speedup degenerated (got {pool_speedup})"
    );
    if !smoke() {
        assert!(
            pool_speedup >= 1.0,
            "reusing the pool must beat spawn-per-call on small fan-outs \
             (got {pool_speedup:.2}×)"
        );
    }

    if !smoke() {
        // Cost-model honesty: the adaptive policy's paper decision must
        // agree with the measured amortized outcome on every *decisive*
        // full-grid cell — the 16-query cells never pay off a build
        // (well under 1×) and the policy must decline them; cells it
        // builds must not measure clearly below break-even. Cells inside
        // the gray band around 1× are coin flips (the measured ratio
        // moves across 1.0 with run-to-run noise) and prove nothing
        // either way, so they are exempt.
        for cell in &cells {
            let amortized = cell.speedup_amortized();
            if (0.8..1.25).contains(&amortized) {
                continue;
            }
            assert_eq!(
                cell.adaptive_build,
                amortized >= 1.0,
                "cost model dishonest at k={} q={}: adaptive_build={} but measured amortized {amortized:.2}×",
                cell.nodes,
                cell.queries,
                cell.adaptive_build,
            );
        }
        for cell in &cells {
            if cell.nodes >= 16_384 && cell.queries >= 256 {
                let speedup = cell.speedup_per_query();
                assert!(
                    speedup >= 5.0,
                    "index must be ≥5× faster per query at k={} q={} (got {speedup:.2}×)",
                    cell.nodes,
                    cell.queries,
                );
            }
            // Once a batch is large enough to buy the build outright,
            // the build-inclusive speedup must clear 1× — the regression
            // bar the incremental index exists to extend down to small
            // per-epoch batches (see bench_incremental).
            if cell.nodes >= 16_384 && cell.queries >= 4_096 {
                let amortized = cell.speedup_amortized();
                assert!(
                    amortized >= 1.0,
                    "amortized speedup fell below 1× at k={} q={} (got {amortized:.2}×)",
                    cell.nodes,
                    cell.queries,
                );
            }
        }
    }
}
