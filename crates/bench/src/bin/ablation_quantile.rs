//! Ablation A7: two routes to a private quantile at equal budget —
//! noisy binary search vs inverting a private histogram's CDF.
//!
//! Both are built from the same private range counts; they spend the
//! budget differently (the search splits ε across its probes, the
//! histogram across its buckets via parallel composition) and their error
//! profiles differ. Median absolute error over repeated releases, per
//! quantile level and budget.
//!
//! Run with `cargo run -p prc-bench --release --bin ablation_quantile`.

use prc_bench::{build_network, print_table, standard_dataset, SEED};
use prc_core::estimator::RankCounting;
use prc_core::histogram::private_histogram;
use prc_core::quantile::{private_quantile, QuantileConfig};
use prc_data::record::AirQualityIndex;
use prc_data::stats;
use prc_dp::budget::Epsilon;
use prc_dp::mechanism::Sensitivity;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = standard_dataset();
    let index = AirQualityIndex::Ozone;
    let values = dataset.values(index);
    let p = 0.35;
    let sensitivity = Sensitivity::new(1.0 / p).expect("valid sensitivity");
    let mut network = build_network(&dataset, index, SEED);
    network.collect_samples(p);
    let station = network.station();
    let reps = 30;

    let mut rows = Vec::new();
    for &epsilon in &[0.1f64, 0.5, 2.0] {
        for &q in &[0.25f64, 0.5, 0.9] {
            let truth = stats::quantile(&values, q).expect("non-empty values");

            // Route A: noisy binary search, ε split over 20 probes.
            let config = QuantileConfig {
                domain: (0.0, 200.0),
                steps: 20,
                epsilon: Epsilon::new(epsilon).expect("positive"),
                sensitivity,
            };
            let mut rng = StdRng::seed_from_u64(SEED ^ epsilon.to_bits() ^ q.to_bits());
            let mut search_errors: Vec<f64> = (0..reps)
                .map(|_| {
                    let r = private_quantile(&RankCounting, station, q, &config, &mut rng)
                        .expect("search succeeds");
                    (r.value - truth).abs()
                })
                .collect();
            search_errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

            // Route B: 40-bucket private histogram, one ε for the vector
            // (parallel composition), CDF inversion.
            let edges: Vec<f64> = (0..=40).map(|i| i as f64 * 5.0).collect();
            let mut hist_errors: Vec<f64> = (0..reps)
                .map(|_| {
                    let h = private_histogram(
                        &RankCounting,
                        station,
                        &edges,
                        Epsilon::new(epsilon).expect("positive"),
                        sensitivity,
                        &mut rng,
                    )
                    .expect("histogram succeeds");
                    (h.quantile(q).expect("positive total") - truth).abs()
                })
                .collect();
            hist_errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

            rows.push(vec![
                format!("{epsilon}"),
                format!("{q}"),
                format!("{truth:.1}"),
                format!("{:.2}", search_errors[reps / 2]),
                format!("{:.2}", hist_errors[reps / 2]),
            ]);
        }
    }
    print_table(
        "Ablation A7 — private quantile routes at equal ε (ozone, p=0.35, median |err| over 30 releases)",
        &["ε", "quantile", "truth", "binary search |err|", "histogram CDF |err|"],
        &rows,
    );
    println!("\nexpected: the histogram amortizes one ε across all buckets (parallel composition)\nand answers every quantile from a single release, so it dominates at small ε; the\nsearch needs no bucketization choice and wins resolution once ε is generous.");
}
