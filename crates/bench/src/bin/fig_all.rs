//! Convenience runner: executes every figure and ablation binary in
//! sequence (in-process, by invoking the sibling executables).
//!
//! Run with `cargo run -p prc-bench --release --bin fig_all`.

use std::process::Command;

const BINARIES: [&str; 12] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablation_estimators",
    "ablation_sensitivity",
    "ablation_pricing",
    "ablation_sketch",
    "ablation_composition",
    "ablation_energy",
    "ablation_quantile",
];

fn main() {
    let own_path = std::env::current_exe().expect("own path is knowable");
    let bin_dir = own_path.parent().expect("executable lives in a directory");
    let mut failures = Vec::new();
    for name in BINARIES {
        let path = bin_dir.join(name);
        println!("\n################ {name} ################");
        match Command::new(&path).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{name} exited with {status}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!(
                    "could not run {name} ({e}); build it first with \
                     `cargo build -p prc-bench --release --bins`"
                );
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", BINARIES.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
