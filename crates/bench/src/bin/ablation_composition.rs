//! Ablation A5: privacy accounting over a long trading session — basic
//! (linear) vs advanced (√k) composition.
//!
//! The broker's accountant applies basic sequential composition; this
//! ablation quantifies how much budget the advanced composition theorem
//! recovers as the number of sold answers grows, for several per-query
//! budgets.
//!
//! Run with `cargo run -p prc-bench --release --bin ablation_composition`.

use prc_bench::print_table;
use prc_dp::budget::Epsilon;
use prc_dp::composition::{advanced_composition, basic_composition};
use prc_dp::gaussian::ApproxDp;
use prc_dp::renyi::RdpAccountant;

fn main() {
    let delta_slack = 1e-6;
    let per_query_budgets = [0.005, 0.02, 0.1];
    let session_lengths = [10u64, 100, 1_000, 10_000];

    let mut rows = Vec::new();
    for &eps in &per_query_budgets {
        let per = ApproxDp::new(eps, 0.0).expect("valid per-query budget");
        for &k in &session_lengths {
            let basic = basic_composition(per, k);
            let advanced = advanced_composition(per, k, delta_slack).expect("valid slack");
            let mut rdp = RdpAccountant::default();
            for _ in 0..k {
                rdp.record_laplace(Epsilon::new(eps).expect("valid ε"));
            }
            let renyi = rdp.to_approx_dp(delta_slack).expect("valid slack");
            let winner = if renyi.epsilon < basic.epsilon.min(advanced.epsilon) {
                "RDP"
            } else if advanced.epsilon < basic.epsilon {
                "advanced"
            } else {
                "basic"
            };
            rows.push(vec![
                format!("{eps}"),
                format!("{k}"),
                format!("{:.3}", basic.epsilon),
                format!("{:.3}", advanced.epsilon),
                format!("{:.3}", renyi.epsilon),
                winner.into(),
            ]);
        }
    }
    print_table(
        &format!(
            "Ablation A5 — session privacy cost: basic vs advanced vs Rényi composition (δ = {delta_slack})"
        ),
        &["per-query ε", "queries", "basic Σε", "advanced ε", "RDP ε", "tightest"],
        &rows,
    );
    println!("\nexpected: the linear bound wins only for short sessions; advanced composition scales\nwith √k at a δ cost; the Rényi accountant (Laplace-specific curve) is tighter still on\nlong, small-ε sessions — the right choice for a broker selling thousands of answers.");
}
