//! # prc-bench — experiment harness
//!
//! Shared machinery for regenerating the paper's evaluation figures
//! (Figs. 2–6) and the design-choice ablations. Each figure has a binary
//! (`fig2` … `fig6`, `ablation_*`) that prints the figure's series as an
//! aligned table; EXPERIMENTS.md records the measured outputs next to the
//! paper's claims.
//!
//! The workload model follows §V: the CityPulse-like pollution dataset
//! (17,568 records, five air-quality indexes) is distributed over `k = 50`
//! nodes; queries are value ranges drawn from the data's quantiles so that
//! narrow, medium, and wide ranges are all exercised.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prc_core::estimator::RangeCountEstimator;
use prc_core::exact::range_count;
use prc_core::query::RangeQuery;
use prc_data::generator::CityPulseGenerator;
use prc_data::partition::PartitionStrategy;
use prc_data::record::{AirQualityIndex, Dataset};
use prc_data::stats;
use prc_net::network::FlatNetwork;

/// Number of nodes used by all experiments (the paper does not state its
/// `k`; 50 road-side sensors is a plausible smart-city deployment and is
/// held constant across every figure).
pub const NODES: usize = 50;

/// Seed tying all experiments together.
pub const SEED: u64 = 2014;

/// The full evaluation dataset: 17,568 records, seeded.
pub fn standard_dataset() -> Dataset {
    CityPulseGenerator::new(SEED).generate()
}

/// Builds the evaluation network over one air-quality index.
pub fn build_network(dataset: &Dataset, index: AirQualityIndex, seed: u64) -> FlatNetwork {
    FlatNetwork::from_dataset(dataset, index, NODES, PartitionStrategy::RoundRobin, seed)
}

/// Quantile pairs defining the standard query workload: narrow, medium,
/// and wide ranges over the observed value distribution.
pub const WORKLOAD_QUANTILES: [(f64, f64); 7] = [
    (0.45, 0.55),
    (0.30, 0.50),
    (0.25, 0.75),
    (0.10, 0.90),
    (0.05, 0.60),
    (0.40, 0.95),
    (0.02, 0.98),
];

/// Builds the standard workload for a value population.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn standard_workload(values: &[f64]) -> Vec<RangeQuery> {
    WORKLOAD_QUANTILES
        .iter()
        .map(|&(lo, hi)| {
            let l = stats::quantile(values, lo).expect("non-empty values");
            let u = stats::quantile(values, hi).expect("non-empty values");
            RangeQuery::new(l, u).expect("quantiles are ordered")
        })
        .collect()
}

/// How a measured error is normalized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorScale {
    /// `|est − truth| / truth` — the relative error of Figs. 2, 5, 6.
    RelativeToTruth,
    /// `|est − truth| / n` — error as a fraction of the population.
    RelativeToPopulation,
    /// `|est − truth| / (α·n)` — error in units of the Definition 2.2
    /// allowance (used by the Fig. 3 sweep, where α varies per point).
    RelativeToAllowance {
        /// The α of the current point.
        alpha: f64,
    },
}

/// Normalizes one absolute error.
pub fn scale_error(absolute: f64, truth: f64, n: usize, scale: ErrorScale) -> f64 {
    match scale {
        ErrorScale::RelativeToTruth => {
            if truth <= 0.0 {
                absolute
            } else {
                absolute / truth
            }
        }
        ErrorScale::RelativeToPopulation => absolute / n as f64,
        ErrorScale::RelativeToAllowance { alpha } => absolute / (alpha * n as f64),
    }
}

/// Runs `estimator` over the workload against the network's ground truth
/// and returns the **maximum** scaled error (the paper's headline metric).
pub fn max_relative_error<E: RangeCountEstimator>(
    estimator: &E,
    network: &FlatNetwork,
    values: &[f64],
    workload: &[RangeQuery],
    scale: ErrorScale,
) -> f64 {
    let n = values.len();
    workload
        .iter()
        .map(|&q| {
            let truth = range_count(values, q) as f64;
            let est = estimator.estimate(network.station(), q);
            scale_error((est - truth).abs(), truth, n, scale)
        })
        .fold(0.0, f64::max)
}

/// Maximum scaled error when the estimates have already been produced
/// (e.g. noisy broker answers).
pub fn max_scaled_error(
    pairs: &[(f64, f64)], // (estimate, truth)
    n: usize,
    scale: ErrorScale,
) -> f64 {
    pairs
        .iter()
        .map(|&(est, truth)| scale_error((est - truth).abs(), truth, n, scale))
        .fold(0.0, f64::max)
}

/// A geometric grid from `lo` to `hi` with `points` entries.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `points >= 2`.
pub fn geometric_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(points >= 2, "need at least two grid points");
    let ratio = (hi / lo).powf(1.0 / (points - 1) as f64);
    (0..points).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// A linear grid from `lo` to `hi` with `points` entries.
///
/// # Panics
///
/// Panics unless `points >= 2`.
pub fn linear_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two grid points");
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

/// Writes a figure's series as CSV under `target/figures/<slug>.csv`
/// (for plotting), returning the path.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn export_csv(
    slug: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write as _;
    let dir = std::path::Path::new("target").join("figures");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{slug}.csv"));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(file, "{}", headers.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Prints an aligned table with a title, for the figure binaries.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prc_core::estimator::RankCounting;

    #[test]
    fn standard_dataset_has_paper_dimensions() {
        let ds = standard_dataset();
        assert_eq!(ds.len(), 17_568);
    }

    #[test]
    fn workload_queries_are_ordered_and_nontrivial() {
        let ds = CityPulseGenerator::new(1).record_count(2_000).generate();
        let values = ds.values(AirQualityIndex::Ozone);
        let workload = standard_workload(&values);
        assert_eq!(workload.len(), WORKLOAD_QUANTILES.len());
        for q in &workload {
            assert!(q.lower() < q.upper());
            let truth = range_count(&values, *q);
            assert!(truth > 0, "workload query {q} matches nothing");
        }
    }

    #[test]
    fn grids_behave() {
        let g = geometric_grid(0.01, 1.0, 3);
        assert!((g[0] - 0.01).abs() < 1e-12);
        assert!((g[1] - 0.1).abs() < 1e-12);
        assert!((g[2] - 1.0).abs() < 1e-9);
        let l = linear_grid(0.0, 1.0, 5);
        assert_eq!(l, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn error_scaling_modes() {
        assert_eq!(
            scale_error(10.0, 100.0, 1_000, ErrorScale::RelativeToTruth),
            0.1
        );
        assert_eq!(
            scale_error(10.0, 100.0, 1_000, ErrorScale::RelativeToPopulation),
            0.01
        );
        assert_eq!(
            scale_error(
                10.0,
                100.0,
                1_000,
                ErrorScale::RelativeToAllowance { alpha: 0.1 }
            ),
            0.1
        );
        // Zero truth falls back to the absolute error.
        assert_eq!(scale_error(5.0, 0.0, 10, ErrorScale::RelativeToTruth), 5.0);
    }

    #[test]
    fn max_relative_error_is_zero_at_full_sampling() {
        let ds = CityPulseGenerator::new(3).record_count(1_000).generate();
        let values = ds.values(AirQualityIndex::CarbonMonoxide);
        let mut net = build_network(&ds, AirQualityIndex::CarbonMonoxide, 3);
        net.collect_samples(1.0);
        let workload = standard_workload(&values);
        let err = max_relative_error(
            &RankCounting,
            &net,
            &values,
            &workload,
            ErrorScale::RelativeToTruth,
        );
        assert_eq!(err, 0.0, "p = 1 must be exact");
    }

    #[test]
    fn export_csv_writes_headers_and_rows() {
        let rows = vec![
            vec!["1".to_string(), "2.5".to_string()],
            vec!["3".to_string(), "4.5".to_string()],
        ];
        let path = export_csv("unit_test_export", &["x", "y"], &rows).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2.5\n3,4.5\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn max_scaled_error_takes_the_worst_query() {
        let pairs = [(100.0, 100.0), (90.0, 100.0), (130.0, 100.0)];
        let e = max_scaled_error(&pairs, 1_000, ErrorScale::RelativeToTruth);
        assert!((e - 0.3).abs() < 1e-12);
    }
}
