//! The Greenwald–Khanna ε-approximate quantile summary ("Space-efficient
//! online computation of quantile summaries", SIGMOD 2001).
//!
//! A GK summary maintains a sorted list of tuples `(v, g, Δ)` where `g`
//! is the gap in minimum rank to the previous tuple and `Δ` bounds the
//! rank uncertainty of `v`. The invariant `g + Δ ≤ ⌊2εn⌋` guarantees any
//! rank (hence any quantile or range count) is answered within `± εn`,
//! using `O((1/ε)·log(εn))` space.
//!
//! GK summaries are streaming (one pass, per-element `O(log s)` insert)
//! but not mergeable; the distributed protocol in [`crate::distributed`]
//! keeps one summary per node and sums per-node bounds at the base
//! station, which preserves the total error `Σ εnᵢ = εn`.

use crate::CountBounds;

/// One GK tuple.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
struct Tuple {
    value: f64,
    /// Gap in minimum rank from the previous tuple.
    g: u64,
    /// Rank uncertainty of this tuple.
    delta: u64,
}

/// Wire-size model: fixed header plus 16 bytes per tuple.
pub const GK_HEADER_BYTES: usize = 16;
/// Bytes per stored tuple.
pub const GK_TUPLE_BYTES: usize = 16;

/// A streaming ε-approximate quantile summary over `f64` values.
///
/// # Examples
///
/// ```
/// use prc_sketch::GkSummary;
///
/// let mut summary = GkSummary::new(0.01);
/// for i in 0..10_000 {
///     summary.insert(f64::from(i));
/// }
/// // Rank queries are certified within ±εn = ±100.
/// let bounds = summary.rank_bounds(5_000.0);
/// assert!(bounds.lower <= 5_001 && 5_001 <= bounds.upper);
/// assert!(summary.tuple_count() < 1_000); // sublinear space
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GkSummary {
    epsilon: f64,
    count: u64,
    tuples: Vec<Tuple>,
    inserts_since_compress: u64,
}

impl GkSummary {
    /// Creates an empty summary with rank-error parameter `ε ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        GkSummary {
            epsilon,
            count: 0,
            tuples: Vec::new(),
            inserts_since_compress: 0,
        }
    }

    /// Builds a summary from a batch of values.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn from_values(epsilon: f64, values: &[f64]) -> Self {
        let mut summary = GkSummary::new(epsilon);
        for &v in values {
            summary.insert(v);
        }
        summary
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of values observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of stored tuples.
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Serialized size under the fixed wire model.
    pub fn wire_size(&self) -> usize {
        GK_HEADER_BYTES + self.tuples.len() * GK_TUPLE_BYTES
    }

    /// The worst-case rank error, `⌈εn⌉`.
    pub fn error_bound(&self) -> u64 {
        (self.epsilon * self.count as f64).ceil() as u64
    }

    /// Inserts one value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn insert(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot insert NaN");
        self.count += 1;
        let band = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        // Position of the first tuple with a strictly larger value.
        let pos = self.tuples.partition_point(|t| t.value <= value);
        let delta = if pos == 0 || pos == self.tuples.len() {
            0 // new extremes are known exactly
        } else {
            band.saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { value, g: 1, delta });

        self.inserts_since_compress += 1;
        if self.inserts_since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    /// Removes tuples whose information is covered by their successor
    /// (the classic `g_i + g_{i+1} + Δ_{i+1} ≤ 2εn` rule), preserving the
    /// extremes.
    pub fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let band = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut i = self.tuples.len() - 2;
        while i >= 1 {
            let merged_g = self.tuples[i].g + self.tuples[i + 1].g;
            if merged_g + self.tuples[i + 1].delta <= band {
                self.tuples[i + 1].g = merged_g;
                self.tuples.remove(i);
            }
            i -= 1;
        }
    }

    /// Certified bounds on the rank `|{v ≤ x}|`.
    pub fn rank_bounds(&self, x: f64) -> CountBounds {
        let Some(first) = self.tuples.first() else {
            return CountBounds { lower: 0, upper: 0 };
        };
        // Index of the last tuple with value ≤ x.
        let pos = self.tuples.partition_point(|t| t.value <= x);
        if pos == 0 {
            // x precedes every summarized value.
            return CountBounds {
                lower: 0,
                upper: first.g.saturating_sub(1) + first.delta,
            };
        }
        let rmin: u64 = self.tuples[..pos].iter().map(|t| t.g).sum();
        if pos == self.tuples.len() {
            // x is at or beyond the maximum: everything could be ≤ x, but
            // at least rmin definitely is; the max tuple is exact, so if
            // x ≥ max value the rank is exactly n.
            return CountBounds {
                lower: rmin.max(if x >= self.tuples[pos - 1].value {
                    self.count
                } else {
                    0
                }),
                upper: self.count,
            };
        }
        // Elements ≤ x number at least rmin (min rank of tuple pos−1) and
        // at most (max rank of tuple pos) − 1.
        let rmax_next = rmin + self.tuples[pos].g + self.tuples[pos].delta;
        CountBounds {
            lower: rmin,
            upper: rmax_next.saturating_sub(1).min(self.count),
        }
    }

    /// Certified bounds on the range count `|{v : a ≤ v ≤ b}|`.
    ///
    /// Returns zero bounds when `a > b`.
    pub fn range_count_bounds(&self, a: f64, b: f64) -> CountBounds {
        if a > b {
            return CountBounds { lower: 0, upper: 0 };
        }
        let hi = self.rank_bounds(b);
        // Strictly-below-a rank: use the largest representable value
        // below `a`.
        let lo = self.rank_bounds(a.next_down());
        CountBounds {
            lower: hi.lower.saturating_sub(lo.upper),
            upper: hi.upper.saturating_sub(lo.lower),
        }
    }

    /// The `q`-quantile estimate (`q` clamped to `[0, 1]`), or `None` for
    /// an empty summary.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.tuples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let allowed = self.error_bound();
        let mut rmin = 0u64;
        for t in &self.tuples {
            rmin += t.g;
            // First tuple whose min rank is within the allowance of the
            // target and whose max rank reaches it.
            if rmin >= target.saturating_sub(allowed) && rmin + t.delta >= target {
                return Some(t.value);
            }
        }
        self.tuples.last().map(|t| t.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn exact_range(values: &[f64], a: f64, b: f64) -> u64 {
        values.iter().filter(|&&v| v >= a && v <= b).count() as u64
    }

    #[test]
    fn rank_bounds_contain_truth_on_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f64> = (0..20_000).map(|_| rng.random::<f64>() * 1_000.0).collect();
        let summary = GkSummary::from_values(0.01, &values);
        for _ in 0..200 {
            let x = rng.random::<f64>() * 1_000.0;
            let truth = values.iter().filter(|&&v| v <= x).count() as u64;
            let bounds = summary.rank_bounds(x);
            assert!(
                bounds.contains(truth),
                "rank({x}) = {truth} outside [{}, {}]",
                bounds.lower,
                bounds.upper
            );
        }
    }

    #[test]
    fn rank_error_is_within_epsilon_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<f64> = (0..30_000).map(|_| rng.random::<f64>() * 100.0).collect();
        let epsilon = 0.005;
        let summary = GkSummary::from_values(epsilon, &values);
        let allowed = 2 * summary.error_bound() + 2; // two-sided width
        for x in (0..100).map(|i| i as f64) {
            let b = summary.rank_bounds(x);
            assert!(
                b.upper - b.lower <= allowed,
                "width {} exceeds {allowed}",
                b.upper - b.lower
            );
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<f64> = (0..100_000).map(|_| rng.random::<f64>()).collect();
        let summary = GkSummary::from_values(0.01, &values);
        assert!(
            summary.tuple_count() < 2_000,
            "summary too large: {} tuples for 100k values",
            summary.tuple_count()
        );
        assert_eq!(summary.count(), 100_000);
        assert!(summary.wire_size() < 2_000 * GK_TUPLE_BYTES + GK_HEADER_BYTES);
    }

    #[test]
    fn range_count_bounds_contain_truth() {
        let mut rng = StdRng::seed_from_u64(4);
        let values: Vec<f64> = (0..15_000).map(|_| rng.random::<f64>() * 500.0).collect();
        let summary = GkSummary::from_values(0.01, &values);
        for _ in 0..200 {
            let a = rng.random::<f64>() * 500.0;
            let b = rng.random::<f64>() * 500.0;
            let (a, b) = (a.min(b), a.max(b));
            let truth = exact_range(&values, a, b);
            let bounds = summary.range_count_bounds(a, b);
            assert!(
                bounds.contains(truth),
                "count({a},{b}) = {truth} outside [{}, {}]",
                bounds.lower,
                bounds.upper
            );
        }
        assert_eq!(
            summary.range_count_bounds(5.0, 4.0),
            CountBounds { lower: 0, upper: 0 }
        );
    }

    #[test]
    fn quantiles_are_epsilon_accurate() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let epsilon = 0.01;
        let summary = GkSummary::from_values(epsilon, &values);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let est = summary.quantile(q).unwrap();
            let target = q * 10_000.0;
            assert!(
                (est - target).abs() <= 2.0 * epsilon * 10_000.0 + 1.0,
                "q{q}: {est} vs {target}"
            );
        }
        assert_eq!(GkSummary::new(0.1).quantile(0.5), None);
    }

    #[test]
    fn duplicates_and_sorted_input() {
        let mut values: Vec<f64> = (0..5_000).map(|i| (i / 50) as f64).collect();
        let summary = GkSummary::from_values(0.01, &values);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for x in [0.0, 10.0, 50.5, 99.0] {
            let truth = values.iter().filter(|&&v| v <= x).count() as u64;
            assert!(summary.rank_bounds(x).contains(truth), "x={x}");
        }
    }

    #[test]
    fn extremes_are_exact() {
        let summary = GkSummary::from_values(0.05, &[5.0, 1.0, 9.0, 3.0]);
        let bottom = summary.rank_bounds(0.5);
        assert_eq!(bottom.lower, 0);
        let top = summary.rank_bounds(9.0);
        assert_eq!(top.lower, 4);
        assert_eq!(top.upper, 4);
    }

    #[test]
    fn empty_summary_answers_zero() {
        let summary = GkSummary::new(0.1);
        assert_eq!(summary.rank_bounds(1.0), CountBounds { lower: 0, upper: 0 });
        assert_eq!(summary.count(), 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_insert_panics() {
        GkSummary::new(0.1).insert(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn bad_epsilon_panics() {
        let _ = GkSummary::new(0.0);
    }
}
