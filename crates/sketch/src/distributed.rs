//! Distributed sketching: one sketch per node, summed bounds at the base
//! station.
//!
//! This is the deterministic counterpart of `prc-net`'s sampling
//! protocol: instead of shipping a Bernoulli sample with ranks, every
//! node ships a fixed-size summary of its local data. Range counts are
//! answered by summing the per-node certified bounds (errors add, so a
//! per-node `εnᵢ` guarantee yields `εn` globally); q-digests can
//! alternatively be merged into one digest first.
//!
//! [`Quantizer`] maps `f64` observations onto the integer domain
//! q-digests need; query bounds snap to the same grid so the certified
//! intervals remain valid for grid-aligned queries.

use crate::gk::GkSummary;
use crate::qdigest::QDigest;
use crate::CountBounds;

/// An affine map from a closed `f64` interval onto `[0, 2^bits)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Quantizer {
    lo: f64,
    hi: f64,
    bits: u32,
}

impl Quantizer {
    /// Creates a quantizer for values in `[lo, hi]` onto `bits`-wide
    /// integers.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` are finite and `1 ≤ bits ≤ 32`.
    pub fn new(lo: f64, hi: f64, bits: u32) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "need finite lo < hi"
        );
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        Quantizer { lo, hi, bits }
    }

    /// Domain width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest integer code, `2^bits − 1`.
    pub fn max_code(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Maps a value onto its integer code (clamped to the domain).
    pub fn quantize(&self, value: f64) -> u64 {
        let scaled = (value - self.lo) / (self.hi - self.lo) * self.max_code() as f64;
        scaled.round().clamp(0.0, self.max_code() as f64) as u64
    }

    /// Maps an integer code back to the centre of its cell.
    pub fn dequantize(&self, code: u64) -> f64 {
        self.lo + code as f64 / self.max_code() as f64 * (self.hi - self.lo)
    }

    /// The width of one quantization cell in value units.
    pub fn cell_width(&self) -> f64 {
        (self.hi - self.lo) / self.max_code() as f64
    }
}

/// One node's summary, as shipped to the base station.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NodeSketch {
    /// A mergeable q-digest over the quantized domain.
    QDigest(QDigest),
    /// A Greenwald–Khanna summary over raw values.
    Gk(GkSummary),
}

impl NodeSketch {
    /// Serialized size under each sketch's wire model.
    pub fn wire_size(&self) -> usize {
        match self {
            NodeSketch::QDigest(d) => d.wire_size(),
            NodeSketch::Gk(g) => g.wire_size(),
        }
    }

    /// Total weight summarized by the sketch.
    pub fn total(&self) -> u64 {
        match self {
            NodeSketch::QDigest(d) => d.total(),
            NodeSketch::Gk(g) => g.count(),
        }
    }
}

/// The base station of the sketching protocol.
///
/// # Examples
///
/// ```
/// use prc_sketch::distributed::{digest_partitions, Quantizer, SketchStation};
///
/// let partitions = vec![vec![10.0, 20.0, 30.0], vec![40.0, 50.0]];
/// let quantizer = Quantizer::new(0.0, 100.0, 8);
/// let mut station = SketchStation::new();
/// for sketch in digest_partitions(&partitions, &quantizer, 16) {
///     station.ingest(sketch);
/// }
/// let bounds = station.range_count_bounds(
///     &quantizer,
///     quantizer.quantize(15.0),
///     quantizer.quantize(45.0),
/// );
/// // True count of {20, 30, 40} is certified inside the bounds.
/// assert!(bounds.lower <= 3 && 3 <= bounds.upper);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SketchStation {
    sketches: Vec<NodeSketch>,
    bytes_received: u64,
}

impl SketchStation {
    /// An empty station.
    pub fn new() -> Self {
        SketchStation::default()
    }

    /// Ingests one node's sketch, accounting its wire size.
    pub fn ingest(&mut self, sketch: NodeSketch) {
        self.bytes_received += sketch.wire_size() as u64;
        self.sketches.push(sketch);
    }

    /// Number of nodes that have reported.
    pub fn node_count(&self) -> usize {
        self.sketches.len()
    }

    /// Total population summarized across nodes.
    pub fn total_population(&self) -> u64 {
        self.sketches.iter().map(NodeSketch::total).sum()
    }

    /// Total bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Certified bounds on the global count of quantized codes in
    /// `[a, b]` — q-digest sketches are queried on the integer range,
    /// GK sketches on the dequantized value range.
    pub fn range_count_bounds(&self, quantizer: &Quantizer, a: u64, b: u64) -> CountBounds {
        let mut bounds = CountBounds { lower: 0, upper: 0 };
        for sketch in &self.sketches {
            let node = match sketch {
                NodeSketch::QDigest(d) => d.range_count_bounds(a, b),
                NodeSketch::Gk(g) => {
                    // Query the value interval covered by codes [a, b],
                    // padded by half a cell on each side so grid-aligned
                    // values stay inside.
                    let half = quantizer.cell_width() / 2.0;
                    g.range_count_bounds(
                        quantizer.dequantize(a) - half,
                        quantizer.dequantize(b) + half,
                    )
                }
            };
            bounds = bounds.merge(&node);
        }
        bounds
    }

    /// Merges every q-digest into one (errors stop adding across nodes at
    /// the cost of one recompression); non-digest sketches are left as
    /// is. Returns the merged digest when at least one digest was
    /// present.
    pub fn merge_digests(&self) -> Option<QDigest> {
        let mut merged: Option<QDigest> = None;
        for sketch in &self.sketches {
            if let NodeSketch::QDigest(d) = sketch {
                match &mut merged {
                    Some(m) => m.merge_from(d),
                    None => merged = Some(d.clone()),
                }
            }
        }
        merged
    }
}

/// Builds per-node q-digest sketches for partitioned raw values.
pub fn digest_partitions(
    partitions: &[Vec<f64>],
    quantizer: &Quantizer,
    compression: u64,
) -> Vec<NodeSketch> {
    partitions
        .iter()
        .map(|values| {
            let codes: Vec<u64> = values.iter().map(|&v| quantizer.quantize(v)).collect();
            NodeSketch::QDigest(QDigest::from_values(quantizer.bits(), compression, &codes))
        })
        .collect()
}

/// Builds per-node GK sketches for partitioned raw values.
pub fn gk_partitions(partitions: &[Vec<f64>], epsilon: f64) -> Vec<NodeSketch> {
    partitions
        .iter()
        .map(|values| NodeSketch::Gk(GkSummary::from_values(epsilon, values)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn partitions(k: usize, per_node: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..per_node).map(|_| rng.random::<f64>() * 200.0).collect())
            .collect()
    }

    fn exact_quantized(parts: &[Vec<f64>], q: &Quantizer, a: u64, b: u64) -> u64 {
        parts
            .iter()
            .flatten()
            .filter(|&&v| {
                let code = q.quantize(v);
                code >= a && code <= b
            })
            .count() as u64
    }

    #[test]
    fn quantizer_round_trips_on_grid() {
        let q = Quantizer::new(0.0, 200.0, 10);
        assert_eq!(q.max_code(), 1_023);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(200.0), 1_023);
        assert_eq!(q.quantize(-5.0), 0); // clamped
        assert_eq!(q.quantize(250.0), 1_023);
        for code in [0u64, 17, 512, 1_023] {
            assert_eq!(q.quantize(q.dequantize(code)), code);
        }
        assert!(q.cell_width() > 0.0);
    }

    #[test]
    #[should_panic(expected = "finite lo < hi")]
    fn degenerate_quantizer_panics() {
        let _ = Quantizer::new(5.0, 5.0, 8);
    }

    #[test]
    fn digest_station_bounds_contain_truth() {
        let parts = partitions(10, 500, 1);
        let q = Quantizer::new(0.0, 200.0, 12);
        let mut station = SketchStation::new();
        for sketch in digest_partitions(&parts, &q, 64) {
            station.ingest(sketch);
        }
        assert_eq!(station.node_count(), 10);
        assert_eq!(station.total_population(), 5_000);
        assert!(station.bytes_received() > 0);

        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = rng.random_range(0..1u64 << 12);
            let b = rng.random_range(0..1u64 << 12);
            let (a, b) = (a.min(b), a.max(b));
            let truth = exact_quantized(&parts, &q, a, b);
            let bounds = station.range_count_bounds(&q, a, b);
            assert!(
                bounds.contains(truth),
                "truth {truth} outside [{}, {}]",
                bounds.lower,
                bounds.upper
            );
        }
    }

    #[test]
    fn gk_station_bounds_contain_truth() {
        let parts = partitions(8, 800, 3);
        let q = Quantizer::new(0.0, 200.0, 12);
        let mut station = SketchStation::new();
        for sketch in gk_partitions(&parts, 0.02) {
            station.ingest(sketch);
        }
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let a = rng.random_range(0..1u64 << 12);
            let b = rng.random_range(0..1u64 << 12);
            let (a, b) = (a.min(b), a.max(b));
            let truth = exact_quantized(&parts, &q, a, b);
            let bounds = station.range_count_bounds(&q, a, b);
            assert!(
                bounds.contains(truth),
                "truth {truth} outside [{}, {}]",
                bounds.lower,
                bounds.upper
            );
        }
    }

    #[test]
    fn merged_digest_is_tighter_or_equal_population() {
        let parts = partitions(6, 400, 5);
        let q = Quantizer::new(0.0, 200.0, 10);
        let mut station = SketchStation::new();
        for sketch in digest_partitions(&parts, &q, 32) {
            station.ingest(sketch);
        }
        let merged = station.merge_digests().unwrap();
        assert_eq!(merged.total(), 2_400);
        // Merged bounds still contain the truth.
        let truth = exact_quantized(&parts, &q, 100, 800);
        assert!(merged.range_count_bounds(100, 800).contains(truth));
    }

    #[test]
    fn merge_digests_none_without_digests() {
        let mut station = SketchStation::new();
        station.ingest(NodeSketch::Gk(GkSummary::from_values(0.1, &[1.0])));
        assert!(station.merge_digests().is_none());
    }

    #[test]
    fn wire_sizes_reflect_compression() {
        let parts = partitions(1, 20_000, 7);
        let q = Quantizer::new(0.0, 200.0, 16);
        let tight = &digest_partitions(&parts, &q, 16)[0];
        let loose = &digest_partitions(&parts, &q, 1_024)[0];
        assert!(tight.wire_size() < loose.wire_size());
    }
}
