//! The q-digest of Shrivastava, Buragohain, Agrawal & Suri ("Medians and
//! beyond: new aggregation techniques for sensor networks", SenSys 2004).
//!
//! A q-digest summarizes a multiset over the integer domain `[0, 2^bits)`
//! as counts attached to nodes of the complete binary interval tree. The
//! **compression parameter** `k` trades size for accuracy: after
//! compression the digest stores `O(k·log σ)` nodes and every rank query
//! returns certified bounds whose width is at most `n·log₂σ / k`
//! (straddling nodes form a root-leaf path; every internal node's count
//! is at most `⌊n/k⌋` after compression).
//!
//! Digests over the same domain **merge** by adding counts node-wise —
//! the property that makes them ideal for in-network aggregation trees.

use std::collections::BTreeMap;

use crate::CountBounds;

/// A mergeable q-digest over the integer domain `[0, 2^bits)`.
///
/// # Examples
///
/// ```
/// use prc_sketch::QDigest;
///
/// let values: Vec<u64> = (0..1000).collect();
/// let digest = QDigest::from_values(10, 32, &values);
/// let bounds = digest.range_count_bounds(250, 750);
/// // The certified interval always contains the true count (501).
/// assert!(bounds.lower <= 501 && 501 <= bounds.upper);
/// assert!(digest.node_count() < 1000); // compressed
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QDigest {
    bits: u32,
    compression: u64,
    total: u64,
    /// Binary-interval-tree node id → count. Root is id 1; node `v` has
    /// children `2v`, `2v+1`; leaves (ids in `[2^bits, 2^(bits+1))`)
    /// correspond to single domain values.
    counts: BTreeMap<u64, u64>,
}

/// Wire-size model: fixed header plus 12 bytes per stored node.
pub const QDIGEST_HEADER_BYTES: usize = 16;
/// Bytes per stored (node id, count) pair.
pub const QDIGEST_NODE_BYTES: usize = 12;

impl QDigest {
    /// Creates an empty digest over `[0, 2^bits)` with compression `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 32` and `k ≥ 1`.
    pub fn new(bits: u32, compression: u64) -> Self {
        assert!(
            (1..=32).contains(&bits),
            "bits must be in 1..=32, got {bits}"
        );
        assert!(compression >= 1, "compression must be at least 1");
        QDigest {
            bits,
            compression,
            total: 0,
            counts: BTreeMap::new(),
        }
    }

    /// Builds a compressed digest from values.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside the domain.
    pub fn from_values(bits: u32, compression: u64, values: &[u64]) -> Self {
        let mut digest = QDigest::new(bits, compression);
        for &v in values {
            digest.insert(v);
        }
        digest.compress();
        digest
    }

    /// Domain width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The compression parameter `k`.
    pub fn compression(&self) -> u64 {
        self.compression
    }

    /// Total weight summarized, `n`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest representable domain value, `2^bits − 1`.
    pub fn max_value(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Number of stored tree nodes.
    pub fn node_count(&self) -> usize {
        self.counts.len()
    }

    /// Serialized size under the fixed wire model.
    pub fn wire_size(&self) -> usize {
        QDIGEST_HEADER_BYTES + self.counts.len() * QDIGEST_NODE_BYTES
    }

    /// Inserts one value with weight 1 (no compression; call
    /// [`QDigest::compress`] when done inserting).
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn insert(&mut self, value: u64) {
        self.insert_weighted(value, 1);
    }

    /// Inserts one value with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn insert_weighted(&mut self, value: u64, weight: u64) {
        assert!(
            value <= self.max_value(),
            "value {value} outside domain [0, 2^{})",
            self.bits
        );
        if weight == 0 {
            return;
        }
        let leaf = (1u64 << self.bits) + value;
        *self.counts.entry(leaf).or_insert(0) += weight;
        self.total += weight;
    }

    /// Compresses the digest: bottom-up, any (child, sibling, parent)
    /// triple whose combined count is at most `⌊n/k⌋` collapses into the
    /// parent. After compression every *internal* node's count is at most
    /// the threshold, which is what certifies the query error.
    pub fn compress(&mut self) {
        let threshold = self.total / self.compression;
        if threshold == 0 {
            return;
        }
        for depth in (1..=self.bits).rev() {
            let level_lo = 1u64 << depth;
            let level_hi = (1u64 << (depth + 1)) - 1;
            let ids: Vec<u64> = self
                .counts
                .range(level_lo..=level_hi)
                .map(|(&id, _)| id)
                .collect();
            for id in ids {
                // The sibling pass may already have consumed this node.
                let Some(&own) = self.counts.get(&id) else {
                    continue;
                };
                let sibling = id ^ 1;
                let parent = id >> 1;
                let sibling_count = self.counts.get(&sibling).copied().unwrap_or(0);
                let parent_count = self.counts.get(&parent).copied().unwrap_or(0);
                let combined = own + sibling_count + parent_count;
                if combined <= threshold {
                    self.counts.remove(&id);
                    self.counts.remove(&sibling);
                    self.counts.insert(parent, combined);
                }
            }
        }
    }

    /// Merges another digest into this one (counts add node-wise), then
    /// recompresses at this digest's `k`.
    ///
    /// # Panics
    ///
    /// Panics when the domains differ.
    pub fn merge_from(&mut self, other: &QDigest) {
        assert_eq!(
            self.bits, other.bits,
            "cannot merge digests over different domains"
        );
        for (&id, &count) in &other.counts {
            *self.counts.entry(id).or_insert(0) += count;
        }
        self.total += other.total;
        self.compress();
    }

    /// `(depth, interval)` of a tree node: the domain values it covers.
    fn node_interval(&self, id: u64) -> (u64, u64) {
        let depth = 63 - id.leading_zeros(); // floor(log2(id))
        let width_bits = self.bits - depth;
        let offset = id - (1u64 << depth);
        let lo = offset << width_bits;
        let hi = lo + (1u64 << width_bits) - 1;
        (lo, hi)
    }

    /// Certified bounds on the rank `|{v ≤ x}|`.
    ///
    /// Values beyond the domain clamp (`x ≥ 2^bits` counts everything).
    pub fn rank_bounds(&self, x: u64) -> CountBounds {
        if x >= self.max_value() {
            return CountBounds {
                lower: self.total,
                upper: self.total,
            };
        }
        let mut certain = 0u64;
        let mut straddling = 0u64;
        for (&id, &count) in &self.counts {
            let (lo, hi) = self.node_interval(id);
            if hi <= x {
                certain += count;
            } else if lo <= x {
                straddling += count;
            }
        }
        CountBounds {
            lower: certain,
            upper: certain + straddling,
        }
    }

    /// Certified bounds on the range count `|{v : a ≤ v ≤ b}|`.
    ///
    /// Returns zero bounds when `a > b`.
    pub fn range_count_bounds(&self, a: u64, b: u64) -> CountBounds {
        if a > b {
            return CountBounds { lower: 0, upper: 0 };
        }
        let upper_rank = self.rank_bounds(b);
        let below = if a == 0 {
            CountBounds { lower: 0, upper: 0 }
        } else {
            self.rank_bounds(a - 1)
        };
        CountBounds {
            lower: upper_rank.lower.saturating_sub(below.upper),
            upper: upper_rank.upper.saturating_sub(below.lower),
        }
    }

    /// The theoretical maximum half-width of any rank query:
    /// `bits · ⌊n/k⌋` (a root-leaf path of internal nodes, each below the
    /// compression threshold).
    pub fn error_bound(&self) -> u64 {
        u64::from(self.bits) * (self.total / self.compression)
    }

    /// A quantile estimate: the smallest value whose rank lower bound
    /// reaches `q·n`. `q` is clamped to `[0, 1]`. Returns `None` for an
    /// empty digest.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil() as u64;
        // Binary search over the domain using rank bounds' midpoint.
        let (mut lo, mut hi) = (0u64, self.max_value());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if (self.rank_bounds(mid).estimate() as u64) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn exact_range(values: &[u64], a: u64, b: u64) -> u64 {
        values.iter().filter(|&&v| v >= a && v <= b).count() as u64
    }

    #[test]
    fn uncompressed_digest_is_exact() {
        let values = [1u64, 5, 5, 9, 200, 1023];
        let mut d = QDigest::new(10, 1_000_000);
        for &v in &values {
            d.insert(v);
        }
        // Huge k => threshold 0 => no compression => exact answers.
        for (a, b) in [(0, 1023), (5, 5), (2, 100), (500, 1000), (10, 4)] {
            let bounds = d.range_count_bounds(a, b);
            let truth = exact_range(&values, a, b);
            assert_eq!(bounds.lower, truth, "({a},{b})");
            assert_eq!(bounds.upper, truth, "({a},{b})");
        }
        assert_eq!(d.total(), 6);
    }

    #[test]
    fn bounds_always_contain_the_truth() {
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<u64> = (0..5_000)
            .map(|_| rng.random_range(0..1u64 << 12))
            .collect();
        let d = QDigest::from_values(12, 32, &values);
        for _ in 0..200 {
            let a = rng.random_range(0..1u64 << 12);
            let b = rng.random_range(0..1u64 << 12);
            let (a, b) = (a.min(b), a.max(b));
            let bounds = d.range_count_bounds(a, b);
            let truth = exact_range(&values, a, b);
            assert!(
                bounds.contains(truth),
                "truth {truth} outside [{}, {}] for ({a},{b})",
                bounds.lower,
                bounds.upper
            );
        }
    }

    #[test]
    fn error_respects_the_theoretical_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let values: Vec<u64> = (0..20_000)
            .map(|_| rng.random_range(0..1u64 << 16))
            .collect();
        let d = QDigest::from_values(16, 64, &values);
        let bound = d.error_bound();
        for x in (0..1u64 << 16).step_by(1 << 10) {
            let b = d.rank_bounds(x);
            assert!(
                b.upper - b.lower <= bound,
                "width {} exceeds bound {bound}",
                b.upper - b.lower
            );
        }
    }

    #[test]
    fn compression_shrinks_the_digest() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<u64> = (0..50_000)
            .map(|_| rng.random_range(0..1u64 << 16))
            .collect();
        let loose = QDigest::from_values(16, 10_000_000, &values);
        let tight = QDigest::from_values(16, 32, &values);
        assert!(tight.node_count() < loose.node_count() / 10);
        // Size is O(k log σ): comfortably under 3·k·bits.
        assert!(
            tight.node_count() as u64 <= 3 * 32 * 16,
            "digest too large: {}",
            tight.node_count()
        );
        assert!(tight.wire_size() < loose.wire_size());
    }

    #[test]
    fn merge_matches_combined_build() {
        let mut rng = StdRng::seed_from_u64(5);
        let a_values: Vec<u64> = (0..3_000)
            .map(|_| rng.random_range(0..1u64 << 10))
            .collect();
        let b_values: Vec<u64> = (0..2_000)
            .map(|_| rng.random_range(0..1u64 << 10))
            .collect();
        let mut a = QDigest::from_values(10, 16, &a_values);
        let b = QDigest::from_values(10, 16, &b_values);
        a.merge_from(&b);
        assert_eq!(a.total(), 5_000);
        // Truth containment still holds after merging.
        let all: Vec<u64> = a_values.iter().chain(&b_values).copied().collect();
        for (lo, hi) in [(0, 1023), (100, 400), (512, 600)] {
            let bounds = a.range_count_bounds(lo, hi);
            assert!(bounds.contains(exact_range(&all, lo, hi)));
        }
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let values: Vec<u64> = (0..10_000u64).collect();
        let d = QDigest::from_values(14, 128, &values);
        let median = d.quantile(0.5).unwrap();
        assert!(
            (median as i64 - 5_000).unsigned_abs() < 1_200,
            "median {median}"
        );
        assert!(d.quantile(0.0).unwrap() <= d.quantile(1.0).unwrap());
        assert_eq!(QDigest::new(4, 4).quantile(0.5), None);
    }

    #[test]
    fn rank_clamps_at_domain_edges() {
        let d = QDigest::from_values(8, 8, &[0, 255, 255]);
        assert_eq!(d.rank_bounds(255).lower, 3);
        assert_eq!(d.rank_bounds(255).upper, 3);
        let zero = d.range_count_bounds(5, 4);
        assert_eq!(zero, CountBounds { lower: 0, upper: 0 });
    }

    #[test]
    fn weighted_inserts() {
        let mut d = QDigest::new(6, 1_000);
        d.insert_weighted(10, 7);
        d.insert_weighted(10, 0);
        assert_eq!(d.total(), 7);
        assert_eq!(d.range_count_bounds(10, 10).lower, 7);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        QDigest::new(4, 4).insert(16);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn zero_bits_panics() {
        let _ = QDigest::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn mismatched_merge_panics() {
        let mut a = QDigest::new(4, 4);
        let b = QDigest::new(5, 4);
        a.merge_from(&b);
    }

    #[test]
    fn internal_nodes_respect_threshold_after_compression() {
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<u64> = (0..10_000)
            .map(|_| rng.random_range(0..1u64 << 12))
            .collect();
        let d = QDigest::from_values(12, 50, &values);
        let threshold = d.total() / d.compression();
        for (&id, &count) in &d.counts {
            let is_leaf = id >= (1u64 << d.bits());
            if !is_leaf {
                assert!(
                    count <= threshold,
                    "internal node {id} holds {count} > threshold {threshold}"
                );
            }
        }
    }
}
