//! # prc-sketch — deterministic quantile sketches
//!
//! The paper's RankCounting estimator answers range counts from a
//! *random sample*; the classic deterministic alternative (the lineage of
//! its related-work §VI — mergeable summaries for quantiles and range
//! counts) is a *sketch* with a hard error guarantee:
//!
//! * [`qdigest::QDigest`] — the q-digest of Shrivastava et al.: a
//!   compressed binary-tree summary over an integer domain. Mergeable
//!   (ideal for aggregation trees), size `O(k·log σ)`, and every rank
//!   query comes with **certified lower/upper bounds** whose width is at
//!   most `n·log σ / k`.
//! * [`gk::GkSummary`] — the Greenwald–Khanna streaming summary: insertion
//!   time `O(log(εn))`-ish with size `O((1/ε)·log(εn))` and rank error
//!   `± εn`. Not mergeable, but perfect as a per-node summary queried in
//!   place.
//! * [`distributed`] — a base-station protocol: every node ships one
//!   sketch; range counts are answered by summing per-node bounds, with
//!   byte-level communication accounting comparable to `prc-net`'s.
//!
//! The `ablation_sketch` binary in `prc-bench` compares this substrate
//! against the paper's sampling approach on communication vs. accuracy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod gk;
pub mod qdigest;

pub use distributed::SketchStation;
pub use gk::GkSummary;
pub use qdigest::QDigest;

/// A certified interval `[lower, upper]` containing a true count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CountBounds {
    /// Certified lower bound.
    pub lower: u64,
    /// Certified upper bound.
    pub upper: u64,
}

impl CountBounds {
    /// The midpoint estimate.
    pub fn estimate(&self) -> f64 {
        (self.lower + self.upper) as f64 / 2.0
    }

    /// The maximum absolute error of [`CountBounds::estimate`].
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) as f64 / 2.0
    }

    /// Sums two bounds (counts over disjoint data add).
    pub fn merge(&self, other: &CountBounds) -> CountBounds {
        CountBounds {
            lower: self.lower + other.lower,
            upper: self.upper + other.upper,
        }
    }

    /// True when `value` lies inside the bounds.
    pub fn contains(&self, value: u64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_arithmetic() {
        let a = CountBounds {
            lower: 10,
            upper: 20,
        };
        let b = CountBounds { lower: 5, upper: 6 };
        assert_eq!(a.estimate(), 15.0);
        assert_eq!(a.half_width(), 5.0);
        let c = a.merge(&b);
        assert_eq!(
            c,
            CountBounds {
                lower: 15,
                upper: 26
            }
        );
        assert!(a.contains(10) && a.contains(20) && !a.contains(21));
    }
}
