//! Property-based tests for the sketch substrate: every certified bound
//! must contain the ground truth, for arbitrary data and queries.

use proptest::prelude::*;

use prc_sketch::distributed::{digest_partitions, gk_partitions, Quantizer, SketchStation};
use prc_sketch::{GkSummary, QDigest};

fn exact_range(values: &[u64], a: u64, b: u64) -> u64 {
    values.iter().filter(|&&v| v >= a && v <= b).count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qdigest_bounds_contain_truth(
        values in proptest::collection::vec(0u64..1024, 1..800),
        compression in 1u64..200,
        a in 0u64..1024,
        b in 0u64..1024,
    ) {
        let (a, b) = (a.min(b), a.max(b));
        let digest = QDigest::from_values(10, compression, &values);
        let truth = exact_range(&values, a, b);
        let bounds = digest.range_count_bounds(a, b);
        prop_assert!(bounds.contains(truth),
            "truth {truth} outside [{}, {}]", bounds.lower, bounds.upper);
        // Width respects the theoretical bound (two rank queries).
        prop_assert!(bounds.upper - bounds.lower <= 2 * digest.error_bound());
        prop_assert_eq!(digest.total(), values.len() as u64);
    }

    #[test]
    fn qdigest_merge_preserves_containment(
        left in proptest::collection::vec(0u64..256, 0..300),
        right in proptest::collection::vec(0u64..256, 1..300),
        compression in 1u64..64,
        a in 0u64..256,
        b in 0u64..256,
    ) {
        let (a, b) = (a.min(b), a.max(b));
        let mut merged = QDigest::from_values(8, compression, &left);
        merged.merge_from(&QDigest::from_values(8, compression, &right));
        let all: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        prop_assert!(merged.range_count_bounds(a, b).contains(exact_range(&all, a, b)));
        prop_assert_eq!(merged.total(), all.len() as u64);
    }

    #[test]
    fn gk_rank_bounds_contain_truth(
        raw in proptest::collection::vec(-500.0f64..500.0, 1..600),
        epsilon_milli in 2u32..200,
        x in -600.0f64..600.0,
    ) {
        let epsilon = f64::from(epsilon_milli) / 1000.0;
        let summary = GkSummary::from_values(epsilon, &raw);
        let truth = raw.iter().filter(|&&v| v <= x).count() as u64;
        let bounds = summary.rank_bounds(x);
        prop_assert!(bounds.contains(truth),
            "rank({x}) = {truth} outside [{}, {}]", bounds.lower, bounds.upper);
    }

    #[test]
    fn gk_range_bounds_contain_truth(
        raw in proptest::collection::vec(0.0f64..100.0, 1..500),
        epsilon_milli in 5u32..100,
        a in -10.0f64..110.0,
        width in 0.0f64..120.0,
    ) {
        let epsilon = f64::from(epsilon_milli) / 1000.0;
        let summary = GkSummary::from_values(epsilon, &raw);
        let b = a + width;
        let truth = raw.iter().filter(|&&v| v >= a && v <= b).count() as u64;
        prop_assert!(summary.range_count_bounds(a, b).contains(truth));
    }

    #[test]
    fn quantizer_is_monotone_and_clamped(
        lo in -1000.0f64..0.0,
        span in 1.0f64..2000.0,
        bits in 1u32..16,
        x in -2000.0f64..2000.0,
        y in -2000.0f64..2000.0,
    ) {
        let q = Quantizer::new(lo, lo + span, bits);
        let (small, large) = (x.min(y), x.max(y));
        prop_assert!(q.quantize(small) <= q.quantize(large));
        prop_assert!(q.quantize(x) <= q.max_code());
        // Dequantize stays within the value domain.
        let back = q.dequantize(q.quantize(x));
        prop_assert!(back >= lo - 1e-9 && back <= lo + span + 1e-9);
    }

    #[test]
    fn station_bounds_contain_truth_for_both_sketch_kinds(
        parts in proptest::collection::vec(
            proptest::collection::vec(0.0f64..200.0, 1..150), 1..6),
        use_gk in any::<bool>(),
        a_code in 0u64..256,
        b_code in 0u64..256,
    ) {
        let quantizer = Quantizer::new(0.0, 200.0, 8);
        let (a, b) = (a_code.min(b_code), a_code.max(b_code));
        let mut station = SketchStation::new();
        let sketches = if use_gk {
            gk_partitions(&parts, 0.02)
        } else {
            digest_partitions(&parts, &quantizer, 32)
        };
        for sketch in sketches {
            station.ingest(sketch);
        }
        let truth = parts.iter().flatten()
            .filter(|&&v| { let c = quantizer.quantize(v); c >= a && c <= b })
            .count() as u64;
        let bounds = station.range_count_bounds(&quantizer, a, b);
        prop_assert!(bounds.contains(truth),
            "truth {truth} outside [{}, {}] (gk={use_gk})", bounds.lower, bounds.upper);
        prop_assert_eq!(station.total_population() as usize,
            parts.iter().map(Vec::len).sum::<usize>());
    }
}
